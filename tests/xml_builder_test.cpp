#include "xaon/xml/builder.hpp"

#include <gtest/gtest.h>

#include "xaon/xml/parser.hpp"
#include "xaon/xml/writer.hpp"
#include "xaon/xpath/xpath.hpp"

namespace xaon::xml {
namespace {

TEST(Builder, MinimalDocument) {
  Builder b("root");
  Document doc = b.take();
  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->qname, "root");
  EXPECT_EQ(doc.root()->child_count, 0u);
}

TEST(Builder, NestedStructureAndText) {
  Builder b("order");
  b.attribute("id", "42")
      .child("customer").text("ACME").up()
      .child("item")
        .child("sku").text("AB-123").up()
        .child("quantity").text("1").up()
      .up();
  Document doc = b.take();
  const Node* order = doc.root();
  EXPECT_EQ(order->attr("id")->value, "42");
  EXPECT_EQ(order->child_element("customer")->text_content(), "ACME");
  const Node* item = order->child_element("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->child_element("quantity")->text_content(), "1");
}

TEST(Builder, SerializedOutputReparses) {
  Builder b("a");
  b.child("b").attribute("x", "1 & 2").text("<text>").up().comment("note");
  Document doc = b.take();
  WriteOptions opt;
  opt.declaration = false;
  const std::string out = write(doc.doc_node(), opt);
  auto reparsed = parse(out);
  ASSERT_TRUE(reparsed.ok) << reparsed.error.to_string();
  EXPECT_EQ(reparsed.document.root()->child_element("b")->attr("x")->value,
            "1 & 2");
  EXPECT_EQ(reparsed.document.root()->child_element("b")->text_content(),
            "<text>");
}

TEST(Builder, BuiltDomWorksWithXPath) {
  Builder b("shop");
  for (int i = 1; i <= 3; ++i) {
    b.child("item").attribute("n", std::to_string(i)).up();
  }
  Document doc = b.take();
  auto count = xpath::XPath::compile("count(//item)");
  EXPECT_DOUBLE_EQ(count.number(doc.root()), 3.0);
  auto second = xpath::XPath::compile("//item[2]/@n");
  EXPECT_EQ(second.string(doc.root()), "2");
}

TEST(Builder, NamespaceBindingResolvesSubtree) {
  Builder b("s:env");
  b.namespace_binding("s", "urn:soap").child("s:body").up();
  Document doc = b.take();
  EXPECT_EQ(doc.root()->ns_uri, "urn:soap");  // re-resolved on binding
  EXPECT_EQ(doc.root()->child_element("body")->ns_uri, "urn:soap");
}

TEST(Builder, DefaultNamespace) {
  Builder b("root");
  b.namespace_binding("", "urn:dflt").child("leaf").up();
  Document doc = b.take();
  EXPECT_EQ(doc.root()->ns_uri, "urn:dflt");
  EXPECT_EQ(doc.root()->child_element("leaf")->ns_uri, "urn:dflt");
}

TEST(Builder, CDataAndDocOrder) {
  Builder b("r");
  b.text("a").child("e").up().cdata("raw");
  Document doc = b.take();
  const Node* first = doc.root()->first_child;
  EXPECT_EQ(first->type, NodeType::kText);
  const Node* second = first->next_sibling;
  EXPECT_EQ(second->type, NodeType::kElement);
  const Node* third = second->next_sibling;
  EXPECT_EQ(third->type, NodeType::kCData);
  EXPECT_LT(first->doc_order, second->doc_order);
  EXPECT_LT(second->doc_order, third->doc_order);
}

TEST(Builder, UpPastRootAborts) {
  Builder b("root");
  EXPECT_DEATH(b.up(), "past the root");
}

TEST(Builder, DuplicateAttributeAborts) {
  Builder b("root");
  b.attribute("x", "1");
  EXPECT_DEATH(b.attribute("x", "2"), "duplicate");
}

TEST(Builder, TakeAtDepthClosesImplicitly) {
  Builder b("a");
  b.child("b").child("c");  // cursor left deep
  Document doc = b.take();
  EXPECT_EQ(doc.root()->child_element("b")->child_element("c")->qname, "c");
}

}  // namespace
}  // namespace xaon::xml
