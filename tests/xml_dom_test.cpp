#include "xaon/xml/dom.hpp"

#include <gtest/gtest.h>

#include "xaon/xml/parser.hpp"

namespace xaon::xml {
namespace {

ParseResult must_parse(std::string_view s) {
  auto r = parse(s);
  EXPECT_TRUE(r.ok) << r.error.to_string();
  return r;
}

TEST(Dom, ParentChildLinks) {
  auto r = must_parse("<a><b><c/></b></a>");
  const Node* a = r.document.root();
  const Node* b = a->first_child;
  const Node* c = b->first_child;
  EXPECT_EQ(b->parent, a);
  EXPECT_EQ(c->parent, b);
  EXPECT_EQ(a->parent, r.document.doc_node());
  EXPECT_EQ(a->depth, 1u);
  EXPECT_EQ(b->depth, 2u);
  EXPECT_EQ(c->depth, 3u);
}

TEST(Dom, SiblingLinksBothDirections) {
  auto r = must_parse("<a><x/><y/><z/></a>");
  const Node* x = r.document.root()->first_child;
  const Node* y = x->next_sibling;
  const Node* z = y->next_sibling;
  EXPECT_EQ(z->next_sibling, nullptr);
  EXPECT_EQ(z->prev_sibling, y);
  EXPECT_EQ(y->prev_sibling, x);
  EXPECT_EQ(x->prev_sibling, nullptr);
  EXPECT_EQ(r.document.root()->last_child, z);
}

TEST(Dom, ChildElementSkipsTextAndComments) {
  ParseOptions opt;
  opt.keep_comments = true;
  opt.keep_whitespace_text = true;
  auto r = parse("<a> <!-- c --> <b/> </a>", opt);
  ASSERT_TRUE(r.ok);
  const Node* b = r.document.root()->first_child_element();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->qname, "b");
  EXPECT_EQ(r.document.root()->child_element("b"), b);
  EXPECT_EQ(r.document.root()->child_element("nope"), nullptr);
}

TEST(Dom, ChildElementMatchesLocalNameAcrossPrefixes) {
  auto r = must_parse(R"(<a xmlns:p="urn:x"><p:b/></a>)");
  const Node* b = r.document.root()->child_element("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->qname, "p:b");
}

TEST(Dom, NextSiblingElement) {
  ParseOptions opt;
  opt.keep_whitespace_text = true;
  auto r = parse("<a><x/> text <y/></a>", opt);
  ASSERT_TRUE(r.ok);
  const Node* x = r.document.root()->first_child_element();
  const Node* y = x->next_sibling_element();
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->qname, "y");
  EXPECT_EQ(y->next_sibling_element(), nullptr);
}

TEST(Dom, TextContentRecurses) {
  auto r = must_parse("<a>one<b>two<c>three</c></b>four</a>");
  EXPECT_EQ(r.document.root()->text_content(), "onetwothreefour");
}

TEST(Dom, TextContentIncludesCData) {
  auto r = must_parse("<a>x<![CDATA[ & y]]></a>");
  EXPECT_EQ(r.document.root()->text_content(), "x & y");
}

TEST(Dom, AttrIteration) {
  auto r = must_parse(R"(<a p="1" q="2" r="3"/>)");
  int count = 0;
  for (const Attr* at = r.document.root()->first_attr; at != nullptr;
       at = at->next) {
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(r.document.root()->attr("q")->value, "2");
}

TEST(Dom, CountElements) {
  auto r = must_parse("<a><b/><c><d/></c>text</a>");
  EXPECT_EQ(count_elements(r.document.root()), 4u);
  EXPECT_EQ(count_elements(nullptr), 0u);
}

TEST(Dom, DocumentMovePreservesTree) {
  auto r = must_parse("<a><b>x</b></a>");
  Document moved = std::move(r.document);
  ASSERT_NE(moved.root(), nullptr);
  EXPECT_EQ(moved.root()->qname, "a");
  EXPECT_EQ(moved.root()->text_content(), "x");
}

TEST(Dom, EmptyDocumentAccessorsAreSafe) {
  Document d;
  EXPECT_EQ(d.doc_node(), nullptr);
  EXPECT_EQ(d.root(), nullptr);
}

TEST(Dom, ArenaAccountsForNodes) {
  auto r = must_parse("<a><b/><c/></a>");
  EXPECT_GE(r.document.arena().bytes_allocated(), 3 * sizeof(Node));
}

}  // namespace
}  // namespace xaon::xml
