#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// \file sched.hpp
/// Deterministic interleaving model checker (a "relacy-lite").
///
/// Runs N logical threads (real std::threads, gated so exactly one is
/// ever unblocked) over instrumented code: every `XAON_MODEL_POINT()`
/// the code passes hands control back to the scheduler, which picks the
/// next thread to run per a pluggable *decider*. Execution between two
/// points is atomic from the other threads' view, so a schedule is a
/// sequence of decisions and the set of schedules is the set of
/// interleavings at atomic-operation granularity.
///
/// Two deciders are provided:
///  * `ExhaustiveExplorer` — DFS over the full schedule tree of a
///    bounded program: every interleaving is executed exactly once and
///    `Stats::exhausted` certifies the tree was closed out.
///  * `RandomDecider` — seeded uniform choice, for programs with
///    unbounded wait loops (push_wait/pop_wait): a uniform pick among
///    runnable threads makes progress almost surely, and a per-schedule
///    step budget turns livelock into a test failure.
///
/// Because the scheduler serializes all steps through one mutex, each
/// executed schedule is sequentially consistent — the checker verifies
/// the *algorithm* (index math, emptiness tests, hand-off protocol,
/// wraparound) under every ordering of its atomic accesses. What it
/// proves is disjoint from TSan: TSan flags unsynchronized access pairs
/// in the one interleaving that actually ran; the checker enumerates
/// interleavings that production runs may never hit (e.g. an emptiness
/// check landing exactly between a slot write and its publishing index
/// store — a lost-slot logic bug that is not a data race and is
/// structurally invisible to happens-before race detection).
/// See DESIGN.md §"Static analysis & concurrency contracts".

namespace xaon::model {

class Scheduler;

// Identity of the current logical thread; null/-1 outside a model run,
// which makes yield_point() a no-op in un-modeled code paths.
inline thread_local Scheduler* tls_scheduler = nullptr;
inline thread_local int tls_thread_id = -1;

/// Thrown through a modeled thread to unwind it when the step budget is
/// exhausted; the modeled code (test-only) is exception-neutral.
struct ModelAborted {};

class Scheduler {
 public:
  using ThreadFn = std::function<void()>;
  /// Picks an index into `runnable` (logical ids, ascending).
  using Decider = std::function<std::size_t(const std::vector<int>&)>;
  /// Invariant probe, run between steps while every thread is parked —
  /// it may inspect shared state without perturbing the schedule.
  using Observer = std::function<void()>;

  struct Result {
    bool completed = false;  ///< all threads ran to the end
    std::uint64_t steps = 0;
    std::string error;  ///< non-empty on budget exhaustion (livelock)
  };

  Result run(std::vector<ThreadFn> fns, const Decider& decider,
             const Observer& observer = {},
             std::uint64_t max_steps = 200000) {
    const int n = static_cast<int>(fns.size());
    finished_.assign(static_cast<std::size_t>(n), false);
    active_ = -1;
    abort_ = false;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back(
          [this, i, fn = std::move(fns[static_cast<std::size_t>(i)])] {
            thread_main(i, fn);
          });
    }

    Result res;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        std::vector<int> runnable;
        for (int i = 0; i < n; ++i) {
          if (!finished_[static_cast<std::size_t>(i)]) runnable.push_back(i);
        }
        if (runnable.empty()) {
          res.completed = res.error.empty();
          break;
        }
        if (!abort_ && res.steps >= max_steps) {
          // Unwind every remaining thread via ModelAborted at its next
          // yield point (threads between their last point and return
          // simply finish).
          abort_ = true;
          res.error = "step budget exhausted (livelock?)";
        }
        ++res.steps;
        std::size_t idx = abort_ ? 0 : decider(runnable);
        if (idx >= runnable.size()) idx = 0;
        if (observer && !abort_) {
          lk.unlock();  // every modeled thread is parked on our gate
          observer();
          lk.lock();
        }
        active_ = runnable[idx];
        cv_.notify_all();
        cv_.wait(lk, [this] { return active_ == -1; });
      }
    }
    for (auto& t : threads) t.join();
    return res;
  }

  /// Called from modeled code via XAON_MODEL_POINT(): parks the calling
  /// thread and returns once the scheduler picks it again.
  void yield_from_thread() {
    std::unique_lock<std::mutex> lk(mu_);
    active_ = -1;
    cv_.notify_all();
    cv_.wait(lk, [this] { return active_ == tls_thread_id; });
    if (abort_) throw ModelAborted{};
  }

 private:
  void thread_main(int id, const ThreadFn& fn) {
    tls_scheduler = this;
    tls_thread_id = id;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this, id] { return active_ == id; });
    }
    try {
      fn();
    } catch (const ModelAborted&) {
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      finished_[static_cast<std::size_t>(id)] = true;
      active_ = -1;
      cv_.notify_all();
    }
    tls_scheduler = nullptr;
    tls_thread_id = -1;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> finished_;  // guarded by mu_
  int active_ = -1;             // guarded by mu_; -1 = scheduler's turn
  bool abort_ = false;          // guarded by mu_
};

/// The hook target for XAON_MODEL_POINT(). No-op on threads not driven
/// by a Scheduler (so instrumented headers stay usable everywhere).
inline void yield_point() {
  if (tls_scheduler != nullptr) tls_scheduler->yield_from_thread();
}

/// Depth-first enumeration of every schedule of a *bounded* program
/// (one with no unbounded retry loops). Usage:
///
///   ExhaustiveExplorer ex;
///   auto stats = ex.explore([&](const Scheduler::Decider& d) {
///     /* build fresh program state, then Scheduler().run(fns, d, obs) */
///   });
///   ASSERT_TRUE(stats.exhausted);
///
/// Replays are sound because a fixed choice prefix reproduces the exact
/// runnable sets: the scheduler serializes execution, and the program
/// under test is deterministic given its schedule.
class ExhaustiveExplorer {
 public:
  struct Stats {
    std::uint64_t schedules = 0;
    bool exhausted = false;  ///< the whole tree was explored
  };

  template <typename Runner>
  Stats explore(Runner&& runner, std::uint64_t max_schedules = 1000000) {
    std::vector<std::size_t> prefix;
    Stats st;
    for (;;) {
      choices_.clear();
      arity_.clear();
      std::size_t depth = 0;
      Scheduler::Decider decider =
          [this, &prefix, &depth](const std::vector<int>& runnable) {
            std::size_t pick = depth < prefix.size() ? prefix[depth] : 0;
            if (pick >= runnable.size()) pick = 0;
            choices_.push_back(pick);
            arity_.push_back(runnable.size());
            ++depth;
            return pick;
          };
      runner(decider);
      ++st.schedules;
      if (st.schedules >= max_schedules) return st;  // exhausted == false
      // Backtrack to the deepest decision with an untried alternative.
      std::size_t k = choices_.size();
      while (k > 0 && choices_[k - 1] + 1 >= arity_[k - 1]) --k;
      if (k == 0) {
        st.exhausted = true;
        return st;
      }
      prefix.assign(choices_.begin(),
                    choices_.begin() + static_cast<std::ptrdiff_t>(k));
      ++prefix[k - 1];
    }
  }

 private:
  std::vector<std::size_t> choices_;  // index picked at each decision
  std::vector<std::size_t> arity_;    // runnable-set size at each decision
};

/// Seeded uniform schedule choice (xorshift64*): distinct seeds explore
/// distinct long interleavings of unbounded programs, reproducibly.
class RandomDecider {
 public:
  explicit RandomDecider(std::uint64_t seed)
      : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  std::size_t operator()(const std::vector<int>& runnable) {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
    return static_cast<std::size_t>((r >> 32) % runnable.size());
  }

 private:
  std::uint64_t state_;
};

}  // namespace xaon::model
