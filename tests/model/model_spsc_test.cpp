#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sched.hpp"

// Instrument the queue: every XAON_MODEL_POINT() inside SpscQueue hands
// control to the model scheduler. This must come before the queue
// header and before anything that includes it transitively.
#define XAON_MODEL_POINT() ::xaon::model::yield_point()
#include "xaon/util/spsc_queue.hpp"

/// Model-checking the SPSC ring (see tests/model/sched.hpp for the
/// scheduler and DESIGN.md for how this tier complements TSan).
///
/// Shadow state: each run keeps a sequentially consistent log of what
/// *should* be true — the ordered list of successfully pushed values and
/// the ordered list of popped values. After the schedule completes the
/// shadow is reconciled with the ring:
///   * FIFO      — popped is exactly a prefix of pushed_ok;
///   * no loss   — drain(pops after both threads stop) recovers the rest;
///   * no dup    — concatenated pops equal pushed_ok exactly once each.
/// During the schedule an observer probes the ring between every pair of
/// steps and asserts head/tail only ever step forward by one slot
/// (monotonicity modulo the ring mask).

namespace xaon::util {
namespace {

using xaon::model::ExhaustiveExplorer;
using xaon::model::RandomDecider;
using xaon::model::Scheduler;

struct RunOutcome {
  std::vector<int> pushed_ok;
  std::vector<int> popped;   // consumer thread's pops, in order
  std::vector<int> drained;  // main-thread drain after the schedule
  std::string error;         // first invariant violation, empty if none
};

// One bounded schedule: producer issues `n_push` try_push calls of
// values base+1.., consumer issues `n_pop` try_pop calls. `pre_advance`
// rotates head/tail before the threads start so exhaustive runs cross
// the ring's wrap boundary. All invariant checks are recorded into
// `out.error` (first failure wins) so the explorer can run thousands of
// schedules without flooding gtest output.
void run_try_schedule(const Scheduler::Decider& decider,
                      std::size_t cap_request, std::size_t pre_advance,
                      int n_push, int n_pop, RunOutcome& out) {
  SpscQueue<int> q(cap_request);
  const std::size_t mask = q.capacity();
  for (std::size_t i = 0; i < pre_advance; ++i) {
    if (!q.try_push(0)) {
      out.error = "pre_advance push failed";
      return;
    }
    if (!q.try_pop().has_value()) {
      out.error = "pre_advance pop failed";
      return;
    }
  }

  auto fail = [&out](const std::string& what) {
    if (out.error.empty()) out.error = what;
  };

  std::vector<Scheduler::ThreadFn> fns;
  fns.push_back([&q, &out, n_push] {  // producer
    for (int v = 1; v <= n_push; ++v) {
      if (q.try_push(v)) out.pushed_ok.push_back(v);
    }
  });
  fns.push_back([&q, &out, n_pop] {  // consumer
    for (int i = 0; i < n_pop; ++i) {
      if (std::optional<int> v = q.try_pop()) out.popped.push_back(*v);
    }
  });

  // Invariant probe between every pair of scheduler steps: ring indices
  // only ever advance, one slot at a time, modulo the mask.
  std::size_t prev_head = q.debug_head();
  std::size_t prev_tail = q.debug_tail();
  auto observer = [&] {
    const std::size_t h = q.debug_head();
    const std::size_t t = q.debug_tail();
    if (h != prev_head && h != ((prev_head + 1) & mask)) {
      fail("head not monotonic");
    }
    if (t != prev_tail && t != ((prev_tail + 1) & mask)) {
      fail("tail not monotonic");
    }
    prev_head = h;
    prev_tail = t;
  };

  Scheduler sched;
  const Scheduler::Result res = sched.run(std::move(fns), decider, observer);
  if (!res.completed) {
    fail("schedule did not complete: " + res.error);
    return;
  }

  while (std::optional<int> v = q.try_pop()) out.drained.push_back(*v);
  if (!q.empty()) fail("queue non-empty after full drain");

  // Reconcile with the shadow log: consumer pops must be a prefix of
  // the successful pushes (FIFO, no reordering, no invention), and
  // pops + drain must recover every pushed value exactly once.
  std::vector<int> all = out.popped;
  all.insert(all.end(), out.drained.begin(), out.drained.end());
  if (all != out.pushed_ok) fail("pops+drain != pushes (lost/dup slot)");
  for (std::size_t i = 0; i < out.popped.size(); ++i) {
    if (out.popped[i] != out.pushed_ok[i]) fail("FIFO order violated");
  }
}

std::string describe(const RunOutcome& out, std::uint64_t schedule_no) {
  std::ostringstream os;
  os << "schedule #" << schedule_no << ": " << out.error << " (pushed_ok=";
  for (int v : out.pushed_ok) os << v << ' ';
  os << "popped=";
  for (int v : out.popped) os << v << ' ';
  os << "drained=";
  for (int v : out.drained) os << v << ' ';
  os << ")";
  return os.str();
}

TEST(ModelSpsc, ExhaustiveTwoByTwoCapacityOne) {
  ExhaustiveExplorer ex;
  std::uint64_t n = 0;
  std::string first_error;
  auto stats = ex.explore([&](const Scheduler::Decider& d) {
    ++n;
    if (!first_error.empty()) return;  // already failed; close out fast
    RunOutcome out;
    run_try_schedule(d, /*cap_request=*/1, /*pre_advance=*/0,
                     /*n_push=*/2, /*n_pop=*/2, out);
    if (!out.error.empty()) first_error = describe(out, n);
  });
  EXPECT_EQ(first_error, "");
  EXPECT_TRUE(stats.exhausted) << "schedule tree not closed out";
  // Regression guard for the instrumentation itself: if the
  // XAON_MODEL_POINT hooks stop firing, the tree collapses to a
  // handful of schedules and this floor catches it.
  EXPECT_GE(stats.schedules, 500u) << "suspiciously few interleavings";
}

TEST(ModelSpsc, ExhaustiveWraparoundRingFour) {
  // Ring of 4 (usable 3), indices pre-advanced to 3 so every schedule
  // crosses the wrap boundary 3 -> 0 while both threads are live.
  ExhaustiveExplorer ex;
  std::uint64_t n = 0;
  std::string first_error;
  auto stats = ex.explore([&](const Scheduler::Decider& d) {
    ++n;
    if (!first_error.empty()) return;
    RunOutcome out;
    run_try_schedule(d, /*cap_request=*/2, /*pre_advance=*/3,
                     /*n_push=*/2, /*n_pop=*/2, out);
    if (!out.error.empty()) first_error = describe(out, n);
  });
  EXPECT_EQ(first_error, "");
  EXPECT_TRUE(stats.exhausted);
  EXPECT_GE(stats.schedules, 500u);
}

TEST(ModelSpsc, RandomDeepSchedulesThreeByThree) {
  // 3x3 is beyond exhaustive reach (the tree has millions of paths);
  // seeded random schedules sample it deeply and reproducibly.
  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    RandomDecider rnd(seed);
    Scheduler::Decider d = [&rnd](const std::vector<int>& runnable) {
      return rnd(runnable);
    };
    RunOutcome out;
    run_try_schedule(d, /*cap_request=*/2, /*pre_advance=*/(seed % 5),
                     /*n_push=*/3, /*n_pop=*/3, out);
    ASSERT_EQ(out.error, "") << describe(out, seed);
  }
}

// The blocking protocol the AON server actually runs (Server::run_load
// shutdown): producer push_wait()s every message then publishes `done`
// with release; consumer pop_wait()s with an acquire stop predicate.
// Asserts complete in-order delivery — the lost-wakeup bug the
// done-flag audit in src/aon/server.cpp guards against would surface
// here as a missing tail of the sequence.
TEST(ModelSpsc, RandomBlockingTransferWithShutdownFlag) {
  constexpr int kItems = 8;
  for (std::size_t cap : {std::size_t{1}, std::size_t{4}}) {
    for (std::uint64_t seed = 1; seed <= 400; ++seed) {
      SpscQueue<int> q(cap);
      std::atomic<bool> done{false};
      std::vector<int> received;

      std::vector<Scheduler::ThreadFn> fns;
      fns.push_back([&] {  // acceptor role
        for (int v = 1; v <= kItems; ++v) q.push_wait(v);
        xaon::model::yield_point();
        done.store(true, std::memory_order_release);
      });
      fns.push_back([&] {  // worker role
        const auto stop = [&done] {
          return done.load(std::memory_order_acquire);
        };
        while (std::optional<int> v = q.pop_wait(stop)) {
          received.push_back(*v);
        }
      });

      RandomDecider rnd(seed * 0x9E37u + cap);
      Scheduler::Decider d = [&rnd](const std::vector<int>& runnable) {
        return rnd(runnable);
      };
      Scheduler sched;
      const Scheduler::Result res = sched.run(std::move(fns), d);
      ASSERT_TRUE(res.completed)
          << "cap=" << cap << " seed=" << seed << ": " << res.error;
      ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems))
          << "cap=" << cap << " seed=" << seed;
      for (int v = 1; v <= kItems; ++v) {
        ASSERT_EQ(received[static_cast<std::size_t>(v - 1)], v)
            << "cap=" << cap << " seed=" << seed;
      }
      ASSERT_TRUE(q.empty());
    }
  }
}

}  // namespace
}  // namespace xaon::util
