#include "xaon/xsd/types.hpp"

#include <gtest/gtest.h>

namespace xaon::xsd {
namespace {

TEST(BuiltinLookup, KnownNames) {
  EXPECT_EQ(builtin_by_name("string"), BuiltinType::kString);
  EXPECT_EQ(builtin_by_name("int"), BuiltinType::kInt);
  EXPECT_EQ(builtin_by_name("dateTime"), BuiltinType::kDateTime);
  EXPECT_FALSE(builtin_by_name("notAType").has_value());
  EXPECT_FALSE(builtin_by_name("String").has_value());  // case-sensitive
}

TEST(BuiltinLookup, NameRoundtrip) {
  for (auto t : {BuiltinType::kString, BuiltinType::kBoolean,
                 BuiltinType::kDecimal, BuiltinType::kUnsignedByte,
                 BuiltinType::kHexBinary}) {
    auto back = builtin_by_name(builtin_name(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
}

TEST(Whitespace, FacetDefaults) {
  EXPECT_EQ(builtin_whitespace(BuiltinType::kString), Whitespace::kPreserve);
  EXPECT_EQ(builtin_whitespace(BuiltinType::kNormalizedString),
            Whitespace::kReplace);
  EXPECT_EQ(builtin_whitespace(BuiltinType::kToken), Whitespace::kCollapse);
  EXPECT_EQ(builtin_whitespace(BuiltinType::kInt), Whitespace::kCollapse);
}

TEST(Whitespace, Apply) {
  EXPECT_EQ(apply_whitespace("a\tb\nc", Whitespace::kPreserve), "a\tb\nc");
  EXPECT_EQ(apply_whitespace("a\tb\nc", Whitespace::kReplace), "a b c");
  EXPECT_EQ(apply_whitespace("  a \t b  ", Whitespace::kCollapse), "a b");
  EXPECT_EQ(apply_whitespace("   ", Whitespace::kCollapse), "");
}

struct LexCase {
  BuiltinType type;
  const char* value;
  bool valid;
};

class BuiltinLexical : public ::testing::TestWithParam<LexCase> {};

TEST_P(BuiltinLexical, Validates) {
  const LexCase& c = GetParam();
  std::string error;
  EXPECT_EQ(validate_builtin(c.type, c.value, &error), c.valid)
      << builtin_name(c.type) << " value '" << c.value << "' error: "
      << error;
  if (!c.valid) EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Booleans, BuiltinLexical,
    ::testing::Values(LexCase{BuiltinType::kBoolean, "true", true},
                      LexCase{BuiltinType::kBoolean, "false", true},
                      LexCase{BuiltinType::kBoolean, "1", true},
                      LexCase{BuiltinType::kBoolean, "0", true},
                      LexCase{BuiltinType::kBoolean, "TRUE", false},
                      LexCase{BuiltinType::kBoolean, "yes", false},
                      LexCase{BuiltinType::kBoolean, "", false}));

INSTANTIATE_TEST_SUITE_P(
    Integers, BuiltinLexical,
    ::testing::Values(LexCase{BuiltinType::kInteger, "0", true},
                      LexCase{BuiltinType::kInteger, "-42", true},
                      LexCase{BuiltinType::kInteger, "+7", true},
                      LexCase{BuiltinType::kInteger, "1.5", false},
                      LexCase{BuiltinType::kInteger, "abc", false},
                      LexCase{BuiltinType::kInt, "2147483647", true},
                      LexCase{BuiltinType::kInt, "2147483648", false},
                      LexCase{BuiltinType::kInt, "-2147483648", true},
                      LexCase{BuiltinType::kInt, "-2147483649", false},
                      LexCase{BuiltinType::kShort, "32767", true},
                      LexCase{BuiltinType::kShort, "32768", false},
                      LexCase{BuiltinType::kByte, "-128", true},
                      LexCase{BuiltinType::kByte, "128", false},
                      LexCase{BuiltinType::kUnsignedByte, "255", true},
                      LexCase{BuiltinType::kUnsignedByte, "256", false},
                      LexCase{BuiltinType::kUnsignedByte, "-1", false},
                      LexCase{BuiltinType::kLong, "9223372036854775807", true},
                      LexCase{BuiltinType::kLong, "9223372036854775808", false},
                      LexCase{BuiltinType::kUnsignedLong,
                              "18446744073709551615", true},
                      LexCase{BuiltinType::kUnsignedLong,
                              "18446744073709551616", false},
                      LexCase{BuiltinType::kPositiveInteger, "1", true},
                      LexCase{BuiltinType::kPositiveInteger, "0", false},
                      LexCase{BuiltinType::kNonNegativeInteger, "0", true},
                      LexCase{BuiltinType::kNonNegativeInteger, "-1", false},
                      LexCase{BuiltinType::kNegativeInteger, "-1", true},
                      LexCase{BuiltinType::kNegativeInteger, "0", false}));

INSTANTIATE_TEST_SUITE_P(
    Decimals, BuiltinLexical,
    ::testing::Values(LexCase{BuiltinType::kDecimal, "3.14", true},
                      LexCase{BuiltinType::kDecimal, "-0.5", true},
                      LexCase{BuiltinType::kDecimal, ".5", true},
                      LexCase{BuiltinType::kDecimal, "5.", true},
                      LexCase{BuiltinType::kDecimal, "1e5", false},
                      LexCase{BuiltinType::kDecimal, "1.2.3", false},
                      LexCase{BuiltinType::kDouble, "1e5", true},
                      LexCase{BuiltinType::kDouble, "-1.5E-3", true},
                      LexCase{BuiltinType::kDouble, "NaN", true},
                      LexCase{BuiltinType::kDouble, "INF", true},
                      LexCase{BuiltinType::kDouble, "-INF", true},
                      LexCase{BuiltinType::kDouble, "inf", false},
                      LexCase{BuiltinType::kFloat, "1.5e2", true},
                      LexCase{BuiltinType::kFloat, "e5", false}));

INSTANTIATE_TEST_SUITE_P(
    DatesAndTimes, BuiltinLexical,
    ::testing::Values(LexCase{BuiltinType::kDate, "2007-03-14", true},
                      LexCase{BuiltinType::kDate, "2007-03-14Z", true},
                      LexCase{BuiltinType::kDate, "2007-03-14+05:30", true},
                      LexCase{BuiltinType::kDate, "2007-13-14", false},
                      LexCase{BuiltinType::kDate, "2007-00-14", false},
                      LexCase{BuiltinType::kDate, "2007-03-32", false},
                      LexCase{BuiltinType::kDate, "07-03-14", false},
                      LexCase{BuiltinType::kTime, "13:20:00", true},
                      LexCase{BuiltinType::kTime, "13:20:00.5", true},
                      LexCase{BuiltinType::kTime, "13:20:00Z", true},
                      LexCase{BuiltinType::kTime, "25:00:00", false},
                      LexCase{BuiltinType::kTime, "13:61:00", false},
                      LexCase{BuiltinType::kDateTime,
                              "2007-03-14T13:20:00", true},
                      LexCase{BuiltinType::kDateTime,
                              "2007-03-14T13:20:00-08:00", true},
                      LexCase{BuiltinType::kDateTime, "2007-03-14", false},
                      LexCase{BuiltinType::kDateTime,
                              "2007-03-14 13:20:00", false}));

INSTANTIATE_TEST_SUITE_P(
    NamesAndBinary, BuiltinLexical,
    ::testing::Values(LexCase{BuiltinType::kNCName, "valid-name", true},
                      LexCase{BuiltinType::kNCName, "has:colon", false},
                      LexCase{BuiltinType::kNCName, "1starts-digit", false},
                      LexCase{BuiltinType::kNCName, "", false},
                      LexCase{BuiltinType::kName, "with:colon", true},
                      LexCase{BuiltinType::kLanguage, "en", true},
                      LexCase{BuiltinType::kLanguage, "en-US", true},
                      LexCase{BuiltinType::kLanguage, "verylongsegment1", false},
                      LexCase{BuiltinType::kHexBinary, "0FB7", true},
                      LexCase{BuiltinType::kHexBinary, "0FB", false},
                      LexCase{BuiltinType::kHexBinary, "0FBZ", false},
                      LexCase{BuiltinType::kBase64Binary, "TWFu", true},
                      LexCase{BuiltinType::kBase64Binary, "TWE=", true},
                      LexCase{BuiltinType::kBase64Binary, "TQ==", true},
                      LexCase{BuiltinType::kBase64Binary, "TQ=", false},
                      LexCase{BuiltinType::kBase64Binary, "T!Q=", false}));

TEST(BuiltinNumeric, Classification) {
  EXPECT_TRUE(builtin_is_numeric(BuiltinType::kInt));
  EXPECT_TRUE(builtin_is_numeric(BuiltinType::kDouble));
  EXPECT_TRUE(builtin_is_numeric(BuiltinType::kDecimal));
  EXPECT_FALSE(builtin_is_numeric(BuiltinType::kString));
  EXPECT_FALSE(builtin_is_numeric(BuiltinType::kDate));
  EXPECT_FALSE(builtin_is_numeric(BuiltinType::kBoolean));
}

TEST(BuiltinNumeric, Values) {
  EXPECT_DOUBLE_EQ(*builtin_numeric_value(BuiltinType::kInt, "42"), 42.0);
  EXPECT_DOUBLE_EQ(*builtin_numeric_value(BuiltinType::kDecimal, "-1.5"),
                   -1.5);
  EXPECT_FALSE(builtin_numeric_value(BuiltinType::kInt, "abc").has_value());
  EXPECT_FALSE(
      builtin_numeric_value(BuiltinType::kString, "42").has_value());
}

}  // namespace
}  // namespace xaon::xsd
