// Differential tests: two implementations of the same contract must
// agree byte-for-byte on the AONBench corpus.
//
//   * SAX vs DOM: the streaming parser's event sequence must equal a
//     walk of the DOM the tree parser builds from the same input.
//   * XPath with vs without EvalScratch: the pooled-storage evaluation
//     path must produce the same values as the allocating one.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/xml/dom.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xml/sax.hpp"
#include "xaon/xpath/xpath.hpp"

namespace xaon {
namespace {

std::vector<std::string> aonbench_corpus() {
  std::vector<std::string> docs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    aon::MessageSpec spec;
    spec.seed = seed;
    spec.quantity = static_cast<std::uint32_t>(seed % 3);
    spec.items = static_cast<std::uint32_t>(1 + seed % 4);
    spec.valid_for_schema = (seed % 4) != 0;
    docs.push_back(aon::make_order_message(spec));
  }
  return docs;
}

// --- SAX vs DOM ----------------------------------------------------------

/// Flattens SAX events into a canonical transcript.
class Transcript : public xml::SaxHandler {
 public:
  bool on_start_element(std::string_view qname, std::string_view local,
                        std::string_view ns_uri, const xml::SaxAttr* attrs,
                        std::size_t n_attrs) override {
    out += "<";
    out.append(qname);
    out += "|";
    out.append(local);
    out += "|";
    out.append(ns_uri);
    for (std::size_t i = 0; i < n_attrs; ++i) {
      out += " @";
      out.append(attrs[i].qname);
      out += "|";
      out.append(attrs[i].ns_uri);
      out += "=";
      out.append(attrs[i].value);
    }
    out += ">";
    return true;
  }
  bool on_end_element(std::string_view qname, std::string_view,
                      std::string_view) override {
    out += "</";
    out.append(qname);
    out += ">";
    return true;
  }
  bool on_text(std::string_view text, bool) override {
    // The DOM may split adjacent text/CDATA into separate nodes exactly
    // where SAX emits separate events; both sides append raw content,
    // so any legal segmentation yields the same transcript.
    out += "T:";
    out.append(text);
    out += ";";
    return true;
  }

  std::string out;
};

/// Walks a DOM subtree emitting the same canonical transcript.
void walk(const xml::Node* node, std::string& out) {
  if (node->is_text()) {
    out += "T:";
    out.append(node->text);
    out += ";";
    return;
  }
  out += "<";
  out.append(node->qname);
  out += "|";
  out.append(node->local);
  out += "|";
  out.append(node->ns_uri);
  for (const xml::Attr* a = node->first_attr; a != nullptr;
       a = a->next) {
    out += " @";
    out.append(a->qname);
    out += "|";
    out.append(a->ns_uri);
    out += "=";
    out.append(a->value);
  }
  out += ">";
  for (const xml::Node* c = node->first_child; c != nullptr;
       c = c->next_sibling) {
    walk(c, out);
  }
  out += "</";
  out.append(node->qname);
  out += ">";
}

TEST(Differential, SaxAndDomAgreeOnAonBenchCorpus) {
  for (const std::string& doc : aonbench_corpus()) {
    Transcript sax;
    const xml::SaxResult sr = xml::parse_sax(doc, sax);
    ASSERT_TRUE(sr.ok) << sr.error.to_string();

    xml::ParseResult dom = xml::parse(doc);
    ASSERT_TRUE(dom.ok) << dom.error.to_string();
    std::string dom_transcript;
    walk(dom.document.root(), dom_transcript);

    // Text segmentation may differ (SAX flushes around CDATA, the DOM
    // stores separate nodes) but the canonical form joins fragments in
    // order, so the transcripts must match exactly.
    EXPECT_EQ(sax.out, dom_transcript);
  }
}

TEST(Differential, SaxAndDomAgreeOnEdgeCases) {
  const char* docs[] = {
      "<r/>",
      "<r a='1' b='&lt;&amp;'/>",
      "<r>pre<![CDATA[raw <markup> &amp;]]>post</r>",
      "<a xmlns='urn:d' xmlns:p='urn:p'><p:b p:x='1'>t</p:b></a>",
      "<r>&#x41;&#66;</r>",
  };
  for (const char* doc : docs) {
    Transcript sax;
    ASSERT_TRUE(xml::parse_sax(doc, sax).ok) << doc;
    xml::ParseResult dom = xml::parse(doc);
    ASSERT_TRUE(dom.ok) << doc;
    std::string dom_transcript;
    walk(dom.document.root(), dom_transcript);
    EXPECT_EQ(sax.out, dom_transcript) << doc;
  }
}

// --- XPath scratch parity -------------------------------------------------

TEST(Differential, XPathScratchAndHeapEvaluationAgree) {
  const char* exprs[] = {
      "//quantity/text()",
      "count(//item)",
      "//item[1]/sku",
      "string(//order/@id)",
      "//item[quantity > 1]/price",
      "sum(//quantity)",
      "boolean(//note)",
      "//item/following-sibling::item/sku",
      "normalize-space(//customer)",
  };
  xpath::EvalScratch scratch;
  for (const std::string& doc : aonbench_corpus()) {
    xml::ParseResult dom = xml::parse(doc);
    ASSERT_TRUE(dom.ok);
    for (const char* expr : exprs) {
      xpath::CompileError err;
      const xpath::XPath xp = xpath::XPath::compile(expr, &err);
      ASSERT_TRUE(xp.valid()) << expr << ": " << err.message;

      const xpath::Value heap = xp.evaluate(dom.document.root());
      const xpath::Value pooled =
          xp.evaluate(dom.document.root(), scratch);

      EXPECT_EQ(heap.kind(), pooled.kind()) << expr;
      EXPECT_EQ(heap.to_string(), pooled.to_string()) << expr;
      EXPECT_EQ(heap.to_boolean(), pooled.to_boolean()) << expr;
      // NaN != NaN: compare numbers via their XPath string form above
      // and only require bitwise-comparable numbers to match here.
      if (heap.to_number() == heap.to_number()) {
        EXPECT_EQ(heap.to_number(), pooled.to_number()) << expr;
      }

      // select() parity: same nodes in the same order.
      const xpath::NodeSet heap_nodes = xp.select(dom.document.root());
      const xpath::NodeSet& pooled_nodes =
          xp.select(dom.document.root(), scratch);
      ASSERT_EQ(heap_nodes.size(), pooled_nodes.size()) << expr;
      for (std::size_t i = 0; i < heap_nodes.size(); ++i) {
        EXPECT_EQ(heap_nodes[i].node, pooled_nodes[i].node) << expr;
        EXPECT_EQ(heap_nodes[i].attr, pooled_nodes[i].attr) << expr;
      }
    }
  }
}

TEST(Differential, XPathScratchReuseAcrossDocumentsStaysCorrect) {
  // The pooled path recycles node-set buffers; a stale buffer from a
  // previous (larger) document must never leak into a later result.
  const xpath::XPath xp = xpath::XPath::compile("//item/sku");
  ASSERT_TRUE(xp.valid());
  xpath::EvalScratch scratch;
  const std::vector<std::string> docs = aonbench_corpus();
  for (int rep = 0; rep < 3; ++rep) {
    for (const std::string& doc : docs) {
      xml::ParseResult dom = xml::parse(doc);
      ASSERT_TRUE(dom.ok);
      const xpath::NodeSet expected = xp.select(dom.document.root());
      const xpath::NodeSet& got = xp.select(dom.document.root(), scratch);
      ASSERT_EQ(expected.size(), got.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].node, got[i].node);
      }
    }
  }
}

}  // namespace
}  // namespace xaon
