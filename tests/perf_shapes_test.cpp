// Paper-shape regression suite: the headline orderings and ratios of
// the paper's figures and tables, asserted as tests so a refactor that
// silently bends a curve fails CI rather than only the bench binaries.
// Shapes (orderings/ratios), never absolute values — see EXPERIMENTS.md
// for measured numbers and documented deviations from the paper.

#include <gtest/gtest.h>

#include "xaon/perf/experiment.hpp"

namespace xaon::perf {
namespace {

/// Small-but-meaningful config (same as perf_experiment_test): default
/// per-use-case message counts, single measured replay.
AonExperimentConfig quick_config() {
  AonExperimentConfig config;
  config.messages_per_trace = 0;
  config.warmup_repeats = 1;
  config.measure_repeats = 1;
  return config;
}

constexpr const char* kPlatforms[] = {"1CPm", "2CPm", "1LPx", "2LPx",
                                      "2PPx"};

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::vector<WorkloadResults>(
        run_all_aon_experiments(quick_config()));
    NetperfExperimentConfig netperf;
    netperf.measure_repeats = 1;
    netperf.iterations_per_trace = 12;
    loopback_ = new WorkloadResults(run_netperf_loopback(netperf));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete loopback_;
    results_ = nullptr;
    loopback_ = nullptr;
  }
  static const WorkloadResults& sv() { return (*results_)[0]; }
  static const WorkloadResults& cbr() { return (*results_)[1]; }
  static const WorkloadResults& fr() { return (*results_)[2]; }
  static double lb(const char* notation) {
    return loopback_->find(notation)->throughput;
  }

  static std::vector<WorkloadResults>* results_;
  static WorkloadResults* loopback_;
};

std::vector<WorkloadResults>* PaperShapes::results_ = nullptr;
WorkloadResults* PaperShapes::loopback_ = nullptr;

// --- Figure 2: netperf loopback ------------------------------------------

TEST_F(PaperShapes, Fig2LoopbackDualPentiumMDegrades) {
  EXPECT_LT(lb("2CPm"), lb("1CPm"));
}

TEST_F(PaperShapes, Fig2LoopbackDualXeonCollapses) {
  // The paper's most dramatic bar: 2PPx loopback falls to a fraction of
  // 1LPx (8897 -> 2823 Mbps), and the dual hit is far worse than the
  // shared-L2 PM's.
  EXPECT_LT(lb("2PPx"), 0.45 * lb("1LPx"));
  EXPECT_LT(lb("2PPx") / lb("1LPx"), lb("2CPm") / lb("1CPm"));
}

// --- Figure 3: throughput scaling ----------------------------------------

TEST_F(PaperShapes, Fig3DualCoreScalingRisesWithCpuIntensity) {
  // 1CPm->2CPm scaling grows from FR (I/O-bound, shared-L2 contention)
  // to SV (CPU-bound, near-2x).
  EXPECT_LT(scaling(fr(), "1CPm", "2CPm"), scaling(sv(), "1CPm", "2CPm"));
}

TEST_F(PaperShapes, Fig3HyperThreadScalingFallsWithCpuIntensity) {
  // The reverse trend under Hyper-Threading: SV < FR.
  EXPECT_LT(scaling(sv(), "1LPx", "2LPx"), scaling(fr(), "1LPx", "2LPx"));
}

TEST_F(PaperShapes, Fig3DualPhysicalXeonScalesNearTwoEverywhere) {
  for (const auto& w : *results_) {
    EXPECT_GT(scaling(w, "1LPx", "2PPx"), 1.8) << w.workload;
    EXPECT_LE(scaling(w, "1LPx", "2PPx"), 2.1) << w.workload;
  }
}

// --- Table 4: CPI ----------------------------------------------------------

TEST_F(PaperShapes, Table4CpiOrderingSvBelowCbrBelowFr) {
  // CPI rises with network-I/O intensity on every platform: SV < CBR <
  // FR (compute-dense validation retires more work per stall).
  for (const char* p : kPlatforms) {
    EXPECT_LT(sv().find(p)->counters.cpi(), cbr().find(p)->counters.cpi())
        << p;
    EXPECT_LT(cbr().find(p)->counters.cpi(), fr().find(p)->counters.cpi())
        << p;
  }
}

TEST_F(PaperShapes, Table4HyperThreadingWorstXeonCpi) {
  for (const auto& w : *results_) {
    const double xeon = w.find("1LPx")->counters.cpi();
    EXPECT_GT(w.find("2LPx")->counters.cpi(), xeon) << w.workload;
    EXPECT_GT(w.find("2LPx")->counters.cpi(),
              w.find("2PPx")->counters.cpi())
        << w.workload;
    EXPECT_LT(w.find("2PPx")->counters.cpi() / xeon, 1.25) << w.workload;
  }
}

// --- Figure 4: L2MPI -------------------------------------------------------

TEST_F(PaperShapes, Fig4L2MpiOrderingTracksIoIntensity) {
  for (const char* p : kPlatforms) {
    EXPECT_LT(sv().find(p)->counters.l2mpi(),
              cbr().find(p)->counters.l2mpi())
        << p;
    EXPECT_LT(cbr().find(p)->counters.l2mpi(),
              fr().find(p)->counters.l2mpi())
        << p;
  }
}

TEST_F(PaperShapes, Fig4HyperThreadingLeavesL2MpiNearSingle) {
  // Paper Fig. 4 reports a small 1LPx->2LPx change; our simulator puts
  // 2LPx slightly ABOVE 1LPx (two streams share one L2) rather than the
  // paper's slight decrease — a documented deviation (EXPERIMENTS.md,
  // Figure 4). The stable shape is: within 20%, never below single.
  for (const auto& w : *results_) {
    const double one = w.find("1LPx")->counters.l2mpi();
    const double ht = w.find("2LPx")->counters.l2mpi();
    ASSERT_GT(one, 0.0) << w.workload;
    EXPECT_GE(ht, one * 0.95) << w.workload;
    EXPECT_LT(ht, one * 1.20) << w.workload;
  }
}

TEST_F(PaperShapes, Fig4DualPhysicalKeepsPrivateL2Mpi) {
  for (const auto& w : *results_) {
    const double one = w.find("1LPx")->counters.l2mpi();
    const double two = w.find("2PPx")->counters.l2mpi();
    EXPECT_NEAR(two / one, 1.0, 0.15) << w.workload;
  }
}

// --- Table 5: branch frequency ---------------------------------------------

TEST_F(PaperShapes, Table5PentiumMDoublesXeonBranchFrequency) {
  // Netburst uop expansion (~1.9x instructions for the same work)
  // dilutes the Xeon branch fraction to ~half the PM's.
  for (const auto& w : *results_) {
    const double ratio = w.find("1CPm")->counters.branch_frequency() /
                         w.find("1LPx")->counters.branch_frequency();
    EXPECT_GT(ratio, 1.6) << w.workload;
    EXPECT_LT(ratio, 2.4) << w.workload;
  }
}

TEST_F(PaperShapes, Table5BranchFrequencyStableWithinArchitecture) {
  for (const auto& w : *results_) {
    EXPECT_NEAR(w.find("2CPm")->counters.branch_frequency(),
                w.find("1CPm")->counters.branch_frequency(), 2.0)
        << w.workload;
    EXPECT_NEAR(w.find("2LPx")->counters.branch_frequency(),
                w.find("1LPx")->counters.branch_frequency(), 2.0)
        << w.workload;
  }
}

// --- Table 6: branch misprediction ratio -----------------------------------

TEST_F(PaperShapes, Table6HyperThreadingRaisesBrMpr) {
  // Shared predictor tables alias under SMT: 2LPx sits above 1LPx on
  // every workload. (Our increase is +14-19% vs the paper's ~+25% —
  // documented in EXPERIMENTS.md; the ordering is the stable shape.)
  for (const auto& w : *results_) {
    EXPECT_GT(w.find("2LPx")->counters.brmpr(),
              w.find("1LPx")->counters.brmpr() * 1.05)
        << w.workload;
  }
}

TEST_F(PaperShapes, Table6UnitCountAloneLeavesBrMprUnchanged) {
  for (const auto& w : *results_) {
    const double pm1 = w.find("1CPm")->counters.brmpr();
    const double x1 = w.find("1LPx")->counters.brmpr();
    EXPECT_LT(pm1, x1) << w.workload;  // PM predicts better
    EXPECT_NEAR(w.find("2CPm")->counters.brmpr() / pm1, 1.0, 0.15)
        << w.workload;
    EXPECT_NEAR(w.find("2PPx")->counters.brmpr() / x1, 1.0, 0.15)
        << w.workload;
  }
}

}  // namespace
}  // namespace xaon::perf
