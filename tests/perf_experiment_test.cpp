// Integration tests over the experiment runner: small configurations of
// the full paper campaigns, asserting the headline *shapes* (not
// absolute values) hold end to end.

#include "xaon/perf/experiment.hpp"

#include <gtest/gtest.h>

#include "xaon/perf/report.hpp"

namespace xaon::perf {
namespace {

/// Small-but-meaningful config shared by the AON shape tests (real
/// benches use the full per-use-case defaults).
AonExperimentConfig quick_config() {
  AonExperimentConfig config;
  // Per-use-case default message counts (footprints must exceed the L2
  // for the streaming shapes to hold), single measured replay.
  config.messages_per_trace = 0;
  config.warmup_repeats = 1;
  config.measure_repeats = 1;
  return config;
}

class PerfExperiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::vector<WorkloadResults>(
        run_all_aon_experiments(quick_config()));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  static const WorkloadResults& sv() { return (*results_)[0]; }
  static const WorkloadResults& cbr() { return (*results_)[1]; }
  static const WorkloadResults& fr() { return (*results_)[2]; }

  static std::vector<WorkloadResults>* results_;
};

std::vector<WorkloadResults>* PerfExperiment::results_ = nullptr;

TEST_F(PerfExperiment, AllPlatformsPresent) {
  for (const auto& w : *results_) {
    ASSERT_EQ(w.runs.size(), 5u);
    for (const char* n : {"1CPm", "2CPm", "1LPx", "2LPx", "2PPx"}) {
      EXPECT_NE(w.find(n), nullptr) << n;
      EXPECT_GT(w.find(n)->throughput, 0.0) << n;
    }
  }
  EXPECT_EQ(sv().workload, "SV");
  EXPECT_EQ(cbr().workload, "CBR");
  EXPECT_EQ(fr().workload, "FR");
}

TEST_F(PerfExperiment, DualPhysicalScalesNearTwo) {
  for (const auto& w : *results_) {
    const double s = scaling(w, "1LPx", "2PPx");
    EXPECT_GT(s, 1.8) << w.workload;
    EXPECT_LE(s, 2.1) << w.workload;
  }
}

TEST_F(PerfExperiment, HyperThreadingScalesLessThanPhysical) {
  for (const auto& w : *results_) {
    EXPECT_LT(scaling(w, "1LPx", "2LPx"), scaling(w, "1LPx", "2PPx"))
        << w.workload;
  }
}

TEST_F(PerfExperiment, HtScalingFallsWithCpuIntensity) {
  // Paper Fig. 3's reverse trend: SV < FR under Hyper-Threading.
  EXPECT_LT(scaling(sv(), "1LPx", "2LPx"), scaling(fr(), "1LPx", "2LPx"));
}

TEST_F(PerfExperiment, PentiumMOutperformsXeonPerUnit) {
  for (const auto& w : *results_) {
    EXPECT_GT(w.find("1CPm")->throughput, w.find("1LPx")->throughput)
        << w.workload;
    EXPECT_LT(w.find("1CPm")->counters.cpi(),
              w.find("1LPx")->counters.cpi())
        << w.workload;
  }
}

TEST_F(PerfExperiment, BranchFrequencyUopDilution) {
  for (const auto& w : *results_) {
    const double ratio = w.find("1CPm")->counters.branch_frequency() /
                         w.find("1LPx")->counters.branch_frequency();
    EXPECT_GT(ratio, 1.5) << w.workload;
    EXPECT_LT(ratio, 2.5) << w.workload;
  }
}

TEST_F(PerfExperiment, ThroughputSpectrumFrFastest) {
  for (const char* n : {"1CPm", "1LPx"}) {
    EXPECT_GT(fr().find(n)->throughput, cbr().find(n)->throughput) << n;
    EXPECT_GT(cbr().find(n)->throughput, sv().find(n)->throughput) << n;
  }
}

TEST_F(PerfExperiment, ReportTableRendersAllCells) {
  const auto table = metric_table("CPI", *results_, metric_cpi);
  const std::string out = table.render();
  for (const char* n : {"1CPm", "2CPm", "1LPx", "2LPx", "2PPx", "SV",
                        "CBR", "FR"}) {
    EXPECT_NE(out.find(n), std::string::npos) << n;
  }
  const auto chart = metric_chart("CPI", *results_, metric_cpi);
  EXPECT_NE(chart.render().find("1CPm"), std::string::npos);
}

TEST(PerfNetperf, EndToEndSaturatesWire) {
  NetperfExperimentConfig config;
  config.measure_repeats = 1;
  config.iterations_per_trace = 8;
  const auto results = run_netperf_endtoend(config);
  for (const auto& r : results.runs) {
    EXPECT_GT(r.throughput, 900.0) << r.notation;
    EXPECT_LT(r.throughput, 960.0) << r.notation;
  }
  // CPI doubles with an idle second unit.
  EXPECT_NEAR(results.find("2PPx")->counters.cpi() /
                  results.find("1LPx")->counters.cpi(),
              2.0, 0.25);
}

TEST(PerfNetperf, LoopbackShapes) {
  NetperfExperimentConfig config;
  config.measure_repeats = 1;
  config.iterations_per_trace = 12;
  const auto results = run_netperf_loopback(config);
  // Single-to-dual degradation on PM; catastrophic on dual Xeon.
  EXPECT_LT(results.find("2CPm")->throughput,
            results.find("1CPm")->throughput);
  EXPECT_LT(results.find("2PPx")->throughput,
            0.5 * results.find("1LPx")->throughput);
  // 2PPx pays heavily in coherence/bus transactions.
  EXPECT_GT(results.find("2PPx")->counters.coherence_invalidations +
                results.find("2PPx")->counters.bus_transactions,
            results.find("1LPx")->counters.bus_transactions * 2);
}

TEST(PerfScaling, HelperHandlesMissingPlatforms) {
  WorkloadResults empty;
  EXPECT_DOUBLE_EQ(scaling(empty, "1CPm", "2CPm"), 0.0);
}

}  // namespace
}  // namespace xaon::perf
