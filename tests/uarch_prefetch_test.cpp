#include "xaon/uarch/prefetch.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xaon::uarch {
namespace {

PrefetchConfig enabled_config() {
  PrefetchConfig c;
  c.enabled = true;
  c.streams = 4;
  c.degree = 2;
  c.train_hits = 2;
  return c;
}

std::vector<std::uint64_t> observe(StreamPrefetcher& pf,
                                   std::uint64_t line) {
  std::vector<std::uint64_t> out;
  pf.observe(line, &out);
  return out;
}

TEST(Prefetcher, DisabledEmitsNothing) {
  PrefetchConfig c;
  c.enabled = false;
  StreamPrefetcher pf(c);
  for (std::uint64_t l = 0; l < 100; ++l) {
    EXPECT_TRUE(observe(pf, l).empty());
  }
  EXPECT_EQ(pf.stats().issued, 0u);
}

TEST(Prefetcher, TrainsThenIssuesNextLines) {
  StreamPrefetcher pf(enabled_config());
  EXPECT_TRUE(observe(pf, 100).empty());  // allocate
  EXPECT_TRUE(observe(pf, 101).empty());  // confidence 1
  EXPECT_TRUE(observe(pf, 102).empty());  // confidence 2 -> trained
  const auto out = observe(pf, 103);      // live: prefetch ahead
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 104u);
  EXPECT_EQ(out[1], 105u);
  EXPECT_EQ(pf.stats().trained, 1u);
  EXPECT_EQ(pf.stats().issued, 2u);
}

TEST(Prefetcher, DetectsBackwardStride) {
  StreamPrefetcher pf(enabled_config());
  observe(pf, 500);
  observe(pf, 499);
  observe(pf, 498);
  const auto out = observe(pf, 497);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 496u);
  EXPECT_EQ(out[1], 495u);
}

TEST(Prefetcher, DetectsStrideTwo) {
  StreamPrefetcher pf(enabled_config());
  observe(pf, 10);
  observe(pf, 12);
  observe(pf, 14);
  const auto out = observe(pf, 16);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 18u);
  EXPECT_EQ(out[1], 20u);
}

TEST(Prefetcher, RandomAccessesStayQuiet) {
  StreamPrefetcher pf(enabled_config());
  std::uint64_t issued = 0;
  std::uint64_t line = 1;
  for (int i = 0; i < 1000; ++i) {
    line = line * 6364136223846793005ULL + 1442695040888963407ULL;
    issued += observe(pf, line >> 20).size();
  }
  // Far-apart lines never match a stream's +-4 window.
  EXPECT_EQ(issued, 0u);
}

TEST(Prefetcher, TracksMultipleConcurrentStreams) {
  StreamPrefetcher pf(enabled_config());
  // Interleave two sequential streams at distant bases.
  for (int i = 0; i < 3; ++i) {
    observe(pf, 1000 + static_cast<std::uint64_t>(i));
    observe(pf, 9000 + static_cast<std::uint64_t>(i));
  }
  const auto a = observe(pf, 1003);
  const auto b = observe(pf, 9003);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0], 1004u);
  EXPECT_EQ(b[0], 9004u);
}

TEST(Prefetcher, LruStreamReplacement) {
  PrefetchConfig c = enabled_config();
  c.streams = 2;
  StreamPrefetcher pf(c);
  // Train stream A fully.
  observe(pf, 100);
  observe(pf, 101);
  observe(pf, 102);
  EXPECT_FALSE(observe(pf, 103).empty());
  // Two new streams evict A (only 2 slots).
  for (int i = 0; i < 3; ++i) {
    observe(pf, 5000 + static_cast<std::uint64_t>(i) * 1000);
    observe(pf, 9000 + static_cast<std::uint64_t>(i) * 1000);
  }
  // A must retrain before prefetching again.
  EXPECT_TRUE(observe(pf, 104).empty());
}

TEST(Prefetcher, ResetStatsKeepsTraining) {
  StreamPrefetcher pf(enabled_config());
  observe(pf, 1);
  observe(pf, 2);
  observe(pf, 3);
  pf.reset_stats();
  EXPECT_EQ(pf.stats().issued, 0u);
  EXPECT_FALSE(observe(pf, 4).empty());  // stream still live
}

}  // namespace
}  // namespace xaon::uarch
