#include "xaon/util/str.hpp"

#include <gtest/gtest.h>

namespace xaon::util {
namespace {

TEST(Str, IEquals) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_TRUE(iequals("HTTP", "http"));
}

TEST(Str, ToLower) {
  EXPECT_EQ(to_lower("MiXeD 123 _-"), "mixed 123 _-");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Str, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\v\f"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Str, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");

  parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");

  parts = split("x", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "x");
}

TEST(Str, StartsEndsContains) {
  EXPECT_TRUE(starts_with("xmlns:soap", "xmlns:"));
  EXPECT_FALSE(starts_with("xml", "xmlns"));
  EXPECT_TRUE(ends_with("file.xsd", ".xsd"));
  EXPECT_FALSE(ends_with("xsd", ".xsd"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
  EXPECT_FALSE(contains("hello", "world"));
  EXPECT_TRUE(contains("abc", ""));
}

TEST(Str, ParseI64) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("-1"), -1);
  EXPECT_EQ(parse_i64("+42"), 42);
  EXPECT_EQ(parse_i64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());  // overflow
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("-").has_value());
  EXPECT_FALSE(parse_i64("12a").has_value());
  EXPECT_FALSE(parse_i64(" 1").has_value());
}

TEST(Str, ParseU64) {
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_EQ(parse_u64("007"), 7u);
}

TEST(Str, ParseF64) {
  EXPECT_DOUBLE_EQ(parse_f64("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_f64("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_f64("").has_value());
  EXPECT_FALSE(parse_f64("1.2.3").has_value());
  EXPECT_FALSE(parse_f64("abc").has_value());
}

TEST(Str, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace xaon::util
