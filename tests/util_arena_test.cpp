#include "xaon/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace xaon::util {
namespace {

TEST(Arena, AllocateReturnsWritableMemory) {
  Arena arena;
  auto* p = static_cast<char*>(arena.allocate(128));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 128);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0xAB);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.allocate(3, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align;
    }
  }
}

TEST(Arena, MakeConstructsObject) {
  struct Pod {
    int a;
    double b;
  };
  Arena arena;
  Pod* p = arena.make<Pod>(Pod{7, 2.5});
  EXPECT_EQ(p->a, 7);
  EXPECT_DOUBLE_EQ(p->b, 2.5);
}

TEST(Arena, MakeArrayIsDisjoint) {
  Arena arena;
  int* a = arena.make_array<int>(100);
  int* b = arena.make_array<int>(100);
  for (int i = 0; i < 100; ++i) a[i] = i;
  for (int i = 0; i < 100; ++i) b[i] = -i;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], -i);
  }
}

TEST(Arena, LargeAllocationExceedingChunk) {
  Arena arena(1024);  // tiny chunks
  auto* p = static_cast<char*>(arena.allocate(100 * 1024));
  std::memset(p, 1, 100 * 1024);
  EXPECT_GE(arena.bytes_reserved(), 100u * 1024u);
}

TEST(Arena, ManySmallAllocationsSpanChunks) {
  Arena arena(256);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.allocate(16, 8);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer";
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_allocated(), 16000u);
}

TEST(Arena, InternCopiesAndNulTerminates) {
  Arena arena;
  std::string original = "hello world";
  std::string_view v = arena.intern(original);
  original[0] = 'X';  // mutating the source must not affect the copy
  EXPECT_EQ(v, "hello world");
  EXPECT_EQ(v.data()[v.size()], '\0');
}

TEST(Arena, InternEmpty) {
  Arena arena;
  std::string_view v = arena.intern("");
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.data()[0], '\0');
}

TEST(Arena, ResetRetainsCapacityForReuse) {
  Arena arena;
  arena.allocate(1000);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // The chunk survives the reset and the next cycle reuses it without
  // touching the system allocator.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), 1u);
  void* first = arena.allocate(64);
  arena.reset();
  void* second = arena.allocate(64);
  EXPECT_EQ(first, second);
}

TEST(Arena, ResetCoalescesSpilledChunks) {
  Arena arena(256);  // tiny chunks force a spill
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_GT(arena.chunk_count(), 1u);
  arena.reset();
  // After one warm-up cycle the same workload fits in one chunk and
  // reserves nothing new.
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), 1u);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ReleaseFreesEverything) {
  Arena arena;
  arena.allocate(1000);
  arena.release();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);
  // Usable again after release.
  void* p = arena.allocate(64);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a;
  std::string_view v = a.intern("stable");
  Arena b = std::move(a);
  EXPECT_EQ(v, "stable");  // chunk ownership moved, data unchanged
  EXPECT_GT(b.bytes_allocated(), 0u);
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* p = arena.allocate(0);
  void* q = arena.allocate(0);
  EXPECT_NE(p, q);
}

TEST(Arena, OverAlignedAllocations) {
  // Alignments far past alignof(max_align_t) — the arena must honor
  // them even when they exceed the natural chunk start alignment.
  Arena arena(1024);
  for (std::size_t align : {128u, 256u, 4096u}) {
    for (int i = 0; i < 4; ++i) {
      void* p = arena.allocate(8, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align;
      std::memset(p, 0x5A, 8);
    }
  }
}

TEST(Arena, AllocationExactlyAtChunkBoundary) {
  // An allocation that exactly fills the remaining space must succeed
  // in place; the next byte-sized allocation must come from new space,
  // never overlap. Guards add a red zone, so size the filler off the
  // live free space rather than a hard-coded chunk size.
  Arena arena(512, Arena::GuardMode::kOff);
  void* first = arena.allocate(1, 1);
  const std::size_t remaining = arena.bytes_reserved() - 1;
  void* fill = arena.allocate(remaining, 1);
  EXPECT_EQ(static_cast<char*>(fill),
            static_cast<char*>(first) + 1);  // contiguous, kOff layout
  EXPECT_EQ(arena.bytes_allocated(), arena.bytes_reserved());
  void* next = arena.allocate(1, 1);
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_NE(next, nullptr);
}

TEST(Arena, ShrinkOnResetReleasesSpill) {
  Arena arena(256);
  arena.set_shrink_on_reset(true);
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_GT(arena.chunk_count(), 1u);
  arena.reset();
  // All spill chunks went back; the first chunk stays at its original
  // (tiny) size instead of being coalesced into a bigger one.
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), 256u);
  // The trade is explicit: the same workload reserves again.
  for (int i = 0; i < 100; ++i) arena.allocate(64, 8);
  EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(Arena, BytesRetainedTracksUnusedReserve) {
  Arena arena(1024, Arena::GuardMode::kOff);
  EXPECT_EQ(arena.bytes_retained(), 0u);  // nothing reserved yet
  arena.allocate(100, 1);
  EXPECT_EQ(arena.bytes_retained(), arena.bytes_reserved() - 100);
  arena.reset();
  // Right after reset every reserved byte is retained for reuse.
  EXPECT_EQ(arena.bytes_retained(), arena.bytes_reserved());
  arena.release();
  EXPECT_EQ(arena.bytes_retained(), 0u);
}

TEST(Arena, GuardModeDefaultsAndDegrade) {
#if XAON_HAS_ASAN
  EXPECT_EQ(Arena::default_guard_mode(), Arena::GuardMode::kPoison);
#elif !defined(NDEBUG)
  EXPECT_EQ(Arena::default_guard_mode(), Arena::GuardMode::kCanary);
#else
  EXPECT_EQ(Arena::default_guard_mode(), Arena::GuardMode::kOff);
#endif
  // Requesting poisoning without ASan degrades to canaries rather than
  // silently running unguarded.
  Arena arena(1024, Arena::GuardMode::kPoison);
  if (XAON_HAS_ASAN) {
    EXPECT_EQ(arena.guard_mode(), Arena::GuardMode::kPoison);
  } else {
    EXPECT_EQ(arena.guard_mode(), Arena::GuardMode::kCanary);
  }
}

TEST(Arena, CanaryModeCleanCycleSurvivesReset) {
  // Well-behaved allocations must sail through canary verification for
  // many reset cycles (the per-message reuse pattern).
  Arena arena(512, Arena::GuardMode::kCanary);
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      auto* p = static_cast<char*>(arena.allocate(24, 8));
      std::memset(p, cycle, 24);  // write every user byte, only those
    }
    arena.reset();
  }
  std::string_view v = arena.intern("still alive");
  EXPECT_EQ(v, "still alive");
}

}  // namespace
}  // namespace xaon::util
