#include <gtest/gtest.h>

#include <set>

#include "xaon/wload/netperf_traces.hpp"
#include "xaon/wload/synth.hpp"

namespace xaon::wload {
namespace {

TEST(Synth, RespectsOpCount) {
  SynthConfig config;
  config.ops = 12345;
  EXPECT_EQ(make_synthetic_trace(config).size(), 12345u);
}

TEST(Synth, MixMatchesConfiguration) {
  SynthConfig config;
  config.ops = 200'000;
  config.branch_fraction = 0.25;
  config.memory_fraction = 0.40;
  const auto stats = uarch::compute_stats(make_synthetic_trace(config));
  EXPECT_NEAR(stats.branch_fraction(), 0.25, 0.01);
  EXPECT_NEAR(stats.memory_fraction(), 0.40, 0.01);
}

TEST(Synth, DeterministicForSeed) {
  SynthConfig config;
  config.ops = 5000;
  const auto a = make_synthetic_trace(config);
  const auto b = make_synthetic_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].pc, b[i].pc);
  }
  config.seed = 99;
  const auto c = make_synthetic_trace(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].addr != c[i].addr || a[i].kind != c[i].kind) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synth, SequentialPatternStridesThroughWorkingSet) {
  SynthConfig config;
  config.ops = 50'000;
  config.pattern = AddressPattern::kSequential;
  config.working_set_bytes = 4096;
  config.stride_bytes = 64;
  config.memory_fraction = 0.5;
  const auto trace = make_synthetic_trace(config);
  std::set<std::uint64_t> addrs;
  for (const auto& op : trace) {
    if (op.kind == uarch::OpKind::kLoad ||
        op.kind == uarch::OpKind::kStore) {
      EXPECT_GE(op.addr, config.data_base);
      EXPECT_LT(op.addr, config.data_base + 4096);
      addrs.insert(op.addr);
    }
  }
  EXPECT_EQ(addrs.size(), 64u);  // 4096/64 distinct strided addresses
}

TEST(Synth, ZipfConcentratesAccesses) {
  SynthConfig config;
  config.ops = 100'000;
  config.pattern = AddressPattern::kZipf;
  config.working_set_bytes = 1 << 20;
  config.memory_fraction = 0.5;
  const auto trace = make_synthetic_trace(config);
  std::map<std::uint64_t, int> hist;
  std::uint64_t mem_ops = 0;
  for (const auto& op : trace) {
    if (op.kind == uarch::OpKind::kLoad ||
        op.kind == uarch::OpKind::kStore) {
      ++hist[op.addr / 64];
      ++mem_ops;
    }
  }
  // The hottest 5% of touched lines should carry well over 5% of
  // accesses (strong skew by construction).
  std::vector<int> counts;
  for (const auto& [line, n] : hist) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t hot = 0;
  for (std::size_t i = 0; i < counts.size() / 20; ++i) {
    hot += static_cast<std::uint64_t>(counts[i]);
  }
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(mem_ops), 0.3);
}

TEST(NetperfTraces, BytesAccounting) {
  NetperfTraceConfig config;
  config.buffer_bytes = 16 * 1024;
  config.iterations = 8;
  EXPECT_EQ(netperf_trace_bytes(config), 8u * 16u * 1024u);
}

TEST(NetperfTraces, SenderReceiverShareRingAddresses) {
  NetperfTraceConfig config;
  config.iterations = 2;
  const auto sender = make_netperf_sender_trace(config);
  const auto receiver = make_netperf_receiver_trace(config);
  std::set<std::uint64_t> ring_writes, ring_reads;
  const std::uint64_t ring_lo = config.socket_ring_base;
  const std::uint64_t ring_hi = ring_lo + config.socket_ring_bytes;
  for (const auto& op : sender) {
    if (op.kind == uarch::OpKind::kStore && op.addr >= ring_lo &&
        op.addr < ring_hi) {
      ring_writes.insert(op.addr);
    }
  }
  for (const auto& op : receiver) {
    if (op.kind == uarch::OpKind::kLoad && op.addr >= ring_lo &&
        op.addr < ring_hi) {
      ring_reads.insert(op.addr);
    }
  }
  EXPECT_FALSE(ring_writes.empty());
  // Every byte the receiver reads was written by the sender — the
  // producer/consumer coupling behind the 2PPx loopback collapse.
  EXPECT_EQ(ring_writes, ring_reads);
}

TEST(NetperfTraces, CopyDominatedMix) {
  NetperfTraceConfig config;
  config.iterations = 4;
  const auto stats =
      uarch::compute_stats(make_netperf_sender_trace(config));
  EXPECT_GT(stats.memory_fraction(), 0.4);
  EXPECT_GT(stats.branch_fraction(), 0.25);
  EXPECT_LT(stats.branch_fraction(), 0.45);
}

TEST(NetperfTraces, TimesharedCoversBothRoles) {
  NetperfTraceConfig config;
  config.iterations = 2;
  const auto combined =
      make_netperf_loopback_timeshared_trace(config);
  const auto sender = make_netperf_sender_trace(config);
  const auto receiver = make_netperf_receiver_trace(config);
  EXPECT_EQ(combined.size(), sender.size() + receiver.size());
}

TEST(NetperfTraces, SenderAndReceiverShareKernelCode) {
  NetperfTraceConfig config;
  config.iterations = 1;
  const auto sender = make_netperf_sender_trace(config);
  const auto receiver = make_netperf_receiver_trace(config);
  auto code_range = [&](const uarch::Trace& t) {
    std::pair<std::uint64_t, std::uint64_t> range{~0ull, 0};
    for (const auto& op : t) {
      range.first = std::min(range.first, op.pc);
      range.second = std::max(range.second, op.pc);
    }
    return range;
  };
  const auto s = code_range(sender);
  const auto r = code_range(receiver);
  // Same kernel text: overlapping pc ranges.
  EXPECT_LT(std::max(s.first, r.first), std::min(s.second, r.second));
}

}  // namespace
}  // namespace xaon::wload
