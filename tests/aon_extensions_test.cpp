// Tests for the future-work use cases (paper §6: deep packet
// inspection and crypto functions).

#include <gtest/gtest.h>

#include "xaon/aon/capture.hpp"
#include "xaon/aon/messages.hpp"
#include "xaon/aon/pipeline.hpp"
#include "xaon/crypto/sha1.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/xsd/regex.hpp"

namespace xaon::aon {
namespace {

TEST(RegexSearch, FindsSubstrings) {
  auto re = xsd::Regex::compile("<script");
  EXPECT_TRUE(re.search("abc<script>alert(1)</script>"));
  EXPECT_TRUE(re.search("<script"));
  EXPECT_FALSE(re.search("scriptless"));
  EXPECT_FALSE(re.search(""));
}

TEST(RegexSearch, PatternAtEveryPosition) {
  auto re = xsd::Regex::compile("\\d{3}");
  EXPECT_TRUE(re.search("abc123def"));
  EXPECT_TRUE(re.search("123"));
  EXPECT_TRUE(re.search("ab12cd345"));
  EXPECT_FALSE(re.search("ab12cd45"));
}

TEST(RegexSearch, AnchoredMatchUnaffected) {
  auto re = xsd::Regex::compile("\\d{3}");
  EXPECT_FALSE(re.match("abc123def"));  // match() stays whole-string
  EXPECT_TRUE(re.match("123"));
}

TEST(Dpi, CleanMessagePassesThrough) {
  Pipeline dpi(UseCase::kDeepInspection);
  const auto out = dpi.process_wire(make_post_wire());
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.routed_primary) << out.detail;
  EXPECT_EQ(out.detail, "clean");
}

TEST(Dpi, SignatureHitsRouteToError) {
  Pipeline dpi(UseCase::kDeepInspection);
  struct Case {
    const char* name;
    const char* payload;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"xxe", "<order><!ENTITY x SYSTEM 'file:///x'></order>"},
           {"script", "<order><note><script>x</script></note></order>"},
           {"sqli", "<order><customer>' UNION SELECT * FROM t</customer></order>"},
           {"traversal", "<order><file>../../../../etc/shadow</file></order>"},
           {"passwd", "<order><p>/etc/passwd</p></order>"}}) {
    const auto out =
        dpi.process(make_post_request(c.payload));
    EXPECT_TRUE(out.ok) << c.name;
    EXPECT_FALSE(out.routed_primary) << c.name;
    EXPECT_NE(out.detail.find("signature match"), std::string::npos)
        << c.name;
  }
}

TEST(Dpi, DefaultSignaturesAllCompile) {
  for (const std::string& pattern : default_dpi_signatures()) {
    std::string error;
    EXPECT_TRUE(xsd::Regex::compile(pattern, &error).valid())
        << pattern << ": " << error;
  }
  EXPECT_GE(default_dpi_signatures().size(), 6u);
}

TEST(Sec, UnsignedMessagesGetSigned) {
  Pipeline sec(UseCase::kMessageSecurity);
  const auto out = sec.process_wire(make_post_wire());
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.routed_primary);
  EXPECT_EQ(out.detail, "signed outbound");
  // The forwarded request carries the signature header.
  http::RequestParser parser;
  parser.feed(out.forwarded_wire);
  ASSERT_TRUE(parser.done());
  auto sig = parser.request().headers.get(kSignatureHeader);
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->size(), 40u);  // hex SHA-1
}

TEST(Sec, ValidSignatureVerifies) {
  Pipeline sec(UseCase::kMessageSecurity);
  // Sign once through the gateway, replay the signed request: verifies.
  const auto first = sec.process_wire(make_post_wire());
  const auto second = sec.process_wire(first.forwarded_wire);
  EXPECT_TRUE(second.ok);
  EXPECT_TRUE(second.routed_primary);
  EXPECT_EQ(second.detail, "signature verified");
}

TEST(Sec, TamperedBodyRejected) {
  Pipeline sec(UseCase::kMessageSecurity);
  const auto signed_out = sec.process_wire(make_post_wire());
  // Flip one body byte of the signed request.
  std::string tampered = signed_out.forwarded_wire;
  tampered[tampered.size() - 10] ^= 1;
  const auto out = sec.process_wire(tampered);
  EXPECT_FALSE(out.routed_primary);
  EXPECT_EQ(out.response.status, 403);
}

TEST(Sec, WrongSignatureRejected) {
  Pipeline sec(UseCase::kMessageSecurity);
  http::Request req = make_post_request(make_order_message());
  req.headers.add(kSignatureHeader, std::string(40, '0'));
  const auto out = sec.process(req);
  EXPECT_FALSE(out.routed_primary);
  EXPECT_EQ(out.response.status, 403);
}

TEST(ExtensionCapture, TracesForNewUseCases) {
  CaptureConfig config;
  config.messages = 4;
  for (const auto use_case :
       {UseCase::kDeepInspection, UseCase::kMessageSecurity}) {
    const uarch::Trace trace = capture_use_case_trace(use_case, config);
    EXPECT_GT(trace.size(), 1000u) << use_case_notation(use_case);
    // New use cases run on every platform model.
    uarch::System system(uarch::platform_2lpx());
    const auto result = system.run({&trace});
    EXPECT_GT(result.total.cpi(), 0.0);
  }
}

TEST(ExtensionCapture, SecIsCryptoDense) {
  // SEC sweeps every byte through SHA-1 rounds: more branch-per-byte
  // work than plain proxying.
  CaptureConfig config;
  config.messages = 4;
  config.compute_expansion = 0;
  const auto fr =
      capture_use_case_trace(UseCase::kForwardRequest, config);
  const auto sec =
      capture_use_case_trace(UseCase::kMessageSecurity, config);
  EXPECT_GT(sec.size(), fr.size());
}

}  // namespace
}  // namespace xaon::aon
