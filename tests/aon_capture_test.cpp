#include "xaon/aon/capture.hpp"

#include <gtest/gtest.h>

#include <set>

#include "xaon/uarch/system.hpp"

namespace xaon::aon {
namespace {

CaptureConfig small_capture() {
  CaptureConfig config;
  config.messages = 4;
  return config;
}

TEST(Capture, ProducesNonEmptyTraces) {
  for (const auto use_case :
       {UseCase::kForwardRequest, UseCase::kContentBasedRouting,
        UseCase::kSchemaValidation}) {
    const uarch::Trace trace =
        capture_use_case_trace(use_case, small_capture());
    EXPECT_GT(trace.size(), 1000u) << use_case_notation(use_case);
  }
}

TEST(Capture, ControlFlowDeterministic) {
  // Two captures of the same spec execute the same instruction stream
  // (same ops, pcs, branch outcomes). Data addresses may differ at page
  // granularity — the host allocator's recycling order is part of the
  // environment — but the layout *within* a run is what the simulator
  // consumes, and whole processes (the benches) are reproducible.
  const auto a = capture_use_case_trace(UseCase::kContentBasedRouting,
                                        small_capture());
  const auto b = capture_use_case_trace(UseCase::kContentBasedRouting,
                                        small_capture());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].pc, b[i].pc) << i;
    EXPECT_EQ(a[i].taken, b[i].taken) << i;
  }
}

TEST(Capture, CpuIntensityOrdering) {
  // Ops per message: SV > CBR > FR — the paper's workload spectrum.
  const auto fr =
      capture_use_case_trace(UseCase::kForwardRequest, small_capture());
  const auto cbr = capture_use_case_trace(UseCase::kContentBasedRouting,
                                          small_capture());
  const auto sv = capture_use_case_trace(UseCase::kSchemaValidation,
                                         small_capture());
  EXPECT_GT(cbr.size(), fr.size());
  EXPECT_GT(sv.size(), cbr.size());
}

TEST(Capture, DistinctDataBasesDisjointHeaps) {
  CaptureConfig a = small_capture();
  CaptureConfig b = small_capture();
  a.compute_expansion = 0;  // the warm table region is shared by design
  b.compute_expansion = 0;
  b.data_base = 0x5000'0000;
  const auto ta = capture_use_case_trace(UseCase::kForwardRequest, a);
  const auto tb = capture_use_case_trace(UseCase::kForwardRequest, b);
  auto data_lines = [](const uarch::Trace& t) {
    std::set<std::uint64_t> lines;
    for (const auto& op : t) {
      if (op.kind == uarch::OpKind::kLoad ||
          op.kind == uarch::OpKind::kStore) {
        lines.insert(op.addr / 64);
      }
    }
    return lines;
  };
  const auto la = data_lines(ta);
  const auto lb = data_lines(tb);
  std::size_t overlap = 0;
  for (std::uint64_t line : la) overlap += lb.count(line);
  // FR has no shared warm set: heaps must be fully disjoint.
  EXPECT_EQ(overlap, 0u);
}

TEST(Capture, FreshPagesPerMessage) {
  // Message data is never recycled: more messages => proportionally
  // more distinct pages. (Expansion off: its hot/warm tables are a
  // fixed-size overlay.)
  CaptureConfig four = small_capture();
  CaptureConfig eight = small_capture();
  four.compute_expansion = 0;
  eight.compute_expansion = 0;
  eight.messages = 8;
  auto pages = [](const uarch::Trace& t) {
    std::set<std::uint64_t> p;
    for (const auto& op : t) {
      if (op.kind == uarch::OpKind::kLoad ||
          op.kind == uarch::OpKind::kStore) {
        p.insert(op.addr >> 12);
      }
    }
    return p.size();
  };
  const auto p4 =
      pages(capture_use_case_trace(UseCase::kForwardRequest, four));
  const auto p8 =
      pages(capture_use_case_trace(UseCase::kForwardRequest, eight));
  EXPECT_GT(p8, p4 + p4 / 2);
}

TEST(Capture, DefaultsFollowUseCase) {
  EXPECT_LT(default_code_footprint(UseCase::kForwardRequest),
            default_code_footprint(UseCase::kSchemaValidation));
  EXPECT_LT(default_compute_expansion(UseCase::kForwardRequest),
            default_compute_expansion(UseCase::kSchemaValidation));
  EXPECT_GT(default_messages(UseCase::kForwardRequest),
            default_messages(UseCase::kSchemaValidation));
}

TEST(Capture, TraceRunsOnEveryPlatform) {
  const auto trace =
      capture_use_case_trace(UseCase::kContentBasedRouting, small_capture());
  for (const auto& platform : uarch::all_platforms()) {
    uarch::System system(platform);
    const auto result = system.run({&trace});
    EXPECT_EQ(result.total.ops, trace.size()) << platform.notation;
    EXPECT_GT(result.total.cpi(), 0.0) << platform.notation;
  }
}

}  // namespace
}  // namespace xaon::aon
