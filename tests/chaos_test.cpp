// Chaos harness: replays seeded fault schedules — mutated messages
// (truncated / corrupted / oversized / deeply-nested / garbage), faulty
// downstreams and faulty links — across FR/CBR/SV and asserts the
// failure-model invariants:
//
//   * every message gets exactly one response
//     (status_2xx + status_4xx + status_5xx == messages),
//   * no crash (and no leak under the sanitize preset),
//   * same seed => bit-identical outcome counts, regardless of worker
//     interleaving (downstream verdicts are pure functions of the wire
//     bytes),
//   * the non-fault path stays allocation-free at steady state even
//     after hostile messages have been through the same scratch.

#define XAON_ALLOC_COUNT_INTERPOSE
#include "../bench/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/netsim/link.hpp"
#include "xaon/netsim/netperf.hpp"
#include "xaon/util/fault.hpp"

namespace xaon::aon {
namespace {

// --- seeded message mutations ------------------------------------------

enum class Mutation : std::uint8_t {
  kNone = 0,
  kTruncate,
  kCorruptByte,
  kOversizeLength,
  kDeepNest,
  kGarbage,
  kCount,
};

std::string deep_nest_wire(std::size_t depth) {
  std::string body;
  body.reserve(depth * 7 + 16);
  for (std::size_t i = 0; i < depth; ++i) body += "<a>";
  body += "x";
  for (std::size_t i = 0; i < depth; ++i) body += "</a>";
  return http::write_request(make_post_request(std::move(body)));
}

std::string mutate(const std::string& wire, Mutation mutation,
                   util::Xoshiro256ss& rng) {
  switch (mutation) {
    case Mutation::kNone:
    case Mutation::kCount:
      return wire;
    case Mutation::kTruncate: {
      // Cut anywhere, including mid-headers.
      const std::size_t keep = rng.next() % wire.size();
      return wire.substr(0, keep);
    }
    case Mutation::kCorruptByte: {
      std::string out = wire;
      const std::size_t at = rng.next() % out.size();
      out[at] = static_cast<char>(out[at] ^
                                  static_cast<char>(1 + rng.next() % 255));
      return out;
    }
    case Mutation::kOversizeLength: {
      // Claim a body far beyond the parser's 16 MiB cap.
      const std::size_t at = wire.find("Content-Length:");
      if (at == std::string::npos) return wire;
      const std::size_t eol = wire.find("\r\n", at);
      return wire.substr(0, at) + "Content-Length: 99999999999" +
             wire.substr(eol);
    }
    case Mutation::kDeepNest:
      return deep_nest_wire(2'000 + rng.next() % 1'000);
    case Mutation::kGarbage: {
      std::string out(64 + rng.next() % 512, '\0');
      for (char& c : out) c = static_cast<char>(rng.next() & 0xFF);
      return out;
    }
  }
  return wire;
}

/// Builds the seeded chaos corpus: clean AONBench wires interleaved with
/// every mutation class, all decisions drawn from one injector stream.
std::vector<std::string> chaos_corpus(std::uint64_t seed,
                                      std::size_t count) {
  util::FaultRates rates;
  rates.drop = 0.05;     // -> truncate
  rates.corrupt = 0.10;  // -> corrupt byte / garbage
  rates.delay = 0.05;    // -> oversize length
  rates.reorder = 0.05;  // -> deep nesting
  util::FaultInjector injector(rates, seed);

  std::vector<std::string> base;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    MessageSpec spec;
    spec.seed = s;
    spec.quantity = static_cast<std::uint32_t>(s % 2) + 1;
    base.push_back(make_post_wire(spec));
  }

  std::vector<std::string> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& wire = base[i % base.size()];
    Mutation mutation = Mutation::kNone;
    switch (injector.next()) {
      case util::FaultKind::kNone: break;
      case util::FaultKind::kDrop: mutation = Mutation::kTruncate; break;
      case util::FaultKind::kCorrupt:
        mutation = (injector.rng().next() & 1) ? Mutation::kCorruptByte
                                               : Mutation::kGarbage;
        break;
      case util::FaultKind::kDelay:
        mutation = Mutation::kOversizeLength;
        break;
      case util::FaultKind::kReorder: mutation = Mutation::kDeepNest; break;
    }
    corpus.push_back(mutate(wire, mutation, injector.rng()));
  }
  return corpus;
}

// --- faulty downstream ---------------------------------------------------

/// Verdict is a pure function of the wire bytes (plus the seed), so the
/// outcome of every message is independent of which worker handles it or
/// in what order — the requirement for bit-identical chaos runs on a
/// multi-threaded server.
class HashVerdictDownstream : public Downstream {
 public:
  explicit HashVerdictDownstream(std::uint64_t seed) : seed_(seed) {}

  SendStatus send(std::string_view wire) override {
    std::uint64_t h = 1469598103934665603ull ^ seed_;
    for (char c : wire) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    const std::uint64_t roll = h % 100;
    if (roll < 5) return SendStatus::kBusy;
    if (roll < 10) return SendStatus::kFail;
    return SendStatus::kAck;
  }

 private:
  std::uint64_t seed_;
};

// --- the harness ---------------------------------------------------------

constexpr std::uint64_t kChaosSeed = 0xC4A05;
constexpr std::uint64_t kMessagesPerCase = 10'000;

LoadResult run_chaos(UseCase use_case, std::uint64_t seed,
                     std::size_t workers = 4) {
  const std::vector<std::string> corpus = chaos_corpus(seed, 256);
  HashVerdictDownstream downstream(seed);
  ServerConfig config;
  config.use_case = use_case;
  config.workers = workers;
  config.queue_capacity = 64;  // keep backpressure in play
  config.downstream = &downstream;
  config.forward.max_attempts = 2;
  config.forward.backoff_pauses = 1;
  Server server(config);
  return server.run_load(corpus, kMessagesPerCase);
}

struct Counts {
  std::uint64_t messages, primary, error, failed;
  std::uint64_t s2, s4, s5, retries, fwd_fail, shed;
  bool operator==(const Counts&) const = default;
};

Counts counts_of(const LoadResult& r) {
  return Counts{r.messages,     r.routed_primary,   r.routed_error,
                r.failed,       r.status_2xx,       r.status_4xx,
                r.status_5xx,   r.forward_retries,  r.forward_failures,
                r.forward_shed};
}

class ChaosTest : public ::testing::TestWithParam<UseCase> {};

TEST_P(ChaosTest, EveryMessageGetsExactlyOneResponse) {
  const LoadResult r = run_chaos(GetParam(), kChaosSeed);
  EXPECT_EQ(r.messages, kMessagesPerCase);
  EXPECT_EQ(r.status_2xx + r.status_4xx + r.status_5xx, r.messages);
  // The corpus contains faults, and they were classified, not crashed on.
  EXPECT_GT(r.failed, 0u);
  EXPECT_GT(r.status_5xx, 0u);  // the downstream misbehaved too
  EXPECT_GT(r.status_2xx, 0u);  // and clean traffic still flowed
}

TEST_P(ChaosTest, SameSeedBitIdenticalOutcomeCounts) {
  const Counts first = counts_of(run_chaos(GetParam(), kChaosSeed));
  const Counts again = counts_of(run_chaos(GetParam(), kChaosSeed));
  EXPECT_EQ(first, again);
  // Worker count must not change outcomes either — verdicts are
  // per-message, not per-thread.
  const Counts serial =
      counts_of(run_chaos(GetParam(), kChaosSeed, /*workers=*/1));
  EXPECT_EQ(first, serial);
}

INSTANTIATE_TEST_SUITE_P(UseCases, ChaosTest,
                         ::testing::Values(UseCase::kForwardRequest,
                                           UseCase::kContentBasedRouting,
                                           UseCase::kSchemaValidation),
                         [](const auto& info) {
                           return std::string(use_case_notation(info.param));
                         });

TEST(Chaos, DifferentSeedsProduceDifferentSchedules) {
  EXPECT_NE(chaos_corpus(1, 256), chaos_corpus(2, 256));
}

TEST(Chaos, LinkFaultScheduleReplaysBitIdentically) {
  auto run_once = [] {
    netsim::LinkConfig cfg = netsim::Link::gigabit_ethernet();
    cfg.faults.drop = 0.02;
    cfg.faults.corrupt = 0.02;
    cfg.faults.delay = 0.05;
    cfg.faults.reorder = 0.02;
    cfg.loss_seed = kChaosSeed;
    return netsim::run_tcp_stream(cfg, netsim::TcpConfig{},
                                  4 * 1024 * 1024);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.bytes_delivered, 4u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(a.goodput_mbps, b.goodput_mbps);
}

TEST(Chaos, NonFaultPathStaysAllocationFreeAfterFaults) {
  // Hostile messages may allocate (error strings, oversized buffers);
  // the invariant is that afterwards the same scratch still processes
  // clean traffic without touching the heap.
  const std::vector<std::string> corpus = chaos_corpus(kChaosSeed, 256);
  std::vector<std::string> clean;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    MessageSpec spec;
    spec.seed = s;
    clean.push_back(make_post_wire(spec));
  }
  Pipeline pipeline(UseCase::kForwardRequest);
  Pipeline::ProcessScratch scratch;
  for (int rep = 0; rep < 2; ++rep) {
    for (const std::string& wire : corpus) {
      (void)pipeline.process_wire(wire, scratch);
    }
    for (const std::string& wire : clean) {
      const Pipeline::Outcome& out = pipeline.process_wire(wire, scratch);
      EXPECT_TRUE(out.ok) << out.detail;
    }
  }
  bench::reset_alloc_counter();
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::string& wire : clean) {
      (void)pipeline.process_wire(wire, scratch);
    }
  }
  EXPECT_EQ(bench::alloc_count(), 0u);
}

}  // namespace
}  // namespace xaon::aon
