#include "xaon/uarch/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "xaon/wload/synth.hpp"

namespace xaon::uarch {
namespace {

Trace sample_trace() {
  wload::SynthConfig config;
  config.ops = 5000;
  return make_synthetic_trace(config);
}

TEST(TraceIo, RoundTripThroughStream) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(original, buffer));
  const auto loaded = load_trace(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.trace.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.trace[i].pc, original[i].pc) << i;
    EXPECT_EQ(loaded.trace[i].addr, original[i].addr) << i;
    EXPECT_EQ(loaded.trace[i].kind, original[i].kind) << i;
    EXPECT_EQ(loaded.trace[i].size, original[i].size) << i;
    EXPECT_EQ(loaded.trace[i].taken, original[i].taken) << i;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(Trace{}, buffer));
  const auto loaded = load_trace(buffer);
  ASSERT_TRUE(loaded.ok);
  EXPECT_TRUE(loaded.trace.empty());
}

TEST(TraceIo, RoundTripThroughFile) {
  const Trace original = sample_trace();
  const std::string path = "/tmp/xaon_trace_io_test.trc";
  ASSERT_TRUE(save_trace(original, path));
  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.trace.size(), original.size());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTATRACE-FILE-AT-ALL";
  const auto loaded = load_trace(buffer);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("magic"), std::string::npos);
}

TEST(TraceIo, RejectsTruncatedFile) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(original, buffer));
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  const auto loaded = load_trace(truncated);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("truncated"), std::string::npos);
  EXPECT_TRUE(loaded.trace.empty());  // never partial
}

TEST(TraceIo, RejectsCorruptOpKind) {
  Trace one;
  one.push_back(Op{});
  std::stringstream buffer;
  ASSERT_TRUE(save_trace(one, buffer));
  std::string bytes = buffer.str();
  bytes[bytes.size() - 8] = 0x7F;  // kind byte of the only record
  std::stringstream corrupt(bytes);
  const auto loaded = load_trace(corrupt);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("kind"), std::string::npos);
}

TEST(TraceIo, RejectsImplausibleCount) {
  std::stringstream buffer;
  buffer.write(kTraceMagic, sizeof(kTraceMagic));
  for (int i = 0; i < 8; ++i) buffer.put(static_cast<char>(0xFF));
  const auto loaded = load_trace(buffer);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("implausible"), std::string::npos);
}

TEST(TraceIo, MissingFileFailsGracefully) {
  const auto loaded = load_trace("/nonexistent/path/trace.trc");
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace xaon::uarch
