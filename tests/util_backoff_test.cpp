#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <optional>

#include "xaon/util/backoff.hpp"
#include "xaon/util/spsc_queue.hpp"

namespace xaon::util {
namespace {

// ---------------------------------------------------------------------------
// Backoff: spin -> yield -> sleep phase transitions at exact boundaries.
// The spin phase issues exponentially growing PAUSE bursts totalling
// kSpinLimit pauses across ceil(log2(kSpinLimit)) + 1 calls, then yields
// kYieldLimit times, then every further call sleeps kSleep.

// Number of pause() calls that exhausts the spin phase: bursts are
// 1, 1, 2, 4, ..., kSpinLimit/2 (the counter doubles from 1).
std::size_t spin_phase_calls() {
  std::size_t calls = 1;  // first call: counter 0 -> 1
  for (std::uint32_t c = 1; c < Backoff::kSpinLimit; c *= 2) ++calls;
  return calls;
}

TEST(Backoff, StartsInSpinPhase) {
  Backoff b;
  EXPECT_EQ(b.phase(), Backoff::Phase::kSpin);
}

TEST(Backoff, SpinToYieldBoundaryIsExact) {
  Backoff b;
  const std::size_t calls = spin_phase_calls();
  for (std::size_t i = 0; i < calls; ++i) {
    ASSERT_EQ(b.phase(), Backoff::Phase::kSpin) << "call " << i;
    b.pause();
  }
  // The spin budget is now exactly exhausted: next call yields.
  EXPECT_EQ(b.phase(), Backoff::Phase::kYield);
}

TEST(Backoff, YieldToSleepBoundaryIsExact) {
  Backoff b;
  for (std::size_t i = 0; i < spin_phase_calls(); ++i) b.pause();
  for (std::uint32_t i = 0; i < Backoff::kYieldLimit; ++i) {
    ASSERT_EQ(b.phase(), Backoff::Phase::kYield) << "yield " << i;
    b.pause();
  }
  EXPECT_EQ(b.phase(), Backoff::Phase::kSleep);
}

TEST(Backoff, SleepPhaseIsTerminalUntilReset) {
  Backoff b;
  for (std::size_t i = 0; i < spin_phase_calls(); ++i) b.pause();
  for (std::uint32_t i = 0; i < Backoff::kYieldLimit; ++i) b.pause();
  ASSERT_EQ(b.phase(), Backoff::Phase::kSleep);
  const auto t0 = std::chrono::steady_clock::now();
  b.pause();  // must actually sleep (bounded, >= kSleep)
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(dt, Backoff::kSleep);
  EXPECT_EQ(b.phase(), Backoff::Phase::kSleep);  // stays terminal
}

TEST(Backoff, ResetReturnsToSpinFromEveryPhase) {
  Backoff b;
  b.pause();
  b.reset();
  EXPECT_EQ(b.phase(), Backoff::Phase::kSpin);

  for (std::size_t i = 0; i < spin_phase_calls(); ++i) b.pause();
  ASSERT_EQ(b.phase(), Backoff::Phase::kYield);
  b.reset();
  EXPECT_EQ(b.phase(), Backoff::Phase::kSpin);

  for (std::size_t i = 0; i < spin_phase_calls(); ++i) b.pause();
  for (std::uint32_t i = 0; i < Backoff::kYieldLimit; ++i) b.pause();
  ASSERT_EQ(b.phase(), Backoff::Phase::kSleep);
  b.reset();
  EXPECT_EQ(b.phase(), Backoff::Phase::kSpin);
}

// ---------------------------------------------------------------------------
// SpscQueue wraparound at capacity boundaries: single-threaded edge
// cases the model checker's two-thread schedules don't isolate
// (tests/model covers interleavings; this covers the index arithmetic).

TEST(SpscQueueWrap, CapacityRoundsUpToPowerOfTwoMinusOne) {
  // One slot is kept empty: ring size is the next power of two that
  // fits capacity+1 elements; usable slots = ring - 1 = capacity().
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 3u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 3u);
  EXPECT_EQ(SpscQueue<int>(4).capacity(), 7u);
  EXPECT_EQ(SpscQueue<int>(7).capacity(), 7u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 15u);
}

TEST(SpscQueueWrap, FillDrainCyclesCrossTheMaskBoundary) {
  SpscQueue<int> q(3);  // ring of 4, mask 3
  int next = 0;
  // 10 full fill/drain cycles walk the indices across the wrap point
  // (index 3 -> 0) many times; FIFO must hold on every cycle.
  for (int cycle = 0; cycle < 10; ++cycle) {
    int pushed = 0;
    while (q.try_push(next + pushed)) ++pushed;
    ASSERT_EQ(pushed, 3) << "cycle " << cycle;
    for (int i = 0; i < pushed; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next + i);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.try_pop().has_value());
    next += pushed;
  }
}

TEST(SpscQueueWrap, SteadyStateOffsetOneStraddlesWrap) {
  // Keep exactly one element in flight while the indices walk the whole
  // ring twice: every relative position of head/tail to the wrap
  // boundary occurs, including head==0/tail==mask.
  SpscQueue<int> q(1);  // ring of 2, mask 1 — tightest possible ring
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_push(i));
    ASSERT_FALSE(q.try_push(i));  // full at every step
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
    EXPECT_TRUE(q.empty());
  }
}

TEST(SpscQueueWrap, FullQueueRejectsExactlyAtCapacity) {
  SpscQueue<int> q(4);  // ring of 8, usable 7
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(7));
  // Free exactly one slot: exactly one push fits again.
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(SpscQueueWrap, DebugIndicesWrapModuloRingSize) {
  SpscQueue<int> q(1);  // ring of 2
  EXPECT_EQ(q.debug_head(), 0u);
  EXPECT_EQ(q.debug_tail(), 0u);
  q.try_push(1);
  EXPECT_EQ(q.debug_head(), 1u);
  q.try_pop();
  EXPECT_EQ(q.debug_tail(), 1u);
  q.try_push(2);
  EXPECT_EQ(q.debug_head(), 0u);  // wrapped
  q.try_pop();
  EXPECT_EQ(q.debug_tail(), 0u);  // wrapped
}

TEST(SpscQueueWrap, PushWaitSucceedsImmediatelyWithFreeSlot) {
  SpscQueue<int> q(2);
  q.push_wait(1);  // must not block
  q.push_wait(2);
  auto a = q.try_pop();
  auto b = q.try_pop();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(SpscQueueWrap, PopWaitReturnsNulloptWhenStoppedAndDrained) {
  SpscQueue<int> q(2);
  q.try_push(42);
  // stop() already true: pop_wait must still deliver the queued item
  // first (drain-before-exit contract), then report end-of-stream.
  auto stop = [] { return true; };
  auto v = q.pop_wait(stop);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(q.pop_wait(stop).has_value());
}

}  // namespace
}  // namespace xaon::util
