#include "xaon/crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xaon::crypto {
namespace {

std::string hex_of(std::string_view data) {
  return to_hex(Sha1::hash(data));
}

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, Rfc3174Vectors) {
  EXPECT_EQ(hex_of("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(hex_of(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  EXPECT_EQ(to_hex(sha.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingEqualsOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(hex_of(data), "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
  // Split at every position: identical digest.
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha1 sha;
    sha.update(std::string_view(data).substr(0, split));
    sha.update(std::string_view(data).substr(split));
    EXPECT_EQ(to_hex(sha.finish()),
              "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12")
        << "split at " << split;
  }
}

TEST(Sha1, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and 56-byte padding boundary.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string data(n, 'x');
    Sha1 a;
    a.update(data);
    const auto one = a.finish();
    Sha1 b;
    for (char c : data) b.update(std::string_view(&c, 1));
    EXPECT_EQ(to_hex(one), to_hex(b.finish())) << n;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 sha;
  sha.update("first");
  (void)sha.finish();
  sha.reset();
  sha.update("abc");
  EXPECT_EQ(to_hex(sha.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// RFC 2202 HMAC-SHA1 test vectors.
TEST(HmacSha1, Rfc2202Vectors) {
  EXPECT_EQ(to_hex(hmac_sha1(std::string(20, '\x0b'), "Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(to_hex(hmac_sha1("Jefe", "what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  EXPECT_EQ(to_hex(hmac_sha1(std::string(20, '\xaa'),
                             std::string(50, '\xdd'))),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
  // Key longer than one block (RFC 2202 case 6).
  EXPECT_EQ(to_hex(hmac_sha1(
                std::string(80, '\xaa'),
                "Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, KeySensitivity) {
  const auto a = hmac_sha1("key-a", "message");
  const auto b = hmac_sha1("key-b", "message");
  EXPECT_NE(to_hex(a), to_hex(b));
}

TEST(Digest, ConstantTimeEqual) {
  const auto a = Sha1::hash("x");
  auto b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[19] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Digest, HexFormat) {
  const auto d = Sha1::hash("abc");
  const std::string hex = to_hex(d);
  EXPECT_EQ(hex.size(), 40u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace xaon::crypto
