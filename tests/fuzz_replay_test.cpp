// Replays the checked-in fuzz corpus (tests/corpus/) through the same
// entry points the libFuzzer harnesses use (fuzz/targets.hpp), so the
// hostile inputs run on every ctest invocation even though the gcc
// toolchain cannot build the fuzzers themselves. Label: `fuzz`.
//
// The contract is the fuzzing contract: no crash, no hang, coherent
// parser state — never a specific parse outcome per input.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../fuzz/targets.hpp"

namespace {

std::vector<std::filesystem::path> corpus_files(const char* subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(XAON_CORPUS_DIR) / subdir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FuzzReplay, XmlCorpus) {
  const auto files = corpus_files("xml");
  ASSERT_GE(files.size(), 5u) << "corpus missing — checkout problem?";
  for (const auto& f : files) {
    SCOPED_TRACE(f.filename().string());
    xaon::fuzz::one_xml(slurp(f));
  }
}

TEST(FuzzReplay, HttpCorpus) {
  const auto files = corpus_files("http");
  ASSERT_GE(files.size(), 5u);
  for (const auto& f : files) {
    SCOPED_TRACE(f.filename().string());
    xaon::fuzz::one_http(slurp(f));
  }
}

TEST(FuzzReplay, RegexCorpus) {
  const auto files = corpus_files("regex");
  ASSERT_GE(files.size(), 4u);
  for (const auto& f : files) {
    SCOPED_TRACE(f.filename().string());
    xaon::fuzz::one_regex(slurp(f));
  }
}

// Byte-level prefixes of every corpus entry: truncation at any point
// must be handled as gracefully as the full input (the incremental
// parsers see arbitrary split points in production).
TEST(FuzzReplay, EveryPrefixOfEveryInputIsHandled) {
  for (const char* sub : {"xml", "http", "regex"}) {
    for (const auto& f : corpus_files(sub)) {
      const std::string data = slurp(f);
      const std::size_t step = std::max<std::size_t>(1, data.size() / 64);
      for (std::size_t n = 0; n <= data.size(); n += step) {
        const std::string_view prefix(data.data(), n);
        if (sub[0] == 'x') xaon::fuzz::one_xml(prefix);
        else if (sub[0] == 'h') xaon::fuzz::one_http(prefix);
        else xaon::fuzz::one_regex(prefix);
      }
    }
  }
  SUCCEED();
}

}  // namespace
