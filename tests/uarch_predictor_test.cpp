#include "xaon/uarch/predictor.hpp"

#include <gtest/gtest.h>

#include "xaon/util/rng.hpp"

namespace xaon::uarch {
namespace {

PredictorConfig small_config() {
  PredictorConfig c;
  c.bimodal_bits = 8;
  c.gshare_bits = 8;
  c.history_bits = 8;
  return c;
}

TEST(Predictor, LearnsAlwaysTaken) {
  BranchPredictor p(small_config());
  int misses = 0;
  for (int i = 0; i < 1000; ++i) {
    misses += p.predict_and_update(0, 0x400, true) ? 1 : 0;
  }
  EXPECT_LT(misses, 5);  // only warm-up misses
  EXPECT_EQ(p.total_stats().predictions, 1000u);
}

TEST(Predictor, LearnsAlternatingViaHistory) {
  BranchPredictor p(small_config());
  int late_misses = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool taken = (i % 2) == 0;
    const bool miss = p.predict_and_update(0, 0x800, taken);
    if (i >= 1000) late_misses += miss ? 1 : 0;
  }
  // gshare captures period-2 patterns almost perfectly.
  EXPECT_LT(late_misses, 20);
}

TEST(Predictor, RandomBranchesNearFiftyPercent) {
  BranchPredictor p(small_config());
  util::Xoshiro256ss rng(42);
  int misses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    misses += p.predict_and_update(0, 0xC00, rng.next_bool(0.5)) ? 1 : 0;
  }
  const double rate = static_cast<double>(misses) / n;
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.60);
}

TEST(Predictor, BiasedBranchesBeatBias) {
  BranchPredictor p(small_config());
  util::Xoshiro256ss rng(43);
  int misses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    misses += p.predict_and_update(0, 0x1000, rng.next_bool(0.9)) ? 1 : 0;
  }
  // Predicting taken always gives 10%; predictor should be close.
  EXPECT_LT(static_cast<double>(misses) / n, 0.15);
}

TEST(Predictor, PerThreadStatsSeparated) {
  BranchPredictor p(small_config());
  for (int i = 0; i < 100; ++i) {
    p.predict_and_update(0, 0x10, true);
  }
  for (int i = 0; i < 50; ++i) {
    p.predict_and_update(1, 0x20, false);
  }
  EXPECT_EQ(p.stats(0).predictions, 100u);
  EXPECT_EQ(p.stats(1).predictions, 50u);
  EXPECT_EQ(p.total_stats().predictions, 150u);
}

TEST(Predictor, SmtTableAliasingHurts) {
  // Two threads with conflicting patterns at aliasing PCs: a shared
  // predictor mispredicts more than two private predictors — the
  // paper's 2LPx BrMPR effect.
  PredictorConfig cfg = small_config();
  cfg.hybrid = false;
  cfg.shared_history = true;

  auto run_shared = [&]() {
    BranchPredictor shared(cfg);
    std::uint64_t misses = 0;
    util::Xoshiro256ss rng(7);
    for (int i = 0; i < 40000; ++i) {
      const std::uint32_t t = i & 1;
      // Same code, different data: same PCs, weakly-correlated outcomes.
      const std::uint64_t pc = 0x4000 + (i % 64) * 4;
      const bool taken = t == 0 ? (i % 3) != 0 : rng.next_bool(0.4);
      misses += shared.predict_and_update(t, pc, taken) ? 1 : 0;
    }
    return misses;
  };
  auto run_private = [&]() {
    BranchPredictor p0(cfg), p1(cfg);
    std::uint64_t misses = 0;
    util::Xoshiro256ss rng(7);
    for (int i = 0; i < 40000; ++i) {
      const std::uint32_t t = i & 1;
      const std::uint64_t pc = 0x4000 + (i % 64) * 4;
      const bool taken = t == 0 ? (i % 3) != 0 : rng.next_bool(0.4);
      misses += (t == 0 ? p0 : p1).predict_and_update(0, pc, taken) ? 1 : 0;
    }
    return misses;
  };
  EXPECT_GT(run_shared(), run_private());
}

TEST(Predictor, ResetClearsStats) {
  BranchPredictor p(small_config());
  p.predict_and_update(0, 0x10, true);
  p.reset_stats();
  EXPECT_EQ(p.total_stats().predictions, 0u);
}

TEST(Predictor, HybridBeatsGshareOnMixedSites) {
  // A strongly biased site plus a history-correlated site: the hybrid
  // chooser should do at least as well as pure gshare.
  auto run = [](bool hybrid) {
    PredictorConfig cfg;
    cfg.bimodal_bits = 6;  // small tables force aliasing
    cfg.gshare_bits = 6;
    cfg.history_bits = 6;
    cfg.hybrid = hybrid;
    BranchPredictor p(cfg);
    std::uint64_t misses = 0;
    for (int i = 0; i < 30000; ++i) {
      // 16 biased sites stress the small gshare table.
      const std::uint64_t pc = 0x100 + (i % 16) * 64;
      const bool taken = (i % 16) < 14;
      misses += p.predict_and_update(0, pc, taken) ? 1 : 0;
    }
    return misses;
  };
  EXPECT_LE(run(true), run(false) + 200);
}

}  // namespace
}  // namespace xaon::uarch
