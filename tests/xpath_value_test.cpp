#include "xaon/xpath/value.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "xaon/xml/parser.hpp"

namespace xaon::xpath {
namespace {

TEST(Value, BooleanConversions) {
  EXPECT_FALSE(Value().to_boolean());
  EXPECT_TRUE(Value(true).to_boolean());
  EXPECT_TRUE(Value(1.5).to_boolean());
  EXPECT_FALSE(Value(0.0).to_boolean());
  EXPECT_FALSE(Value(std::nan("")).to_boolean());
  EXPECT_TRUE(Value(std::string("x")).to_boolean());
  EXPECT_FALSE(Value(std::string()).to_boolean());
  EXPECT_FALSE(Value(NodeSet{}).to_boolean());
}

TEST(Value, NumberConversions) {
  EXPECT_DOUBLE_EQ(Value(true).to_number(), 1.0);
  EXPECT_DOUBLE_EQ(Value(false).to_number(), 0.0);
  EXPECT_DOUBLE_EQ(Value(std::string(" 42 ")).to_number(), 42.0);
  EXPECT_DOUBLE_EQ(Value(std::string("-3.5")).to_number(), -3.5);
  EXPECT_TRUE(std::isnan(Value(std::string("4e2")).to_number()))
      << "XPath numbers have no exponent form";
  EXPECT_TRUE(std::isnan(Value(std::string("abc")).to_number()));
  EXPECT_TRUE(std::isnan(Value(std::string()).to_number()));
  EXPECT_TRUE(std::isnan(Value(NodeSet{}).to_number()));
}

TEST(Value, StringOfNumbersPerXPathRules) {
  EXPECT_EQ(Value(0.0).to_string(), "0");
  EXPECT_EQ(Value(-0.0).to_string(), "0");
  EXPECT_EQ(Value(42.0).to_string(), "42");
  EXPECT_EQ(Value(-17.0).to_string(), "-17");
  EXPECT_EQ(Value(2.5).to_string(), "2.5");
  EXPECT_EQ(Value(std::nan("")).to_string(), "NaN");
  EXPECT_EQ(Value(1.0 / 0.0).to_string(), "Infinity");
  EXPECT_EQ(Value(-1.0 / 0.0).to_string(), "-Infinity");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(false).to_string(), "false");
}

TEST(Value, ParseNumberStrictness) {
  EXPECT_DOUBLE_EQ(Value::parse_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(Value::parse_number("-.5"), -0.5);
  EXPECT_DOUBLE_EQ(Value::parse_number("7."), 7.0);
  EXPECT_TRUE(std::isnan(Value::parse_number("+5")));   // no leading +
  EXPECT_TRUE(std::isnan(Value::parse_number("1 2")));
  EXPECT_TRUE(std::isnan(Value::parse_number("inf")));
  EXPECT_TRUE(std::isnan(Value::parse_number(".")));
}

class ValueNodes : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = xml::parse(
        R"(<r a="av"><x>alpha</x><y>beta</y><x>gamma</x></r>)");
    ASSERT_TRUE(result_.ok);
    root_ = result_.document.root();
  }
  NodeSet all_x() const {
    NodeSet set;
    for (const xml::Node* c = root_->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->local == "x") set.push_back(NodeRef{c, nullptr});
    }
    return set;
  }
  xml::ParseResult result_;
  const xml::Node* root_ = nullptr;
};

TEST_F(ValueNodes, StringValueOfNodeKinds) {
  EXPECT_EQ(string_value(NodeRef{root_, nullptr}), "alphabetagamma");
  EXPECT_EQ(string_value(NodeRef{root_, root_->first_attr}), "av");
  EXPECT_EQ(string_value(NodeRef{root_->first_child, nullptr}), "alpha");
}

TEST_F(ValueNodes, NodeSetStringIsFirstInDocOrder) {
  Value v(all_x());
  EXPECT_EQ(v.to_string(), "alpha");
}

TEST_F(ValueNodes, NormalizeSortsAndDedups) {
  NodeSet set = all_x();
  // Duplicate + reversed order.
  NodeSet messy{set[1], set[0], set[1]};
  normalize(messy);
  ASSERT_EQ(messy.size(), 2u);
  EXPECT_TRUE(doc_order_less(messy[0], messy[1]));
  EXPECT_EQ(string_value(messy[0]), "alpha");
}

TEST_F(ValueNodes, DocOrderAttrsAfterElement) {
  const NodeRef elem{root_, nullptr};
  const NodeRef attr{root_, root_->first_attr};
  EXPECT_TRUE(doc_order_less(elem, attr));
  EXPECT_FALSE(doc_order_less(attr, elem));
}

TEST_F(ValueNodes, CompareEqualExistential) {
  Value xs(all_x());
  EXPECT_TRUE(compare_equal(xs, Value(std::string("gamma"))));
  EXPECT_FALSE(compare_equal(xs, Value(std::string("beta"))));
  // Both = and != can hold for multi-node sets.
  EXPECT_TRUE(compare_not_equal(xs, Value(std::string("gamma"))));
  // Single-node set: = and != are complementary.
  NodeSet one{all_x()[0]};
  EXPECT_TRUE(compare_equal(Value(one), Value(std::string("alpha"))));
  EXPECT_FALSE(compare_not_equal(Value(one), Value(std::string("alpha"))));
}

TEST_F(ValueNodes, CompareWithBooleansUsesSetEmptiness) {
  EXPECT_TRUE(compare_equal(Value(all_x()), Value(true)));
  EXPECT_TRUE(compare_equal(Value(NodeSet{}), Value(false)));
  EXPECT_FALSE(compare_equal(Value(NodeSet{}), Value(true)));
}

TEST(ValueCompare, PrimitiveCoercions) {
  // bool dominates, then number, then string — XPath 1.0 §3.4.
  EXPECT_TRUE(compare_equal(Value(true), Value(std::string("anything"))));
  EXPECT_TRUE(compare_equal(Value(1.0), Value(std::string("1"))));
  EXPECT_FALSE(compare_equal(Value(std::nan("")), Value(std::nan(""))));
  EXPECT_TRUE(compare_equal(Value(std::string("a")), Value(std::string("a"))));
}

TEST(ValueCompare, RelationalCoercesToNumbers) {
  EXPECT_TRUE(compare_relational(Value(std::string("2")),
                                 Value(std::string("10")), '<'));
  EXPECT_FALSE(compare_relational(Value(std::string("abc")), Value(1.0),
                                  '<'));  // NaN compares false
  EXPECT_TRUE(compare_relational(Value(3.0), Value(3.0), 'l'));  // <=
  EXPECT_TRUE(compare_relational(Value(3.0), Value(3.0), 'g'));  // >=
}

TEST(Value, NodesAccessorAbortsOnWrongKind) {
  EXPECT_DEATH(Value(1.0).nodes(), "not a node-set");
}

}  // namespace
}  // namespace xaon::xpath
