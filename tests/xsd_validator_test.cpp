#include "xaon/xsd/validator.hpp"

#include <gtest/gtest.h>

#include "xaon/xml/parser.hpp"
#include "xaon/xsd/loader.hpp"

namespace xaon::xsd {
namespace {

/// Programmatic schema mirroring the paper's AONBench order message:
///   order(id attr) -> sequence(customer, item+, total?)
///   item -> sequence(sku, quantity)
Schema build_order_schema() {
  Schema schema;

  SimpleType* sku = schema.add_simple_type("SkuType");
  sku->base = BuiltinType::kString;
  sku->patterns.push_back(Regex::compile("[A-Z]{2}-\\d{3}"));
  sku->min_length = 6;

  SimpleType* qty = schema.add_simple_type("QuantityType");
  qty->base = BuiltinType::kPositiveInteger;
  qty->max_inclusive = 1000.0;

  ElementDecl* sku_el = schema.add_element("sku", "");
  sku_el->simple_type = sku;
  ElementDecl* qty_el = schema.add_element("quantity", "");
  qty_el->simple_type = qty;

  ComplexType* item_type = schema.add_complex_type("ItemType");
  item_type->content = ContentKind::kElementOnly;
  Particle item_seq;
  item_seq.kind = ParticleKind::kSequence;
  Particle p1;
  p1.kind = ParticleKind::kElement;
  p1.element = sku_el;
  Particle p2;
  p2.kind = ParticleKind::kElement;
  p2.element = qty_el;
  item_seq.children = {p1, p2};
  item_type->particle = item_seq;

  ElementDecl* item_el = schema.add_element("item", "");
  item_el->complex_type = item_type;

  ElementDecl* customer_el = schema.add_element("customer", "");
  SimpleType* customer_type = schema.add_simple_type("");
  customer_type->base = BuiltinType::kString;
  customer_type->min_length = 1;
  customer_el->simple_type = customer_type;

  ElementDecl* total_el = schema.add_element("total", "");
  SimpleType* total_type = schema.add_simple_type("");
  total_type->base = BuiltinType::kDecimal;
  total_el->simple_type = total_type;

  ComplexType* order_type = schema.add_complex_type("OrderType");
  order_type->content = ContentKind::kElementOnly;
  Particle order_seq;
  order_seq.kind = ParticleKind::kSequence;
  Particle pc;
  pc.kind = ParticleKind::kElement;
  pc.element = customer_el;
  Particle pi;
  pi.kind = ParticleKind::kElement;
  pi.element = item_el;
  pi.min_occurs = 1;
  pi.max_occurs = kUnbounded;
  Particle pt;
  pt.kind = ParticleKind::kElement;
  pt.element = total_el;
  pt.min_occurs = 0;
  order_seq.children = {pc, pi, pt};
  order_type->particle = order_seq;

  SimpleType* id_type = schema.add_simple_type("");
  id_type->base = BuiltinType::kPositiveInteger;
  AttributeUse id_attr;
  id_attr.name = "id";
  id_attr.type = id_type;
  id_attr.required = true;
  order_type->attributes.push_back(id_attr);

  ElementDecl* order_el = schema.add_element("order", "");
  order_el->complex_type = order_type;
  schema.add_global_element(order_el);

  std::string error;
  EXPECT_TRUE(schema.finalize(&error)) << error;
  return schema;
}

ValidationResult validate_text(const Schema& schema, std::string_view text) {
  auto parsed = xml::parse(text);
  EXPECT_TRUE(parsed.ok) << parsed.error.to_string();
  Validator validator(schema);
  return validator.validate(parsed.document);
}

constexpr const char* kValidOrder = R"(<order id="7">
  <customer>ACME Corp</customer>
  <item><sku>AB-123</sku><quantity>2</quantity></item>
  <item><sku>CD-456</sku><quantity>1</quantity></item>
  <total>42.50</total>
</order>)";

TEST(Validator, ValidDocumentPasses) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, kValidOrder);
  EXPECT_TRUE(result.valid()) << result.to_string();
}

TEST(Validator, OptionalElementMayBeAbsent) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  EXPECT_TRUE(result.valid()) << result.to_string();
}

TEST(Validator, UnknownRootRejected) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, "<invoice/>");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("no global element"),
            std::string::npos);
}

TEST(Validator, MissingRequiredChild) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("ended too soon"),
            std::string::npos);
  EXPECT_NE(result.errors[0].message.find("item"), std::string::npos);
}

TEST(Validator, WrongChildOrder) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <item><sku>AB-123</sku><quantity>1</quantity></item>
    <customer>c</customer>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("unexpected element"),
            std::string::npos);
}

TEST(Validator, UnexpectedExtraChild) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
    <total>1</total>
    <total>2</total>
  </order>)");
  EXPECT_FALSE(result.valid());
}

TEST(Validator, SimpleTypeFacetViolationsReported) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
    <item><sku>bad-sku</sku><quantity>2000</quantity></item>
  </order>)");
  ASSERT_EQ(result.errors.size(), 2u) << result.to_string();
  EXPECT_NE(result.errors[0].message.find("pattern"), std::string::npos);
  EXPECT_NE(result.errors[0].path.find("sku"), std::string::npos);
  EXPECT_NE(result.errors[1].message.find("maxInclusive"),
            std::string::npos);
}

TEST(Validator, PathsIdentifyRepeatedSiblings) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
    <item><sku>XX-999</sku><quantity>0</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].path.find("item[2]"), std::string::npos);
}

TEST(Validator, RequiredAttributeMissing) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order>
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("required attribute 'id'"),
            std::string::npos);
}

TEST(Validator, BadAttributeValue) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="zero">
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("attribute 'id'"),
            std::string::npos);
}

TEST(Validator, UndeclaredAttributeRejected) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1" rogue="x">
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("undeclared attribute"),
            std::string::npos);
}

TEST(Validator, TextInElementOnlyContentRejected) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">stray
    <customer>c</customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("text not allowed"),
            std::string::npos);
}

TEST(Validator, ElementInSimpleContentRejected) {
  Schema schema = build_order_schema();
  auto result = validate_text(schema, R"(<order id="1">
    <customer><b>c</b></customer>
    <item><sku>AB-123</sku><quantity>1</quantity></item>
  </order>)");
  ASSERT_FALSE(result.valid());
  EXPECT_NE(result.errors[0].message.find("not allowed in simple content"),
            std::string::npos);
}

TEST(Validator, UnboundedRepetition) {
  Schema schema = build_order_schema();
  std::string doc = R"(<order id="1"><customer>c</customer>)";
  for (int i = 0; i < 50; ++i) {
    doc += "<item><sku>AB-123</sku><quantity>1</quantity></item>";
  }
  doc += "</order>";
  auto result = validate_text(schema, doc);
  EXPECT_TRUE(result.valid()) << result.to_string();
}

TEST(Validator, ErrorCapRespected) {
  Schema schema = build_order_schema();
  std::string doc = R"(<order id="1"><customer>c</customer>)";
  for (int i = 0; i < 100; ++i) {
    doc += "<item><sku>bad</sku><quantity>0</quantity></item>";
  }
  doc += "</order>";
  auto parsed = xml::parse(doc);
  ASSERT_TRUE(parsed.ok);
  Validator validator(schema);
  validator.set_max_errors(10);
  auto result = validator.validate(parsed.document);
  EXPECT_FALSE(result.valid());
  EXPECT_LE(result.errors.size(), 10u);
}

TEST(Validator, ValidateElementSubtree) {
  Schema schema = build_order_schema();
  auto parsed = xml::parse(
      "<item><sku>AB-123</sku><quantity>3</quantity></item>");
  ASSERT_TRUE(parsed.ok);
  // item is not a global element, but validate_element takes any decl.
  const ComplexType* item_type = schema.find_complex_type("ItemType");
  ASSERT_NE(item_type, nullptr);
  ElementDecl decl;
  decl.local = "item";
  decl.complex_type = item_type;
  Validator validator(schema);
  auto result = validator.validate_element(parsed.document.root(), &decl);
  EXPECT_TRUE(result.valid()) << result.to_string();
}

// --- choice and xs:all content models ---

Schema build_choice_schema() {
  Schema schema;
  ElementDecl* a = schema.add_element("a", "");
  ElementDecl* b = schema.add_element("b", "");
  ComplexType* ct = schema.add_complex_type("RootType");
  ct->content = ContentKind::kElementOnly;
  Particle choice;
  choice.kind = ParticleKind::kChoice;
  choice.min_occurs = 1;
  choice.max_occurs = 3;
  Particle pa;
  pa.kind = ParticleKind::kElement;
  pa.element = a;
  Particle pb;
  pb.kind = ParticleKind::kElement;
  pb.element = b;
  choice.children = {pa, pb};
  ct->particle = choice;
  ElementDecl* root = schema.add_element("root", "");
  root->complex_type = ct;
  schema.add_global_element(root);
  std::string error;
  EXPECT_TRUE(schema.finalize(&error)) << error;
  return schema;
}

TEST(Validator, ChoiceAcceptsEitherBranch) {
  Schema schema = build_choice_schema();
  EXPECT_TRUE(validate_text(schema, "<root><a/></root>").valid());
  EXPECT_TRUE(validate_text(schema, "<root><b/></root>").valid());
  EXPECT_TRUE(validate_text(schema, "<root><a/><b/><a/></root>").valid());
}

TEST(Validator, ChoiceOccurrenceBounds) {
  Schema schema = build_choice_schema();
  EXPECT_FALSE(validate_text(schema, "<root/>").valid());  // min 1
  EXPECT_FALSE(
      validate_text(schema, "<root><a/><a/><a/><a/></root>").valid());
}

Schema build_all_schema() {
  Schema schema;
  ElementDecl* x = schema.add_element("x", "");
  ElementDecl* y = schema.add_element("y", "");
  ElementDecl* z = schema.add_element("z", "");
  ComplexType* ct = schema.add_complex_type("AllType");
  ct->content = ContentKind::kElementOnly;
  Particle all;
  all.kind = ParticleKind::kAll;
  Particle px;
  px.kind = ParticleKind::kElement;
  px.element = x;
  Particle py;
  py.kind = ParticleKind::kElement;
  py.element = y;
  Particle pz;
  pz.kind = ParticleKind::kElement;
  pz.element = z;
  pz.min_occurs = 0;  // optional
  all.children = {px, py, pz};
  ct->particle = all;
  ElementDecl* root = schema.add_element("root", "");
  root->complex_type = ct;
  schema.add_global_element(root);
  std::string error;
  EXPECT_TRUE(schema.finalize(&error)) << error;
  return schema;
}

TEST(Validator, AllGroupAnyOrder) {
  Schema schema = build_all_schema();
  EXPECT_TRUE(validate_text(schema, "<root><x/><y/></root>").valid());
  EXPECT_TRUE(validate_text(schema, "<root><y/><x/></root>").valid());
  EXPECT_TRUE(validate_text(schema, "<root><z/><y/><x/></root>").valid());
}

TEST(Validator, AllGroupViolations) {
  // Missing required y.
  Schema schema = build_all_schema();
  EXPECT_FALSE(validate_text(schema, "<root><x/></root>").valid());
  // Duplicate x.
  EXPECT_FALSE(validate_text(schema, "<root><x/><x/><y/></root>").valid());
  // Foreign element.
  EXPECT_FALSE(validate_text(schema, "<root><x/><y/><w/></root>").valid());
}

TEST(Validator, MixedContentAllowsText) {
  Schema schema;
  ElementDecl* b = schema.add_element("b", "");
  ComplexType* ct = schema.add_complex_type("");
  ct->content = ContentKind::kMixed;
  Particle seq;
  seq.kind = ParticleKind::kSequence;
  Particle pb;
  pb.kind = ParticleKind::kElement;
  pb.element = b;
  pb.min_occurs = 0;
  pb.max_occurs = kUnbounded;
  seq.children = {pb};
  ct->particle = seq;
  ElementDecl* root = schema.add_element("p", "");
  root->complex_type = ct;
  schema.add_global_element(root);
  std::string error;
  ASSERT_TRUE(schema.finalize(&error)) << error;
  EXPECT_TRUE(validate_text(schema, "<p>text <b/> more text</p>").valid());
}

TEST(Validator, EmptyContentModel) {
  Schema schema;
  ComplexType* ct = schema.add_complex_type("");
  ct->content = ContentKind::kEmpty;
  ElementDecl* root = schema.add_element("e", "");
  root->complex_type = ct;
  schema.add_global_element(root);
  std::string error;
  ASSERT_TRUE(schema.finalize(&error)) << error;
  EXPECT_TRUE(validate_text(schema, "<e/>").valid());
  EXPECT_TRUE(validate_text(schema, "<e>  </e>").valid());
  EXPECT_FALSE(validate_text(schema, "<e>x</e>").valid());
  EXPECT_FALSE(validate_text(schema, "<e><c/></e>").valid());
}

TEST(Validator, FixedAttributeValue) {
  Schema schema;
  ComplexType* ct = schema.add_complex_type("");
  ct->content = ContentKind::kEmpty;
  AttributeUse version;
  version.name = "version";
  version.fixed = "1.0";
  ct->attributes.push_back(version);
  ElementDecl* root = schema.add_element("e", "");
  root->complex_type = ct;
  schema.add_global_element(root);
  std::string error;
  ASSERT_TRUE(schema.finalize(&error)) << error;
  EXPECT_TRUE(validate_text(schema, R"(<e version="1.0"/>)").valid());
  EXPECT_FALSE(validate_text(schema, R"(<e version="2.0"/>)").valid());
  EXPECT_TRUE(validate_text(schema, "<e/>").valid());  // fixed != required
}

TEST(Validator, XmlnsAndXsiAttributesIgnored) {
  Schema schema = build_order_schema();
  auto result = validate_text(
      schema,
      R"(<order id="1" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance")"
      R"( xsi:noNamespaceSchemaLocation="order.xsd">)"
      R"(<customer>c</customer>)"
      R"(<item><sku>AB-123</sku><quantity>1</quantity></item></order>)");
  EXPECT_TRUE(result.valid()) << result.to_string();
}

TEST(Validator, NestedErrorsStillFoundAfterContentModelError) {
  Schema schema = build_order_schema();
  // First child matches (customer), second matches (item) but contains a
  // facet violation, then the model breaks (b). The item error must
  // still be reported.
  auto result = validate_text(schema, R"(<order id="1">
    <customer>c</customer>
    <item><sku>bad-sku</sku><quantity>1</quantity></item>
    <bogus/>
  </order>)");
  ASSERT_FALSE(result.valid());
  bool saw_model_error = false, saw_sku_error = false;
  for (const auto& e : result.errors) {
    if (e.message.find("unexpected element") != std::string::npos) {
      saw_model_error = true;
    }
    if (e.message.find("pattern") != std::string::npos) saw_sku_error = true;
  }
  EXPECT_TRUE(saw_model_error) << result.to_string();
  EXPECT_TRUE(saw_sku_error) << result.to_string();
}

}  // namespace
}  // namespace xaon::xsd
