#include "xaon/aon/server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "xaon/aon/messages.hpp"
#include "xaon/http/message.hpp"

namespace xaon::aon {
namespace {

std::vector<std::string> mixed_wires() {
  std::vector<std::string> wires;
  for (int i = 0; i < 4; ++i) {
    MessageSpec spec;
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    spec.quantity = (i % 2 == 0) ? 1 : 3;
    wires.push_back(make_post_wire(spec));
  }
  return wires;
}

TEST(Server, ProcessesEveryMessage) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 500);
  EXPECT_EQ(result.messages, 500u);
  EXPECT_EQ(result.routed_primary, 500u);  // FR forwards everything
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.messages_per_second(), 0.0);
}

TEST(Server, CbrSplitsRoutes) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  // Wires alternate quantity 1 / 3 -> half primary, half error.
  const LoadResult result = server.run_load(mixed_wires(), 400);
  EXPECT_EQ(result.messages, 400u);
  EXPECT_EQ(result.routed_primary, 200u);
  EXPECT_EQ(result.routed_error, 200u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(Server, SvValidatesUnderLoad) {
  ServerConfig config;
  config.use_case = UseCase::kSchemaValidation;
  config.workers = 3;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 300);
  EXPECT_EQ(result.messages, 300u);
  EXPECT_EQ(result.routed_primary, 300u);  // all wires schema-valid
  EXPECT_EQ(result.failed, 0u);
}

TEST(Server, SingleWorkerWorks) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 1;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 100);
  EXPECT_EQ(result.messages, 100u);
}

TEST(Server, ManyWorkersNoMessageLoss) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 8;
  config.queue_capacity = 16;  // force backpressure
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 2000);
  EXPECT_EQ(result.messages, 2000u);
  EXPECT_EQ(result.routed_primary + result.routed_error, 2000u);
}

/// Records, per worker thread, which wire class it forwarded — the
/// class marker rides in the message body, which FR proxies untouched.
class ClassRecordingDownstream : public Downstream {
 public:
  SendStatus send(std::string_view wire) override {
    int cls = -1;
    for (int k = 0; k < 8; ++k) {
      std::string marker = "wire-class-" + std::to_string(k) + "<";
      if (wire.find(marker) != std::string_view::npos) {
        cls = k;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    seen_[std::this_thread::get_id()].insert(cls);
    return SendStatus::kAck;
  }

  std::map<std::thread::id, std::set<int>> seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

 private:
  std::mutex mu_;
  std::map<std::thread::id, std::set<int>> seen_;
};

// Regression for the dispatch-skew bug: with worker index and wire
// index both derived from the message counter (`i % n_workers` and
// `i % wires.size()`), any common factor of the two counts locks each
// worker onto a fixed wire subset (2 workers x 4 wires: worker 0 only
// ever saw wires {0,2}). The decoupled wire cursor must show every
// worker every wire class.
TEST(Server, EveryWorkerObservesEveryWireClass) {
  const std::size_t n_workers = 2;
  const int n_classes = 4;  // shares a factor with n_workers
  std::vector<std::string> wires;
  for (int k = 0; k < n_classes; ++k) {
    wires.push_back(http::write_request(
        make_post_request("<order>wire-class-" + std::to_string(k) +
                          "<filler/></order>")));
  }

  ClassRecordingDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = n_workers;
  config.downstream = &downstream;
  Server server(config);
  const LoadResult result = server.run_load(wires, 400);
  EXPECT_EQ(result.messages, 400u);

  const auto seen = downstream.seen();
  ASSERT_EQ(seen.size(), n_workers);
  for (const auto& [tid, classes] : seen) {
    (void)tid;
    EXPECT_EQ(classes.size(), static_cast<std::size_t>(n_classes))
        << "a worker saw only a subset of wire classes (dispatch skew)";
    for (int k = 0; k < n_classes; ++k) EXPECT_TRUE(classes.count(k));
  }
}

// The rotated wire cursor must keep the *mix* uniform while decoupling:
// over whole passes, every wire class appears equally often.
TEST(Server, WireMixStaysUniformAcrossClasses) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  // mixed_wires(): quantity alternates 1/3 -> exactly half route
  // primary when every wire is used equally often.
  const LoadResult result = server.run_load(mixed_wires(), 800);
  EXPECT_EQ(result.messages, 800u);
  EXPECT_EQ(result.routed_primary, 400u);
  EXPECT_EQ(result.routed_error, 400u);
}

TEST(StatusBuckets, ClassifiesEveryRangeExplicitly) {
  StatusBuckets b;
  b.add(100);
  b.add(200);
  b.add(204);
  b.add(304);  // synthetic 3xx: must land in s3xx, not s4xx
  b.add(400);
  b.add(403);
  b.add(502);
  b.add(503);
  b.add(42);  // out of range -> other, never a silent 4xx
  EXPECT_EQ(b.s1xx, 1u);
  EXPECT_EQ(b.s2xx, 2u);
  EXPECT_EQ(b.s3xx, 1u);
  EXPECT_EQ(b.s4xx, 2u);
  EXPECT_EQ(b.s5xx, 2u);
  EXPECT_EQ(b.other, 1u);
  EXPECT_EQ(b.total(), 9u);

  StatusBuckets c;
  c.add(301);
  b.merge(c);
  EXPECT_EQ(b.s3xx, 2u);
  EXPECT_EQ(b.total(), 10u);
}

TEST(Server, StatusBucketsReconcileUnderMixedOutcomes) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  std::vector<std::string> wires = mixed_wires();
  wires.push_back("garbage that fails the HTTP parse");  // -> 400
  const LoadResult result = server.run_load(wires, 500);
  EXPECT_EQ(result.messages, 500u);
  // The stock pipeline never emits 1xx/3xx or out-of-range statuses.
  EXPECT_EQ(result.status_1xx, 0u);
  EXPECT_EQ(result.status_3xx, 0u);
  EXPECT_EQ(result.status_other, 0u);
  EXPECT_GT(result.status_4xx, 0u);  // the garbage wire
  EXPECT_EQ(result.status_2xx + result.status_4xx + result.status_5xx,
            result.messages);
}

TEST(Server, ThroughputWindowExcludesTeardown) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 200);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  // seconds is the dispatch-to-drain window; wall_seconds additionally
  // spans thread creation and join.
  EXPECT_LE(result.seconds, result.wall_seconds);
  EXPECT_GT(result.messages_per_second(), 0.0);
}

}  // namespace
}  // namespace xaon::aon
