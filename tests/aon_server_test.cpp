#include "xaon/aon/server.hpp"

#include <gtest/gtest.h>

#include "xaon/aon/messages.hpp"

namespace xaon::aon {
namespace {

std::vector<std::string> mixed_wires() {
  std::vector<std::string> wires;
  for (int i = 0; i < 4; ++i) {
    MessageSpec spec;
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    spec.quantity = (i % 2 == 0) ? 1 : 3;
    wires.push_back(make_post_wire(spec));
  }
  return wires;
}

TEST(Server, ProcessesEveryMessage) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 500);
  EXPECT_EQ(result.messages, 500u);
  EXPECT_EQ(result.routed_primary, 500u);  // FR forwards everything
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.messages_per_second(), 0.0);
}

TEST(Server, CbrSplitsRoutes) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  // Wires alternate quantity 1 / 3 -> half primary, half error.
  const LoadResult result = server.run_load(mixed_wires(), 400);
  EXPECT_EQ(result.messages, 400u);
  EXPECT_EQ(result.routed_primary, 200u);
  EXPECT_EQ(result.routed_error, 200u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(Server, SvValidatesUnderLoad) {
  ServerConfig config;
  config.use_case = UseCase::kSchemaValidation;
  config.workers = 3;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 300);
  EXPECT_EQ(result.messages, 300u);
  EXPECT_EQ(result.routed_primary, 300u);  // all wires schema-valid
  EXPECT_EQ(result.failed, 0u);
}

TEST(Server, SingleWorkerWorks) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 1;
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 100);
  EXPECT_EQ(result.messages, 100u);
}

TEST(Server, ManyWorkersNoMessageLoss) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 8;
  config.queue_capacity = 16;  // force backpressure
  Server server(config);
  const LoadResult result = server.run_load(mixed_wires(), 2000);
  EXPECT_EQ(result.messages, 2000u);
  EXPECT_EQ(result.routed_primary + result.routed_error, 2000u);
}

}  // namespace
}  // namespace xaon::aon
