#include "xaon/xml/writer.hpp"

#include <gtest/gtest.h>

#include "xaon/xml/parser.hpp"

namespace xaon::xml {
namespace {

std::string roundtrip(std::string_view input, WriteOptions wopt = {}) {
  auto r = parse(input);
  EXPECT_TRUE(r.ok) << r.error.to_string();
  wopt.declaration = false;
  return write(r.document.doc_node(), wopt);
}

TEST(Writer, SimpleRoundtrip) {
  EXPECT_EQ(roundtrip("<a><b>x</b></a>"), "<a><b>x</b></a>");
}

TEST(Writer, SelfCloseEmpty) {
  EXPECT_EQ(roundtrip("<a></a>"), "<a/>");
  WriteOptions opt;
  opt.self_close_empty = false;
  EXPECT_EQ(roundtrip("<a/>", opt), "<a></a>");
}

TEST(Writer, AttributesPreserved) {
  EXPECT_EQ(roundtrip(R"(<a k="v" k2="v2"/>)"), R"(<a k="v" k2="v2"/>)");
}

TEST(Writer, TextEscaping) {
  EXPECT_EQ(roundtrip("<a>&lt;x&gt; &amp; y</a>"),
            "<a>&lt;x&gt; &amp; y</a>");
}

TEST(Writer, AttrEscaping) {
  EXPECT_EQ(roundtrip("<a v=\"&quot;&amp;&lt;\"/>"),
            "<a v=\"&quot;&amp;&lt;\"/>");
}

TEST(Writer, CDataPreserved) {
  EXPECT_EQ(roundtrip("<a><![CDATA[<raw> & text]]></a>"),
            "<a><![CDATA[<raw> & text]]></a>");
}

TEST(Writer, DeclarationEmitted) {
  auto r = parse("<a/>");
  ASSERT_TRUE(r.ok);
  const std::string out = write(r.document.doc_node());
  EXPECT_EQ(out.rfind("<?xml", 0), 0u);
}

TEST(Writer, ReparseRoundtripIsStable) {
  const std::string src =
      R"(<o:order xmlns:o="urn:orders" priority="high">)"
      R"(<item sku="A-1">widget &amp; co</item><qty>3</qty></o:order>)";
  const std::string once = roundtrip(src);
  const std::string twice = roundtrip(once);
  EXPECT_EQ(once, twice);
}

TEST(Writer, PrettyPrintIndents) {
  auto r = parse("<a><b><c/></b></a>");
  ASSERT_TRUE(r.ok);
  WriteOptions opt;
  opt.pretty = true;
  opt.declaration = false;
  const std::string out = write(r.document.doc_node(), opt);
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
  EXPECT_NE(out.find("\n    <c/>"), std::string::npos);
}

TEST(Writer, EscapeHelpers) {
  EXPECT_EQ(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape_attr("\"x\"\n"), "&quot;x&quot;&#10;");
  EXPECT_EQ(escape_text(""), "");
}

TEST(Writer, NamespaceDeclarationsPreserved) {
  // xmlns attributes both bind prefixes and survive in the DOM as
  // ordinary attributes, so namespaced documents round-trip.
  auto r = parse(R"(<p:a xmlns:p="urn:u"/>)");
  ASSERT_TRUE(r.ok);
  WriteOptions opt;
  opt.declaration = false;
  EXPECT_EQ(write(r.document.doc_node(), opt), R"(<p:a xmlns:p="urn:u"/>)");
}

}  // namespace
}  // namespace xaon::xml
