// Parser hardening limits: nesting depth (including the hard recursion
// ceiling against 100k-deep documents), per-element attribute count,
// and the per-document entity-reference budget — each reporting its
// structured ErrorCode.

#include <gtest/gtest.h>

#include <string>

#include "xaon/xml/parser.hpp"

namespace xaon::xml {
namespace {

std::string nested_document(std::size_t depth) {
  std::string doc;
  doc.reserve(depth * 7 + 16);
  for (std::size_t i = 0; i < depth; ++i) doc += "<a>";
  doc += "x";
  for (std::size_t i = 0; i < depth; ++i) doc += "</a>";
  return doc;
}

TEST(XmlHardening, DepthWithinLimitParses) {
  auto result = parse(nested_document(100));
  ASSERT_TRUE(result.ok) << result.error.to_string();
}

TEST(XmlHardening, DepthBeyondLimitIsStructuredError) {
  ParseOptions opt;
  opt.max_depth = 32;
  auto result = parse(nested_document(33), opt);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kDepthLimit);
}

TEST(XmlHardening, HundredThousandDeepDocumentIsRejectedNotOverflowed) {
  // Regression: a 100k-deep document must produce a depth-limit error,
  // never a stack overflow — even when the caller asks for an absurd
  // max_depth, which the kDepthCeiling clamp neutralizes.
  const std::string doc = nested_document(100'000);
  ParseOptions opt;
  opt.max_depth = static_cast<std::size_t>(-1);
  auto result = parse(doc, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kDepthLimit);
}

TEST(XmlHardening, DepthCeilingStillAllowsDocumentsUnderIt) {
  ParseOptions opt;
  opt.max_depth = static_cast<std::size_t>(-1);
  auto result = parse(nested_document(ParseOptions::kDepthCeiling), opt);
  ASSERT_TRUE(result.ok) << result.error.to_string();
}

TEST(XmlHardening, AttributeCountLimit) {
  ParseOptions opt;
  opt.max_attributes = 4;
  std::string ok_doc = "<r a1='1' a2='2' a3='3' a4='4'/>";
  ASSERT_TRUE(parse(ok_doc, opt).ok);
  std::string bad_doc = "<r a1='1' a2='2' a3='3' a4='4' a5='5'/>";
  auto result = parse(bad_doc, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kAttrLimit);
}

TEST(XmlHardening, EntityReferenceBudget) {
  ParseOptions opt;
  opt.max_entity_expansions = 10;
  std::string ok_doc = "<r>";
  for (int i = 0; i < 10; ++i) ok_doc += "&amp;";
  ok_doc += "</r>";
  ASSERT_TRUE(parse(ok_doc, opt).ok);
  std::string bad_doc = "<r>";
  for (int i = 0; i < 11; ++i) bad_doc += "&amp;";
  bad_doc += "</r>";
  auto result = parse(bad_doc, opt);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kEntityLimit);
}

TEST(XmlHardening, SyntaxErrorsKeepSyntaxCode) {
  auto result = parse("<r><unclosed></r>");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kSyntax);
}

TEST(XmlHardening, SuccessLeavesCodeNone) {
  auto result = parse("<r/>");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.error.code, ErrorCode::kNone);
}

}  // namespace
}  // namespace xaon::xml
