#include "xaon/aon/messages.hpp"

#include <gtest/gtest.h>

#include "xaon/http/parser.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xpath/xpath.hpp"
#include "xaon/xsd/loader.hpp"
#include "xaon/xsd/validator.hpp"

namespace xaon::aon {
namespace {

TEST(Messages, DefaultMessageIsNearAonbenchSize) {
  const std::string msg = make_order_message();
  // AONBench specifies 5 KB messages (paper §3.2.1).
  EXPECT_GT(msg.size(), 4u * 1024u);
  EXPECT_LT(msg.size(), 6u * 1024u);
}

TEST(Messages, MessageIsWellFormedSoap) {
  auto parsed = xml::parse(make_order_message());
  ASSERT_TRUE(parsed.ok) << parsed.error.to_string();
  const xml::Node* root = parsed.document.root();
  EXPECT_EQ(root->local, "Envelope");
  EXPECT_EQ(root->ns_uri, "http://schemas.xmlsoap.org/soap/envelope/");
  ASSERT_NE(root->child_element("Body"), nullptr);
  EXPECT_EQ(root->child_element("Body")->first_child_element()->qname,
            "order");
}

TEST(Messages, QuantityControlsCbrKey) {
  MessageSpec spec;
  spec.quantity = 1;
  auto one = xml::parse(make_order_message(spec));
  ASSERT_TRUE(one.ok);
  auto q = xpath::XPath::compile("//quantity/text() = '1'");
  EXPECT_TRUE(q.test(one.document.root()));

  spec.quantity = 7;
  auto seven = xml::parse(make_order_message(spec));
  ASSERT_TRUE(seven.ok);
  EXPECT_FALSE(q.test(seven.document.root()));
}

TEST(Messages, SeedVariesContent) {
  MessageSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(make_order_message(a), make_order_message(b));
  EXPECT_EQ(make_order_message(a), make_order_message(a));  // deterministic
}

TEST(Messages, PayloadValidatesAgainstShippedSchema) {
  auto loaded = xsd::load_schema(order_schema_xsd());
  ASSERT_TRUE(loaded.ok) << loaded.error;
  auto parsed = xml::parse(make_order_message());
  ASSERT_TRUE(parsed.ok);
  const xml::Node* payload =
      parsed.document.root()->child_element("Body")->first_child_element();
  const xsd::ElementDecl* decl =
      loaded.schema.find_global_element(payload->ns_uri, payload->local);
  ASSERT_NE(decl, nullptr);
  xsd::Validator validator(loaded.schema);
  const auto result = validator.validate_element(payload, decl);
  EXPECT_TRUE(result.valid()) << result.to_string();
}

TEST(Messages, InvalidSpecFailsValidation) {
  MessageSpec spec;
  spec.valid_for_schema = false;  // quantity 0 violates positiveInteger
  auto loaded = xsd::load_schema(order_schema_xsd());
  ASSERT_TRUE(loaded.ok);
  auto parsed = xml::parse(make_order_message(spec));
  ASSERT_TRUE(parsed.ok);
  const xml::Node* payload =
      parsed.document.root()->child_element("Body")->first_child_element();
  xsd::Validator validator(loaded.schema);
  const auto result = validator.validate_element(
      payload,
      loaded.schema.find_global_element(payload->ns_uri, payload->local));
  EXPECT_FALSE(result.valid());
}

TEST(Messages, ItemCountRespected) {
  MessageSpec spec;
  spec.items = 5;
  auto parsed = xml::parse(make_order_message(spec));
  ASSERT_TRUE(parsed.ok);
  auto items = xpath::XPath::compile("count(//item)");
  EXPECT_DOUBLE_EQ(items.number(parsed.document.root()), 5.0);
}

TEST(Messages, WireFormParsesAsHttpPost) {
  const std::string wire = make_post_wire();
  http::RequestParser parser;
  EXPECT_EQ(parser.feed(wire), wire.size());
  ASSERT_TRUE(parser.done()) << parser.error();
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().headers.get("Content-Type"),
            "text/xml; charset=utf-8");
  EXPECT_TRUE(parser.request().headers.has("SOAPAction"));
  auto body = xml::parse(parser.request().body);
  EXPECT_TRUE(body.ok);
}

TEST(Messages, TargetBytesScalesMessage) {
  MessageSpec spec;
  spec.target_bytes = 20 * 1024;
  const std::string msg = make_order_message(spec);
  EXPECT_GT(msg.size(), 18u * 1024u);
  EXPECT_LT(msg.size(), 22u * 1024u);
  EXPECT_TRUE(xml::parse(msg).ok);
}

}  // namespace
}  // namespace xaon::aon
