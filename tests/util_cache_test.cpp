// LRU cache unit tier (label: cache): capacity edge cases, eviction
// order under touch, the eviction-counter invariant, and the §5b
// hit-path contract — a warm find() never touches the allocator. Uses
// the bench allocation counter's operator new interposer (single-TU
// binaries only, which every test binary is).

#define XAON_ALLOC_COUNT_INTERPOSE
#include "../bench/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "xaon/util/cache.hpp"

namespace xaon::util {
namespace {

using IntCache = LruCache<int, int>;

TEST(LruCache, CapacityZeroDisablesEverything) {
  IntCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.insert(1, 10), nullptr);  // dropped, not stored
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // Dropped inserts are not insertions; disabled finds still count as
  // misses so a disabled cache reports hit_rate 0, not NaN-ish silence.
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

TEST(LruCache, CapacityOneHoldsExactlyTheLastKey) {
  IntCache cache(1);
  cache.insert(1, 10);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), 10);
  cache.insert(2, 20);  // evicts 1
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  EXPECT_EQ(*cache.find(2), 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedNotLeastRecentlyInserted) {
  IntCache cache(3);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(3, 30);
  // Touch 1 (the oldest insert) — 2 becomes the LRU entry.
  ASSERT_NE(cache.find(1), nullptr);
  cache.insert(4, 40);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr) << "LRU entry must be the evictee";
  EXPECT_NE(cache.find(3), nullptr);
  EXPECT_NE(cache.find(4), nullptr);
}

TEST(LruCache, RepeatedTouchKeepsAnEntryAliveIndefinitely) {
  IntCache cache(2);
  cache.insert(1, 10);
  for (int k = 2; k <= 50; ++k) {
    ASSERT_NE(cache.find(1), nullptr) << "touched entry evicted at k=" << k;
    cache.insert(k, k * 10);  // evicts the previous k, never 1
  }
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(50), nullptr);
  EXPECT_EQ(cache.find(49), nullptr);
}

TEST(LruCache, OverwriteUpdatesValueAndRecencyWithoutCounting) {
  IntCache cache(2);
  cache.insert(1, 10);
  cache.insert(2, 20);
  cache.insert(1, 11);  // overwrite: refreshes recency, no insertion count
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(3, 30);  // 2 is now LRU
  EXPECT_EQ(cache.find(2), nullptr);
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_EQ(*cache.find(1), 11);
}

// The accounting identity the metrics layer relies on: every accepted
// insert of a new key either occupies a fresh slot or displaces one, so
//   evictions == insertions - residents.
TEST(LruCache, EvictionCounterEqualsInsertionsMinusResidents) {
  IntCache cache(7);
  for (int k = 0; k < 100; ++k) cache.insert(k, k);
  EXPECT_EQ(cache.stats().insertions, 100u);
  EXPECT_EQ(cache.size(), 7u);
  EXPECT_EQ(cache.stats().evictions,
            cache.stats().insertions - cache.size());
}

TEST(LruCache, SetCapacityClearsEntriesButKeepsLifetimeCounters) {
  IntCache cache(4);
  cache.insert(1, 10);
  (void)cache.find(1);
  (void)cache.find(2);
  cache.set_capacity(8);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);  // generation gone
  EXPECT_EQ(cache.stats().insertions, 1u);  // lifetime counters survive
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.clear_stats();
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(LruCache, ClearDropsEntriesAndReusesSlots) {
  IntCache cache(3);
  for (int k = 0; k < 3; ++k) cache.insert(k, k);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int k = 10; k < 13; ++k) cache.insert(k, k);
  EXPECT_EQ(cache.size(), 3u);
  for (int k = 10; k < 13; ++k) EXPECT_NE(cache.find(k), nullptr);
}

// §5b hit-path contract: once warm, find() performs zero heap
// allocations — it is an index walk plus an intrusive-list splice.
TEST(LruCache, WarmHitsAreAllocationFree) {
  LruCache<std::uint64_t, int> cache(16);
  for (std::uint64_t k = 0; k < 16; ++k) cache.insert(k, static_cast<int>(k));
  bench::reset_alloc_counter();
  for (int rep = 0; rep < 1000; ++rep) {
    for (std::uint64_t k = 0; k < 16; ++k) {
      ASSERT_NE(cache.find(k), nullptr);
    }
  }
  EXPECT_EQ(bench::alloc_count(), 0u);
  EXPECT_EQ(cache.stats().hits, 16000u);
}

TEST(CacheStats, MergeAndHitRate) {
  CacheStats a{8, 2, 3, 1};
  CacheStats b{2, 8, 4, 2};
  a.merge(b);
  EXPECT_EQ(a.hits, 10u);
  EXPECT_EQ(a.misses, 10u);
  EXPECT_EQ(a.insertions, 7u);
  EXPECT_EQ(a.evictions, 3u);
  EXPECT_EQ(a.lookups(), 20u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(CacheStats{}.hit_rate(), 0.0);  // no division by zero
}

TEST(CacheStats, AppendJsonShape) {
  CacheStats s{3, 1, 2, 0};
  std::string out = "\"cache\": ";
  s.append_json(out);
  EXPECT_NE(out.find("\"hits\": 3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"misses\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"insertions\": 2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"evictions\": 0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"hit_rate\": 0.75"), std::string::npos) << out;
}

TEST(Fingerprint64, FramingDistinguishesSplitStreams) {
  // mix() is byte-oriented: identical byte streams hash identically
  // regardless of call chunking...
  Fingerprint64 a, b;
  a.mix("ab");
  a.mix("c");
  b.mix("a");
  b.mix("bc");
  EXPECT_EQ(a.value(), b.value());
  // ...so structured consumers must interleave separators, which do
  // change the digest.
  Fingerprint64 c;
  c.mix("ab");
  c.mix_byte(0x1F);
  c.mix("c");
  EXPECT_NE(c.value(), a.value());
}

TEST(Fingerprint64, ValueIsPureAndOfMatchesStreaming) {
  Fingerprint64 fp;
  fp.mix("hello");
  const std::uint64_t first = fp.value();
  EXPECT_EQ(fp.value(), first);  // value() does not consume state
  fp.mix(" world");
  EXPECT_NE(fp.value(), first);
  EXPECT_EQ(Fingerprint64::of("hello"), first);
}

TEST(Fingerprint64, SmallInputsDoNotCollide) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) {
    std::string s = "key-" + std::to_string(i);
    seen.insert(Fingerprint64::of(s));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
}  // namespace xaon::util
