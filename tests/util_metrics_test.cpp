#include "xaon/util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "xaon/util/probe.hpp"

namespace xaon::util {
namespace {

TEST(LatencyTrack, TracksExactExtremesAndCount) {
  LatencyTrack t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.quantile(0.5), 0u);
  t.add(100);
  t.add(7);
  t.add(900);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.min(), 7u);
  EXPECT_EQ(t.max(), 900u);  // exact, not the 1023 bucket bound
  EXPECT_EQ(t.sum(), 1007u);
  EXPECT_NEAR(t.mean(), 1007.0 / 3.0, 1e-9);
}

TEST(LatencyTrack, QuantileMatchesHistogramBucketing) {
  LatencyTrack t;
  for (std::uint64_t v = 1; v <= 64; ++v) t.add(v);
  // Median sample is 32 -> bucket [32,63].
  EXPECT_EQ(t.quantile(0.5), 63u);
  EXPECT_EQ(t.quantile(1.0), 127u);  // 64 lives in [64,127]
  EXPECT_EQ(t.max(), 64u);           // but the exact max is kept
}

TEST(LatencyTrack, MergeCombinesDistributions) {
  LatencyTrack a, b;
  a.add(4);
  a.add(8);
  b.add(2);
  b.add(1024);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 1024u);
  EXPECT_EQ(a.sum(), 1038u);
  LatencyTrack empty;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 4u);
  empty.merge(a);  // adopt
  EXPECT_EQ(empty.count(), 4u);
  EXPECT_EQ(empty.min(), 2u);
}

TEST(CounterAndGauge, Basics) {
  Counter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value, 42u);
  Counter c2;
  c2.inc(8);
  c.merge(c2);
  EXPECT_EQ(c.value, 50u);

  Gauge g;
  g.set(5);
  g.set(11);
  g.set(3);
  EXPECT_EQ(g.value, 3);
  EXPECT_EQ(g.high, 11);
}

TEST(WorkerMetrics, RecordsPerStageAndPerMessage) {
  WorkerMetrics w;
  w.record_stage(Stage::kParse, 100);
  w.record_stage(Stage::kRoute, 1000);
  w.record_stage(Stage::kSerialize, 200);
  w.record_message(1500);
  w.record_message(2500);
  EXPECT_EQ(w.stage(Stage::kParse).count(), 1u);
  EXPECT_EQ(w.stage(Stage::kRoute).max(), 1000u);
  EXPECT_EQ(w.stage(Stage::kForward).count(), 0u);
  EXPECT_EQ(w.messages(), 2u);
  EXPECT_NEAR(w.busy_seconds(), 4000e-9, 1e-15);
}

TEST(MetricsSnapshot, MergesWorkersAndComputesImbalance) {
  WorkerMetrics a, b;
  for (int i = 0; i < 100; ++i) {
    a.record_stage(Stage::kParse, 10);
    a.record_message(50);
  }
  for (int i = 0; i < 50; ++i) {
    b.record_stage(Stage::kParse, 30);
    b.record_message(70);
  }
  MetricsSnapshot snap;
  snap.add_worker(a);
  snap.add_worker(b);
  EXPECT_EQ(snap.workers.size(), 2u);
  EXPECT_EQ(snap.workers[0].messages, 100u);
  EXPECT_EQ(snap.workers[1].messages, 50u);
  EXPECT_EQ(snap.messages_total(), 150u);
  EXPECT_EQ(snap.stages[0].count(), 150u);
  EXPECT_EQ(snap.stages[0].min(), 10u);
  EXPECT_EQ(snap.stages[0].max(), 30u);
  EXPECT_EQ(snap.message.count(), 150u);
  // max/mean: 100 / 75.
  EXPECT_NEAR(snap.imbalance(), 100.0 / 75.0, 1e-12);
  EXPECT_NEAR(snap.busy_seconds_total(), (100 * 50 + 50 * 70) * 1e-9, 1e-15);
}

TEST(MetricsSnapshot, EmptyImbalanceIsZero) {
  MetricsSnapshot snap;
  EXPECT_EQ(snap.imbalance(), 0.0);
  WorkerMetrics idle;
  snap.add_worker(idle);
  EXPECT_EQ(snap.imbalance(), 0.0);  // 0 messages: no ratio to report
}

TEST(MetricsSnapshot, SurfacesProbeRegistry) {
  // Probes and metrics share one registry and one dump path: a site
  // registered through util::probe shows up in the snapshot.
  const std::uint32_t id =
      probe::register_site("metrics.test.site", probe::SiteKind::kLoop);
  MetricsSnapshot snap;
  snap.capture_probe_sites();
  ASSERT_GT(snap.probes.size(), id);
  bool found = false;
  for (const auto& site : snap.probes) {
    if (site.name == "metrics.test.site") {
      EXPECT_EQ(site.kind, probe::SiteKind::kLoop);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsSnapshot, JsonDumpCarriesStagesWorkersAndProbes) {
  probe::register_site("metrics.test.json", probe::SiteKind::kData);
  WorkerMetrics w;
  w.record_stage(Stage::kParse, 10);
  w.record_stage(Stage::kForward, 40);
  w.record_message(64);
  MetricsSnapshot snap;
  snap.add_worker(w);
  snap.capture_probe_sites();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"serialize\""), std::string::npos);
  EXPECT_NE(json.find("\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\""), std::string::npos);
  EXPECT_NE(json.find("metrics.test.json"), std::string::npos);
  // Message track: quantiles come from the bucketed histogram (64 is
  // in [64,127] -> 127), the max stays exact.
  EXPECT_NE(json.find("\"message\": {\"count\": 1"), std::string::npos);
  // Structural sanity: braces and brackets balance.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(WorkerMetrics, ArenaGaugesTrackFootprintAndHighWater) {
  WorkerMetrics w;
  w.record_arena(4096, 60 * 1024);
  w.record_arena(2048, 62 * 1024);  // smaller message; high-water sticks
  EXPECT_EQ(w.arena_allocated().value, 2048);
  EXPECT_EQ(w.arena_allocated().high, 4096);
  EXPECT_EQ(w.arena_retained().value, 62 * 1024);
  EXPECT_EQ(w.arena_retained().high, 62 * 1024);
}

TEST(MetricsSnapshot, MergesArenaGaugesAndDumpsThem) {
  WorkerMetrics a;
  a.record_arena(1000, 3000);
  WorkerMetrics b;
  b.record_arena(500, 8000);
  MetricsSnapshot snap;
  snap.add_worker(a);
  snap.add_worker(b);
  // Gauge::merge: values sum across workers, highs keep the max.
  EXPECT_EQ(snap.arena_allocated.value, 1500);
  EXPECT_EQ(snap.arena_allocated.high, 1000);
  EXPECT_EQ(snap.arena_retained.value, 11000);
  EXPECT_EQ(snap.arena_retained.high, 8000);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"arena\": {\"allocated_bytes\": 1500"),
            std::string::npos);
  EXPECT_NE(json.find("\"retained_high_bytes\": 8000"), std::string::npos);
}

TEST(StageNames, AreStable) {
  EXPECT_EQ(stage_name(Stage::kParse), "parse");
  EXPECT_EQ(stage_name(Stage::kRoute), "route");
  EXPECT_EQ(stage_name(Stage::kSerialize), "serialize");
  EXPECT_EQ(stage_name(Stage::kForward), "forward");
}

}  // namespace
}  // namespace xaon::util
