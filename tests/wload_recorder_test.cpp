#include "xaon/wload/recorder.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xaon::wload {
namespace {

TEST(Recorder, LoadSpanChunked) {
  TraceRecorder rec;
  char buf[64];
  probe::ScopedRecorder guard(&rec);
  probe::load(buf, 64);
  const auto stats = uarch::compute_stats(rec.trace());
  EXPECT_EQ(stats.loads, 4u);  // 64 / 16-byte chunks
  EXPECT_EQ(stats.stores, 0u);
}

TEST(Recorder, StoreSpanChunked) {
  TraceRecorder rec;
  char buf[100];
  probe::ScopedRecorder guard(&rec);
  probe::store(buf, 100);
  EXPECT_EQ(uarch::compute_stats(rec.trace()).stores, 7u);  // ceil(100/16)
}

TEST(Recorder, AddressRemappingIsDeterministicAndDense) {
  RecorderConfig config;
  config.data_base = 0x4000'0000;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  auto heap = std::make_unique<char[]>(3 * 4096);
  probe::load(heap.get(), 16);
  probe::load(heap.get() + 8192, 16);
  const auto& trace = rec.trace();
  ASSERT_EQ(trace.size(), 2u);
  // First-touch order: first page -> data_base, third page -> +4096.
  EXPECT_EQ(trace[0].addr & ~0xFFFull, 0x4000'0000ull);
  EXPECT_EQ(trace[1].addr & ~0xFFFull, 0x4000'1000ull);
  // Offsets within the page are preserved.
  EXPECT_EQ(trace[0].addr & 0xFFF,
            reinterpret_cast<std::uintptr_t>(heap.get()) & 0xFFF);
  EXPECT_EQ(rec.pages_mapped(), 2u);
}

TEST(Recorder, SamePageMapsOnce) {
  TraceRecorder rec;
  probe::ScopedRecorder guard(&rec);
  char buf[4096];
  probe::load(buf, 16);
  probe::load(buf + 64, 16);
  EXPECT_LE(rec.pages_mapped(), 2u);  // may straddle one page boundary
  const auto& t = rec.trace();
  EXPECT_EQ(t[1].addr - t[0].addr, 64u);  // relative layout preserved
}

TEST(Recorder, BranchCarriesSitePcAndOutcome) {
  TraceRecorder rec;
  probe::ScopedRecorder guard(&rec);
  const auto site = probe::site("test.rec.branch", probe::SiteKind::kLoop);
  probe::branch(site, true);
  probe::branch(site, false);
  const auto& t = rec.trace();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].kind, uarch::OpKind::kBranch);
  EXPECT_TRUE(t[0].taken);
  EXPECT_FALSE(t[1].taken);
  EXPECT_EQ(t[0].pc, t[1].pc);  // same site -> same predictor PC
}

TEST(Recorder, DistinctSitesDistinctPcs) {
  TraceRecorder rec;
  probe::ScopedRecorder guard(&rec);
  const auto a = probe::site("test.rec.site_a", probe::SiteKind::kData);
  const auto b = probe::site("test.rec.site_b", probe::SiteKind::kData);
  probe::branch(a, true);
  probe::branch(b, true);
  EXPECT_NE(rec.trace()[0].pc, rec.trace()[1].pc);
}

TEST(Recorder, PcsStayInCodeFootprint) {
  RecorderConfig config;
  config.code_base = 0x0100'0000;
  config.code_footprint_bytes = 4096;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  const auto site = probe::site("test.rec.fp", probe::SiteKind::kLoop);
  char buf[16];
  for (int i = 0; i < 5000; ++i) {
    probe::alu(3);
    probe::load(buf, 16);
    probe::branch(site, i % 3 != 0);
  }
  for (const auto& op : rec.trace()) {
    EXPECT_GE(op.pc, 0x0100'0000u);
    EXPECT_LT(op.pc, 0x0100'1000u);
  }
}

TEST(Recorder, AluScale) {
  RecorderConfig config;
  config.alu_scale = 2.0;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  probe::alu(10);
  EXPECT_EQ(uarch::compute_stats(rec.trace()).alu, 20u);
}

TEST(Recorder, AluBatchCap) {
  RecorderConfig config;
  config.max_alu_batch = 8;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  probe::alu(1000);
  EXPECT_EQ(uarch::compute_stats(rec.trace()).alu, 8u);
}

TEST(Recorder, ComputeExpansionInjectsConfiguredMix) {
  RecorderConfig config;
  config.compute_expansion = 4.0;
  config.expansion_branch_fraction = 0.3;
  config.expansion_memory_fraction = 0.3;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  char buf[4096];
  for (int i = 0; i < 200; ++i) probe::load(buf, 64);
  const auto stats = uarch::compute_stats(rec.trace());
  // 200*4 recorded loads trigger ~4x injected ops.
  EXPECT_GT(stats.total, 3000u);
  const double branch_frac = stats.branch_fraction();
  EXPECT_GT(branch_frac, 0.15);
  EXPECT_LT(branch_frac, 0.35);
}

TEST(Recorder, ExpansionHotRegionIsSmall) {
  RecorderConfig config;
  config.compute_expansion = 5.0;
  config.expansion_hot_bytes = 8 * 1024;
  config.expansion_warm_fraction = 0.0;
  TraceRecorder rec(config);
  probe::ScopedRecorder guard(&rec);
  char buf[64];
  for (int i = 0; i < 500; ++i) probe::load(buf, 64);
  std::set<std::uint64_t> lines;
  for (const auto& op : rec.trace()) {
    if ((op.kind == uarch::OpKind::kLoad ||
         op.kind == uarch::OpKind::kStore) &&
        op.addr >= config.data_base + 0x0800'0000ull) {
      lines.insert(op.addr / 64);
    }
  }
  EXPECT_LE(lines.size(), 8u * 1024u / 64u);
  EXPECT_GT(lines.size(), 16u);
}

TEST(Recorder, ZeroExpansionInjectsNothing) {
  TraceRecorder rec;  // default expansion 0
  probe::ScopedRecorder guard(&rec);
  char buf[64];
  probe::load(buf, 64);
  EXPECT_EQ(rec.trace().size(), 4u);
}

TEST(Recorder, TakeTraceResets) {
  TraceRecorder rec;
  probe::ScopedRecorder guard(&rec);
  probe::alu(5);
  auto t = rec.take_trace();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(rec.trace().empty());
}

}  // namespace
}  // namespace xaon::wload
