// Differential proof of the bulk-scanning kernels: every compiled
// implementation (scalar / SWAR / SSE2 / AVX2) must agree byte-for-byte
// with the scalar reference on randomized inputs, on every length 0..64
// against exact-sized heap buffers (the sanitize preset turns any
// one-past-the-end vector load into an ASan report), and on the
// classifier edge bytes 0x00 / 0x7F / 0x80 / 0xFF. Also covers the
// dispatch plumbing (impl names, env-independent set_impl, counters)
// and the consumer-level differential: the XML parser must produce the
// same documents under every impl and under probe capture (where the
// scalar probe-annotated loops take over).

#include "xaon/util/scan.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "xaon/util/probe.hpp"
#include "xaon/util/rng.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/chars.hpp"
#include "xaon/xml/parser.hpp"

namespace xaon::util::scan {
namespace {

std::vector<Impl> available_impls() {
  std::vector<Impl> impls;
  for (std::size_t i = 0; i < kImplCount; ++i) {
    const auto impl = static_cast<Impl>(i);
    if (impl_available(impl)) impls.push_back(impl);
  }
  return impls;
}

/// Restores the CPU-best dispatch when a test that switches impls ends.
struct ImplGuard {
  ~ImplGuard() { set_impl(best_impl()); }
};

/// Copies `s` into an exactly-sized heap allocation so ASan flags any
/// kernel read past `p + n` — a right-sized std::string would hide tail
/// overreads inside its capacity slack.
struct ExactBuf {
  explicit ExactBuf(std::string_view s)
      : mem(s.empty() ? nullptr : new char[s.size()]), n(s.size()) {
    if (n != 0) std::memcpy(mem.get(), s.data(), n);
  }
  const char* data() const { return mem.get(); }
  std::unique_ptr<char[]> mem;
  std::size_t n;
};

/// Runs every kernel under every available impl on `s` (via an
/// exact-sized buffer) and checks each against the scalar reference.
void check_all_kernels(std::string_view s, const ByteClass& cls) {
  ImplGuard guard;
  const ExactBuf buf(s);
  ASSERT_EQ(set_impl(Impl::kScalar), Impl::kScalar);
  const std::size_t ref_find = find_byte(buf.data(), buf.n, 'x');
  const std::size_t ref_any = find_any_of(buf.data(), buf.n, cls);
  const std::size_t ref_skip = skip_while_class(buf.data(), buf.n, cls);
  const std::size_t ref_crlf = find_crlf(buf.data(), buf.n);
  const std::size_t ref_name = match_name_run(buf.data(), buf.n);
  const std::size_t ref_ws = skip_xml_whitespace(buf.data(), buf.n);
  const std::size_t ref_markup = find_markup_or_amp(buf.data(), buf.n);
  for (Impl impl : available_impls()) {
    ASSERT_EQ(set_impl(impl), impl);
    const auto name = impl_name(impl);
    EXPECT_EQ(find_byte(buf.data(), buf.n, 'x'), ref_find) << name;
    EXPECT_EQ(find_any_of(buf.data(), buf.n, cls), ref_any) << name;
    EXPECT_EQ(skip_while_class(buf.data(), buf.n, cls), ref_skip) << name;
    EXPECT_EQ(find_crlf(buf.data(), buf.n), ref_crlf) << name;
    EXPECT_EQ(match_name_run(buf.data(), buf.n), ref_name) << name;
    EXPECT_EQ(skip_xml_whitespace(buf.data(), buf.n), ref_ws) << name;
    EXPECT_EQ(find_markup_or_amp(buf.data(), buf.n), ref_markup) << name;
  }
}

TEST(ScanDispatch, ImplNamesRoundTrip) {
  for (std::size_t i = 0; i < kImplCount; ++i) {
    const auto impl = static_cast<Impl>(i);
    Impl parsed = Impl::kScalar;
    ASSERT_TRUE(parse_impl(impl_name(impl), &parsed)) << impl_name(impl);
    EXPECT_EQ(parsed, impl);
  }
  Impl parsed = Impl::kAvx2;
  EXPECT_FALSE(parse_impl("neon", &parsed));
  EXPECT_EQ(parsed, Impl::kAvx2);  // untouched on failure
}

TEST(ScanDispatch, ScalarAndSwarAlwaysAvailable) {
  EXPECT_TRUE(impl_available(Impl::kScalar));
  EXPECT_TRUE(impl_available(Impl::kSwar));
}

TEST(ScanDispatch, SetImplActivatesAvailableOnly) {
  ImplGuard guard;
  for (Impl impl : available_impls()) {
    EXPECT_EQ(set_impl(impl), impl);
    EXPECT_EQ(active_impl(), impl);
  }
  if (!impl_available(Impl::kAvx2)) {
    const Impl before = active_impl();
    EXPECT_EQ(set_impl(Impl::kAvx2), before);  // refused, unchanged
  }
}

TEST(ScanDispatch, BestImplIsAvailable) {
  EXPECT_TRUE(impl_available(best_impl()));
}

TEST(ScanCounters, BytesAndCallsAccumulate) {
  reset_thread_counters();
  const std::string s(100, 'a');
  EXPECT_EQ(find_byte(s.data(), s.size(), 'x'), 100u);
  EXPECT_EQ(skip_xml_whitespace(s.data(), s.size()), 0u);
  const Counters& c = thread_counters();
  EXPECT_EQ(c.calls, 2u);
  EXPECT_EQ(c.bytes, 100u);  // the return values, summed
  reset_thread_counters();
  EXPECT_EQ(thread_counters().calls, 0u);
  EXPECT_EQ(thread_counters().bytes, 0u);
}

TEST(ScanByteClass, MembershipMatchesDefinition) {
  ByteClass cls = ByteClass::of("<&");
  for (unsigned c = 0; c < 256; ++c) {
    EXPECT_EQ(cls.contains(static_cast<unsigned char>(c)),
              c == '<' || c == '&')
        << c;
  }
  EXPECT_TRUE(cls.high_uniform());
  EXPECT_FALSE(cls.high_member());
  cls.add_high();
  EXPECT_TRUE(cls.high_uniform());
  EXPECT_TRUE(cls.high_member());
  for (unsigned c = 0x80; c < 256; ++c) {
    EXPECT_TRUE(cls.contains(static_cast<unsigned char>(c)));
  }
}

TEST(ScanByteClass, EdgeBytes) {
  // 0x00, 0x7F, 0x80, 0xFF exercise both bitmap ends and both nibble
  // table corners (and, for 0x80/0xFF, the non-uniform high path).
  const unsigned char edges[] = {0x00, 0x7F, 0x80, 0xFF};
  for (unsigned char e : edges) {
    ByteClass cls;
    cls.add(e);
    for (unsigned c = 0; c < 256; ++c) {
      EXPECT_EQ(cls.contains(static_cast<unsigned char>(c)), c == e) << +e;
    }
    if (e >= 0x80) {
      EXPECT_FALSE(cls.high_uniform());
    } else {
      EXPECT_TRUE(cls.high_uniform());
    }
  }
}

TEST(ScanKernels, MatchNameRunAgreesWithIsNameChar) {
  // Place every byte value after a name-char prefix long enough to land
  // the probe byte inside a full vector block for every width.
  ImplGuard guard;
  for (unsigned c = 0; c < 256; ++c) {
    std::string s(40, 'a');
    s += static_cast<char>(c);
    s += "tail";
    const std::size_t expect =
        xml::is_name_char(static_cast<char>(c)) ? 45u : 40u;
    const ExactBuf buf(s);
    for (Impl impl : available_impls()) {
      ASSERT_EQ(set_impl(impl), impl);
      // A stop inside "tail"? 't','a','i','l' are all name chars, so a
      // name-char probe byte runs to the end of the buffer.
      const std::size_t got = match_name_run(buf.data(), buf.n);
      EXPECT_EQ(got, expect) << impl_name(impl) << " byte " << c;
    }
  }
}

TEST(ScanKernels, SkipXmlWhitespaceAgreesWithIsSpace) {
  ImplGuard guard;
  for (unsigned c = 0; c < 256; ++c) {
    std::string s(40, ' ');
    s += static_cast<char>(c);
    s.append(10, ' ');
    const std::size_t expect = xml::is_space(static_cast<char>(c)) ? 51u : 40u;
    const ExactBuf buf(s);
    for (Impl impl : available_impls()) {
      ASSERT_EQ(set_impl(impl), impl);
      EXPECT_EQ(skip_xml_whitespace(buf.data(), buf.n), expect)
          << impl_name(impl) << " byte " << c;
    }
  }
}

TEST(ScanKernels, EveryLengthZeroTo64TailSafe) {
  // Exact-sized heap buffers at every length 0..64: under the sanitize
  // preset any vector load past p+n is an ASan report, and the results
  // must still agree across impls. The content cycles all four edge
  // bytes plus matches for every kernel.
  static const char kCycle[] = "a<b& \t\r\nx-._:09AZ\x00\x7f\x80\xff\r\n\r";
  const std::string_view cycle(kCycle, sizeof(kCycle) - 1);
  ByteClass cls = ByteClass::of("<&\r");
  for (std::size_t len = 0; len <= 64; ++len) {
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s += cycle[i % cycle.size()];
    check_all_kernels(s, cls);
  }
}

TEST(ScanKernels, LoneTrailingCrIsNotCrlf) {
  ImplGuard guard;
  for (std::size_t len : {1u, 8u, 9u, 16u, 17u, 31u, 32u, 33u, 64u}) {
    std::string s(len, 'a');
    s.back() = '\r';
    const ExactBuf buf(s);
    for (Impl impl : available_impls()) {
      ASSERT_EQ(set_impl(impl), impl);
      EXPECT_EQ(find_crlf(buf.data(), buf.n), buf.n)
          << impl_name(impl) << " len " << len;
    }
  }
}

TEST(ScanKernels, CrlfStraddlingBlockBoundaries) {
  // A CRLF pair at every offset of a 70-byte buffer crosses the 8/16/32
  // block edges (including the overlapped next-byte load at i+width).
  ImplGuard guard;
  for (std::size_t at = 0; at + 1 < 70; ++at) {
    std::string s(70, 'a');
    s[at] = '\r';
    s[at + 1] = '\n';
    const ExactBuf buf(s);
    for (Impl impl : available_impls()) {
      ASSERT_EQ(set_impl(impl), impl);
      EXPECT_EQ(find_crlf(buf.data(), buf.n), at)
          << impl_name(impl) << " at " << at;
    }
  }
}

TEST(ScanKernels, RandomizedDifferential) {
  // Random buffers at block-boundary-straddling lengths, with the
  // special bytes dense enough that every kernel both matches and runs
  // long stretches. Random ByteClasses cover uniform and non-uniform
  // high halves (the AVX2 classifier's fast and fallback paths).
  Xoshiro256ss rng(0xC0FFEE);
  static const char kSpecials[] = "<&\r\n\t 'x\"-:._";
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = rng.next_below(160);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.next_below(4) == 0) {
        s += kSpecials[rng.next_below(sizeof(kSpecials) - 1)];
      } else {
        s += static_cast<char>(rng.next_below(256));
      }
    }
    ByteClass cls;
    const std::size_t members = 1 + rng.next_below(8);
    for (std::size_t m = 0; m < members; ++m) {
      cls.add(static_cast<unsigned char>(rng.next_below(128)));
    }
    if (rng.next_below(3) == 0) {
      cls.add_high();  // uniform-high member class
    } else if (rng.next_below(3) == 0) {
      cls.add(static_cast<unsigned char>(128 + rng.next_below(128)));
    }
    check_all_kernels(s, cls);
  }
}

TEST(ScanKernels, NullDataAtZeroLength) {
  // string_view{}.data() may be nullptr; kernels must not touch it.
  const ByteClass cls = ByteClass::of("x");
  EXPECT_EQ(find_byte(nullptr, 0, 'x'), 0u);
  EXPECT_EQ(find_any_of(nullptr, 0, cls), 0u);
  EXPECT_EQ(skip_while_class(nullptr, 0, cls), 0u);
  EXPECT_EQ(find_crlf(nullptr, 0), 0u);
  EXPECT_EQ(match_name_run(nullptr, 0), 0u);
  EXPECT_EQ(skip_xml_whitespace(nullptr, 0), 0u);
  EXPECT_EQ(find_markup_or_amp(nullptr, 0), 0u);
}

// --- consumer-level differential -------------------------------------------

/// Null recorder: installing it flips the parser onto the probe-mode
/// scalar loops without recording anything.
class NullRecorder : public probe::Recorder {
 public:
  void on_load(const void*, std::uint32_t) override {}
  void on_store(const void*, std::uint32_t) override {}
  void on_branch(std::uint32_t, bool) override {}
  void on_alu(std::uint32_t) override {}
};

/// Canonical serialization of a parse outcome: success flag, error
/// details, and a structural walk of the document.
std::string parse_fingerprint(std::string_view doc) {
  const xml::ParseResult r = xml::parse(doc);
  std::string out = r.ok ? "ok\n" : "error\n";
  if (!r.ok) {
    out += r.error.message;
    out += format("@%zu line %zu col %zu\n", r.error.offset, r.error.line,
                  r.error.column);
    return out;
  }
  // Walk the DOM depth-first.
  struct Walk {
    static void node(const xml::Node* n, std::string& out) {
      for (; n != nullptr; n = n->next_sibling) {
        out += format("%d[", static_cast<int>(n->type));
        out.append(n->qname);
        out += '|';
        out.append(n->text);
        for (const xml::Attr* a = n->first_attr; a != nullptr; a = a->next) {
          out += ' ';
          out.append(a->qname);
          out += '=';
          out.append(a->value);
        }
        out += ']';
        node(n->first_child, out);
        out += '\n';
      }
    }
  };
  Walk::node(r.document.root(), out);
  return out;
}

TEST(ScanXmlDifferential, SameDocumentsUnderEveryImplAndProbeMode) {
  const std::string_view docs[] = {
      "<root/>",
      "<a><b>hello</b><c>world</c></a>",
      "<a>  lots   of   text with &amp; entities &#x20AC; </a>",
      R"(<item id="42" name="wid get" note="a&#9;b&quot;c"/>)",
      "<a>\n<b>\n</wrong>\n</a>",  // error: line/column must agree too
      "<a><![CDATA[raw < & data]]><!-- comment --><?pi data?></a>",
      "<ns:a xmlns:ns='u'>x<ns:b attr='&lt;'/> </ns:a>",
      "<a>unterminated",
      "<a v='missing",
      "<!DOCTYPE d [<!ENTITY x 'y'>]><d>text</d>",
  };
  ImplGuard guard;
  for (std::string_view doc : docs) {
    ASSERT_EQ(set_impl(Impl::kScalar), Impl::kScalar);
    const std::string ref = parse_fingerprint(doc);
    for (Impl impl : available_impls()) {
      ASSERT_EQ(set_impl(impl), impl);
      EXPECT_EQ(parse_fingerprint(doc), ref) << impl_name(impl) << ": " << doc;
    }
    // Probe capture active: the scalar probe-annotated loops take over
    // and must land on the identical outcome.
    NullRecorder rec;
    probe::ScopedRecorder scoped(&rec);
    EXPECT_EQ(parse_fingerprint(doc), ref) << "probe mode: " << doc;
  }
}

TEST(ScanXmlDifferential, ProbeModeRecordsLexSites) {
  // The fallback contract, observed from the recorder's side: with a
  // recorder installed the per-byte loops run and report the xml.lex
  // branch sites that perf_shapes_test's Table 5/6 reproduction needs.
  class CountingRecorder : public NullRecorder {
   public:
    void on_branch(std::uint32_t, bool) override { ++branches; }
    std::uint64_t branches = 0;
  };
  CountingRecorder rec;
  {
    probe::ScopedRecorder scoped(&rec);
    const auto r = xml::parse("<a>some content text</a>");
    ASSERT_TRUE(r.ok);
  }
  // 16+ content bytes -> at least that many content_scan branch events.
  EXPECT_GE(rec.branches, 16u);
}

}  // namespace
}  // namespace xaon::util::scan
