#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "xaon/util/spsc_queue.hpp"
#include "xaon/util/thread_pool.hpp"

namespace xaon::util {
namespace {

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, FullRejectsPush) {
  SpscQueue<int> q(4);
  std::size_t pushed = 0;
  while (q.try_push(1)) ++pushed;
  EXPECT_GE(pushed, 4u);
  EXPECT_FALSE(q.try_push(1));
  q.try_pop();
  EXPECT_TRUE(q.try_push(2));
}

TEST(SpscQueue, EmptyFlag) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  q.try_push(1);
  EXPECT_FALSE(q.empty());
  q.try_pop();
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, CrossThreadTransferPreservesAllItems) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 100000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      if (auto v = q.try_pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    while (!q.try_push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(7)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      in_flight.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace xaon::util
