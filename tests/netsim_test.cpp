#include <gtest/gtest.h>

#include <vector>

#include "xaon/netsim/link.hpp"
#include "xaon/netsim/netperf.hpp"
#include "xaon/netsim/simulator.hpp"
#include "xaon/netsim/tcp.hpp"

namespace xaon::netsim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] {
    ++fired;
    sim.after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingIntoPastAborts) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.at(50, [] {}), "past");
}

TEST(CpuResource, SerializesWork) {
  CpuResource cpu;
  EXPECT_EQ(cpu.acquire(0, 100), 100);
  EXPECT_EQ(cpu.acquire(50, 100), 200);   // queued behind first
  EXPECT_EQ(cpu.acquire(500, 100), 600);  // idle gap
  EXPECT_EQ(cpu.busy_total(), 300);
}

TEST(Link, SerializationAndLatency) {
  Simulator sim;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.latency_ns = 1000;
  cfg.frame_overhead_bytes = 0;
  Link link(sim, cfg);
  SimTime arrival = 0;
  link.transmit(1250, [&](std::uint32_t) { arrival = sim.now(); });
  sim.run();
  // 1250 B at 1 Gbps = 10 us serialize + 1 us latency.
  EXPECT_EQ(arrival, 10000 + 1000);
}

TEST(Link, BackToBackFramesQueue) {
  Simulator sim;
  LinkConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.latency_ns = 0;
  cfg.frame_overhead_bytes = 0;
  Link link(sim, cfg);
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.transmit(1250, [&](std::uint32_t) { arrivals.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 10000);
  EXPECT_EQ(arrivals[1], 20000);  // serialized after the first
  EXPECT_EQ(arrivals[2], 30000);
  EXPECT_EQ(link.stats().frames, 3u);
  EXPECT_EQ(link.stats().payload_bytes, 3750u);
}

TEST(Link, MtuEnforced) {
  Simulator sim;
  Link link(sim, Link::gigabit_ethernet());
  EXPECT_DEATH(link.transmit(2000, [](std::uint32_t) {}), "MTU");
}

TEST(Tcp, DeliversAllBytes) {
  Simulator sim;
  Link data(sim, Link::gigabit_ethernet());
  Link acks(sim, Link::gigabit_ethernet());
  TcpStream stream(sim, data, acks, TcpConfig{});
  std::uint64_t received = 0;
  stream.set_on_deliver([&](std::uint32_t b) { received += b; });
  stream.send(1'000'000);
  sim.run();
  EXPECT_EQ(received, 1'000'000u);
  EXPECT_EQ(stream.delivered(), 1'000'000u);
  EXPECT_TRUE(stream.idle());
  EXPECT_EQ(stream.stats().acks_received, stream.stats().segments_sent);
}

TEST(Tcp, SlowStartGrowsWindow) {
  Simulator sim;
  Link data(sim, Link::gigabit_ethernet());
  Link acks(sim, Link::gigabit_ethernet());
  TcpConfig cfg;
  cfg.initial_cwnd_segments = 2;
  TcpStream stream(sim, data, acks, cfg);
  stream.send(2'000'000);
  sim.run();
  EXPECT_GT(stream.stats().cwnd_bytes, 2 * cfg.mss);
}

TEST(Netperf, GigabitEndToEndSaturatesAt94Percent) {
  // The paper's Figure 2: all configurations reach ~936-940 Mbps on
  // GigE because TCP/IP + Ethernet framing caps goodput at ~94%.
  auto result = run_tcp_stream(Link::gigabit_ethernet(), TcpConfig{},
                               64 * 1024 * 1024);
  EXPECT_GT(result.goodput_mbps, 900.0);
  EXPECT_LT(result.goodput_mbps, 950.0);
  EXPECT_EQ(result.bytes_delivered, 64u * 1024u * 1024u);
}

TEST(Netperf, CpuBoundWhenHostIsSlow) {
  // Slow host: 20 us of CPU per segment caps throughput far below
  // the wire rate.
  TcpConfig cfg;
  cfg.sender_cpu_ns_per_segment = 20'000;
  CpuResource cpu;
  auto result = run_tcp_stream(Link::gigabit_ethernet(), cfg,
                               16 * 1024 * 1024, &cpu, nullptr);
  // 1460 B / 20 us = 584 Mbps ceiling.
  EXPECT_LT(result.goodput_mbps, 600.0);
  EXPECT_GT(result.goodput_mbps, 400.0);
}

TEST(Netperf, LoopbackSharedCpuIsTheBottleneck) {
  // Loopback: netperf and netserver share one CPU; the wire is nearly
  // free. Throughput = f(CPU per byte), not f(bandwidth).
  TcpConfig cfg;
  cfg.mss = 16384;  // loopback large MTU
  cfg.sender_cpu_ns_per_byte = 0.05;
  cfg.receiver_cpu_ns_per_byte = 0.05;
  CpuResource cpu;
  auto result = run_tcp_stream(Link::loopback(), cfg, 64 * 1024 * 1024,
                               &cpu, &cpu);
  // 0.1 ns/B combined -> ~80 Gbps ceiling; must be far above GigE yet
  // at or below the CPU ceiling (well under the 100 Gbps "wire").
  EXPECT_GT(result.goodput_mbps, 10'000.0);
  EXPECT_LT(result.goodput_mbps, 81'000.0);
}

TEST(Netperf, FasterCpuFasterLoopback) {
  auto run_with = [](double ns_per_byte) {
    TcpConfig cfg;
    cfg.mss = 16384;
    cfg.sender_cpu_ns_per_byte = ns_per_byte;
    cfg.receiver_cpu_ns_per_byte = ns_per_byte;
    CpuResource cpu;
    return run_tcp_stream(Link::loopback(), cfg, 16 * 1024 * 1024, &cpu,
                          &cpu)
        .goodput_mbps;
  };
  EXPECT_GT(run_with(0.05), run_with(0.2));
}

TEST(Netperf, DeterministicResults) {
  auto a = run_tcp_stream(Link::gigabit_ethernet(), TcpConfig{},
                          8 * 1024 * 1024);
  auto b = run_tcp_stream(Link::gigabit_ethernet(), TcpConfig{},
                          8 * 1024 * 1024);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
  EXPECT_DOUBLE_EQ(a.goodput_mbps, b.goodput_mbps);
}

}  // namespace
}  // namespace xaon::netsim
