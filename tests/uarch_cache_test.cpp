#include "xaon/uarch/cache.hpp"

#include <gtest/gtest.h>

namespace xaon::uarch {
namespace {

TEST(Cache, HitAfterFill) {
  Cache c(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x13F, false).hit);   // same line
  EXPECT_FALSE(c.access(0x140, false).hit);  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, 64B lines, 8 sets -> lines mapping to set 0: 0, 8, 16 (x64).
  Cache c(CacheConfig{1024, 64, 2});
  const std::uint64_t a = 0 * 64, b = 8 * 64, d = 16 * 64;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);        // a most recent
  c.access(d, false);        // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c(CacheConfig{1024, 64, 2});
  const std::uint64_t a = 0, b = 8 * 64, d = 16 * 64;
  c.access(a, true);  // dirty
  c.access(b, false);
  auto r = c.access(d, false);  // evicts a (dirty)
  EXPECT_TRUE(r.writeback);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(CacheConfig{1024, 64, 2});
  c.access(0, false);
  c.access(8 * 64, false);
  auto r = c.access(16 * 64, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(CacheConfig{1024, 64, 2});
  c.access(0, false);
  c.access(0, true);  // hit, now dirty
  c.access(8 * 64, false);
  auto r = c.access(16 * 64, false);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, Invalidate) {
  Cache c(CacheConfig{1024, 64, 2});
  c.access(0x100, true);
  EXPECT_TRUE(c.invalidate(0x100));  // dirty
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_FALSE(c.invalidate(0x100));  // already gone
  c.access(0x200, false);
  EXPECT_FALSE(c.invalidate(0x200));  // clean
}

TEST(Cache, FillDoesNotCountAccess) {
  Cache c(CacheConfig{1024, 64, 2});
  c.fill(0x100);
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.access(0x100, false).hit);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache c(CacheConfig{4096, 64, 4});  // 4 KB
  // Stream 64 KB twice: second pass still misses (no reuse captured).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
      c.access(a, false);
    }
  }
  EXPECT_GT(c.stats().miss_rate(), 0.95);
}

TEST(Cache, WorkingSetSmallerThanCacheHits) {
  Cache c(CacheConfig{64 * 1024, 64, 8});
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t a = 0; a < 4 * 1024; a += 64) {
      c.access(a, false);
    }
  }
  // Only the first pass misses.
  EXPECT_LT(c.stats().miss_rate(), 0.11);
}

TEST(Cache, BiggerCacheNeverMissesMore) {
  // Property: on the same trace, a 2x cache with same geometry has <=
  // misses (LRU inclusion property holds for same-assoc doubling of
  // sets in practice on sequential/strided traces used here).
  CacheConfig small{8 * 1024, 64, 8};
  CacheConfig big{16 * 1024, 64, 8};
  Cache cs(small), cb(big);
  std::uint64_t addr = 0;
  for (int i = 0; i < 20000; ++i) {
    addr = (addr * 1103515245 + 12345) % (32 * 1024);
    cs.access(addr, i % 7 == 0);
    cb.access(addr, i % 7 == 0);
  }
  EXPECT_LE(cb.stats().misses, cs.stats().misses);
}

TEST(Cache, StatsResetKeepsContents) {
  Cache c(CacheConfig{1024, 64, 2});
  c.access(0x40, false);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.access(0x40, false).hit);  // line still present
}

TEST(CacheConfig, SetMath) {
  CacheConfig c{32 * 1024, 64, 8};
  EXPECT_EQ(c.num_sets(), 64u);
}

}  // namespace
}  // namespace xaon::uarch
