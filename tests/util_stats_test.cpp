#include "xaon/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "xaon/util/rng.hpp"

namespace xaon::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256ss rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LogHistogram, QuantileBounds) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  // Median of 1..1000 is ~500 -> bucket [512,1023] or [256,511].
  const std::uint64_t q50 = h.quantile(0.5);
  EXPECT_GE(q50, 255u);
  EXPECT_LE(q50, 1023u);
  EXPECT_GE(h.quantile(1.0), 1000u - 1);
}

TEST(LogHistogram, ZeroGoesToFirstBucket) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.quantile(0.0), 1u);
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0);  // interpolated
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Geomean, KnownValue) {
  EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, -2.0}), 0.0);
}

}  // namespace
}  // namespace xaon::util
