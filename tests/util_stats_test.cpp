#include "xaon/util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "xaon/util/rng.hpp"

namespace xaon::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256ss rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LogHistogram, QuantileBounds) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  // Median of 1..1000 is ~500 -> bucket [512,1023] or [256,511].
  const std::uint64_t q50 = h.quantile(0.5);
  EXPECT_GE(q50, 255u);
  EXPECT_LE(q50, 1023u);
  EXPECT_GE(h.quantile(1.0), 1000u - 1);
}

TEST(LogHistogram, ZeroGoesToFirstBucket) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.quantile(0.0), 1u);
}

// Differential: util::percentile (exact, interpolating) vs
// LogHistogram::quantile (power-of-two bucketed) on shared samples.
// The histogram's contract: quantile(q) is the upper bound of the
// bucket holding the sample of rank floor(q*(n-1)) — so it is >= that
// sample and < 2x it (bucket upper bound 2^(b+1)-1 < 2*2^b).
TEST(LogHistogram, DifferentialAgainstExactPercentile) {
  Xoshiro256ss rng(0xD1FF);
  LogHistogram h;
  std::vector<std::uint64_t> samples;
  std::vector<double> exact_samples;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = 1 + rng.next() % (1u << 20);
    h.add(v);
    samples.push_back(v);
    exact_samples.push_back(static_cast<double>(v));
  }
  std::sort(samples.begin(), samples.end());

  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const std::size_t lo = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    const std::uint64_t rank_sample = samples[lo];
    const std::uint64_t bucketed = h.quantile(q);
    EXPECT_GE(bucketed, rank_sample) << "q=" << q;
    EXPECT_LT(bucketed, 2 * rank_sample) << "q=" << q;
    // And against the interpolating exact percentile: the bucketed
    // value brackets it within the same factor-of-two envelope (the
    // interpolated value lies between adjacent rank samples).
    const double exact = percentile(exact_samples, q);
    EXPECT_GE(static_cast<double>(bucketed) * 2.0, exact) << "q=" << q;
  }
}

// Power-of-two boundaries: 2^k-1 is the last value of bucket k-1, 2^k
// the first of bucket k — the reported quantile jumps across exactly
// that edge.
TEST(LogHistogram, PowerOfTwoBucketBoundaries) {
  for (int k = 1; k <= 20; ++k) {
    const std::uint64_t below = (1ull << k) - 1;
    const std::uint64_t at = 1ull << k;
    LogHistogram hb, ha;
    hb.add(below);
    ha.add(at);
    EXPECT_EQ(hb.quantile(1.0), below) << "k=" << k;          // own upper bound
    EXPECT_EQ(ha.quantile(1.0), (2ull << k) - 1) << "k=" << k;
    EXPECT_EQ(hb.bucket(k - 1), 1u);
    EXPECT_EQ(ha.bucket(k), 1u);
  }
}

TEST(LogHistogram, Bucket63Saturates) {
  LogHistogram h;
  h.add(1ull << 63);
  h.add(~0ull);
  EXPECT_EQ(h.bucket(63), 2u);
  // The top bucket has no finite upper bound; quantile reports the
  // all-ones sentinel instead of (2<<63)-1 wrapping to garbage.
  EXPECT_EQ(h.quantile(0.0), ~0ull);
  EXPECT_EQ(h.quantile(1.0), ~0ull);
}

TEST(LogHistogram, MergeMatchesSequentialFill) {
  Xoshiro256ss rng(99);
  LogHistogram all, a, b;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next() % (1u << 16);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (int i = 0; i < LogHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), all.bucket(i)) << "bucket " << i;
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0);  // interpolated
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Geomean, KnownValue) {
  EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({1.0, -2.0}), 0.0);
}

}  // namespace
}  // namespace xaon::util
