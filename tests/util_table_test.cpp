#include "xaon/util/table.hpp"

#include <gtest/gtest.h>

namespace xaon::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("Table X");
  t.set_header({"Workload", "1CPm", "2CPm"});
  t.add_row({"SV", "1.02", "1.05"});
  t.add_row({"FR", "2.24", "2.96"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("Workload"), std::string::npos);
  EXPECT_NE(out.find("1.02"), std::string::npos);
  EXPECT_NE(out.find("2.96"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, TsvEmission) {
  TextTable t("T");
  t.set_header({"w", "a"});
  t.add_row({"r1", "5"});
  t.set_tsv(true);
  const std::string out = t.render();
  EXPECT_NE(out.find("T\tr1\ta\t5"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t("T");
  t.set_header({"name", "v"});
  t.add_row({"long-name-here", "1"});
  t.add_row({"x", "22222"});
  const std::string out = t.render();
  // Every data line must have the same length (aligned columns).
  std::size_t expected = 0;
  std::size_t start = 0;
  int checked = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    std::string_view line(out.data() + start, end - start);
    if (!line.empty() && line.front() == '|') {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected);
      ++checked;
    }
    start = end + 1;
  }
  EXPECT_EQ(checked, 3);  // header + 2 rows
}

TEST(BarChart, RendersBarsProportionally) {
  BarChart c("Fig");
  c.set_series({"loopback"});
  c.set_width(10);
  c.add_group("A", {100.0});
  c.add_group("B", {50.0});
  const std::string out = c.render();
  EXPECT_NE(out.find("##########"), std::string::npos);  // full bar for max
  EXPECT_NE(out.find("100.00"), std::string::npos);
  EXPECT_NE(out.find("50.00"), std::string::npos);
}

TEST(BarChart, MultiSeriesGroups) {
  BarChart c("Fig");
  c.set_series({"SV", "CBR", "FR"});
  c.add_group("1CPm", {1.0, 2.0, 3.0});
  c.add_group("2CPm", {1.5, 2.5, 3.5});
  const std::string out = c.render();
  EXPECT_NE(out.find("1CPm"), std::string::npos);
  EXPECT_NE(out.find("CBR"), std::string::npos);
}

TEST(BarChart, ZeroValuesDoNotDivideByZero) {
  BarChart c("Fig");
  c.set_series({"s"});
  c.add_group("g", {0.0});
  EXPECT_NE(c.render().find("0.00"), std::string::npos);
}

}  // namespace
}  // namespace xaon::util
