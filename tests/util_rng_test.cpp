#include "xaon/util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

namespace xaon::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Xoshiro256ss rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  const double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Rng, MeanOfUniformIsHalf) {
  Xoshiro256ss rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace xaon::util
