#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

#include "xaon/util/arena.hpp"

// Death/regression tests for the arena lifetime guards (DESIGN.md
// §"Arena lifetime contract"): the runtime half of the xlint arena
// rules. A use-after-reset or an overflow between allocations must be
// a deterministic crash in guarded builds, not a silent wrong answer.
//
// Canary behavior is testable in every build (the mode is an explicit
// constructor argument); the poison tests need ASan and skip elsewhere
// — the `sanitize` preset runs them for real.

namespace xaon::util {
namespace {

using GuardMode = Arena::GuardMode;

TEST(ArenaLifetimeDeath, CanaryCatchesOverflowBetweenAllocations) {
  EXPECT_DEATH(
      {
        Arena arena(512, GuardMode::kCanary);
        auto* p = static_cast<char*>(arena.allocate(24, 8));
        // One byte past the user region lands in the red-zone gap.
        std::memset(p, 0x00, 25);
        arena.reset();  // canary verification aborts here
      },
      "canary");
}

TEST(ArenaLifetimeDeath, CanaryCatchesOverflowBeforeRelease) {
  EXPECT_DEATH(
      {
        Arena arena(512, GuardMode::kCanary);
        auto* p = static_cast<char*>(arena.allocate(16, 16));
        p[20] = 'X';  // deep into the gap
        arena.release();
      },
      "canary");
}

TEST(ArenaLifetimeDeath, PoisonCatchesUseAfterReset) {
#if !XAON_HAS_ASAN
  GTEST_SKIP() << "poison guard needs AddressSanitizer (sanitize preset)";
#else
  EXPECT_DEATH(
      {
        Arena arena(512, GuardMode::kPoison);
        std::string_view v = arena.intern("stale soon");
        arena.reset();
        // The deliberate bug: reading through a view that outlived the
        // reset. The retained chunk is wholly poisoned, so this dies
        // with a use-after-poison report instead of returning stale
        // bytes.
        volatile char c = v.data()[0];
        (void)c;
      },
      "use-after-poison");
#endif
}

TEST(ArenaLifetimeDeath, PoisonCatchesReadPastAllocation) {
#if !XAON_HAS_ASAN
  GTEST_SKIP() << "poison guard needs AddressSanitizer (sanitize preset)";
#else
  EXPECT_DEATH(
      {
        Arena arena(512, GuardMode::kPoison);
        auto* p = static_cast<char*>(arena.allocate(16, 8));
        // The red-zone gap after the user region stays poisoned even
        // while the allocation is live.
        volatile char c = p[16];
        (void)c;
      },
      "use-after-poison");
#endif
}

TEST(ArenaLifetime, PoisonedArenaStillWorksForWellBehavedCode) {
  // The guard must be invisible to correct code: full per-message
  // cycles with in-bounds access run clean in every mode.
  for (GuardMode mode :
       {GuardMode::kOff, GuardMode::kCanary, GuardMode::kPoison}) {
    Arena arena(1024, mode);
    for (int cycle = 0; cycle < 10; ++cycle) {
      std::string_view v = arena.intern("per-message payload");
      EXPECT_EQ(v, "per-message payload");
      auto* block = static_cast<char*>(arena.allocate(64, 8));
      std::memset(block, cycle, 64);
      arena.reset();
    }
  }
}

TEST(ArenaLifetime, InternedViewValidUntilReset) {
  Arena arena(512, Arena::default_guard_mode());
  std::string_view v = arena.intern("lives to the reset boundary");
  EXPECT_EQ(v, "lives to the reset boundary");
  arena.reset();  // v now dangles — and is NOT touched again
  std::string_view w = arena.intern("fresh derivation");
  EXPECT_EQ(w, "fresh derivation");
}

}  // namespace
}  // namespace xaon::util
