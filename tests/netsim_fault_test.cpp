// Link-level fault injection: corruption, extra delay, reordering —
// unified with the legacy loss knob under one seeded stream — and TCP
// recovery over every fault class.

#include <gtest/gtest.h>

#include <vector>

#include "xaon/netsim/link.hpp"
#include "xaon/netsim/netperf.hpp"
#include "xaon/netsim/simulator.hpp"
#include "xaon/netsim/tcp.hpp"

namespace xaon::netsim {
namespace {

TEST(LinkFaults, CorruptedFramesAreDiscardedNotDelivered) {
  Simulator sim;
  LinkConfig cfg = Link::gigabit_ethernet();
  cfg.faults.corrupt = 0.2;
  Link link(sim, cfg);
  int delivered = 0;
  int discarded = 0;
  for (int i = 0; i < 2000; ++i) {
    link.transmit(
        100, [&](std::uint32_t) { ++delivered; },
        [&](std::uint32_t) { ++discarded; });
  }
  sim.run();
  EXPECT_EQ(delivered + discarded, 2000);
  EXPECT_NEAR(static_cast<double>(discarded) / 2000.0, 0.2, 0.04);
  EXPECT_EQ(link.stats().corrupted_frames,
            static_cast<std::uint64_t>(discarded));
  EXPECT_EQ(link.stats().dropped_frames, 0u);
}

TEST(LinkFaults, LossRateAndDropRateShareOneStream) {
  // loss_rate is sugar for faults.drop: configuring the same total rate
  // either way produces the identical drop schedule.
  auto outcomes = [](double loss_rate, double drop_rate) {
    Simulator sim;
    LinkConfig cfg = Link::gigabit_ethernet();
    cfg.loss_rate = loss_rate;
    cfg.faults.drop = drop_rate;
    Link link(sim, cfg);
    std::vector<int> delivered;
    for (int i = 0; i < 300; ++i) {
      link.transmit(
          64, [&, i](std::uint32_t) { delivered.push_back(i); },
          [](std::uint32_t) {});
    }
    sim.run();
    return delivered;
  };
  EXPECT_EQ(outcomes(0.2, 0.0), outcomes(0.0, 0.2));
  EXPECT_EQ(outcomes(0.1, 0.1), outcomes(0.0, 0.2));
}

TEST(LinkFaults, DelayedFramesArriveLateButArrive) {
  Simulator sim;
  LinkConfig cfg = Link::gigabit_ethernet();
  cfg.faults.delay = 1.0;  // every frame
  cfg.extra_delay_ns = 1'000'000;
  Link link(sim, cfg);
  SimTime arrival = 0;
  link.transmit(100, [&](std::uint32_t) { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(link.stats().delayed_frames, 1u);
  EXPECT_GE(arrival, cfg.latency_ns + cfg.extra_delay_ns);
}

TEST(LinkFaults, ReorderedFrameIsOvertaken) {
  Simulator sim;
  LinkConfig cfg = Link::gigabit_ethernet();
  cfg.faults.reorder = 0.5;
  cfg.reorder_hold_ns = 2'000'000;  // far larger than serialization gap
  cfg.loss_seed = 3;
  Link link(sim, cfg);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.transmit(100, [&, i](std::uint32_t) { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_GT(link.stats().reordered_frames, 0u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(LinkFaults, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    LinkConfig cfg = Link::gigabit_ethernet();
    cfg.faults.drop = 0.05;
    cfg.faults.corrupt = 0.05;
    cfg.faults.delay = 0.1;
    cfg.faults.reorder = 0.1;
    cfg.loss_seed = 0xC0FFEE;
    Link link(sim, cfg);
    std::vector<int> delivered;
    for (int i = 0; i < 400; ++i) {
      link.transmit(
          256, [&, i](std::uint32_t) { delivered.push_back(i); },
          [](std::uint32_t) {});
    }
    sim.run();
    return std::make_tuple(delivered, link.stats().dropped_frames,
                           link.stats().corrupted_frames,
                           link.stats().delayed_frames,
                           link.stats().reordered_frames);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(LinkFaults, CleanLinkBehavesExactlyAsBefore) {
  // A link with no fault configuration must not consume randomness or
  // change behaviour: every frame delivers, nothing is counted.
  Simulator sim;
  Link link(sim, Link::gigabit_ethernet());
  int delivered = 0;
  for (int i = 0; i < 500; ++i) {
    link.transmit(100, [&](std::uint32_t) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 500);
  EXPECT_EQ(link.stats().dropped_frames, 0u);
  EXPECT_EQ(link.stats().corrupted_frames, 0u);
  EXPECT_EQ(link.fault_injector().stats().faults(), 0u);
}

TEST(TcpOverFaults, AllBytesDeliveredThroughEveryFaultClass) {
  Simulator sim;
  LinkConfig faulty = Link::gigabit_ethernet();
  faulty.faults.drop = 0.01;
  faulty.faults.corrupt = 0.01;
  faulty.faults.delay = 0.05;
  faulty.faults.reorder = 0.02;
  Link data(sim, faulty);
  Link acks(sim, Link::gigabit_ethernet());
  TcpStream stream(sim, data, acks, TcpConfig{});
  stream.send(2 * 1024 * 1024);
  sim.run();
  EXPECT_EQ(stream.delivered(), 2u * 1024u * 1024u);
  EXPECT_TRUE(stream.idle());
  EXPECT_GT(stream.stats().retransmits, 0u);
  EXPECT_GT(data.stats().corrupted_frames, 0u);
  EXPECT_GT(data.stats().reordered_frames, 0u);
}

TEST(TcpOverFaults, CorruptionDegradesGoodputLikeLoss) {
  auto goodput = [](double corrupt) {
    LinkConfig cfg = Link::gigabit_ethernet();
    cfg.faults.corrupt = corrupt;
    return run_tcp_stream(cfg, TcpConfig{}, 4 * 1024 * 1024).goodput_mbps;
  };
  EXPECT_GT(goodput(0.0), goodput(0.02));
}

}  // namespace
}  // namespace xaon::netsim
