// Property tests for the tag-skeleton fingerprint (label: cache) — the
// key of the CBR structural routing cache. The contract under test
// (dom.hpp): value-only mutations preserve the digest, structural
// mutations change it, and distinct skeletons do not collide in
// practice (collision smoke over >10k generated shapes).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "xaon/aon/messages.hpp"
#include "xaon/xml/parser.hpp"

namespace xaon::xml {
namespace {

std::uint64_t fp_of(const std::string& doc_text,
                    const ParseOptions& options = {}) {
  ParseResult parsed = parse(doc_text, options);
  EXPECT_TRUE(parsed.ok) << parsed.error.message << " in: " << doc_text;
  return skeleton_fingerprint(parsed.document.root());
}

// ---- value-only mutations preserve the fingerprint -----------------

TEST(SkeletonFingerprint, TextValueChangeIsInvisible) {
  EXPECT_EQ(fp_of("<o><q>1</q></o>"), fp_of("<o><q>2</q></o>"));
  EXPECT_EQ(fp_of("<o><q>1</q></o>"), fp_of("<o><q>999999</q></o>"));
}

TEST(SkeletonFingerprint, AttributeValueChangeIsInvisible) {
  EXPECT_EQ(fp_of("<o id=\"1\"><q>1</q></o>"),
            fp_of("<o id=\"2\"><q>7</q></o>"));
}

TEST(SkeletonFingerprint, CdataAndTextAreEquivalent) {
  // Both are text-like content at the same position; the CBR value
  // re-read treats them identically, so the skeleton must too.
  EXPECT_EQ(fp_of("<o><q>1</q></o>"),
            fp_of("<o><q><![CDATA[1]]></q></o>"));
}

TEST(SkeletonFingerprint, InterElementWhitespaceIsInvisible) {
  // Default parse options drop whitespace-only text nodes, so
  // pretty-printing does not change the shape.
  EXPECT_EQ(fp_of("<o><a>1</a><b>2</b></o>"),
            fp_of("<o>\n  <a>1</a>\n  <b>2</b>\n</o>"));
}

TEST(SkeletonFingerprint, RealOrderMessagesSameSeedSameShape) {
  aon::MessageSpec a, b;
  a.seed = b.seed = 42;
  a.quantity = 1;
  b.quantity = 2;  // the CBR routing value — a value-only difference
  EXPECT_EQ(fp_of(aon::make_order_message(a)),
            fp_of(aon::make_order_message(b)));
}

// ---- structural mutations change the fingerprint -------------------

TEST(SkeletonFingerprint, ElementInsertChangesDigest) {
  EXPECT_NE(fp_of("<o><q>1</q></o>"), fp_of("<o><q>1</q><x/></o>"));
}

TEST(SkeletonFingerprint, ElementDeleteChangesDigest) {
  EXPECT_NE(fp_of("<o><a/><b/></o>"), fp_of("<o><a/></o>"));
}

TEST(SkeletonFingerprint, ElementRenameChangesDigest) {
  EXPECT_NE(fp_of("<o><quantity>1</quantity></o>"),
            fp_of("<o><quality>1</quality></o>"));
}

TEST(SkeletonFingerprint, AttributeAddChangesDigest) {
  EXPECT_NE(fp_of("<o><q>1</q></o>"), fp_of("<o id=\"1\"><q>1</q></o>"));
}

TEST(SkeletonFingerprint, AttributeRenameChangesDigest) {
  EXPECT_NE(fp_of("<o id=\"1\"/>"), fp_of("<o key=\"1\"/>"));
}

TEST(SkeletonFingerprint, NamespaceChangeChangesDigest) {
  EXPECT_NE(fp_of("<o xmlns=\"urn:a\"><q>1</q></o>"),
            fp_of("<o xmlns=\"urn:b\"><q>1</q></o>"));
}

TEST(SkeletonFingerprint, TextPresenceIsStructural) {
  // <q></q> vs <q>1</q>: the cached plan records the *position* of a
  // text node, so its appearance/disappearance must re-key the cache.
  EXPECT_NE(fp_of("<o><q></q></o>"), fp_of("<o><q>1</q></o>"));
}

TEST(SkeletonFingerprint, NestingShapeIsStructural) {
  // Same elements, same document order, different parentage.
  EXPECT_NE(fp_of("<o><a><b/></a></o>"), fp_of("<o><a/><b/></o>"));
}

TEST(SkeletonFingerprint, SiblingSplitIsStructural) {
  // Name-boundary confusion: <ab/><c/> vs <a/><bc/> — separator bytes
  // in the digest must keep adjacent names from concatenating.
  EXPECT_NE(fp_of("<o><ab/><c/></o>"), fp_of("<o><a/><bc/></o>"));
}

TEST(SkeletonFingerprint, RealOrderMessagesDifferentSeedDifferentShape) {
  // Different seeds vary the filler element count — a structural
  // difference the cache must key on.
  aon::MessageSpec a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(fp_of(aon::make_order_message(a)),
            fp_of(aon::make_order_message(b)));
}

// ---- collision smoke -----------------------------------------------

// Generates the i-th distinct tree shape: each of 14 bits decides
// whether the next element nests one level deeper or starts a sibling,
// so every i in [0, 2^14) yields a structurally distinct document
// built from only two element names.
std::string shape_doc(unsigned i) {
  std::string doc = "<r>";
  unsigned depth = 0;
  for (int bit = 0; bit < 14; ++bit) {
    if ((i >> bit) & 1u) {
      doc += "<a>";
      ++depth;
    } else {
      doc += "<b/>";
    }
  }
  for (; depth > 0; --depth) doc += "</a>";
  doc += "</r>";
  return doc;
}

TEST(SkeletonFingerprint, NoCollisionsAcross16kDistinctShapes) {
  std::set<std::uint64_t> seen;
  const unsigned kShapes = 1u << 14;  // 16384 > the required 10k
  for (unsigned i = 0; i < kShapes; ++i) {
    const auto [it, fresh] = seen.insert(fp_of(shape_doc(i)));
    ASSERT_TRUE(fresh) << "collision at shape " << i;
  }
  EXPECT_EQ(seen.size(), kShapes);
}

TEST(SkeletonFingerprint, DeterministicAcrossReparses) {
  const std::string doc(aon::make_order_message({}));
  EXPECT_EQ(fp_of(doc), fp_of(doc));
}

}  // namespace
}  // namespace xaon::xml
