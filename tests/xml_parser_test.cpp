#include "xaon/xml/parser.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xaon::xml {
namespace {

TEST(XmlParser, MinimalDocument) {
  auto r = parse("<root/>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  ASSERT_NE(r.document.root(), nullptr);
  EXPECT_EQ(r.document.root()->qname, "root");
  EXPECT_EQ(r.document.root()->child_count, 0u);
}

TEST(XmlParser, NestedElementsAndText) {
  auto r = parse("<a><b>hello</b><c>world</c></a>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* a = r.document.root();
  ASSERT_EQ(a->child_count, 2u);
  const Node* b = a->child_element("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->text_content(), "hello");
  const Node* c = a->child_element("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->text_content(), "world");
}

TEST(XmlParser, Attributes) {
  auto r = parse(R"(<item id="42" name="widget" empty=""/>)");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* item = r.document.root();
  ASSERT_NE(item->attr("id"), nullptr);
  EXPECT_EQ(item->attr("id")->value, "42");
  EXPECT_EQ(item->attr("name")->value, "widget");
  EXPECT_EQ(item->attr("empty")->value, "");
  EXPECT_EQ(item->attr("missing"), nullptr);
}

TEST(XmlParser, SingleQuotedAttributes) {
  auto r = parse("<a x='1'/>");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->attr("x")->value, "1");
}

TEST(XmlParser, PredefinedEntities) {
  auto r = parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  EXPECT_EQ(r.document.root()->text_content(), "<tag> & \"q\" 'a'");
}

TEST(XmlParser, NumericCharacterReferences) {
  auto r = parse("<a>&#65;&#x42;&#x20AC;</a>");  // A, B, euro sign
  ASSERT_TRUE(r.ok) << r.error.to_string();
  EXPECT_EQ(r.document.root()->text_content(), "AB\xE2\x82\xAC");
}

TEST(XmlParser, EntitiesInAttributeValues) {
  auto r = parse(R"(<a v="&lt;&amp;&#33;"/>)");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->attr("v")->value, "<&!");
}

TEST(XmlParser, AttributeWhitespaceNormalization) {
  auto r = parse("<a v=\"x\ny\tz\"/>");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->attr("v")->value, "x y z");
}

TEST(XmlParser, CData) {
  auto r = parse("<a><![CDATA[<not-a-tag> & raw]]></a>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* t = r.document.root()->first_child;
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->type, NodeType::kCData);
  EXPECT_EQ(t->text, "<not-a-tag> & raw");
}

TEST(XmlParser, CommentsSkippedByDefault) {
  auto r = parse("<a><!-- hidden -->x</a>");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->child_count, 1u);
  EXPECT_EQ(r.document.root()->text_content(), "x");
}

TEST(XmlParser, CommentsKeptWhenRequested) {
  ParseOptions opt;
  opt.keep_comments = true;
  auto r = parse("<a><!-- hidden --></a>", opt);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.document.root()->child_count, 1u);
  EXPECT_EQ(r.document.root()->first_child->type, NodeType::kComment);
  EXPECT_EQ(r.document.root()->first_child->text, " hidden ");
}

TEST(XmlParser, ProcessingInstructions) {
  ParseOptions opt;
  opt.keep_pis = true;
  auto r = parse("<a><?php echo 1; ?></a>", opt);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* pi = r.document.root()->first_child;
  ASSERT_NE(pi, nullptr);
  EXPECT_EQ(pi->type, NodeType::kProcessingInstruction);
  EXPECT_EQ(pi->qname, "php");
  EXPECT_EQ(pi->text, "echo 1; ");
}

TEST(XmlParser, XmlDeclaration) {
  auto r = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  EXPECT_EQ(r.document.root()->qname, "a");
}

TEST(XmlParser, Bom) {
  auto r = parse("\xEF\xBB\xBF<a/>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
}

TEST(XmlParser, DoctypeSkipped) {
  auto r = parse(
      "<!DOCTYPE note SYSTEM \"note.dtd\" [<!ELEMENT note (#PCDATA)>]>"
      "<note>x</note>");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  EXPECT_EQ(r.document.root()->qname, "note");
}

TEST(XmlParser, NamespaceResolution) {
  auto r = parse(
      R"(<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">)"
      R"(<s:Body xmlns="urn:default"><order/></s:Body></s:Envelope>)");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* env = r.document.root();
  EXPECT_EQ(env->prefix, "s");
  EXPECT_EQ(env->local, "Envelope");
  EXPECT_EQ(env->ns_uri, "http://schemas.xmlsoap.org/soap/envelope/");
  const Node* body = env->first_child_element();
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->ns_uri, "http://schemas.xmlsoap.org/soap/envelope/");
  const Node* order = body->first_child_element();
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->prefix, "");
  EXPECT_EQ(order->ns_uri, "urn:default");  // default ns inherited
}

TEST(XmlParser, NamespaceScopeEndsWithElement) {
  auto r = parse(
      R"(<a><b xmlns:p="urn:x"><p:c/></b><d/></a>)");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  // Using p: outside <b> must fail.
  auto bad = parse(R"(<a><b xmlns:p="urn:x"/><p:c/></a>)");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.message.find("unbound"), std::string::npos);
}

TEST(XmlParser, XmlPrefixPredefined) {
  auto r = parse(R"(<a xml:lang="en"/>)");
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Attr* lang = r.document.root()->attr("xml:lang");
  ASSERT_NE(lang, nullptr);
  EXPECT_EQ(lang->ns_uri, "http://www.w3.org/XML/1998/namespace");
}

TEST(XmlParser, NamespaceDisabled) {
  ParseOptions opt;
  opt.namespace_aware = false;
  auto r = parse("<p:a/>", opt);  // unbound prefix ok when ns off
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->qname, "p:a");
  EXPECT_EQ(r.document.root()->local, "a");
  EXPECT_EQ(r.document.root()->ns_uri, "");
}

TEST(XmlParser, WhitespaceTextSkippedByDefault) {
  auto r = parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->child_count, 2u);
}

TEST(XmlParser, WhitespaceTextKeptWhenRequested) {
  ParseOptions opt;
  opt.keep_whitespace_text = true;
  auto r = parse("<a> <b/> </a>", opt);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.document.root()->child_count, 3u);
}

TEST(XmlParser, DepthLimit) {
  ParseOptions opt;
  opt.max_depth = 4;
  std::string deep;
  for (int i = 0; i < 6; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 6; ++i) deep += "</a>";
  auto r = parse(deep, opt);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.message.find("depth"), std::string::npos);
}

TEST(XmlParser, ErrorPositionsAreReported) {
  auto r = parse("<a>\n<b>\n</wrong>\n</a>");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error.line, 3u);
  EXPECT_NE(r.error.message.find("mismatched"), std::string::npos);
}

// Table-driven malformed-document rejection.
struct BadCase {
  const char* name;
  const char* input;
};

class XmlParserRejects : public ::testing::TestWithParam<BadCase> {};

TEST_P(XmlParserRejects, Rejects) {
  auto r = parse(GetParam().input);
  EXPECT_FALSE(r.ok) << GetParam().name << " should be rejected";
  EXPECT_FALSE(r.error.message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserRejects,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"text_only", "just text"},
        BadCase{"unclosed_root", "<a>"},
        BadCase{"mismatched_tags", "<a></b>"},
        BadCase{"two_roots", "<a/><b/>"},
        BadCase{"text_after_root", "<a/>trailing"},
        BadCase{"bare_ampersand", "<a>&</a>"},
        BadCase{"unknown_entity", "<a>&nope;</a>"},
        BadCase{"unterminated_entity", "<a>&amp</a>"},
        BadCase{"lt_in_attr", "<a v=\"<\"/>"},
        BadCase{"unquoted_attr", "<a v=1/>"},
        BadCase{"missing_attr_eq", "<a v \"1\"/>"},
        BadCase{"duplicate_attr", "<a v=\"1\" v=\"2\"/>"},
        BadCase{"dup_ns_attr", "<a xmlns:p=\"u\" xmlns:q=\"u\" p:x=\"1\" q:x=\"2\"/>"},
        BadCase{"no_space_between_attrs", "<a b=\"1\"c=\"2\"/>"},
        BadCase{"unterminated_comment", "<a><!-- x</a>"},
        BadCase{"double_dash_comment", "<a><!-- x -- y --></a>"},
        BadCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadCase{"unterminated_attr_value", "<a v=\"x/>"},
        BadCase{"unbound_prefix", "<p:a/>"},
        BadCase{"unbound_attr_prefix", "<a p:x=\"1\"/>"},
        BadCase{"bad_name_start", "<1a/>"},
        BadCase{"stray_close", "</a>"},
        BadCase{"bad_charref", "<a>&#xZZ;</a>"},
        BadCase{"charref_out_of_range", "<a>&#x110000;</a>"},
        BadCase{"charref_surrogate", "<a>&#xD800;</a>"},
        BadCase{"eof_in_tag", "<a b"},
        BadCase{"reserved_pi", "<a><?xml v?></a>"},
        BadCase{"double_colon", "<a:b:c xmlns:a=\"u\"/>"},
        BadCase{"empty_prefix", "<:a/>"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

TEST(XmlParser, FailureDiscardsDocument) {
  auto r = parse("<a><b></a>");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.document.root(), nullptr);
}

TEST(XmlParser, NodeCountTracksAllNodes) {
  auto r = parse("<a><b>t</b><c/></a>");
  ASSERT_TRUE(r.ok);
  // document + a + b + text + c = 5
  EXPECT_EQ(r.document.node_count(), 5u);
}

TEST(XmlParser, DeepRecursionWithinLimitParses) {
  std::string deep;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) deep += "<d>";
  deep += "x";
  for (int i = 0; i < depth; ++i) deep += "</d>";
  auto r = parse(deep);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const Node* n = r.document.root();
  int seen = 1;
  while ((n = n->first_child_element()) != nullptr) ++seen;
  EXPECT_EQ(seen, depth);
}

TEST(XmlParser, MixedContentOrderPreserved) {
  ParseOptions opt;
  opt.keep_whitespace_text = true;
  auto r = parse("<a>one<b/>two<c/>three</a>", opt);
  ASSERT_TRUE(r.ok);
  const Node* n = r.document.root()->first_child;
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->text, "one");
  n = n->next_sibling;
  EXPECT_EQ(n->qname, "b");
  n = n->next_sibling;
  EXPECT_EQ(n->text, "two");
  n = n->next_sibling;
  EXPECT_EQ(n->qname, "c");
  n = n->next_sibling;
  EXPECT_EQ(n->text, "three");
  EXPECT_EQ(n->next_sibling, nullptr);
}

TEST(XmlParser, LargeDocumentParses) {
  std::string doc = "<list>";
  for (int i = 0; i < 2000; ++i) {
    doc += "<item id=\"" + std::to_string(i) + "\">value-" +
           std::to_string(i) + "</item>";
  }
  doc += "</list>";
  auto r = parse(doc);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  EXPECT_EQ(r.document.root()->child_count, 2000u);
  EXPECT_EQ(count_elements(r.document.root()), 2001u);
}

}  // namespace
}  // namespace xaon::xml
