// Cross-module integration: messages travel through the simulated
// network as TCP segments, arrive chunk-by-chunk at the HTTP parser,
// flow through the AON pipelines, and the whole round trip is captured
// and replayed on the simulated hardware — every layer of the
// reproduction touching every other.

#include <gtest/gtest.h>

#include "xaon/aon/capture.hpp"
#include "xaon/aon/messages.hpp"
#include "xaon/aon/pipeline.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/netsim/link.hpp"
#include "xaon/netsim/simulator.hpp"
#include "xaon/netsim/tcp.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/xml/parser.hpp"

namespace xaon {
namespace {

TEST(Integration, MessageOverSimulatedTcpThroughPipeline) {
  // The wire bytes of a POST are streamed through the TCP model; the
  // receiver reassembles them incrementally into the HTTP parser and
  // hands the request to the CBR pipeline.
  const std::string wire = aon::make_post_wire();

  netsim::Simulator sim;
  netsim::Link data(sim, netsim::Link::gigabit_ethernet());
  netsim::Link acks(sim, netsim::Link::gigabit_ethernet());
  netsim::TcpStream stream(sim, data, acks, netsim::TcpConfig{});

  http::RequestParser parser;
  std::size_t offset = 0;
  stream.set_on_deliver([&](std::uint32_t bytes) {
    // Deliver the next `bytes` of the wire into the parser, segment by
    // segment, exactly as the kernel would.
    const std::string_view chunk =
        std::string_view(wire).substr(offset, bytes);
    offset += bytes;
    if (!parser.done() && !parser.failed()) parser.feed(chunk);
  });
  stream.send(wire.size());
  sim.run();

  ASSERT_TRUE(parser.done()) << parser.error();
  EXPECT_GT(stream.stats().segments_sent, 2u);  // 5KB spans several MSS

  aon::Pipeline cbr(aon::UseCase::kContentBasedRouting);
  const auto outcome = cbr.process(parser.request());
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.routed_primary);  // default message has quantity=1
}

TEST(Integration, LossyNetworkStillDeliversValidMessages) {
  const std::string wire = aon::make_post_wire();
  netsim::Simulator sim;
  netsim::LinkConfig lossy = netsim::Link::gigabit_ethernet();
  lossy.loss_rate = 0.05;
  netsim::Link data(sim, lossy);
  netsim::Link acks(sim, netsim::Link::gigabit_ethernet());
  netsim::TcpStream stream(sim, data, acks, netsim::TcpConfig{});

  std::uint64_t received = 0;
  stream.set_on_deliver([&](std::uint32_t bytes) { received += bytes; });
  stream.send(wire.size());
  sim.run();
  // TCP recovers every byte despite drops. NOTE: our simplified model
  // delivers retransmitted segments out of order, so we check volume,
  // not byte-exact reassembly (a real receiver reorders via sequence
  // numbers).
  EXPECT_EQ(received, wire.size());
}

TEST(Integration, SameMessageSameVerdictAcrossAllPipelines) {
  // One message, every use case, consistent outcomes.
  aon::MessageSpec spec;
  spec.quantity = 1;
  const std::string wire = aon::make_post_wire(spec);
  for (const auto use_case :
       {aon::UseCase::kForwardRequest, aon::UseCase::kContentBasedRouting,
        aon::UseCase::kSchemaValidation, aon::UseCase::kDeepInspection,
        aon::UseCase::kMessageSecurity}) {
    aon::Pipeline pipeline(use_case);
    const auto outcome = pipeline.process_wire(wire);
    EXPECT_TRUE(outcome.ok) << use_case_notation(use_case);
    EXPECT_TRUE(outcome.routed_primary)
        << use_case_notation(use_case) << ": " << outcome.detail;
    // Forwarded bytes always reparse as HTTP.
    http::RequestParser check;
    check.feed(outcome.forwarded_wire);
    EXPECT_TRUE(check.done()) << use_case_notation(use_case);
  }
}

TEST(Integration, CapturedTraceMatchesHostProcessingSemantics) {
  // The capture path and the host path run the same pipeline code:
  // outcomes agree, and the trace replays identically twice on the
  // same platform (simulator determinism end to end).
  aon::CaptureConfig config;
  config.messages = 6;
  const uarch::Trace trace = capture_use_case_trace(
      aon::UseCase::kContentBasedRouting, config);

  uarch::System a(uarch::platform_2lpx());
  uarch::System b(uarch::platform_2lpx());
  const auto ra = a.run({&trace});
  const auto rb = b.run({&trace});
  EXPECT_DOUBLE_EQ(ra.wall_ns, rb.wall_ns);
  EXPECT_EQ(ra.total.l2_misses, rb.total.l2_misses);
  EXPECT_EQ(ra.total.branch_mispredicted, rb.total.branch_mispredicted);
  EXPECT_EQ(ra.total.bus_transactions, rb.total.bus_transactions);
}

TEST(Integration, EndToEndThroughputChainIsConsistent) {
  // items_per_second() of a run must equal messages / wall time.
  aon::CaptureConfig config;
  config.messages = 8;
  const uarch::Trace trace =
      capture_use_case_trace(aon::UseCase::kForwardRequest, config);
  uarch::System system(uarch::platform_1cpm());
  const auto result = system.run({&trace});
  const double tput = result.items_per_second(8);
  EXPECT_NEAR(tput * result.wall_ns * 1e-9, 8.0, 1e-6);
}

}  // namespace
}  // namespace xaon
