// FaultInjector: deterministic replay, rate accuracy, and the
// zero-draw guarantee on fault-free schedules.

#include "xaon/util/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xaon::util {
namespace {

TEST(FaultInjector, FaultFreeScheduleConsumesNoRandomness) {
  FaultInjector injector(FaultRates{}, 42);
  Xoshiro256ss reference(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.next(), FaultKind::kNone);
  }
  // The internal stream is untouched: the next auxiliary draw matches a
  // fresh generator with the same seed.
  EXPECT_EQ(injector.rng().next(), reference.next());
  EXPECT_EQ(injector.stats().decisions, 100u);
  EXPECT_EQ(injector.stats().faults(), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultRates rates;
  rates.drop = 0.05;
  rates.corrupt = 0.05;
  rates.delay = 0.1;
  rates.reorder = 0.1;
  auto draw = [&rates] {
    FaultInjector injector(rates, 7);
    std::vector<FaultKind> out;
    for (int i = 0; i < 1000; ++i) out.push_back(injector.next());
    return out;
  };
  EXPECT_EQ(draw(), draw());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultRates rates;
  rates.drop = 0.3;
  FaultInjector a(rates, 1);
  FaultInjector b(rates, 2);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, RatesApproximatelyHonored) {
  FaultRates rates;
  rates.drop = 0.1;
  rates.corrupt = 0.05;
  rates.delay = 0.2;
  rates.reorder = 0.15;
  FaultInjector injector(rates, 123);
  const int n = 20000;
  for (int i = 0; i < n; ++i) injector.next();
  const FaultStats& s = injector.stats();
  EXPECT_NEAR(static_cast<double>(s.drops) / n, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(s.corruptions) / n, 0.05, 0.01);
  EXPECT_NEAR(static_cast<double>(s.delays) / n, 0.20, 0.015);
  EXPECT_NEAR(static_cast<double>(s.reorders) / n, 0.15, 0.015);
}

TEST(FaultInjector, ReseedRestartsTheSchedule) {
  FaultRates rates;
  rates.drop = 0.5;
  FaultInjector injector(rates, 99);
  std::vector<FaultKind> first;
  for (int i = 0; i < 50; ++i) first.push_back(injector.next());
  injector.reseed(99);
  EXPECT_EQ(injector.stats().decisions, 0u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(injector.next(), first[i]);
}

TEST(FaultInjector, KindNamesCoverAllClasses) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDrop), "drop");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCorrupt), "corrupt");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDelay), "delay");
  EXPECT_STREQ(fault_kind_name(FaultKind::kReorder), "reorder");
}

}  // namespace
}  // namespace xaon::util
