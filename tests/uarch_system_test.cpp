#include "xaon/uarch/system.hpp"

#include <gtest/gtest.h>

#include "xaon/uarch/platform.hpp"
#include "xaon/util/rng.hpp"

namespace xaon::uarch {
namespace {

/// Synthetic trace: `n` ops, mix of ALU/loads/stores/branches over a
/// working set of `ws_bytes` starting at `base`, with sequential or
/// random locality.
Trace make_trace(std::size_t n, std::uint64_t base, std::uint64_t ws_bytes,
                 bool sequential, double branch_frac = 0.2,
                 double mem_frac = 0.35, std::uint64_t seed = 1,
                 std::uint64_t step = 16) {
  util::Xoshiro256ss rng(seed);
  Trace t;
  t.reserve(n);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    op.pc = 0x400000 + (i % 256) * 4;  // small code loop
    const double r = rng.next_double();
    if (r < branch_frac) {
      op.kind = OpKind::kBranch;
      op.taken = rng.next_bool(0.8);
    } else if (r < branch_frac + mem_frac) {
      op.kind = rng.next_bool(0.3) ? OpKind::kStore : OpKind::kLoad;
      if (sequential) {
        op.addr = base + (seq % ws_bytes);
        seq += step;
      } else {
        op.addr = base + (rng.next_below(ws_bytes / 64)) * 64;
      }
    } else {
      op.kind = OpKind::kAlu;
    }
    t.push_back(op);
  }
  return t;
}

TEST(TraceStats, CountsKinds) {
  Trace t;
  t.push_back(Op{0, 0, OpKind::kAlu, 4, false});
  t.push_back(Op{0, 0, OpKind::kLoad, 4, false});
  t.push_back(Op{0, 0, OpKind::kBranch, 4, true});
  t.push_back(Op{0, 0, OpKind::kBranch, 4, false});
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.alu, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.branches, 2u);
  EXPECT_EQ(s.taken_branches, 1u);
  EXPECT_DOUBLE_EQ(s.branch_fraction(), 0.5);
}

TEST(System, RunsTraceAndCounts) {
  System sys(platform_1cpm());
  Trace t = make_trace(20000, 0x10000000, 16 * 1024, true);
  auto r = sys.run({&t});
  EXPECT_GT(r.wall_ns, 0.0);
  EXPECT_EQ(r.total.ops, 20000u);
  EXPECT_GT(r.total.inst_retired, 0u);
  EXPECT_GT(r.total.branch_retired, 0u);
  EXPECT_GT(r.total.l1d_accesses, 0u);
  EXPECT_GT(r.total.cpi(), 0.0);
}

TEST(System, DeterministicAcrossRuns) {
  Trace t = make_trace(30000, 0x10000000, 64 * 1024, false);
  System a(platform_2cpm()), b(platform_2cpm());
  Trace t2 = make_trace(30000, 0x20000000, 64 * 1024, false, 0.2, 0.35, 9);
  auto ra = a.run({&t, &t2});
  auto rb = b.run({&t, &t2});
  EXPECT_DOUBLE_EQ(ra.wall_ns, rb.wall_ns);
  EXPECT_EQ(ra.total.l2_misses, rb.total.l2_misses);
  EXPECT_EQ(ra.total.branch_mispredicted, rb.total.branch_mispredicted);
}

TEST(System, UopExpansionScalesInstRetired) {
  Trace t = make_trace(10000, 0x10000000, 8 * 1024, true);
  System pm(platform_1cpm());
  System xeon(platform_1lpx());
  auto rp = pm.run({&t});
  auto rx = xeon.run({&t});
  EXPECT_EQ(rp.total.ops, rx.total.ops);
  EXPECT_GT(rx.total.inst_retired,
            static_cast<std::uint64_t>(1.8 * rp.total.inst_retired));
  // Branch frequency consequently halves on Xeon (paper Table 5).
  EXPECT_GT(rp.total.branch_frequency(),
            1.8 * rx.total.branch_frequency());
}

TEST(System, CacheResidentBeatsStreaming) {
  System sys(platform_1cpm());
  Trace small = make_trace(50000, 0x10000000, 8 * 1024, false);
  Trace big = make_trace(50000, 0x20000000, 16 * 1024 * 1024, false);
  auto warm1 = sys.run({&small});
  auto r_small = sys.run({&small});
  sys.reset();
  auto warm2 = sys.run({&big});
  auto r_big = sys.run({&big});
  (void)warm1;
  (void)warm2;
  EXPECT_LT(r_small.total.cpi(), r_big.total.cpi());
  EXPECT_LT(r_small.total.l2mpi(), r_big.total.l2mpi());
  EXPECT_LT(r_small.total.btpi(), r_big.total.btpi());
}

TEST(System, DualCoreSpeedsUpIndependentWork) {
  Trace t1 = make_trace(40000, 0x10000000, 8 * 1024, false, 0.2, 0.3, 1);
  Trace t2 = make_trace(40000, 0x30000000, 8 * 1024, false, 0.2, 0.3, 2);
  System one(platform_1cpm());
  System two(platform_2cpm());
  // One core runs both traces back-to-back; two cores run them in
  // parallel.
  auto r1a = one.run({&t1});
  auto r1b = one.run({&t2});
  const double serial = r1a.wall_ns + r1b.wall_ns;
  auto r2 = two.run({&t1, &t2});
  EXPECT_LT(r2.wall_ns, serial);
  const double scaling = serial / r2.wall_ns;
  EXPECT_GT(scaling, 1.5);
  EXPECT_LE(scaling, 2.05);
}

TEST(System, SmtHelpsStallHeavyMoreThanComputeBound) {
  // The paper's central HT observation (Fig. 3): I/O(stall)-heavy
  // workloads gain more from Hyper-Threading than CPU-bound ones.
  auto scaling_for = [](double mem_frac, std::uint64_t ws) {
    Trace t1 = make_trace(40000, 0x10000000, ws, false, 0.15, mem_frac, 1);
    Trace t2 = make_trace(40000, 0x50000000, ws, false, 0.15, mem_frac, 2);
    System one(platform_1lpx());
    auto a = one.run({&t1});
    auto b = one.run({&t2});
    System ht(platform_2lpx());
    auto r = ht.run({&t1, &t2});
    return (a.wall_ns + b.wall_ns) / r.wall_ns;
  };
  const double compute_bound = scaling_for(0.05, 4 * 1024);
  const double stall_heavy = scaling_for(0.6, 32 * 1024 * 1024);
  EXPECT_GT(stall_heavy, compute_bound + 0.15);
  EXPECT_LT(compute_bound, 1.5);
  EXPECT_GT(stall_heavy, 1.4);
}

TEST(System, SharedL2ContendsUnderStreaming) {
  // Each core streams a 1.5 MB buffer: alone it fits the 2 MB shared L2
  // (near-zero steady-state misses); two cores together need 3 MB and
  // thrash it — the 2CPm contention mechanism behind the paper's lower
  // FR scaling on the dual-core Pentium M.
  const std::uint64_t kWs = 1536 * 1024;
  Trace t1 = make_trace(60000, 0x10000000, kWs, true, 0.1, 0.5, 1, 64);
  Trace t2 = make_trace(60000, 0x70000000, kWs, true, 0.1, 0.5, 2, 64);
  System one(platform_1cpm());
  auto warm = one.run({&t1});
  (void)warm;
  auto r1 = one.run({&t1});
  System two(platform_2cpm());
  auto warm2 = two.run({&t1, &t2});
  (void)warm2;
  auto r2 = two.run({&t1, &t2});
  EXPECT_GT(r2.total.l2mpi(), r1.total.l2mpi() * 2.0);
  EXPECT_GT(r2.total.bus_transactions, r1.total.bus_transactions);
}

TEST(System, CrossChipProducerConsumerPaysCoherence) {
  // Producer writes a buffer, consumer reads it: on 2PPx (separate
  // packages) this costs FSB interventions; on 2CPm the shared L2
  // absorbs it.
  const std::uint64_t kBuf = 0x40000000;
  Trace producer, consumer;
  for (int i = 0; i < 30000; ++i) {
    Op w;
    w.pc = 0x400000 + (i % 64) * 4;
    w.kind = OpKind::kStore;
    w.addr = kBuf + (static_cast<std::uint64_t>(i) * 64) % (256 * 1024);
    producer.push_back(w);
    Op r = w;
    r.kind = OpKind::kLoad;
    consumer.push_back(r);
  }
  System pm(platform_2cpm());
  System xeon2(platform_2ppx());
  auto rp = pm.run({&producer, &consumer});
  auto rx = xeon2.run({&producer, &consumer});
  EXPECT_GT(rx.total.coherence_invalidations, 0u);
  // Cross-package sharing generates far more bus transactions.
  EXPECT_GT(rx.total.bus_transactions, rp.total.bus_transactions);
}

TEST(System, IdleUnitsInflateSystemCpi) {
  // netperf end-to-end on a dual system: one busy unit + one idle unit
  // double the clockticks for the same instructions (paper Table 3).
  Trace t = make_trace(30000, 0x10000000, 16 * 1024, true);
  System one(platform_1lpx());
  System two(platform_2ppx());
  auto r1 = one.run({&t});
  auto r2 = two.run({&t});  // second unit idle
  EXPECT_NEAR(r2.total.cpi() / r1.total.cpi(), 2.0, 0.2);
}

TEST(System, PrefetchRaisesBusTrafficLowersStalls) {
  // PM's Smart Memory Access: more bus transactions (prefetch fills),
  // faster streaming.
  PlatformConfig with = platform_1cpm();
  PlatformConfig without = platform_1cpm();
  without.arch.prefetch.enabled = false;
  Trace t = make_trace(80000, 0x10000000, 8 * 1024 * 1024, true, 0.1, 0.5);
  System a(with), b(without);
  auto ra = a.run({&t});
  auto rb = b.run({&t});
  EXPECT_GT(ra.total.prefetch_fills, 0u);
  EXPECT_GT(ra.total.bus_transactions, rb.total.bus_transactions);
  EXPECT_LT(ra.wall_ns, rb.wall_ns);
}

TEST(System, RejectsTooManyTraces) {
  System sys(platform_1cpm());
  Trace t = make_trace(10, 0, 1024, true);
  EXPECT_DEATH(sys.run({&t, &t}), "more traces than hardware threads");
}

TEST(Platform, TableOneGeometries) {
  const PlatformConfig pm = platform_1cpm();
  EXPECT_EQ(pm.arch.l1d.size_bytes, 32u * 1024u);
  EXPECT_EQ(pm.l2.size_bytes, 2u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(pm.arch.freq_ghz, 1.83);
  const PlatformConfig xe = platform_1lpx();
  EXPECT_EQ(xe.arch.l1d.size_bytes, 16u * 1024u);
  EXPECT_EQ(xe.l2.size_bytes, 1u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(xe.arch.freq_ghz, 3.16);
  EXPECT_DOUBLE_EQ(xe.bus_freq_mhz, 667);
}

TEST(Platform, HardwareThreadCounts) {
  EXPECT_EQ(platform_1cpm().hardware_threads(), 1);
  EXPECT_EQ(platform_2cpm().hardware_threads(), 2);
  EXPECT_EQ(platform_1lpx().hardware_threads(), 1);
  EXPECT_EQ(platform_2lpx().hardware_threads(), 2);
  EXPECT_EQ(platform_2ppx().hardware_threads(), 2);
  EXPECT_EQ(all_platforms().size(), 5u);
}

TEST(Counters, DerivedMetricDefinitions) {
  Counters c;
  c.clockticks = 1000;
  c.inst_retired = 500;
  c.l2_misses = 5;
  c.bus_transactions = 10;
  c.branch_retired = 100;
  c.branch_mispredicted = 3;
  EXPECT_DOUBLE_EQ(c.cpi(), 2.0);
  EXPECT_DOUBLE_EQ(c.l2mpi(), 1.0);     // 5/500 as %
  EXPECT_DOUBLE_EQ(c.btpi(), 2.0);      // 10/500 as %
  EXPECT_DOUBLE_EQ(c.branch_frequency(), 20.0);
  EXPECT_DOUBLE_EQ(c.brmpr(), 3.0);
  Counters d = c;
  d += c;
  EXPECT_EQ(d.clockticks, 2000u);
  EXPECT_DOUBLE_EQ(d.cpi(), 2.0);
}

}  // namespace
}  // namespace xaon::uarch
