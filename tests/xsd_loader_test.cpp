#include "xaon/xsd/loader.hpp"

#include <gtest/gtest.h>

#include "xaon/xml/parser.hpp"
#include "xaon/xsd/validator.hpp"

namespace xaon::xsd {
namespace {

/// XSD equivalent of the programmatic order schema (the paper's SV
/// workload loads its schema from an XSD document like this one).
constexpr const char* kOrderXsd = R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="SkuType">
    <xs:restriction base="xs:string">
      <xs:pattern value="[A-Z]{2}-\d{3}"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="QuantityType">
    <xs:restriction base="xs:positiveInteger">
      <xs:maxInclusive value="1000"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="ItemType">
    <xs:sequence>
      <xs:element name="sku" type="SkuType"/>
      <xs:element name="quantity" type="QuantityType"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="item" type="ItemType" maxOccurs="unbounded"/>
        <xs:element name="total" type="xs:decimal" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:positiveInteger" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>)";

ValidationResult check(const Schema& schema, std::string_view doc) {
  auto parsed = xml::parse(doc);
  EXPECT_TRUE(parsed.ok) << parsed.error.to_string();
  Validator v(schema);
  return v.validate(parsed.document);
}

TEST(Loader, LoadsOrderSchema) {
  auto result = load_schema(kOrderXsd);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.schema.find_simple_type("SkuType"), nullptr);
  EXPECT_NE(result.schema.find_complex_type("ItemType"), nullptr);
  EXPECT_NE(result.schema.find_global_element("", "order"), nullptr);
  EXPECT_EQ(result.schema.global_elements().size(), 1u);
}

TEST(Loader, LoadedSchemaValidates) {
  auto result = load_schema(kOrderXsd);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema, R"(<order id="1">
    <customer>ACME</customer>
    <item><sku>AB-123</sku><quantity>5</quantity></item>
  </order>)").valid());
  EXPECT_FALSE(check(result.schema, R"(<order id="1">
    <customer>ACME</customer>
    <item><sku>invalid</sku><quantity>5</quantity></item>
  </order>)").valid());
  EXPECT_FALSE(check(result.schema, R"(<order id="0">
    <customer>ACME</customer>
    <item><sku>AB-123</sku><quantity>5</quantity></item>
  </order>)").valid());
}

TEST(Loader, ForwardTypeReferences) {
  // `order` references ItemType declared after it.
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="root">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="i" type="Later"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
    <xs:complexType name="Later">
      <xs:sequence>
        <xs:element name="leaf" type="xs:int"/>
      </xs:sequence>
    </xs:complexType>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(
      check(result.schema, "<root><i><leaf>1</leaf></i></root>").valid());
  EXPECT_FALSE(
      check(result.schema, "<root><i><leaf>x</leaf></i></root>").valid());
}

TEST(Loader, ElementRef) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="shared" type="xs:string"/>
    <xs:element name="root">
      <xs:complexType>
        <xs:sequence>
          <xs:element ref="shared" maxOccurs="2"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema,
                    "<root><shared>a</shared><shared>b</shared></root>")
                  .valid());
  EXPECT_FALSE(check(result.schema,
                     "<root><shared>a</shared><shared>b</shared>"
                     "<shared>c</shared></root>")
                   .valid());
}

TEST(Loader, ChoiceGroup) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="payment">
      <xs:complexType>
        <xs:choice>
          <xs:element name="card" type="xs:string"/>
          <xs:element name="cash" type="xs:decimal"/>
        </xs:choice>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema, "<payment><card>visa</card></payment>")
                  .valid());
  EXPECT_TRUE(check(result.schema, "<payment><cash>9.99</cash></payment>")
                  .valid());
  EXPECT_FALSE(check(result.schema,
                     "<payment><card>v</card><cash>1</cash></payment>")
                   .valid());
}

TEST(Loader, AllGroup) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="cfg">
      <xs:complexType>
        <xs:all>
          <xs:element name="host" type="xs:string"/>
          <xs:element name="port" type="xs:unsignedShort"/>
          <xs:element name="debug" type="xs:boolean" minOccurs="0"/>
        </xs:all>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema,
                    "<cfg><port>80</port><host>h</host></cfg>")
                  .valid());
  EXPECT_FALSE(check(result.schema, "<cfg><host>h</host></cfg>").valid());
}

TEST(Loader, NestedGroups) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="r">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="head" type="xs:string"/>
          <xs:choice minOccurs="0" maxOccurs="unbounded">
            <xs:element name="a" type="xs:int"/>
            <xs:sequence>
              <xs:element name="b1" type="xs:int"/>
              <xs:element name="b2" type="xs:int"/>
            </xs:sequence>
          </xs:choice>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema, "<r><head>x</head></r>").valid());
  EXPECT_TRUE(check(result.schema,
                    "<r><head>x</head><a>1</a><b1>2</b1><b2>3</b2><a>4</a></r>")
                  .valid());
  EXPECT_FALSE(
      check(result.schema, "<r><head>x</head><b1>2</b1></r>").valid());
}

TEST(Loader, SimpleContentExtension) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="price">
      <xs:complexType>
        <xs:simpleContent>
          <xs:extension base="xs:decimal">
            <xs:attribute name="currency" type="xs:string" use="required"/>
          </xs:extension>
        </xs:simpleContent>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(
      check(result.schema, R"(<price currency="USD">9.99</price>)").valid());
  EXPECT_FALSE(check(result.schema, "<price>9.99</price>").valid());
  EXPECT_FALSE(
      check(result.schema, R"(<price currency="USD">abc</price>)").valid());
}

TEST(Loader, EnumerationFacet) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="status">
      <xs:simpleType>
        <xs:restriction base="xs:token">
          <xs:enumeration value="open"/>
          <xs:enumeration value="closed"/>
        </xs:restriction>
      </xs:simpleType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema, "<status>open</status>").valid());
  // xs:token collapses whitespace before the enumeration check.
  EXPECT_TRUE(check(result.schema, "<status> closed </status>").valid());
  EXPECT_FALSE(check(result.schema, "<status>pending</status>").valid());
}

TEST(Loader, TargetNamespace) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema"
      targetNamespace="urn:orders" elementFormDefault="qualified">
    <xs:element name="order">
      <xs:complexType>
        <xs:sequence>
          <xs:element name="id" type="xs:int"/>
        </xs:sequence>
      </xs:complexType>
    </xs:element>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.schema.target_namespace(), "urn:orders");
  EXPECT_TRUE(check(result.schema,
                    R"(<o:order xmlns:o="urn:orders"><o:id>1</o:id></o:order>)")
                  .valid());
  // Wrong namespace root rejected.
  EXPECT_FALSE(check(result.schema, "<order><id>1</id></order>").valid());
}

TEST(Loader, RejectsUnsupportedConstructs) {
  for (const char* body :
       {"<xs:include schemaLocation='x.xsd'/>",
        "<xs:import namespace='urn:x'/>",
        "<xs:group name='g'><xs:sequence/></xs:group>"}) {
    std::string text =
        std::string("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>") +
        body + "</xs:schema>";
    auto result = load_schema(text);
    EXPECT_FALSE(result.ok) << body;
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(Loader, RejectsBadPatternFacet) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:element name="e">
      <xs:simpleType>
        <xs:restriction base="xs:string">
          <xs:pattern value="([unclosed"/>
        </xs:restriction>
      </xs:simpleType>
    </xs:element>
  </xs:schema>)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("pattern"), std::string::npos);
}

TEST(Loader, RejectsNonSchemaRoot) {
  auto result = load_schema("<not-a-schema/>");
  EXPECT_FALSE(result.ok);
}

TEST(Loader, RejectsMalformedXml) {
  auto result = load_schema("<xs:schema");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("parse error"), std::string::npos);
}

TEST(Loader, RestrictionOfUserType) {
  auto result = load_schema(R"(<xs:schema
      xmlns:xs="http://www.w3.org/2001/XMLSchema">
    <xs:simpleType name="Base">
      <xs:restriction base="xs:integer">
        <xs:minInclusive value="0"/>
      </xs:restriction>
    </xs:simpleType>
    <xs:simpleType name="Narrow">
      <xs:restriction base="Base">
        <xs:maxInclusive value="10"/>
      </xs:restriction>
    </xs:simpleType>
    <xs:element name="v" type="Narrow"/>
  </xs:schema>)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(check(result.schema, "<v>5</v>").valid());
  EXPECT_FALSE(check(result.schema, "<v>-1</v>").valid());  // inherited
  EXPECT_FALSE(check(result.schema, "<v>11</v>").valid());  // own facet
}

}  // namespace
}  // namespace xaon::xsd
