#include <gtest/gtest.h>

#include <string>

#include "xaon/http/message.hpp"
#include "xaon/http/parser.hpp"

namespace xaon::http {
namespace {

// --- HeaderMap ---

TEST(HeaderMap, CaseInsensitiveLookup) {
  HeaderMap h;
  h.add("Content-Type", "text/xml");
  EXPECT_EQ(h.get("content-type"), "text/xml");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/xml");
  EXPECT_FALSE(h.get("Content-Length").has_value());
}

TEST(HeaderMap, MultiValue) {
  HeaderMap h;
  h.add("Via", "proxy-a");
  h.add("Via", "proxy-b");
  EXPECT_EQ(h.get("via"), "proxy-a");  // first
  auto all = h.get_all("Via");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1], "proxy-b");
}

TEST(HeaderMap, SetReplacesAll) {
  HeaderMap h;
  h.add("X", "1");
  h.add("X", "2");
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeaderMap, Remove) {
  HeaderMap h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  EXPECT_EQ(h.remove("A"), 2u);
  EXPECT_FALSE(h.has("A"));
  EXPECT_TRUE(h.has("B"));
  EXPECT_EQ(h.remove("A"), 0u);
}

// --- RequestParser ---

TEST(RequestParser, SimpleGet) {
  RequestParser p;
  const std::string raw = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(p.feed(raw), raw.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/index.html");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_EQ(p.request().headers.get("Host"), "x");
  EXPECT_TRUE(p.request().body.empty());
}

TEST(RequestParser, PostWithContentLength) {
  RequestParser p;
  const std::string raw =
      "POST /xml HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  EXPECT_EQ(p.feed(raw), raw.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body, "hello world");
  EXPECT_EQ(p.request().content_length(), 11u);
}

TEST(RequestParser, IncrementalByteAtATime) {
  RequestParser p;
  const std::string raw =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\nX-Y: z\r\n\r\nabc";
  for (char c : raw) {
    ASSERT_FALSE(p.failed()) << p.error();
    p.feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().body, "abc");
  EXPECT_EQ(p.request().headers.get("X-Y"), "z");
}

TEST(RequestParser, PipelinedMessagesLeaveTrailingBytes) {
  RequestParser p;
  const std::string two =
      "GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n";
  const std::size_t consumed = p.feed(two);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().target, "/1");
  EXPECT_LT(consumed, two.size());
  Request first = p.take_request();
  EXPECT_EQ(p.feed(std::string_view(two).substr(consumed)),
            two.size() - consumed);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().target, "/2");
}

TEST(RequestParser, ChunkedBody) {
  RequestParser p;
  const std::string raw =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
  EXPECT_EQ(p.feed(raw), raw.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().body, "hello world");
}

TEST(RequestParser, ChunkedWithExtensionsAndTrailers) {
  RequestParser p;
  const std::string raw =
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n";
  p.feed(raw);
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().body, "abc");
}

TEST(RequestParser, LfOnlyLineEndingsTolerated) {
  RequestParser p;
  const std::string raw = "GET / HTTP/1.1\nHost: h\n\n";
  p.feed(raw);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().headers.get("Host"), "h");
}

struct BadRequestCase {
  const char* name;
  const char* raw;
};

class RequestParserRejects
    : public ::testing::TestWithParam<BadRequestCase> {};

TEST_P(RequestParserRejects, Rejects) {
  RequestParser p;
  p.feed(GetParam().raw);
  EXPECT_TRUE(p.failed()) << GetParam().name;
  EXPECT_FALSE(p.error().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, RequestParserRejects,
    ::testing::Values(
        BadRequestCase{"no_version", "GET /\r\n\r\n"},
        BadRequestCase{"bad_version", "GET / FTP/1.0\r\n\r\n"},
        BadRequestCase{"extra_token", "GET / HTTP/1.1 x\r\n\r\n"},
        BadRequestCase{"header_no_colon", "GET / HTTP/1.1\r\nbad\r\n\r\n"},
        BadRequestCase{"space_in_name",
                       "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n"},
        BadRequestCase{"bad_content_length",
                       "POST / HTTP/1.1\r\nContent-Length: ab\r\n\r\n"},
        BadRequestCase{"bad_chunk_size",
                       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                       "\r\nZZ\r\n"}),
    [](const ::testing::TestParamInfo<BadRequestCase>& info) {
      return info.param.name;
    });

TEST(RequestParser, BodyLimitEnforced) {
  RequestParser p;
  p.set_max_body(10);
  p.feed("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("limit"), std::string::npos);
}

TEST(RequestParser, ResetEnablesReuse) {
  RequestParser p;
  p.feed("GET /a HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.done());
  p.reset();
  p.feed("GET /b HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.request().target, "/b");
}

// --- ResponseParser ---

TEST(ResponseParser, SimpleResponse) {
  ResponseParser p;
  const std::string raw =
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi";
  EXPECT_EQ(p.feed(raw), raw.size());
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.response().status, 200);
  EXPECT_EQ(p.response().reason, "OK");
  EXPECT_EQ(p.response().body, "hi");
}

TEST(ResponseParser, MultiWordReason) {
  ResponseParser p;
  p.feed("HTTP/1.1 404 Not Found\r\n\r\n");
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.response().status, 404);
  EXPECT_EQ(p.response().reason, "Not Found");
}

TEST(ResponseParser, MissingReasonTolerated) {
  ResponseParser p;
  p.feed("HTTP/1.1 204\r\n\r\n");
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.response().status, 204);
}

TEST(ResponseParser, RejectsBadStatus) {
  ResponseParser p;
  p.feed("HTTP/1.1 abc OK\r\n\r\n");
  EXPECT_TRUE(p.failed());
  ResponseParser p2;
  p2.feed("HTTP/1.1 99 Low\r\n\r\n");
  EXPECT_TRUE(p2.failed());
}

// --- Serialization ---

TEST(Writer, RequestRoundtrip) {
  Request req;
  req.method = "POST";
  req.target = "/service";
  req.headers.add("Host", "aon.example");
  req.headers.add("Content-Type", "text/xml");
  req.body = "<m/>";
  const std::string wire = write_request(req);

  RequestParser p;
  EXPECT_EQ(p.feed(wire), wire.size());
  ASSERT_TRUE(p.done()) << p.error();
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "<m/>");
  EXPECT_EQ(p.request().headers.get("Content-Type"), "text/xml");
  EXPECT_EQ(p.request().content_length(), 4u);
}

TEST(Writer, ResponseRoundtrip) {
  Response resp;
  resp.status = 502;
  resp.reason = "";
  resp.body = "upstream gone";
  const std::string wire = write_response(resp);
  EXPECT_NE(wire.find("502 Bad Gateway"), std::string::npos);

  ResponseParser p;
  p.feed(wire);
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.response().status, 502);
  EXPECT_EQ(p.response().body, "upstream gone");
}

TEST(Writer, ContentLengthCorrected) {
  Request req;
  req.method = "POST";
  req.headers.add("Content-Length", "999");  // wrong on purpose
  req.body = "abc";
  const std::string wire = write_request(req);
  EXPECT_NE(wire.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

TEST(Writer, TransferEncodingStripped) {
  Request req;
  req.method = "POST";
  req.headers.add("Transfer-Encoding", "chunked");
  req.body = "abc";
  const std::string wire = write_request(req);
  EXPECT_EQ(wire.find("Transfer-Encoding"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3"), std::string::npos);
}

TEST(Message, WantsClose) {
  Request req;
  req.version = "HTTP/1.1";
  EXPECT_FALSE(req.wants_close());
  req.headers.add("Connection", "close");
  EXPECT_TRUE(req.wants_close());

  Request old;
  old.version = "HTTP/1.0";
  EXPECT_TRUE(old.wants_close());
  old.headers.add("Connection", "keep-alive");
  EXPECT_FALSE(old.wants_close());
}

TEST(Message, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(777), "Unknown");
}

}  // namespace
}  // namespace xaon::http
