// Lossy-link behaviour: drops, retransmission, and TCP throughput
// degradation under loss.

#include <gtest/gtest.h>

#include "xaon/netsim/link.hpp"
#include "xaon/netsim/netperf.hpp"
#include "xaon/netsim/simulator.hpp"
#include "xaon/netsim/tcp.hpp"

namespace xaon::netsim {
namespace {

TEST(LossyLink, DropsApproximatelyAtRate) {
  Simulator sim;
  LinkConfig cfg = Link::gigabit_ethernet();
  cfg.loss_rate = 0.1;
  Link link(sim, cfg);
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    link.transmit(
        100, [&](std::uint32_t) { ++delivered; },
        [&](std::uint32_t) { ++dropped; });
  }
  sim.run();
  EXPECT_EQ(delivered + dropped, 2000);
  EXPECT_NEAR(static_cast<double>(dropped) / 2000.0, 0.1, 0.03);
  EXPECT_EQ(link.stats().dropped_frames, static_cast<std::uint64_t>(dropped));
}

TEST(LossyLink, LosslessDefaultNeverDrops) {
  Simulator sim;
  Link link(sim, Link::gigabit_ethernet());
  int dropped = 0;
  for (int i = 0; i < 500; ++i) {
    link.transmit(100, [](std::uint32_t) {},
                  [&](std::uint32_t) { ++dropped; });
  }
  sim.run();
  EXPECT_EQ(dropped, 0);
}

TEST(LossyLink, DeterministicDropPattern) {
  auto run_once = [] {
    Simulator sim;
    LinkConfig cfg = Link::gigabit_ethernet();
    cfg.loss_rate = 0.2;
    Link link(sim, cfg);
    std::vector<int> outcomes;
    for (int i = 0; i < 100; ++i) {
      link.transmit(
          64, [&, i](std::uint32_t) { outcomes.push_back(i); },
          [](std::uint32_t) {});
    }
    sim.run();
    return outcomes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TcpLoss, AllBytesDeliveredDespiteLoss) {
  Simulator sim;
  LinkConfig lossy = Link::gigabit_ethernet();
  lossy.loss_rate = 0.02;
  Link data(sim, lossy);
  Link acks(sim, Link::gigabit_ethernet());
  TcpStream stream(sim, data, acks, TcpConfig{});
  stream.send(4 * 1024 * 1024);
  sim.run();
  EXPECT_EQ(stream.delivered(), 4u * 1024u * 1024u);
  EXPECT_TRUE(stream.idle());
  EXPECT_GT(stream.stats().retransmits, 0u);
}

TEST(TcpLoss, LostAcksAlsoRecovered) {
  Simulator sim;
  Link data(sim, Link::gigabit_ethernet());
  LinkConfig lossy = Link::gigabit_ethernet();
  lossy.loss_rate = 0.05;
  Link acks(sim, lossy);
  TcpStream stream(sim, data, acks, TcpConfig{});
  stream.send(1024 * 1024);
  sim.run();
  EXPECT_EQ(stream.delivered(), 1024u * 1024u);
  EXPECT_TRUE(stream.idle());
}

TEST(TcpLoss, ThroughputDegradesWithLossRate) {
  auto goodput_at = [](double loss) {
    LinkConfig cfg = Link::gigabit_ethernet();
    cfg.loss_rate = loss;
    return run_tcp_stream(cfg, TcpConfig{}, 8 * 1024 * 1024).goodput_mbps;
  };
  const double clean = goodput_at(0.0);
  const double light = goodput_at(0.005);
  const double heavy = goodput_at(0.05);
  EXPECT_GT(clean, light);
  EXPECT_GT(light, heavy);
  EXPECT_LT(heavy, 0.5 * clean);  // 5% loss is crippling for Reno-style TCP
}

TEST(TcpLoss, WindowCollapsesOnLoss) {
  Simulator sim;
  LinkConfig lossy = Link::gigabit_ethernet();
  lossy.loss_rate = 0.1;
  Link data(sim, lossy);
  Link acks(sim, Link::gigabit_ethernet());
  TcpConfig cfg;
  TcpStream stream(sim, data, acks, cfg);
  stream.send(2 * 1024 * 1024);
  sim.run();
  EXPECT_EQ(stream.delivered(), 2u * 1024u * 1024u);
  // Heavy loss keeps the window far below the receive window.
  EXPECT_LT(stream.stats().cwnd_bytes, cfg.rwnd_bytes / 2);
}

}  // namespace
}  // namespace xaon::netsim
