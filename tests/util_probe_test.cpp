#include "xaon/util/probe.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace xaon::probe {
namespace {

/// Test double recording raw events.
class CountingRecorder final : public Recorder {
 public:
  void on_load(const void*, std::uint32_t bytes) override {
    loads += bytes;
  }
  void on_store(const void*, std::uint32_t bytes) override {
    stores += bytes;
  }
  void on_branch(std::uint32_t site, bool taken) override {
    branches.push_back({site, taken});
  }
  void on_alu(std::uint32_t count) override { alu += count; }

  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t alu = 0;
  std::vector<std::pair<std::uint32_t, bool>> branches;
};

TEST(Probe, SiteRegistrationIsIdempotent) {
  const auto a = register_site("test.site.alpha", SiteKind::kLoop);
  const auto b = register_site("test.site.alpha", SiteKind::kLoop);
  EXPECT_EQ(a, b);
  EXPECT_EQ(site_name(a), "test.site.alpha");
  EXPECT_EQ(site_kind(a), SiteKind::kLoop);
}

TEST(Probe, DistinctNamesDistinctIds) {
  const auto a = register_site("test.site.one", SiteKind::kData);
  const auto b = register_site("test.site.two", SiteKind::kCall);
  EXPECT_NE(a, b);
  EXPECT_EQ(site_kind(b), SiteKind::kCall);
}

TEST(Probe, NoRecorderIsNoOp) {
  set_recorder(nullptr);
  int x = 0;
  load(&x, 4);
  store(&x, 4);
  alu(10);
  EXPECT_TRUE(branch(0, true));
  EXPECT_FALSE(branch(0, false));
}

TEST(Probe, EventsReachRecorder) {
  CountingRecorder rec;
  const auto site_id = register_site("test.site.reach", SiteKind::kData);
  {
    ScopedRecorder guard(&rec);
    int x = 0;
    load(&x, 8);
    store(&x, 16);
    alu(3);
    branch(site_id, true);
    branch(site_id, false);
  }
  EXPECT_EQ(rec.loads, 8u);
  EXPECT_EQ(rec.stores, 16u);
  EXPECT_EQ(rec.alu, 3u);
  ASSERT_EQ(rec.branches.size(), 2u);
  EXPECT_EQ(rec.branches[0], std::make_pair(site_id, true));
  EXPECT_EQ(rec.branches[1], std::make_pair(site_id, false));
}

TEST(Probe, ScopedRecorderRestoresPrevious) {
  CountingRecorder outer, inner;
  set_recorder(&outer);
  {
    ScopedRecorder guard(&inner);
    EXPECT_EQ(recorder(), &inner);
  }
  EXPECT_EQ(recorder(), &outer);
  set_recorder(nullptr);
}

TEST(Probe, RecorderIsThreadLocal) {
  CountingRecorder main_rec;
  ScopedRecorder guard(&main_rec);
  std::thread t([] {
    // New thread starts with no recorder.
    EXPECT_EQ(recorder(), nullptr);
    int x = 0;
    load(&x, 4);  // must not crash nor reach main_rec
  });
  t.join();
  EXPECT_EQ(main_rec.loads, 0u);
}

TEST(Probe, ConcurrentRegistrationIsSafe) {
  std::vector<std::thread> threads;
  std::vector<std::uint32_t> ids(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([i, &ids] {
      ids[static_cast<std::size_t>(i)] =
          register_site("test.site.concurrent", SiteKind::kLoop);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(ids[0], ids[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace xaon::probe
