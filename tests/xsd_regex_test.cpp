#include "xaon/xsd/regex.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xaon::xsd {
namespace {

Regex must_compile(std::string_view pattern) {
  std::string error;
  Regex re = Regex::compile(pattern, &error);
  EXPECT_TRUE(re.valid()) << pattern << ": " << error;
  return re;
}

TEST(Regex, LiteralMatchIsAnchored) {
  Regex re = must_compile("abc");
  EXPECT_TRUE(re.match("abc"));
  EXPECT_FALSE(re.match("xabc"));
  EXPECT_FALSE(re.match("abcx"));
  EXPECT_FALSE(re.match(""));
  EXPECT_FALSE(re.match("ab"));
}

TEST(Regex, EmptyPatternMatchesEmptyOnly) {
  Regex re = must_compile("");
  EXPECT_TRUE(re.match(""));
  EXPECT_FALSE(re.match("a"));
}

TEST(Regex, Dot) {
  Regex re = must_compile("a.c");
  EXPECT_TRUE(re.match("abc"));
  EXPECT_TRUE(re.match("a!c"));
  EXPECT_FALSE(re.match("a\nc"));
  EXPECT_FALSE(re.match("ac"));
}

TEST(Regex, StarPlusQuestion) {
  EXPECT_TRUE(must_compile("ab*c").match("ac"));
  EXPECT_TRUE(must_compile("ab*c").match("abbbc"));
  EXPECT_FALSE(must_compile("ab+c").match("ac"));
  EXPECT_TRUE(must_compile("ab+c").match("abc"));
  EXPECT_TRUE(must_compile("ab?c").match("ac"));
  EXPECT_TRUE(must_compile("ab?c").match("abc"));
  EXPECT_FALSE(must_compile("ab?c").match("abbc"));
}

TEST(Regex, Alternation) {
  Regex re = must_compile("cat|dog|bird");
  EXPECT_TRUE(re.match("cat"));
  EXPECT_TRUE(re.match("dog"));
  EXPECT_TRUE(re.match("bird"));
  EXPECT_FALSE(re.match("catdog"));
  EXPECT_FALSE(re.match("ca"));
}

TEST(Regex, GroupsWithQuantifiers) {
  Regex re = must_compile("(ab)+");
  EXPECT_TRUE(re.match("ab"));
  EXPECT_TRUE(re.match("ababab"));
  EXPECT_FALSE(re.match("aba"));
  EXPECT_FALSE(re.match(""));

  Regex re2 = must_compile("(a|b)*c");
  EXPECT_TRUE(re2.match("c"));
  EXPECT_TRUE(re2.match("ababbac"));
}

TEST(Regex, EmptyAlternativeBranch) {
  Regex re = must_compile("(a|)b");
  EXPECT_TRUE(re.match("ab"));
  EXPECT_TRUE(re.match("b"));
}

TEST(Regex, CharacterClasses) {
  Regex re = must_compile("[abc]+");
  EXPECT_TRUE(re.match("abccba"));
  EXPECT_FALSE(re.match("abd"));

  Regex range = must_compile("[a-z0-9]+");
  EXPECT_TRUE(range.match("abc123"));
  EXPECT_FALSE(range.match("ABC"));

  Regex neg = must_compile("[^0-9]+");
  EXPECT_TRUE(neg.match("abc"));
  EXPECT_FALSE(neg.match("a1c"));
}

TEST(Regex, ClassWithLeadingDashAndBracket) {
  Regex re = must_compile("[-a-c]+");
  EXPECT_TRUE(re.match("-ab-c"));
  EXPECT_FALSE(re.match("d"));
  // ']' first position is literal.
  Regex re2 = must_compile("[]x]+");
  EXPECT_TRUE(re2.match("]x"));
}

TEST(Regex, EscapeClasses) {
  EXPECT_TRUE(must_compile("\\d+").match("12345"));
  EXPECT_FALSE(must_compile("\\d+").match("12a45"));
  EXPECT_TRUE(must_compile("\\w+").match("abc_12"));
  EXPECT_FALSE(must_compile("\\w+").match("a b"));
  EXPECT_TRUE(must_compile("\\s").match(" "));
  EXPECT_TRUE(must_compile("\\S+").match("abc"));
  EXPECT_TRUE(must_compile("\\D+").match("abc"));
  EXPECT_TRUE(must_compile("a\\.b").match("a.b"));
  EXPECT_FALSE(must_compile("a\\.b").match("axb"));
  EXPECT_TRUE(must_compile("a\\\\b").match("a\\b"));
}

TEST(Regex, EscapesInsideClasses) {
  Regex re = must_compile("[\\d\\-]+");
  EXPECT_TRUE(re.match("12-34"));
  EXPECT_FALSE(re.match("a"));
}

TEST(Regex, BoundedQuantifiers) {
  Regex re = must_compile("a{3}");
  EXPECT_TRUE(re.match("aaa"));
  EXPECT_FALSE(re.match("aa"));
  EXPECT_FALSE(re.match("aaaa"));

  Regex re2 = must_compile("a{2,4}");
  EXPECT_FALSE(re2.match("a"));
  EXPECT_TRUE(re2.match("aa"));
  EXPECT_TRUE(re2.match("aaaa"));
  EXPECT_FALSE(re2.match("aaaaa"));

  Regex re3 = must_compile("a{2,}");
  EXPECT_FALSE(re3.match("a"));
  EXPECT_TRUE(re3.match("aaaaaaaa"));

  Regex re4 = must_compile("(ab){2,3}c");
  EXPECT_TRUE(re4.match("ababc"));
  EXPECT_TRUE(re4.match("abababc"));
  EXPECT_FALSE(re4.match("abc"));
  EXPECT_FALSE(re4.match("ababababc"));
}

TEST(Regex, ZeroRepeat) {
  Regex re = must_compile("a{0,2}b");
  EXPECT_TRUE(re.match("b"));
  EXPECT_TRUE(re.match("ab"));
  EXPECT_TRUE(re.match("aab"));
  EXPECT_FALSE(re.match("aaab"));
}

TEST(Regex, RealWorldPatterns) {
  // US ZIP.
  Regex zip = must_compile("\\d{5}(-\\d{4})?");
  EXPECT_TRUE(zip.match("12345"));
  EXPECT_TRUE(zip.match("12345-6789"));
  EXPECT_FALSE(zip.match("1234"));
  EXPECT_FALSE(zip.match("12345-"));

  // SKU like the AON message uses.
  Regex sku = must_compile("[A-Z]{2,4}-\\d{3,6}");
  EXPECT_TRUE(sku.match("AB-123"));
  EXPECT_TRUE(sku.match("WXYZ-123456"));
  EXPECT_FALSE(sku.match("A-123"));
  EXPECT_FALSE(sku.match("AB-12"));

  // ISO date-ish.
  Regex date = must_compile("\\d{4}-\\d{2}-\\d{2}");
  EXPECT_TRUE(date.match("2007-03-14"));
  EXPECT_FALSE(date.match("2007-3-14"));
}

TEST(Regex, NoPathologicalBacktracking) {
  // (a*)*b-style killers are linear in a Pike VM.
  Regex re = must_compile("(a|a)*b");
  std::string input(2000, 'a');
  EXPECT_FALSE(re.match(input));  // no trailing b — must return fast
  input.push_back('b');
  EXPECT_TRUE(re.match(input));
}

TEST(Regex, InvalidPatternsRejected) {
  for (const char* pattern :
       {"(", ")", "(ab", "a)", "[abc", "a{2", "a{,3}", "a{3,2}", "*a", "+",
        "?", "{2}", "a{99999}", "\\q", "[z-a]", "a|*"}) {
    std::string error;
    Regex re = Regex::compile(pattern, &error);
    EXPECT_FALSE(re.valid()) << "should reject: " << pattern;
    EXPECT_FALSE(error.empty()) << pattern;
  }
}

TEST(Regex, InvalidRegexIsInert) {
  Regex re;
  EXPECT_FALSE(re.valid());
  EXPECT_EQ(re.pattern(), "");
  EXPECT_EQ(re.program_size(), 0u);
}

TEST(Regex, PatternAccessor) {
  Regex re = must_compile("a+b");
  EXPECT_EQ(re.pattern(), "a+b");
  EXPECT_GT(re.program_size(), 0u);
}

TEST(Regex, CopyShareProgram) {
  Regex a = must_compile("x+");
  Regex b = a;
  EXPECT_TRUE(b.match("xxx"));
  EXPECT_TRUE(a.match("x"));
}

// Property-style sweep: a{n} built by repetition behaves like n literals.
class RegexRepeatProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegexRepeatProperty, CountedRepetitionExact) {
  const int n = GetParam();
  Regex re = must_compile("a{" + std::to_string(n) + "}");
  EXPECT_TRUE(re.match(std::string(static_cast<std::size_t>(n), 'a')));
  EXPECT_FALSE(re.match(std::string(static_cast<std::size_t>(n + 1), 'a')));
  if (n > 0) {
    EXPECT_FALSE(re.match(std::string(static_cast<std::size_t>(n - 1), 'a')));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, RegexRepeatProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 64, 200));

}  // namespace
}  // namespace xaon::xsd
