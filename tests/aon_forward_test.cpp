// Server forward path: bounded retry-with-backoff against faulty
// downstreams, 502/503 degradation, and the exactly-one-response
// invariant (status_2xx + status_4xx + status_5xx == messages).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"

namespace xaon::aon {
namespace {

std::vector<std::string> order_wires() {
  std::vector<std::string> wires;
  for (int i = 0; i < 4; ++i) {
    MessageSpec spec;
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    spec.quantity = 1;
    wires.push_back(make_post_wire(spec));
  }
  return wires;
}

class HealthyDownstream : public Downstream {
 public:
  SendStatus send(std::string_view) override {
    ++sends_;
    return SendStatus::kAck;
  }
  std::uint64_t sends() const { return sends_.load(); }

 private:
  std::atomic<std::uint64_t> sends_{0};
};

class DeadDownstream : public Downstream {
 public:
  SendStatus send(std::string_view) override {
    ++sends_;
    return SendStatus::kFail;
  }
  std::uint64_t sends() const { return sends_.load(); }

 private:
  std::atomic<std::uint64_t> sends_{0};
};

class BusyDownstream : public Downstream {
 public:
  SendStatus send(std::string_view) override { return SendStatus::kBusy; }
};

/// Fails every first attempt, acks every second — a retry always
/// recovers. Single-worker only (the alternation is stateful).
class FlakyDownstream : public Downstream {
 public:
  SendStatus send(std::string_view) override {
    return (calls_++ % 2 == 0) ? SendStatus::kFail : SendStatus::kAck;
  }

 private:
  std::uint64_t calls_ = 0;
};

TEST(ServerForward, HealthyDownstreamAllAcked) {
  HealthyDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  config.downstream = &downstream;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(), 400);
  EXPECT_EQ(result.messages, 400u);
  EXPECT_EQ(result.status_2xx, 400u);
  EXPECT_EQ(result.status_5xx, 0u);
  EXPECT_EQ(result.forward_retries, 0u);
  EXPECT_EQ(downstream.sends(), 400u);
}

TEST(ServerForward, DeadDownstreamDegradesTo502) {
  DeadDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  config.downstream = &downstream;
  config.forward.max_attempts = 3;
  config.forward.backoff_pauses = 1;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(), 200);
  EXPECT_EQ(result.messages, 200u);
  EXPECT_EQ(result.status_5xx, 200u);
  EXPECT_EQ(result.forward_failures, 200u);
  EXPECT_EQ(result.status_2xx + result.status_4xx + result.status_5xx,
            result.messages);
  // Retry budget honored exactly: 3 attempts per message, no more.
  EXPECT_EQ(downstream.sends(), 600u);
  EXPECT_EQ(result.forward_retries, 400u);
}

TEST(ServerForward, BusyDownstreamShedsAs503) {
  BusyDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  config.downstream = &downstream;
  config.forward.max_attempts = 2;
  config.forward.backoff_pauses = 1;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(), 100);
  EXPECT_EQ(result.messages, 100u);
  EXPECT_EQ(result.status_5xx, 100u);
  EXPECT_EQ(result.forward_shed, 100u);
  EXPECT_EQ(result.forward_failures, 0u);
}

TEST(ServerForward, FlakyDownstreamRecoversViaRetry) {
  FlakyDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 1;  // FlakyDownstream's alternation needs one caller
  config.downstream = &downstream;
  config.forward.max_attempts = 3;
  config.forward.backoff_pauses = 1;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(), 100);
  EXPECT_EQ(result.messages, 100u);
  EXPECT_EQ(result.status_2xx, 100u);
  EXPECT_EQ(result.status_5xx, 0u);
  EXPECT_EQ(result.forward_retries, 100u);  // one retry per message
}

TEST(ServerForward, MalformedMessagesCount4xxRegardlessOfDownstream) {
  HealthyDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kSchemaValidation;
  config.workers = 2;
  config.downstream = &downstream;
  Server server(config);
  std::vector<std::string> wires = order_wires();
  wires.push_back("GET / HTTP/1.1\r\n\r\n");  // not a POST with a body
  // 5 wires cycling over 500 messages: 100 hit the malformed wire.
  const LoadResult result = server.run_load(wires, 500);
  EXPECT_EQ(result.messages, 500u);
  EXPECT_EQ(result.status_4xx, 100u);
  EXPECT_EQ(result.status_2xx, 400u);
  EXPECT_EQ(result.failed, 100u);
  // Rejected messages never reach the downstream.
  EXPECT_EQ(downstream.sends(), 400u);
}

TEST(ServerForward, NoDownstreamStillBucketsResponses) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(), 100);
  EXPECT_EQ(result.status_2xx, 100u);
  EXPECT_EQ(result.status_2xx + result.status_4xx + result.status_5xx,
            result.messages);
}

}  // namespace
}  // namespace xaon::aon
