// HTTP parser hardening: header count/size limits, body limits, and
// structured ParseError codes for every rejection class.

#include <gtest/gtest.h>

#include <string>

#include "xaon/http/parser.hpp"

namespace xaon::http {
namespace {

TEST(HttpHardening, TooManyHeaders) {
  RequestParser parser;
  parser.set_max_header_count(8);
  std::string msg = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 9; ++i) {
    msg += "X-H" + std::to_string(i) + ": v\r\n";
  }
  msg += "\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kTooManyHeaders);
}

TEST(HttpHardening, HeaderCountAtLimitIsAccepted) {
  RequestParser parser;
  parser.set_max_header_count(8);
  std::string msg = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    msg += "X-H" + std::to_string(i) + ": v\r\n";
  }
  msg += "\r\n";
  parser.feed(msg);
  EXPECT_TRUE(parser.done());
}

TEST(HttpHardening, HeaderSectionTooLarge) {
  RequestParser parser;
  parser.set_max_header_bytes(64);
  std::string msg = "GET / HTTP/1.1\r\nX-Pad: ";
  msg.append(100, 'a');
  msg += "\r\n\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kHeadersTooLarge);
}

TEST(HttpHardening, HeaderLineTooLong) {
  RequestParser parser;
  std::string msg = "GET / HTTP/1.1\r\nX-Pad: ";
  msg.append(70 * 1024, 'a');  // above the 64 KiB line cap
  msg += "\r\n\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kHeaderLineTooLong);
}

TEST(HttpHardening, OversizedContentLengthRejectedBeforeBody) {
  RequestParser parser;
  parser.set_max_body(1024);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBodyTooLarge);
}

TEST(HttpHardening, BadContentLength) {
  RequestParser parser;
  parser.feed("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadContentLength);
}

TEST(HttpHardening, BadChunkSize) {
  RequestParser parser;
  parser.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadChunk);
}

TEST(HttpHardening, MalformedHeaderCode) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadHeader);
}

TEST(HttpHardening, MalformedStartLineCode) {
  RequestParser parser;
  parser.feed("NONSENSE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadStartLine);
}

TEST(HttpHardening, ResetClearsErrorCode) {
  RequestParser parser;
  parser.feed("NONSENSE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.reset();
  EXPECT_EQ(parser.error_code(), ParseError::kNone);
  parser.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.done());
}

TEST(HttpHardening, ErrorNamesAreStable) {
  EXPECT_STREQ(parse_error_name(ParseError::kNone), "none");
  EXPECT_STREQ(parse_error_name(ParseError::kTooManyHeaders),
               "too-many-headers");
  EXPECT_STREQ(parse_error_name(ParseError::kBodyTooLarge),
               "body-too-large");
}

}  // namespace
}  // namespace xaon::http
