// HTTP parser hardening: header count/size limits, body limits, and
// structured ParseError codes for every rejection class.

#include <gtest/gtest.h>

#include <string>

#include "xaon/http/parser.hpp"
#include "xaon/util/scan.hpp"

namespace xaon::http {
namespace {

TEST(HttpHardening, TooManyHeaders) {
  RequestParser parser;
  parser.set_max_header_count(8);
  std::string msg = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 9; ++i) {
    msg += "X-H" + std::to_string(i) + ": v\r\n";
  }
  msg += "\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kTooManyHeaders);
}

TEST(HttpHardening, HeaderCountAtLimitIsAccepted) {
  RequestParser parser;
  parser.set_max_header_count(8);
  std::string msg = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    msg += "X-H" + std::to_string(i) + ": v\r\n";
  }
  msg += "\r\n";
  parser.feed(msg);
  EXPECT_TRUE(parser.done());
}

TEST(HttpHardening, HeaderSectionTooLarge) {
  RequestParser parser;
  parser.set_max_header_bytes(64);
  std::string msg = "GET / HTTP/1.1\r\nX-Pad: ";
  msg.append(100, 'a');
  msg += "\r\n\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kHeadersTooLarge);
}

TEST(HttpHardening, HeaderLineTooLong) {
  RequestParser parser;
  std::string msg = "GET / HTTP/1.1\r\nX-Pad: ";
  msg.append(70 * 1024, 'a');  // above the 64 KiB line cap
  msg += "\r\n\r\n";
  parser.feed(msg);
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kHeaderLineTooLong);
}

TEST(HttpHardening, OversizedContentLengthRejectedBeforeBody) {
  RequestParser parser;
  parser.set_max_body(1024);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBodyTooLarge);
}

TEST(HttpHardening, BadContentLength) {
  RequestParser parser;
  parser.feed("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadContentLength);
}

TEST(HttpHardening, BadChunkSize) {
  RequestParser parser;
  parser.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadChunk);
}

TEST(HttpHardening, MalformedHeaderCode) {
  RequestParser parser;
  parser.feed("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadHeader);
}

TEST(HttpHardening, MalformedStartLineCode) {
  RequestParser parser;
  parser.feed("NONSENSE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_code(), ParseError::kBadStartLine);
}

TEST(HttpHardening, ResetClearsErrorCode) {
  RequestParser parser;
  parser.feed("NONSENSE\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  parser.reset();
  EXPECT_EQ(parser.error_code(), ParseError::kNone);
  parser.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.done());
}

TEST(HttpHardening, ErrorNamesAreStable) {
  EXPECT_STREQ(parse_error_name(ParseError::kNone), "none");
  EXPECT_STREQ(parse_error_name(ParseError::kTooManyHeaders),
               "too-many-headers");
  EXPECT_STREQ(parse_error_name(ParseError::kBodyTooLarge),
               "body-too-large");
}

// --- Body-framing fixes (chunk terminator / conflicting lengths /
// trailer budgets). Every case runs twice — the whole wire in one feed
// and byte-at-a-time — and both feeds must land in the same terminal
// state with the same error code: the framing decisions may not depend
// on how the bytes were segmented.

struct FeedOutcome {
  bool done = false;
  bool failed = false;
  ParseError code = ParseError::kNone;
  std::string body;
};

FeedOutcome feed_whole(std::string_view wire,
                       void (*tune)(RequestParser&) = nullptr) {
  RequestParser p;
  if (tune != nullptr) tune(p);
  p.feed(wire);
  return {p.done(), p.failed(), p.error_code(),
          p.done() ? p.request().body : std::string()};
}

FeedOutcome feed_bytewise(std::string_view wire,
                          void (*tune)(RequestParser&) = nullptr) {
  RequestParser p;
  if (tune != nullptr) tune(p);
  for (char c : wire) {
    p.feed(std::string_view(&c, 1));
    if (p.done() || p.failed()) break;
  }
  return {p.done(), p.failed(), p.error_code(),
          p.done() ? p.request().body : std::string()};
}

// Asserts whole-buffer and byte-at-a-time agreement — under every
// available scan-kernel implementation (scalar/swar/sse2/avx2): the
// framing decisions may depend neither on how the bytes were segmented
// nor on which bulk kernel did the line scanning. Returns the (shared)
// outcome for further checks.
FeedOutcome feed_both(std::string_view wire,
                      void (*tune)(RequestParser&) = nullptr) {
  namespace scan = xaon::util::scan;
  const FeedOutcome whole = feed_whole(wire, tune);
  const FeedOutcome bytewise = feed_bytewise(wire, tune);
  EXPECT_EQ(whole.done, bytewise.done) << wire;
  EXPECT_EQ(whole.failed, bytewise.failed) << wire;
  EXPECT_EQ(whole.code, bytewise.code) << wire;
  EXPECT_EQ(whole.body, bytewise.body) << wire;
  for (std::size_t i = 0; i < scan::kImplCount; ++i) {
    const auto impl = static_cast<scan::Impl>(i);
    if (!scan::impl_available(impl)) continue;
    scan::set_impl(impl);
    const FeedOutcome w = feed_whole(wire, tune);
    const FeedOutcome b = feed_bytewise(wire, tune);
    EXPECT_EQ(w.done, whole.done) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(w.failed, whole.failed) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(w.code, whole.code) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(w.body, whole.body) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(b.done, whole.done) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(b.failed, whole.failed) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(b.code, whole.code) << scan::impl_name(impl) << ": " << wire;
    EXPECT_EQ(b.body, whole.body) << scan::impl_name(impl) << ": " << wire;
  }
  scan::set_impl(scan::best_impl());
  return whole;
}

TEST(HttpFraming, ChunkTerminatorGarbageRejected) {
  // Pre-fix, the scan-to-'\n' terminator silently swallowed the XXXX
  // garbage and accepted the message.
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhelloXXXX\r\n0\r\n\r\n");
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kBadChunk);
}

TEST(HttpFraming, ChunkTerminatorBareLfRejected) {
  // The terminator must be the exact CRLF; a bare LF is a framing
  // mismatch with the sender, not a tolerable sloppiness.
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\n0\r\n\r\n");
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kBadChunk);
}

TEST(HttpFraming, ChunkTerminatorCrOnlyRejected) {
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\r0\r\n\r\n");
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kBadChunk);
}

TEST(HttpFraming, ChunkedCrlfTerminatorsStillAccepted) {
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.body, "hello world");
}

TEST(HttpFraming, DuplicateContentLengthDifferingRejected) {
  // Pre-fix, headers.get() returned the first value and the second was
  // silently ignored — the classic smuggling desync.
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\n"
      "hello..");
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kBadContentLength);
}

TEST(HttpFraming, DuplicateContentLengthIdenticalAccepted) {
  // RFC 7230 §3.3.3 allows collapsing duplicates that agree.
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n"
      "hello");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.body, "hello");
}

TEST(HttpFraming, ContentLengthWithChunkedRejected) {
  // Pre-fix, chunked won and the Content-Length was silently dropped.
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kBadContentLength);
}

TEST(HttpFraming, TrailerLinesChargedToHeaderCount) {
  // Pre-fix, trailer lines were consumed and ignored without touching
  // the header budgets — a peer could stream trailers forever.
  const auto tune = [](RequestParser& p) { p.set_max_header_count(4); };
  std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n";
  for (int i = 0; i < 8; ++i) wire += "X-Trailer: v\r\n";
  wire += "\r\n";
  const FeedOutcome out = feed_both(wire, +tune);
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kTooManyHeaders);
}

TEST(HttpFraming, TrailerBytesChargedToHeaderBytes) {
  const auto tune = [](RequestParser& p) { p.set_max_header_bytes(96); };
  std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\nX-Pad: ";
  wire.append(200, 'a');
  wire += "\r\n\r\n";
  const FeedOutcome out = feed_both(wire, +tune);
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kHeadersTooLarge);
}

TEST(HttpFraming, TrailersWithinBudgetAccepted) {
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\nX-Trailer: v\r\nX-Other: w\r\n\r\n");
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.body, "abc");
}

TEST(HttpFraming, TrailerBudgetContinuesHeaderBudget) {
  // Headers and trailers draw from one counter: 3 headers + 2 trailers
  // against a limit of 4 must fail, even though neither section alone
  // exceeds it.
  const auto tune = [](RequestParser& p) { p.set_max_header_count(4); };
  const FeedOutcome out = feed_both(
      "POST / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "0\r\nX-T1: v\r\nX-T2: v\r\n\r\n",
      +tune);
  ASSERT_TRUE(out.failed);
  EXPECT_EQ(out.code, ParseError::kTooManyHeaders);
}

}  // namespace
}  // namespace xaon::http
