// Steady-state allocation regression: a worker that reuses one
// ProcessScratch must stop touching the heap once its buffers are warm.
// Uses the bench allocation counter's global operator new interposer
// (single-TU binaries only, which every test binary is).

#define XAON_ALLOC_COUNT_INTERPOSE
#include "../bench/alloc_counter.hpp"

#include <gtest/gtest.h>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/pipeline.hpp"

namespace xaon::aon {
namespace {

std::vector<std::string> make_wires() {
  std::vector<std::string> wires;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    MessageSpec spec;
    spec.seed = seed;
    spec.quantity = static_cast<std::uint32_t>(seed % 2) + 1;
    wires.push_back(make_post_wire(spec));
  }
  return wires;
}

// Allocations per message at steady state: warm the scratch (string
// capacities, pooled vectors, thread-local VM state), then count.
// Metrics recording is attached exactly as Server::run_load attaches
// it — the zero-allocation contract must hold with the spine enabled.
std::uint64_t steady_state_allocs(UseCase use_case) {
  const std::vector<std::string> wires = make_wires();
  Pipeline pipeline(use_case);
  util::WorkerMetrics metrics;
  Pipeline::ProcessScratch scratch;
  scratch.metrics = &metrics;
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::string& wire : wires) {
      const Pipeline::Outcome& out = pipeline.process_wire(wire, scratch);
      EXPECT_TRUE(out.ok) << out.detail;
    }
  }
  bench::reset_alloc_counter();
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::string& wire : wires) {
      (void)pipeline.process_wire(wire, scratch);
    }
  }
  const std::uint64_t messages = 4 * wires.size();
  // The spine really was live: every counted message recorded spans.
  EXPECT_EQ(metrics.stage(util::Stage::kParse).count(), 8 * wires.size());
  // Round up so even one allocation across the whole run registers.
  return (bench::alloc_count() + messages - 1) / messages;
}

TEST(AllocRegression, MetricsRecordingAllocatesNothing) {
  util::WorkerMetrics metrics;
  bench::reset_alloc_counter();
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    metrics.record_stage(util::Stage::kParse, i);
    metrics.record_stage(util::Stage::kRoute, i * 3);
    metrics.record_stage(util::Stage::kForward, i * 7);
    metrics.record_message(i * 11);
  }
  EXPECT_EQ(bench::alloc_count(), 0u);
  EXPECT_EQ(metrics.messages(), 10000u);
}

TEST(AllocCounter, InterposerCountsNewAndDelete) {
  bench::reset_alloc_counter();
  {
    std::string s(128, 'x');
    EXPECT_GE(bench::alloc_count(), 1u);
    EXPECT_GE(bench::alloc_bytes(), 128u);
  }
  EXPECT_GE(bench::free_count(), 1u);
}

TEST(AllocRegression, ForwardRequestSteadyStateIsAllocationFree) {
  EXPECT_EQ(steady_state_allocs(UseCase::kForwardRequest), 0u);
}

TEST(AllocRegression, ContentRoutingSteadyStateStaysUnderBudget) {
  EXPECT_LE(steady_state_allocs(UseCase::kContentBasedRouting), 2u);
}

TEST(AllocRegression, SchemaValidationSteadyStateStaysUnderBudget) {
  EXPECT_LE(steady_state_allocs(UseCase::kSchemaValidation), 2u);
}

}  // namespace
}  // namespace xaon::aon
