#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/http/message.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/net/downstream.hpp"
#include "xaon/net/server.hpp"
#include "xaon/net/socket.hpp"

// The real-network transport (xaon::net): epoll event loops terminating
// actual loopback TCP connections. These tests exercise the pieces the
// host-mode suite cannot: kernel-segmented reads through the
// incremental parser, keep-alive pipelining, the 400-and-close path for
// hostile bytes, fd accounting across worker handoff, and the
// socket-backed forward path degrading to 502 when the downstream peer
// is gone. Runs in the `net` tier (and under TSan in `sanitize-tsan`:
// acceptor + workers + client threads are real threads).

namespace xaon {
namespace {

std::vector<std::string> mixed_wires() {
  std::vector<std::string> wires;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    aon::MessageSpec spec;
    spec.seed = seed;
    spec.quantity = static_cast<std::uint32_t>(seed % 2) + 1;
    wires.push_back(aon::make_post_wire(spec));
  }
  return wires;
}

/// Sends `count` requests (cycling `wires`) over one keep-alive
/// connection, checking every response parses with `expect_status`.
void run_client(std::uint16_t port, const std::vector<std::string>& wires,
                int count, int expect_status) {
  net::BlockingClient client;
  ASSERT_TRUE(client.connect(port));
  http::ResponseParser parser;
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(client.send(wires[static_cast<std::size_t>(i) % wires.size()]));
    ASSERT_EQ(client.read_response(parser), expect_status) << "message " << i;
  }
}

TEST(NetTransport, ForwardRequestRoundTrip) {
  net::SinkServer sink;
  ASSERT_TRUE(sink.start());
  net::SocketDownstream downstream(sink.port());

  net::ServerConfig config;
  config.use_case = aon::UseCase::kForwardRequest;
  config.workers = 2;
  config.downstream = &downstream;
  net::Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  run_client(server.port(), mixed_wires(), 40, 200);

  const net::ServerStats& stats = server.stop();
  sink.stop();
  EXPECT_EQ(stats.messages, 40u);
  EXPECT_EQ(stats.routed_primary, 40u);  // FR forwards everything primary
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.status.total(), stats.messages);
  EXPECT_EQ(stats.forward_failures, 0u);
  EXPECT_EQ(stats.forward_shed, 0u);
  // Every forwarded wire landed at the sink, byte for byte.
  EXPECT_GT(sink.bytes_received(), 0u);
  // Transport counters reconcile: the one client connection was
  // accepted and (on stop) closed; bytes flowed both ways.
  EXPECT_EQ(stats.metrics.net.accepted, 1u);
  EXPECT_EQ(stats.metrics.net.closed, 1u);
  EXPECT_GT(stats.metrics.net.bytes_in, 0u);
  EXPECT_GT(stats.metrics.net.bytes_out, 0u);
}

TEST(NetTransport, KeepAlivePipelining) {
  net::ServerConfig config;
  config.use_case = aon::UseCase::kForwardRequest;
  config.workers = 1;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  // One write carrying 8 back-to-back requests; the parser must frame
  // all of them out of whatever chunks epoll delivers, and the
  // responses must come back in order on the same connection.
  const std::vector<std::string> wires = mixed_wires();
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += wires[static_cast<std::size_t>(i) % wires.size()];

  net::BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.send(burst));
  http::ResponseParser parser;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(client.read_response(parser), 200) << "pipelined response " << i;
  }
  client.close();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 8u);
  EXPECT_EQ(stats.status.total(), 8u);
}

TEST(NetTransport, MultiClientMultiWorkerReconciles) {
  net::ServerConfig config;
  config.use_case = aon::UseCase::kContentBasedRouting;
  config.workers = 3;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  const std::vector<std::string> wires = mixed_wires();
  constexpr int kClients = 6;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back(
        [&, t] { run_client(server.port(), wires, kPerClient, 200); });
  }
  for (auto& t : clients) t.join();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, kClients * kPerClient);
  EXPECT_EQ(stats.status.total(), stats.messages);
  // CBR: quantity=1 wires route primary, quantity=2 to the error
  // endpoint — both are successful routes, split across the mix.
  EXPECT_EQ(stats.routed_primary + stats.routed_error, stats.messages);
  EXPECT_GT(stats.routed_primary, 0u);
  EXPECT_GT(stats.routed_error, 0u);
  EXPECT_EQ(stats.failed, 0u);
  // fd accounting: every accepted connection was closed by stop().
  EXPECT_EQ(stats.metrics.net.accepted, kClients);
  EXPECT_EQ(stats.metrics.net.closed, stats.metrics.net.accepted);
  // All three event loops saw traffic (round-robin handoff).
  EXPECT_EQ(stats.metrics.workers.size(), 3u);
  EXPECT_EQ(stats.metrics.messages_total(), stats.messages);
}

TEST(NetTransport, SchemaValidationOverSockets) {
  net::ServerConfig config;
  config.use_case = aon::UseCase::kSchemaValidation;
  config.workers = 2;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  aon::MessageSpec good;
  aon::MessageSpec bad;
  bad.valid_for_schema = false;

  net::BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  http::ResponseParser parser;
  ASSERT_TRUE(client.send(aon::make_post_wire(good)));
  EXPECT_EQ(client.read_response(parser), 200);
  ASSERT_TRUE(client.send(aon::make_post_wire(bad)));
  const int invalid_status = client.read_response(parser);
  EXPECT_NE(invalid_status, -1);
  client.close();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 2u);
  // The invalid message must not have routed primary.
  EXPECT_EQ(stats.routed_primary, 1u);
}

TEST(NetTransport, GarbageGets400AndClose) {
  net::ServerConfig config;
  config.workers = 1;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  net::BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.send("THIS IS NOT HTTP\r\n\r\n"));
  http::ResponseParser parser;
  EXPECT_EQ(client.read_response(parser), 400);
  EXPECT_EQ(parser.response().headers.get("Connection").value_or(""), "close");
  // The transport hangs up after flushing the 400.
  EXPECT_EQ(client.read_response(parser), -1);
  client.close();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.status.total(), 1u);
}

TEST(NetTransport, ConnectionCloseHonored) {
  net::ServerConfig config;
  config.workers = 1;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  aon::MessageSpec spec;
  http::Request request = aon::make_post_request(aon::make_order_message(spec));
  request.headers.add("Connection", "close");
  const std::string wire = http::write_request(request);

  net::BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  ASSERT_TRUE(client.send(wire));
  http::ResponseParser parser;
  EXPECT_EQ(client.read_response(parser), 200);
  EXPECT_EQ(parser.response().headers.get("Connection").value_or(""), "close");
  EXPECT_EQ(client.read_response(parser), -1);  // server closed
  client.close();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.metrics.net.closed, 1u);
}

TEST(NetTransport, DeadDownstreamDegradesTo502) {
  // Reserve a loopback port, then close the listener: connects to it
  // are refused, which SocketDownstream reports as kFail — after the
  // retry budget the transport answers 502, and the event loop keeps
  // serving (the next message gets its own verdict).
  std::uint16_t dead_port = 0;
  {
    net::Fd listener = net::listen_tcp(0, &dead_port, nullptr);
    ASSERT_TRUE(listener.valid());
  }
  net::SocketDownstream downstream(dead_port);

  net::ServerConfig config;
  config.use_case = aon::UseCase::kForwardRequest;
  config.workers = 1;
  config.downstream = &downstream;
  config.forward.max_attempts = 2;
  config.forward.backoff_pauses = 1;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  run_client(server.port(), mixed_wires(), 5, 502);

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 5u);
  EXPECT_EQ(stats.forward_failures, 5u);
  EXPECT_EQ(stats.forward_retries, 5u);  // one retry per message
  EXPECT_EQ(stats.status.total(), 5u);
}

TEST(NetTransport, ChunkedRequestOverSocket) {
  // The satellite framing fixes run on this path too: a chunked
  // request arriving over the socket must reassemble and process, and
  // its exact-CRLF terminators must survive kernel segmentation.
  net::ServerConfig config;
  config.workers = 1;
  net::Server server(config);
  ASSERT_TRUE(server.start());

  const std::string body = aon::make_order_message();
  std::string wire =
      "POST /aon/service HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: text/xml\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  // Two chunks, split mid-body.
  const std::size_t half = body.size() / 2;
  char size_buf[32];
  std::snprintf(size_buf, sizeof(size_buf), "%zx\r\n", half);
  wire += size_buf;
  wire.append(body, 0, half);
  wire += "\r\n";
  std::snprintf(size_buf, sizeof(size_buf), "%zx\r\n", body.size() - half);
  wire += size_buf;
  wire.append(body, half, std::string::npos);
  wire += "\r\n0\r\n\r\n";

  net::BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  // Dribble the wire in small writes so the server's reads are
  // guaranteed to split the framing at awkward points.
  for (std::size_t pos = 0; pos < wire.size(); pos += 512) {
    ASSERT_TRUE(client.send(
        std::string_view(wire).substr(pos, 512)));
  }
  http::ResponseParser parser;
  EXPECT_EQ(client.read_response(parser), 200);
  client.close();

  const net::ServerStats& stats = server.stop();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(NetTransport, StopIsIdempotentAndStatsStable) {
  net::ServerConfig config;
  config.workers = 2;
  net::Server server(config);
  ASSERT_TRUE(server.start());
  run_client(server.port(), mixed_wires(), 3, 200);
  const net::ServerStats& first = server.stop();
  EXPECT_EQ(first.messages, 3u);
  const net::ServerStats& again = server.stop();
  EXPECT_EQ(again.messages, 3u);
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace xaon
