#include "xaon/util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xaon::util {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, EqualsForm) {
  Flags f = make({"--name=value", "--n=7", "--x=2.5"});
  EXPECT_EQ(f.str("name", "d", ""), "value");
  EXPECT_EQ(f.i64("n", 0, ""), 7);
  EXPECT_DOUBLE_EQ(f.f64("x", 0.0, ""), 2.5);
  EXPECT_TRUE(f.unknown().empty());
}

TEST(Flags, SpaceForm) {
  Flags f = make({"--mode", "fast", "--count", "3"});
  EXPECT_EQ(f.str("mode", "", ""), "fast");
  EXPECT_EQ(f.i64("count", 0, ""), 3);
}

TEST(Flags, Defaults) {
  Flags f = make({});
  EXPECT_EQ(f.str("missing", "fallback", ""), "fallback");
  EXPECT_EQ(f.i64("n", -5, ""), -5);
  EXPECT_DOUBLE_EQ(f.f64("x", 1.5, ""), 1.5);
  EXPECT_TRUE(f.boolean("b", true, ""));
  EXPECT_FALSE(f.boolean("c", false, ""));
}

TEST(Flags, BooleanForms) {
  Flags f = make({"--a", "--no-b", "--c=true", "--d=false", "--e=1"});
  EXPECT_TRUE(f.boolean("a", false, ""));
  EXPECT_FALSE(f.boolean("b", true, ""));
  EXPECT_TRUE(f.boolean("c", false, ""));
  EXPECT_FALSE(f.boolean("d", true, ""));
  EXPECT_TRUE(f.boolean("e", false, ""));
}

TEST(Flags, Positional) {
  Flags f = make({"input.xml", "--v=1", "other.xml"});
  f.i64("v", 0, "");
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.xml");
  EXPECT_EQ(f.positional()[1], "other.xml");
}

TEST(Flags, UnknownDetected) {
  Flags f = make({"--declared=1", "--typo=2"});
  f.i64("declared", 0, "");
  const auto unknown = f.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, HelpRequested) {
  Flags f = make({"--help"});
  EXPECT_TRUE(f.help_requested());
  f.i64("n", 3, "the n");
  const std::string usage = f.usage();
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("the n"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
}

}  // namespace
}  // namespace xaon::util
