#include "xaon/xml/sax.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xaon::xml {
namespace {

/// Records events as compact strings: "+name", "-name", "t:text", ...
class TracingHandler : public SaxHandler {
 public:
  bool on_start_element(std::string_view qname, std::string_view local,
                        std::string_view ns_uri, const SaxAttr* attrs,
                        std::size_t n_attrs) override {
    std::string e = "+" + std::string(qname);
    for (std::size_t i = 0; i < n_attrs; ++i) {
      e += " " + std::string(attrs[i].qname) + "=" +
           std::string(attrs[i].value);
    }
    (void)local;
    (void)ns_uri;
    events.push_back(std::move(e));
    return true;
  }
  bool on_end_element(std::string_view qname, std::string_view,
                      std::string_view) override {
    events.push_back("-" + std::string(qname));
    return true;
  }
  bool on_text(std::string_view text, bool is_cdata) override {
    events.push_back((is_cdata ? "c:" : "t:") + std::string(text));
    return true;
  }
  bool on_comment(std::string_view text) override {
    events.push_back("#:" + std::string(text));
    return true;
  }
  bool on_processing_instruction(std::string_view target,
                                 std::string_view data) override {
    events.push_back("?:" + std::string(target) + ":" + std::string(data));
    return true;
  }

  std::vector<std::string> events;
};

TEST(Sax, EventOrder) {
  TracingHandler h;
  auto r = parse_sax("<a><b>x</b><c/></a>", h);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  const std::vector<std::string> expected{"+a", "+b", "t:x",
                                          "-b", "+c", "-c", "-a"};
  EXPECT_EQ(h.events, expected);
}

TEST(Sax, AttributesDelivered) {
  TracingHandler h;
  auto r = parse_sax(R"(<a k="v" k2="v2"/>)", h);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(h.events.size(), 2u);
  EXPECT_EQ(h.events[0], "+a k=v k2=v2");
}

TEST(Sax, NamespacesResolved) {
  class NsHandler : public SaxHandler {
   public:
    bool on_start_element(std::string_view, std::string_view local,
                          std::string_view ns_uri, const SaxAttr*,
                          std::size_t) override {
      locals.push_back(std::string(local));
      uris.push_back(std::string(ns_uri));
      return true;
    }
    std::vector<std::string> locals, uris;
  } h;
  auto r = parse_sax(R"(<p:a xmlns:p="urn:u"><b/></p:a>)", h);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  ASSERT_EQ(h.locals.size(), 2u);
  EXPECT_EQ(h.locals[0], "a");
  EXPECT_EQ(h.uris[0], "urn:u");
  EXPECT_EQ(h.uris[1], "");
}

TEST(Sax, CDataFlagged) {
  TracingHandler h;
  auto r = parse_sax("<a><![CDATA[raw]]></a>", h);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(h.events[1], "c:raw");
}

TEST(Sax, CommentsAndPisWhenEnabled) {
  ParseOptions opt;
  opt.keep_comments = true;
  opt.keep_pis = true;
  TracingHandler h;
  auto r = parse_sax("<a><!--c--><?t d?></a>", h, opt);
  ASSERT_TRUE(r.ok) << r.error.to_string();
  ASSERT_EQ(h.events.size(), 4u);
  EXPECT_EQ(h.events[1], "#:c");
  EXPECT_EQ(h.events[2], "?:t:d");
}

TEST(Sax, AbortFromHandler) {
  class AbortingHandler : public SaxHandler {
   public:
    bool on_start_element(std::string_view qname, std::string_view,
                          std::string_view, const SaxAttr*,
                          std::size_t) override {
      ++starts;
      return qname != "stop";
    }
    int starts = 0;
  } h;
  auto r = parse_sax("<a><x/><stop/><y/></a>", h);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(h.starts, 3);  // a, x, stop — y never delivered
}

TEST(Sax, MalformedReportsError) {
  TracingHandler h;
  auto r = parse_sax("<a><b></a>", h);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.error.message.empty());
}

TEST(Sax, WhitespaceTextSuppressedByDefault) {
  TracingHandler h;
  auto r = parse_sax("<a>\n  <b/>\n</a>", h);
  ASSERT_TRUE(r.ok);
  const std::vector<std::string> expected{"+a", "+b", "-b", "-a"};
  EXPECT_EQ(h.events, expected);
}

TEST(Sax, LargeStreamConstantMemoryBehavesCorrectly) {
  std::string doc = "<list>";
  for (int i = 0; i < 5000; ++i) doc += "<i>v</i>";
  doc += "</list>";
  class CountingHandler : public SaxHandler {
   public:
    bool on_start_element(std::string_view, std::string_view,
                          std::string_view, const SaxAttr*,
                          std::size_t) override {
      ++elements;
      return true;
    }
    bool on_text(std::string_view, bool) override {
      ++texts;
      return true;
    }
    int elements = 0;
    int texts = 0;
  } h;
  auto r = parse_sax(doc, h);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(h.elements, 5001);
  EXPECT_EQ(h.texts, 5000);
}

}  // namespace
}  // namespace xaon::xml
