// End-to-end checks of the per-worker metrics spine through
// Server::run_load: per-stage latency tracks, per-worker message and
// busy-time accounting, the dispatch-to-drain throughput window, and
// the one-dump-path JSON snapshot (label `metrics`).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"

namespace xaon::aon {
namespace {

std::vector<std::string> order_wires(int n) {
  std::vector<std::string> wires;
  for (int i = 0; i < n; ++i) {
    MessageSpec spec;
    spec.seed = static_cast<std::uint64_t>(i) + 1;
    spec.quantity = (i % 2 == 0) ? 1 : 3;
    wires.push_back(make_post_wire(spec));
  }
  return wires;
}

class AckDownstream : public Downstream {
 public:
  SendStatus send(std::string_view) override { return SendStatus::kAck; }
};

TEST(ServerMetrics, RecordsEveryStagePerMessage) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  const std::uint64_t n = 400;
  const LoadResult result = server.run_load(order_wires(4), n);
  ASSERT_EQ(result.messages, n);

  const util::MetricsSnapshot& m = result.metrics;
  // Clean wires: every message passes through parse, route and
  // serialize exactly once; no downstream -> no forward spans.
  EXPECT_EQ(m.stages[0].count(), n);  // parse
  EXPECT_EQ(m.stages[1].count(), n);  // route
  EXPECT_EQ(m.stages[2].count(), n);  // serialize
  EXPECT_EQ(m.stages[3].count(), 0u);  // forward
  EXPECT_EQ(m.message.count(), n);

  // Quantiles are monotone and bounded by the exact max.
  for (std::size_t s = 0; s < 3; ++s) {
    const util::LatencyTrack& t = m.stages[s];
    EXPECT_GT(t.quantile(0.50), 0u);
    EXPECT_LE(t.quantile(0.50), t.quantile(0.90));
    EXPECT_LE(t.quantile(0.90), t.quantile(0.99));
    EXPECT_GT(t.max(), 0u);
  }
  // A message span covers its stage spans.
  EXPECT_GE(m.message.sum(), m.stages[0].sum());
}

TEST(ServerMetrics, PerWorkerCountsSumAndBalance) {
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 3;
  Server server(config);
  const std::uint64_t n = 900;
  const LoadResult result = server.run_load(order_wires(4), n);

  const util::MetricsSnapshot& m = result.metrics;
  ASSERT_EQ(m.workers.size(), 3u);
  EXPECT_EQ(m.messages_total(), n);
  // Round-robin dispatch: every worker gets exactly n/3 here.
  for (const auto& w : m.workers) EXPECT_EQ(w.messages, n / 3);
  EXPECT_NEAR(m.imbalance(), 1.0, 1e-12);
}

TEST(ServerMetrics, BusySecondsWithinDispatchToDrainWindow) {
  ServerConfig config;
  config.use_case = UseCase::kSchemaValidation;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(4), 200);

  ASSERT_GT(result.seconds, 0.0);
  // The drain window excludes thread creation/teardown, so it can only
  // be tighter than the full harness span.
  EXPECT_LE(result.seconds, result.wall_seconds);
  // A worker's busy time (sum of message spans) fits inside the
  // dispatch-to-drain window: processing starts after the first push
  // and each worker finishes before the last drain.
  for (const auto& w : result.metrics.workers) {
    EXPECT_GT(w.busy_seconds, 0.0);
    EXPECT_LE(w.busy_seconds, result.seconds);
  }
  EXPECT_LE(result.metrics.busy_seconds_total(),
            result.seconds * static_cast<double>(config.workers));
}

TEST(ServerMetrics, ForwardStageRecordedWithDownstream) {
  AckDownstream downstream;
  ServerConfig config;
  config.use_case = UseCase::kForwardRequest;
  config.workers = 2;
  config.downstream = &downstream;
  Server server(config);
  const std::uint64_t n = 200;
  const LoadResult result = server.run_load(order_wires(4), n);
  EXPECT_EQ(result.metrics.stages[3].count(), n);  // forward span per msg
  EXPECT_EQ(result.status_2xx, n);
}

TEST(ServerMetrics, SnapshotJsonSurfacesStagesAndProbes) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  const LoadResult result = server.run_load(order_wires(4), 100);

  // The CBR run exercised the probed XML/XPath hot paths, so the
  // probe registry is non-empty and rides in the same snapshot.
  EXPECT_FALSE(result.metrics.probes.empty());
  const std::string json = result.metrics.to_json();
  EXPECT_NE(json.find("\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\""), std::string::npos);
  EXPECT_NE(json.find("\"probes\""), std::string::npos);
}

TEST(ServerMetrics, FailedMessagesStillTimeTheParseStage) {
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  const std::vector<std::string> garbage{"not an http request at all"};
  const std::uint64_t n = 100;
  const LoadResult result = server.run_load(garbage, n);
  EXPECT_EQ(result.failed, n);
  EXPECT_EQ(result.status_4xx, n);
  const util::MetricsSnapshot& m = result.metrics;
  EXPECT_EQ(m.stages[0].count(), n);   // parse span recorded on the 400 path
  EXPECT_EQ(m.stages[2].count(), 0u);  // nothing serialized
  EXPECT_EQ(m.message.count(), n);
}

}  // namespace
}  // namespace xaon::aon
