// Differential proof of the caching subsystem (labels: cache, tsan):
// the cached pipeline must be bit-identical to the cache-disabled
// pipeline over a corpus of well-formed, value-mutated, structurally
// mutated and chaos-mutated wires — same verdicts, same routes, same
// forwarded bytes, same status buckets — at 1 and 4 workers, same
// seed. A cache that changes any observable answer is a routing bug,
// not a performance feature; this tier is the gate that proves it
// cannot.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/pipeline.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/util/fault.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xsd/loader.hpp"
#include "xaon/xsd/validator.hpp"

namespace xaon::aon {
namespace {

constexpr std::uint64_t kSeed = 0xD1FFC4A5;

std::string deep_nest_wire(std::size_t depth) {
  std::string body;
  body.reserve(depth * 7 + 16);
  for (std::size_t i = 0; i < depth; ++i) body += "<a>";
  body += "x";
  for (std::size_t i = 0; i < depth; ++i) body += "</a>";
  return http::write_request(make_post_request(std::move(body)));
}

/// Replaces the first occurrence of `from` in `body` and re-wraps the
/// result as a POST wire (Content-Length recomputed by the writer).
std::string mutate_body(const std::string& body, std::string_view from,
                        std::string_view to) {
  std::string out = body;
  const std::size_t at = out.find(from);
  EXPECT_NE(at, std::string::npos) << "corpus bug: " << from << " missing";
  if (at != std::string::npos) out.replace(at, from.size(), to);
  return http::write_request(make_post_request(std::move(out)));
}

/// The differential corpus: well-formed orders (repeated shapes, varied
/// values), value-only mutations, structural mutations, and the chaos
/// tier's wire-level mutation classes — truncation, byte corruption,
/// oversized Content-Length, deep nesting, raw garbage. Everything is
/// seeded, so both pipelines see the exact same byte streams.
std::vector<std::string> differential_corpus(std::uint64_t seed) {
  std::vector<std::string> corpus;

  // Well-formed orders: 8 shapes (seed varies filler structure), both
  // routing classes per shape — the same shape with different values is
  // exactly the case the position-replay cache must get right.
  for (std::uint64_t s = 1; s <= 8; ++s) {
    for (std::uint32_t q = 1; q <= 3; ++q) {
      MessageSpec spec;
      spec.seed = s;
      spec.quantity = q;
      corpus.push_back(make_post_wire(spec));
    }
    MessageSpec invalid;
    invalid.seed = s;
    invalid.valid_for_schema = false;  // SV must still reject via cache path
    corpus.push_back(make_post_wire(invalid));
  }

  // Hand-built mutations around the routing element itself.
  const std::string body = make_order_message({});
  // Value-only: same skeleton, different routing verdicts.
  corpus.push_back(mutate_body(body, "<quantity>1<", "<quantity>7<"));
  // Structural: the quantity element disappears / moves / duplicates.
  corpus.push_back(
      mutate_body(body, "<quantity>1</quantity>", ""));  // no hit at all
  corpus.push_back(mutate_body(body, "<quantity>1</quantity>",
                               "<wrap><quantity>1</quantity></wrap>"));
  corpus.push_back(
      mutate_body(body, "<quantity>1</quantity>",
                  "<quantity>2</quantity><quantity>1</quantity>"));
  corpus.push_back(mutate_body(body, "<quantity>1</quantity>",
                               "<quantity></quantity>"));  // empty value
  corpus.push_back(mutate_body(body, "<quantity>1</quantity>",
                               "<quantity> 1 </quantity>"));  // ws value

  // Chaos tier: seeded wire-level mutations (same classes as
  // tests/chaos_test.cpp / bench/chaos_soak.cpp).
  util::FaultRates rates;
  rates.drop = 0.10;
  rates.corrupt = 0.15;
  rates.delay = 0.05;
  rates.reorder = 0.05;
  util::FaultInjector injector(rates, seed);
  for (std::size_t i = 0; i < 96; ++i) {
    const std::string& wire = corpus[i % 32];  // mutate the order wires
    auto& rng = injector.rng();
    switch (injector.next()) {
      case util::FaultKind::kNone:
        corpus.push_back(wire);
        break;
      case util::FaultKind::kDrop:
        corpus.push_back(wire.substr(0, rng.next() % wire.size()));
        break;
      case util::FaultKind::kCorrupt: {
        std::string out = wire;
        const std::size_t at = rng.next() % out.size();
        out[at] = static_cast<char>(
            out[at] ^ static_cast<char>(1 + rng.next() % 255));
        corpus.push_back(std::move(out));
        break;
      }
      case util::FaultKind::kDelay: {
        const std::size_t at = wire.find("Content-Length:");
        const std::size_t eol = wire.find("\r\n", at);
        corpus.push_back(wire.substr(0, at) +
                         "Content-Length: 99999999999" + wire.substr(eol));
        break;
      }
      case util::FaultKind::kReorder:
        corpus.push_back(deep_nest_wire(500 + rng.next() % 500));
        break;
    }
  }
  return corpus;
}

/// Runs every wire through one pipeline twice (second pass hits a warm
/// cache) with a caching scratch and a cache-disabled scratch, and
/// requires every observable Outcome field to match exactly.
void expect_pipeline_differential(UseCase use_case) {
  const std::vector<std::string> corpus = differential_corpus(kSeed);
  Pipeline pipeline(use_case);

  Pipeline::ProcessScratch cached;
  Pipeline::ProcessScratch uncached;
  uncached.route_cache.set_capacity(0);

  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const Pipeline::Outcome& a = pipeline.process_wire(corpus[i], cached);
      // `a` lives in `cached` and the next process_wire invalidates it,
      // so compare before running the uncached twin... which is safe
      // because the two scratches own disjoint outcome storage.
      const Pipeline::Outcome& b =
          pipeline.process_wire(corpus[i], uncached);
      ASSERT_EQ(a.ok, b.ok) << "wire " << i << " pass " << pass;
      ASSERT_EQ(a.routed_primary, b.routed_primary)
          << "wire " << i << " pass " << pass;
      ASSERT_EQ(a.forwarded_to, b.forwarded_to)
          << "wire " << i << " pass " << pass;
      ASSERT_EQ(a.forwarded_wire, b.forwarded_wire)
          << "wire " << i << " pass " << pass;
      ASSERT_EQ(a.response.status, b.response.status)
          << "wire " << i << " pass " << pass;
      ASSERT_EQ(a.detail, b.detail) << "wire " << i << " pass " << pass;
    }
  }

  // The differential actually exercised both paths: the disabled twin
  // never hit, and for CBR the caching twin genuinely served hits
  // (pass 2 replays every shape).
  EXPECT_EQ(uncached.route_cache.stats().hits, 0u);
  if (use_case == UseCase::kContentBasedRouting) {
    EXPECT_GT(cached.route_cache.stats().hits, 0u)
        << "cache never engaged — the differential proved nothing";
  }
}

TEST(CacheDifferential, CbrPipelineBitIdenticalAcrossCorpus) {
  expect_pipeline_differential(UseCase::kContentBasedRouting);
}

TEST(CacheDifferential, SvPipelineBitIdenticalAcrossCorpus) {
  expect_pipeline_differential(UseCase::kSchemaValidation);
}

/// Server-level differential: same corpus, same total, cached vs
/// disabled — every aggregate count and status bucket must match.
void expect_server_differential(UseCase use_case, std::size_t workers) {
  const std::vector<std::string> corpus = differential_corpus(kSeed);
  const std::uint64_t total = 4000;

  ServerConfig with_cache;
  with_cache.use_case = use_case;
  with_cache.workers = workers;
  Server cached(with_cache);
  const LoadResult a = cached.run_load(corpus, total);

  ServerConfig no_cache = with_cache;
  no_cache.route_cache_capacity = 0;
  Server uncached(no_cache);
  const LoadResult b = uncached.run_load(corpus, total);

  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.routed_primary, b.routed_primary);
  EXPECT_EQ(a.routed_error, b.routed_error);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.status_1xx, b.status_1xx);
  EXPECT_EQ(a.status_2xx, b.status_2xx);
  EXPECT_EQ(a.status_3xx, b.status_3xx);
  EXPECT_EQ(a.status_4xx, b.status_4xx);
  EXPECT_EQ(a.status_5xx, b.status_5xx);
  EXPECT_EQ(a.status_other, b.status_other);
  EXPECT_EQ(a.forward_retries, b.forward_retries);
  EXPECT_EQ(a.forward_failures, b.forward_failures);
  EXPECT_EQ(a.forward_shed, b.forward_shed);

  if (use_case == UseCase::kContentBasedRouting) {
    EXPECT_GT(a.metrics.route_cache.hits, 0u);
  }
  EXPECT_EQ(b.metrics.route_cache.hits, 0u);
}

TEST(CacheDifferential, CbrServerOneWorker) {
  expect_server_differential(UseCase::kContentBasedRouting, 1);
}

TEST(CacheDifferential, CbrServerFourWorkers) {
  expect_server_differential(UseCase::kContentBasedRouting, 4);
}

TEST(CacheDifferential, SvServerOneWorker) {
  expect_server_differential(UseCase::kSchemaValidation, 1);
}

TEST(CacheDifferential, SvServerFourWorkers) {
  expect_server_differential(UseCase::kSchemaValidation, 4);
}

// The schema cache differential: a cached schema must validate exactly
// like a freshly loaded one, and repeated loads must share one object.
TEST(CacheDifferential, SchemaCacheMatchesUncachedLoader) {
  const std::string xsd = order_schema_xsd();
  xsd::LoadResult fresh = xsd::load_schema(xsd);
  ASSERT_TRUE(fresh.ok) << fresh.error;
  std::string error;
  std::shared_ptr<const xsd::Schema> shared =
      xsd::load_schema_cached(xsd, &error);
  ASSERT_NE(shared, nullptr) << error;
  // Content-addressed: the second load is the same compiled object.
  EXPECT_EQ(shared.get(), xsd::load_schema_cached(xsd).get());

  xsd::Validator fresh_validator(fresh.schema);
  xsd::Validator cached_validator(*shared);
  for (std::uint64_t s = 1; s <= 8; ++s) {
    for (bool valid : {true, false}) {
      MessageSpec spec;
      spec.seed = s;
      spec.valid_for_schema = valid;
      xml::ParseResult doc = xml::parse(make_order_message(spec));
      ASSERT_TRUE(doc.ok);
      // Locate the order payload inside soap:Body, as the SV pipeline
      // does.
      const xml::Node* payload = doc.document.root();
      ASSERT_NE(payload, nullptr);
      if (payload->local == "Envelope") {
        const xml::Node* body = payload->child_element("Body");
        ASSERT_NE(body, nullptr);
        payload = body->first_child_element();
        ASSERT_NE(payload, nullptr);
      }
      const xsd::ElementDecl* decl_fresh =
          fresh.schema.find_global_element(payload->ns_uri, payload->local);
      const xsd::ElementDecl* decl_cached =
          shared->find_global_element(payload->ns_uri, payload->local);
      ASSERT_NE(decl_fresh, nullptr);
      ASSERT_NE(decl_cached, nullptr);
      const xsd::ValidationResult ra =
          fresh_validator.validate_element(payload, decl_fresh);
      const xsd::ValidationResult rb =
          cached_validator.validate_element(payload, decl_cached);
      EXPECT_EQ(ra.valid(), rb.valid()) << "seed " << s << " valid " << valid;
      EXPECT_EQ(ra.valid(), valid) << "seed " << s;
      EXPECT_EQ(ra.errors.size(), rb.errors.size());
    }
  }
}

TEST(CacheDifferential, SchemaCacheNeverCachesFailures) {
  std::string error;
  EXPECT_EQ(xsd::load_schema_cached("<not-a-schema/>", &error), nullptr);
  EXPECT_FALSE(error.empty());
  // Still a failure on retry (not served from cache as a null entry).
  EXPECT_EQ(xsd::load_schema_cached("<not-a-schema/>"), nullptr);
}

// Hit-rate sanity on the workload the cache is built for: a bounded
// shape working set. Every shape misses once per worker; everything
// after that must hit.
TEST(CacheDifferential, RepeatedShapesHitAboveNinetyPercent) {
  std::vector<std::string> wires;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    MessageSpec spec;
    spec.seed = s;
    spec.quantity = static_cast<std::uint32_t>(s % 2) + 1;
    wires.push_back(make_post_wire(spec));
  }
  ServerConfig config;
  config.use_case = UseCase::kContentBasedRouting;
  config.workers = 2;
  Server server(config);
  const LoadResult load = server.run_load(wires, 4000);
  EXPECT_EQ(load.messages, 4000u);
  EXPECT_GT(load.metrics.route_cache.hit_rate(), 0.9)
      << "hits " << load.metrics.route_cache.hits << " misses "
      << load.metrics.route_cache.misses;
  // Shape working set fits: misses == cold compulsory misses only
  // (8 shapes per worker), no capacity evictions.
  EXPECT_EQ(load.metrics.route_cache.evictions, 0u);
}

// The compiled-plan cache: one expression text, one compilation, every
// pipeline construction after the first is a hit.
TEST(CacheDifferential, XPathPlanCacheServesRepeatCompiles) {
  const util::CacheStats before = xpath::XPath::shared_plan_cache_stats();
  xpath::CompileError error;
  xpath::XPath a = xpath::XPath::compile_cached("//quantity/text()", &error);
  ASSERT_TRUE(a.valid()) << error.message;
  xpath::XPath b = xpath::XPath::compile_cached("//quantity/text()", &error);
  ASSERT_TRUE(b.valid()) << error.message;
  const util::CacheStats after = xpath::XPath::shared_plan_cache_stats();
  EXPECT_GT(after.hits, before.hits);

  // Differential: the cached plan selects exactly what a fresh compile
  // selects.
  xpath::XPath fresh = xpath::XPath::compile("//quantity/text()", &error);
  ASSERT_TRUE(fresh.valid()) << error.message;
  xml::ParseResult doc = xml::parse(make_order_message({}));
  ASSERT_TRUE(doc.ok);
  xpath::EvalScratch scratch_a, scratch_b;
  const xpath::NodeSet& hits_cached =
      a.select(doc.document.root(), scratch_a);
  const xpath::NodeSet& hits_fresh =
      fresh.select(doc.document.root(), scratch_b);
  ASSERT_EQ(hits_cached.size(), hits_fresh.size());
  for (std::size_t i = 0; i < hits_cached.size(); ++i) {
    EXPECT_TRUE(hits_cached[i] == hits_fresh[i]) << "hit " << i;
  }
}

}  // namespace
}  // namespace xaon::aon
