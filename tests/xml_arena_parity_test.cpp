// Parity: a DOM parsed into a caller-owned arena (the message hot path)
// must be structurally identical to one parsed with an owned arena, for
// every workload message shape.

#include <gtest/gtest.h>

#include "xaon/aon/messages.hpp"
#include "xaon/util/arena.hpp"
#include "xaon/xml/dom.hpp"
#include "xaon/xml/parser.hpp"

namespace xaon::xml {
namespace {

void expect_same_attrs(const Attr* a, const Attr* b) {
  while (a != nullptr && b != nullptr) {
    EXPECT_EQ(a->qname, b->qname);
    EXPECT_EQ(a->prefix, b->prefix);
    EXPECT_EQ(a->local, b->local);
    EXPECT_EQ(a->ns_uri, b->ns_uri);
    EXPECT_EQ(a->value, b->value);
    a = a->next;
    b = b->next;
  }
  EXPECT_EQ(a, nullptr);
  EXPECT_EQ(b, nullptr);
}

void expect_same_tree(const Node* a, const Node* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->type, b->type);
  EXPECT_EQ(a->qname, b->qname);
  EXPECT_EQ(a->prefix, b->prefix);
  EXPECT_EQ(a->local, b->local);
  EXPECT_EQ(a->ns_uri, b->ns_uri);
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->child_count, b->child_count);
  EXPECT_EQ(a->depth, b->depth);
  EXPECT_EQ(a->doc_order, b->doc_order);
  expect_same_attrs(a->first_attr, b->first_attr);
  const Node* ca = a->first_child;
  const Node* cb = b->first_child;
  while (ca != nullptr && cb != nullptr) {
    expect_same_tree(ca, cb);
    ca = ca->next_sibling;
    cb = cb->next_sibling;
  }
  EXPECT_EQ(ca, nullptr);
  EXPECT_EQ(cb, nullptr);
}

std::vector<std::string> workload_messages() {
  std::vector<std::string> bodies;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    aon::MessageSpec spec;
    spec.seed = seed;
    spec.quantity = static_cast<std::uint32_t>(seed % 3);
    spec.items = static_cast<std::uint32_t>(1 + seed % 4);
    spec.valid_for_schema = (seed % 2) == 0;
    bodies.push_back(aon::make_order_message(spec));
  }
  return bodies;
}

TEST(ArenaParity, FreeFunctionOverloadMatchesHeapParse) {
  for (const std::string& body : workload_messages()) {
    ParseResult heap = parse(body);
    ASSERT_TRUE(heap.ok) << heap.error.to_string();

    util::Arena arena(4 * 1024);
    ParseResult pooled = parse(body, arena);
    ASSERT_TRUE(pooled.ok) << pooled.error.to_string();
    EXPECT_TRUE(pooled.document.uses_external_arena());
    EXPECT_FALSE(heap.document.uses_external_arena());

    EXPECT_EQ(heap.document.node_count(), pooled.document.node_count());
    expect_same_tree(heap.document.doc_node(), pooled.document.doc_node());
  }
}

TEST(ArenaParity, ReusedDomParserMatchesHeapParseAcrossMessages) {
  DomParser reused;
  util::Arena arena(4 * 1024);
  // The same parser + arena across every message, reset between — the
  // exact lifecycle of Pipeline::ProcessScratch.
  for (const std::string& body : workload_messages()) {
    arena.reset();
    ParseResult pooled = reused.parse(body, arena);
    ASSERT_TRUE(pooled.ok) << pooled.error.to_string();

    ParseResult heap = parse(body);
    ASSERT_TRUE(heap.ok) << heap.error.to_string();
    EXPECT_EQ(heap.document.node_count(), pooled.document.node_count());
    expect_same_tree(heap.document.doc_node(), pooled.document.doc_node());
  }
}

TEST(ArenaParity, ParseFailureLeavesArenaDocumentReusable) {
  util::Arena arena(1024);
  ParseResult bad = parse("<open><unclosed>", arena);
  EXPECT_FALSE(bad.ok);

  arena.reset();
  ParseResult good = parse("<ok/>", arena);
  ASSERT_TRUE(good.ok);
  EXPECT_EQ(good.document.root()->qname, "ok");
}

}  // namespace
}  // namespace xaon::xml
