#include <gtest/gtest.h>

#include <cmath>

#include "xaon/xml/parser.hpp"
#include "xaon/xpath/xpath.hpp"

namespace xaon::xpath {
namespace {

/// The document most tests run against (shape mirrors the paper's CBR
/// SOAP message: an order with quantity inside an envelope).
constexpr const char* kDoc = R"(<shop>
  <order id="1" status="open">
    <item sku="A">widget</item>
    <quantity>1</quantity>
    <price>10.5</price>
  </order>
  <order id="2" status="closed">
    <item sku="B">gadget</item>
    <quantity>5</quantity>
    <price>2</price>
  </order>
  <note>hello world</note>
</shop>)";

class XPathEval : public ::testing::Test {
 protected:
  void SetUp() override {
    result_ = xml::parse(kDoc);
    ASSERT_TRUE(result_.ok) << result_.error.to_string();
    root_ = result_.document.root();
  }

  Value eval(std::string_view expr) {
    CompileError err;
    XPath x = XPath::compile(expr, &err);
    EXPECT_TRUE(x.valid()) << expr << ": " << err.message;
    return x.evaluate(root_);
  }
  double num(std::string_view expr) { return eval(expr).to_number(); }
  std::string str(std::string_view expr) { return eval(expr).to_string(); }
  bool boolean(std::string_view expr) { return eval(expr).to_boolean(); }
  std::size_t count(std::string_view expr) {
    Value v = eval(expr);
    EXPECT_TRUE(v.is_node_set()) << expr;
    return v.is_node_set() ? v.nodes().size() : 0;
  }

  xml::ParseResult result_;
  const xml::Node* root_ = nullptr;
};

TEST_F(XPathEval, ChildSteps) {
  EXPECT_EQ(count("order"), 2u);
  EXPECT_EQ(count("order/item"), 2u);
  EXPECT_EQ(count("note"), 1u);
  EXPECT_EQ(count("nothing"), 0u);
}

TEST_F(XPathEval, DescendantOrSelfAbbreviation) {
  EXPECT_EQ(count("//quantity"), 2u);
  EXPECT_EQ(count("//item"), 2u);
  EXPECT_EQ(count(".//quantity"), 2u);
  EXPECT_EQ(count("//shop"), 1u);
}

TEST_F(XPathEval, PaperCbrExpression) {
  // The paper's CBR: //quantity/text() compared against "1".
  Value v = eval("//quantity/text()");
  ASSERT_TRUE(v.is_node_set());
  ASSERT_EQ(v.nodes().size(), 2u);
  EXPECT_EQ(string_value(v.nodes()[0]), "1");
  EXPECT_TRUE(boolean("//quantity/text() = '1'"));
  EXPECT_FALSE(boolean("//quantity/text() = '7'"));
}

TEST_F(XPathEval, AbsolutePath) {
  EXPECT_EQ(count("/shop/order"), 2u);
  EXPECT_EQ(count("/shop"), 1u);
  EXPECT_EQ(count("/"), 1u);
  EXPECT_EQ(count("/order"), 0u);  // root element is shop
}

TEST_F(XPathEval, Attributes) {
  EXPECT_EQ(count("order/@id"), 2u);
  EXPECT_EQ(str("order/@id"), "1");
  EXPECT_EQ(count("//@sku"), 2u);
  EXPECT_EQ(count("order/@missing"), 0u);
  EXPECT_EQ(count("order/attribute::status"), 2u);
}

TEST_F(XPathEval, AttributeWildcard) {
  EXPECT_EQ(count("order[1]/@*"), 2u);  // id + status
}

TEST_F(XPathEval, PositionalPredicates) {
  EXPECT_EQ(str("order[1]/@id"), "1");
  EXPECT_EQ(str("order[2]/@id"), "2");
  EXPECT_EQ(str("order[position()=2]/@id"), "2");
  EXPECT_EQ(str("order[last()]/@id"), "2");
  EXPECT_EQ(count("order[3]"), 0u);
}

TEST_F(XPathEval, ValuePredicates) {
  EXPECT_EQ(str("order[@status='open']/@id"), "1");
  EXPECT_EQ(str("order[quantity=5]/@id"), "2");
  EXPECT_EQ(count("order[price>5]"), 1u);
  EXPECT_EQ(count("order[price>=2]"), 2u);
  EXPECT_EQ(count("order[quantity<0]"), 0u);
}

TEST_F(XPathEval, ChainedPredicates) {
  EXPECT_EQ(count("order[@status='open'][1]"), 1u);
  EXPECT_EQ(count("order[@status='open'][2]"), 0u);
}

TEST_F(XPathEval, ParentAndSelfAxes) {
  EXPECT_EQ(count("order/item/.."), 2u);
  EXPECT_EQ(str("order/item/../@id"), "1");
  EXPECT_EQ(count("order/."), 2u);
  EXPECT_EQ(count("//quantity/parent::order"), 2u);
  EXPECT_EQ(count("//quantity/ancestor::shop"), 1u);
  EXPECT_EQ(count("//quantity/ancestor-or-self::*"), 5u);  // shop+2 orders+2 quantities
}

TEST_F(XPathEval, SiblingAxes) {
  EXPECT_EQ(count("order[1]/item/following-sibling::*"), 2u);
  EXPECT_EQ(count("order[1]/price/preceding-sibling::*"), 2u);
  EXPECT_EQ(str("order[1]/quantity/following-sibling::price"), "10.5");
  // Reverse axis proximity position: nearest preceding sibling is [1].
  EXPECT_EQ(str("order[1]/price/preceding-sibling::*[1]"), "1");
}

TEST_F(XPathEval, DescendantAxisExplicit) {
  EXPECT_EQ(count("descendant::quantity"), 2u);
  EXPECT_EQ(count("descendant-or-self::shop"), 1u);
}

TEST_F(XPathEval, TextNodes) {
  EXPECT_EQ(count("note/text()"), 1u);
  EXPECT_EQ(str("note/text()"), "hello world");
  EXPECT_EQ(count("//text()"), 7u);  // 2 items + 2 qty + 2 price + note
}

TEST_F(XPathEval, NodeTest) {
  EXPECT_EQ(count("order/node()"), 6u);
  EXPECT_EQ(count("*"), 3u);
  EXPECT_EQ(count("order/*"), 6u);
}

TEST_F(XPathEval, UnionOperator) {
  EXPECT_EQ(count("note | order"), 3u);
  EXPECT_EQ(count("order | order"), 2u);  // dedup
  EXPECT_EQ(count("//quantity | //price | note"), 5u);
}

TEST_F(XPathEval, UnionKeepsDocumentOrder) {
  Value v = eval("note | order[1]/item");
  ASSERT_EQ(v.nodes().size(), 2u);
  EXPECT_EQ(v.nodes()[0].node->qname, "item");  // item precedes note
  EXPECT_EQ(v.nodes()[1].node->qname, "note");
}

TEST_F(XPathEval, NumericExpressions) {
  EXPECT_DOUBLE_EQ(num("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(num("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(num("10 div 4"), 2.5);
  EXPECT_DOUBLE_EQ(num("10 mod 3"), 1.0);
  EXPECT_DOUBLE_EQ(num("-5 + 2"), -3.0);
  EXPECT_DOUBLE_EQ(num("--5"), 5.0);
  EXPECT_DOUBLE_EQ(num("2 > 1 and 3 > 2"), 1.0);
}

TEST_F(XPathEval, NumberConversionFromNodes) {
  EXPECT_DOUBLE_EQ(num("order[1]/quantity"), 1.0);
  EXPECT_DOUBLE_EQ(num("order[1]/price * 2"), 21.0);
  EXPECT_DOUBLE_EQ(num("sum(//price)"), 12.5);
  EXPECT_DOUBLE_EQ(num("sum(//quantity)"), 6.0);
}

TEST_F(XPathEval, BooleanLogic) {
  EXPECT_TRUE(boolean("true()"));
  EXPECT_FALSE(boolean("false()"));
  EXPECT_TRUE(boolean("not(false())"));
  EXPECT_TRUE(boolean("1 = 1 or 1 = 2"));
  EXPECT_FALSE(boolean("1 = 1 and 1 = 2"));
  EXPECT_TRUE(boolean("note"));        // non-empty node-set
  EXPECT_FALSE(boolean("missing"));    // empty node-set
}

TEST_F(XPathEval, EqualityNodeSetSemantics) {
  // Existential: any quantity equals 5.
  EXPECT_TRUE(boolean("//quantity = 5"));
  EXPECT_TRUE(boolean("//quantity = 1"));
  EXPECT_FALSE(boolean("//quantity = 2"));
  // != is also existential (both can hold simultaneously).
  EXPECT_TRUE(boolean("//quantity != 5"));
  // No common string value between {1,5} and {10.5,2}.
  EXPECT_FALSE(boolean("//quantity = //price"));
}

TEST_F(XPathEval, StringFunctions) {
  EXPECT_EQ(str("concat('a','b','c')"), "abc");
  EXPECT_TRUE(boolean("starts-with('widget','wid')"));
  EXPECT_FALSE(boolean("starts-with('widget','x')"));
  EXPECT_TRUE(boolean("contains(note, 'world')"));
  EXPECT_EQ(str("substring-before('a-b','-')"), "a");
  EXPECT_EQ(str("substring-after('a-b','-')"), "b");
  EXPECT_EQ(str("substring('12345', 2, 3)"), "234");
  EXPECT_EQ(str("substring('12345', 0)"), "12345");
  EXPECT_EQ(str("substring('12345', 1.5, 2.6)"), "234");  // spec example
  EXPECT_DOUBLE_EQ(num("string-length('abcd')"), 4.0);
  EXPECT_EQ(str("normalize-space('  a   b ')"), "a b");
  EXPECT_EQ(str("translate('bar','abc','ABC')"), "BAr");
  EXPECT_EQ(str("translate('--aaa--','abc-','ABC')"), "AAA");
}

TEST_F(XPathEval, NumericFunctions) {
  EXPECT_DOUBLE_EQ(num("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(num("ceiling(2.2)"), 3.0);
  EXPECT_DOUBLE_EQ(num("round(2.5)"), 3.0);
  EXPECT_DOUBLE_EQ(num("round(-2.5)"), -2.0);  // XPath rounds half toward +inf
  EXPECT_DOUBLE_EQ(num("number('42')"), 42.0);
  EXPECT_TRUE(std::isnan(num("number('abc')")));
}

TEST_F(XPathEval, CountAndPosition) {
  EXPECT_DOUBLE_EQ(num("count(//order)"), 2.0);
  EXPECT_DOUBLE_EQ(num("count(//*)"), 10.0);
  EXPECT_DOUBLE_EQ(num("count(//@*)"), 6.0);  // 2x(id,status) + 2x sku
  EXPECT_EQ(str("order[position() = last()]/@id"), "2");
}

TEST_F(XPathEval, NameFunctions) {
  EXPECT_EQ(str("name(//order[1])"), "order");
  EXPECT_EQ(str("local-name(//order[1])"), "order");
  EXPECT_EQ(str("name(//@sku)"), "sku");
  EXPECT_EQ(str("namespace-uri(//order[1])"), "");
}

TEST_F(XPathEval, StringOfNodeSetIsFirstNode) {
  EXPECT_EQ(str("//quantity"), "1");  // first in document order
  EXPECT_EQ(str("string(//quantity)"), "1");
  EXPECT_EQ(str("missing"), "");
}

TEST_F(XPathEval, FilterExpressionWithTrailingPath) {
  EXPECT_EQ(count("(//order)[1]/item"), 1u);
  EXPECT_EQ(str("(//order)[2]/@id"), "2");
  EXPECT_EQ(count("(note | //order)[3]"), 1u);
}

TEST_F(XPathEval, RelationalOnNodeSets) {
  EXPECT_TRUE(boolean("//price > 10"));
  EXPECT_FALSE(boolean("//price > 11"));
  EXPECT_TRUE(boolean("//quantity < 2"));
}

TEST_F(XPathEval, EvaluateFromNestedContext) {
  CompileError err;
  XPath rel = XPath::compile("quantity", &err);
  ASSERT_TRUE(rel.valid());
  const xml::Node* order = root_->child_element("order");
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(rel.string(order), "1");
  // Absolute path from a nested context still reaches the root.
  XPath abs = XPath::compile("/shop/note", &err);
  EXPECT_EQ(abs.select(order).size(), 1u);
}

TEST_F(XPathEval, SelectAndTestHelpers) {
  CompileError err;
  XPath x = XPath::compile("//quantity/text() = '1'", &err);
  ASSERT_TRUE(x.valid());
  EXPECT_TRUE(x.test(root_));
  EXPECT_TRUE(x.select(root_).empty());  // boolean result -> empty set
  EXPECT_DOUBLE_EQ(XPath::compile("count(//order)").number(root_), 2.0);
}

TEST_F(XPathEval, NamespaceBindings) {
  auto r = xml::parse(
      R"(<s:env xmlns:s="urn:soap"><s:body><q xmlns="urn:q">9</q></s:body></s:env>)");
  ASSERT_TRUE(r.ok);
  CompileError err;
  XPath x = XPath::compile("/soap:env/soap:body", &err,
                           {{"soap", "urn:soap"}});
  ASSERT_TRUE(x.valid()) << err.message;
  EXPECT_EQ(x.select(r.document.root()).size(), 1u);
  // Unprefixed test matches no-namespace only...
  XPath plain = XPath::compile("//q", &err);
  ASSERT_TRUE(plain.valid());
  EXPECT_TRUE(plain.select(r.document.root()).empty());
  // ...unless a default binding is supplied.
  XPath dflt = XPath::compile("//q", &err, {{"", "urn:q"}});
  ASSERT_TRUE(dflt.valid());
  EXPECT_EQ(dflt.select(r.document.root()).size(), 1u);
}

TEST_F(XPathEval, InvalidExpressionsRejected) {
  struct Case {
    const char* expr;
  };
  for (const char* expr :
       {"", "//", "order[", "order[]", "1 +", "@", "foo(", "unknownfn()",
        "count()", "count(1,2)", "not()", "a/'lit'", "a b", "..a",
        "order/[1]", "pfx:a"}) {
    CompileError err;
    XPath x = XPath::compile(expr, &err);
    EXPECT_FALSE(x.valid()) << "should reject: " << expr;
    EXPECT_FALSE(err.message.empty()) << expr;
  }
}

TEST_F(XPathEval, CompileErrorPositions) {
  CompileError err;
  XPath x = XPath::compile("count(//a", &err);
  EXPECT_FALSE(x.valid());
  EXPECT_GT(err.offset, 0u);
}

TEST_F(XPathEval, MixedArithmeticWithPaths) {
  EXPECT_DOUBLE_EQ(num("order[1]/quantity + order[2]/quantity"), 6.0);
  EXPECT_DOUBLE_EQ(num("count(//order) * 10"), 20.0);
}

TEST_F(XPathEval, WhitespaceInsensitive) {
  EXPECT_EQ(count("  //  quantity "), 2u);
  EXPECT_DOUBLE_EQ(num(" 1 + 2 "), 3.0);
}

}  // namespace
}  // namespace xaon::xpath
