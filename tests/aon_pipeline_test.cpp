#include "xaon/aon/pipeline.hpp"

#include <gtest/gtest.h>

#include "xaon/aon/messages.hpp"
#include "xaon/http/parser.hpp"

namespace xaon::aon {
namespace {

std::string wire_with_quantity(std::uint32_t quantity, bool valid = true) {
  MessageSpec spec;
  spec.quantity = quantity;
  spec.valid_for_schema = valid;
  return make_post_wire(spec);
}

TEST(Pipeline, UseCaseNotation) {
  EXPECT_EQ(use_case_notation(UseCase::kForwardRequest), "FR");
  EXPECT_EQ(use_case_notation(UseCase::kContentBasedRouting), "CBR");
  EXPECT_EQ(use_case_notation(UseCase::kSchemaValidation), "SV");
}

TEST(Pipeline, FrAlwaysForwardsToPrimary) {
  Pipeline fr(UseCase::kForwardRequest);
  for (std::uint32_t q : {1u, 5u}) {
    const auto out = fr.process_wire(wire_with_quantity(q));
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.routed_primary);
    EXPECT_EQ(out.response.status, 200);
    EXPECT_FALSE(out.forwarded_wire.empty());
  }
  // FR forwards even schema-invalid and non-XML bodies (no inspection).
  const auto junk = fr.process_wire(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  EXPECT_TRUE(junk.ok);
  EXPECT_TRUE(junk.routed_primary);
}

TEST(Pipeline, CbrRoutesOnQuantity) {
  Pipeline cbr(UseCase::kContentBasedRouting);
  const auto hit = cbr.process_wire(wire_with_quantity(1));
  EXPECT_TRUE(hit.ok);
  EXPECT_TRUE(hit.routed_primary);
  const auto miss = cbr.process_wire(wire_with_quantity(3));
  EXPECT_TRUE(miss.ok);
  EXPECT_FALSE(miss.routed_primary);
  EXPECT_NE(miss.forwarded_to.find("error"), std::string::npos);
}

TEST(Pipeline, CbrRejectsMalformedXml) {
  Pipeline cbr(UseCase::kContentBasedRouting);
  const auto out = cbr.process_wire(
      "POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n<broken><");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.response.status, 400);
}

TEST(Pipeline, SvRoutesOnValidity) {
  Pipeline sv(UseCase::kSchemaValidation);
  const auto valid = sv.process_wire(wire_with_quantity(1, true));
  EXPECT_TRUE(valid.ok);
  EXPECT_TRUE(valid.routed_primary);
  EXPECT_EQ(valid.detail, "valid");
  const auto invalid = sv.process_wire(wire_with_quantity(1, false));
  EXPECT_TRUE(invalid.ok);
  EXPECT_FALSE(invalid.routed_primary);
  EXPECT_NE(invalid.detail.find("quantity"), std::string::npos);
}

TEST(Pipeline, SvHandlesBarePayloadWithoutEnvelope) {
  Pipeline sv(UseCase::kSchemaValidation);
  http::Request req = make_post_request(
      R"(<order id="1"><customer>c</customer>)"
      R"(<item><sku>AB-123</sku><quantity>2</quantity>)"
      R"(<price>1.50</price></item></order>)");
  const auto out = sv.process(req);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.routed_primary) << out.detail;
}

TEST(Pipeline, SvUnknownRootGoesToErrorEndpoint) {
  Pipeline sv(UseCase::kSchemaValidation);
  http::Request req = make_post_request("<invoice/>");
  const auto out = sv.process(req);
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.routed_primary);
  EXPECT_EQ(out.detail, "no declaration");
}

TEST(Pipeline, ForwardedRequestPreservesBodyAndAddsVia) {
  Pipeline fr(UseCase::kForwardRequest);
  const std::string wire = wire_with_quantity(1);
  const auto out = fr.process_wire(wire);
  http::RequestParser parser;
  parser.feed(out.forwarded_wire);
  ASSERT_TRUE(parser.done()) << parser.error();
  EXPECT_EQ(parser.request().headers.get("Via"), "1.1 xaon-gateway");
  EXPECT_EQ(parser.request().target, out.forwarded_to);
  // Body forwarded byte-identical.
  http::RequestParser original;
  original.feed(wire);
  EXPECT_EQ(parser.request().body, original.request().body);
}

TEST(Pipeline, CustomEndpoints) {
  Endpoints endpoints;
  endpoints.primary = "http://custom/main";
  endpoints.error = "http://custom/err";
  Pipeline cbr(UseCase::kContentBasedRouting, endpoints);
  EXPECT_EQ(cbr.process_wire(wire_with_quantity(1)).forwarded_to,
            "http://custom/main");
  EXPECT_EQ(cbr.process_wire(wire_with_quantity(9)).forwarded_to,
            "http://custom/err");
}

TEST(Pipeline, RejectsTruncatedHttp) {
  Pipeline fr(UseCase::kForwardRequest);
  const auto out = fr.process_wire("POST /x HTTP/1.1\r\nContent-Le");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.response.status, 400);
}

TEST(Pipeline, ScratchKeepsParseAlive) {
  Pipeline cbr(UseCase::kContentBasedRouting);
  Pipeline::ProcessScratch scratch;
  const auto out = cbr.process_wire(wire_with_quantity(1), &scratch);
  EXPECT_TRUE(out.ok);
  ASSERT_TRUE(scratch.parsed.ok);
  EXPECT_EQ(scratch.parsed.document.root()->local, "Envelope");
  EXPECT_EQ(scratch.request.method, "POST");
}

}  // namespace
}  // namespace xaon::aon
