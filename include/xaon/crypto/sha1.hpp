#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

/// \file sha1.hpp
/// SHA-1 and HMAC-SHA1, implemented from scratch (FIPS 180-1 /
/// RFC 2104).
///
/// The paper's future-work list names "crypto functions" as the next
/// AON operation class to characterize; WS-Security in the paper's era
/// signed SOAP messages with HMAC-SHA1. SHA-1 is cryptographically
/// broken today — this implementation exists to reproduce the
/// *performance* character of 2006-era message security (integer
/// rounds, byte sweeps), not to protect anything.

namespace xaon::crypto {

/// Streaming SHA-1.
class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha1() { reset(); }

  /// Absorbs `data`; may be called repeatedly.
  void update(std::string_view data);

  /// Finalizes and returns the digest. The object must be reset()
  /// before reuse.
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA1 per RFC 2104.
Sha1::Digest hmac_sha1(std::string_view key, std::string_view message);

/// Lower-case hex of a digest ("a9993e36...").
std::string to_hex(const Sha1::Digest& digest);

/// Constant-time digest comparison.
bool digest_equal(const Sha1::Digest& a, const Sha1::Digest& b);

}  // namespace xaon::crypto
