#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/aon/pipeline.hpp"
#include "xaon/util/metrics.hpp"

/// \file server.hpp
/// Host-mode AON server: the paper's "XML server application" threading
/// model — POSIX threads, one worker per (logical) CPU, each draining a
/// message queue. Runs natively (no simulation) for functional
/// integration tests, the examples and real-throughput measurements.
///
/// The forward path degrades gracefully: an optional `Downstream`
/// accepts each processed message's outbound wire, and a bounded
/// retry-with-backoff budget (`ForwardPolicy`) plus the bounded worker
/// queues guarantee a faulty downstream turns into 502/503 responses —
/// never unbounded queuing or a lost message.

namespace xaon::aon {

/// Verdict from one downstream send attempt.
enum class SendStatus : std::uint8_t {
  kAck,   ///< accepted
  kBusy,  ///< transient overload — retry may succeed, shed as 503
  kFail,  ///< hard failure — retried, then reported as 502
};

/// The next hop a processed message is forwarded to. Host mode uses
/// in-process doubles (healthy, flaky, slow, dead); the real-socket
/// implementation is `net::SocketDownstream`, which maps connect/write
/// deadlines onto the same verdicts (xaon/net/downstream.hpp). `send`
/// is called concurrently from every worker and must be thread-safe.
class Downstream {
 public:
  virtual ~Downstream() = default;
  virtual SendStatus send(std::string_view wire) = 0;
};

/// Per-message forward budget. The attempt bound is the host-mode
/// analogue of a wall-clock forward timeout: a worker spends at most
/// `max_attempts` sends plus `backoff_pauses` escalating pauses between
/// them on one message, then sheds it and moves on.
struct ForwardPolicy {
  std::size_t max_attempts = 3;
  std::uint32_t backoff_pauses = 64;  ///< Backoff::pause() calls per retry
};

struct ServerConfig {
  UseCase use_case = UseCase::kForwardRequest;
  std::size_t workers = 2;  ///< kept equal to CPUs, per the paper
  std::size_t queue_capacity = 512;
  Downstream* downstream = nullptr;  ///< optional next hop (not owned)
  ForwardPolicy forward;
  /// Per-worker structural routing cache capacity (CBR); 0 disables the
  /// cache so every message takes the full-evaluation path — the knob
  /// the cache differential tests flip.
  std::size_t route_cache_capacity = kDefaultRouteCacheCapacity;
};

/// Explicit response-class buckets. `add` classifies by HTTP status
/// range — every status lands in exactly one bucket, so the per-class
/// sums always reconcile against the message count (`total()`); a 1xx
/// or 3xx can never silently inflate the 4xx column.
struct StatusBuckets {
  std::uint64_t s1xx = 0;
  std::uint64_t s2xx = 0;
  std::uint64_t s3xx = 0;
  std::uint64_t s4xx = 0;
  std::uint64_t s5xx = 0;
  std::uint64_t other = 0;  ///< outside 100-599 (a pipeline bug if ever hit)

  void add(int status) {
    if (status >= 200 && status < 300) {
      ++s2xx;
    } else if (status >= 400 && status < 500) {
      ++s4xx;
    } else if (status >= 500 && status < 600) {
      ++s5xx;
    } else if (status >= 300) {
      ++s3xx;
    } else if (status >= 100) {
      ++s1xx;
    } else {
      ++other;
    }
  }

  std::uint64_t total() const {
    return s1xx + s2xx + s3xx + s4xx + s5xx + other;
  }

  void merge(const StatusBuckets& o) {
    s1xx += o.s1xx;
    s2xx += o.s2xx;
    s3xx += o.s3xx;
    s4xx += o.s4xx;
    s5xx += o.s5xx;
    other += o.other;
  }
};

struct LoadResult {
  std::uint64_t messages = 0;
  std::uint64_t routed_primary = 0;
  std::uint64_t routed_error = 0;
  std::uint64_t failed = 0;  ///< HTTP/XML-level rejections

  /// Dispatch-to-drain window: first push to the moment the *last*
  /// worker drained its queue. Excludes thread creation and join
  /// teardown, so short runs no longer under-report throughput.
  /// `messages_per_second()` divides by this window — it answers "how
  /// fast did the gateway process the stream", not "how long did the
  /// harness take".
  double seconds = 0;
  /// Full harness span (thread creation through join) — the old
  /// `seconds` semantics, kept for end-to-end accounting.
  double wall_seconds = 0;

  /// Response-class buckets: every accepted message lands in exactly
  /// one. The built-in pipeline only emits 2xx/4xx/5xx, so
  /// status_2xx + status_4xx + status_5xx == messages there; run_load
  /// asserts the all-bucket reconciliation unconditionally.
  std::uint64_t status_1xx = 0;  ///< never produced today; counted, not folded
  std::uint64_t status_2xx = 0;
  std::uint64_t status_3xx = 0;  ///< never produced today; counted, not folded
  std::uint64_t status_4xx = 0;  ///< pipeline rejections (400/403)
  std::uint64_t status_5xx = 0;  ///< downstream degradation (502/503)
  std::uint64_t status_other = 0;  ///< outside 100-599 (pipeline bug)
  std::uint64_t forward_retries = 0;   ///< extra send attempts
  std::uint64_t forward_failures = 0;  ///< budgets exhausted on kFail (502)
  std::uint64_t forward_shed = 0;      ///< budgets exhausted on kBusy (503)

  /// Merged per-worker / per-stage telemetry: parse / route / serialize
  /// / forward latency tracks (p50/p90/p99/max), per-worker message and
  /// busy-time accounting, the imbalance ratio, and the probe-site
  /// registry — one JSON dump via `metrics.to_json()`.
  util::MetricsSnapshot metrics;

  /// Throughput over the dispatch-to-drain window (see `seconds`).
  double messages_per_second() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0.0;
  }
};

class Server {
 public:
  explicit Server(const ServerConfig& config);

  /// Processes `total_messages`, cycling through `wires` (pre-built
  /// request bytes), distributed round-robin across workers. The wire
  /// cursor is decoupled from the worker cursor (its phase rotates by
  /// one each full pass), so every worker sees every wire class even
  /// when the worker count and wire count share a common factor —
  /// per-worker cost stays representative for mixed workloads. Blocks
  /// until done.
  LoadResult run_load(const std::vector<std::string>& wires,
                      std::uint64_t total_messages);

  const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
  Pipeline pipeline_;
};

}  // namespace xaon::aon
