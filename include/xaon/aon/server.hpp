#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xaon/aon/pipeline.hpp"

/// \file server.hpp
/// Host-mode AON server: the paper's "XML server application" threading
/// model — POSIX threads, one worker per (logical) CPU, each draining a
/// message queue. Runs natively (no simulation) for functional
/// integration tests, the examples and real-throughput measurements.

namespace xaon::aon {

struct ServerConfig {
  UseCase use_case = UseCase::kForwardRequest;
  std::size_t workers = 2;  ///< kept equal to CPUs, per the paper
  std::size_t queue_capacity = 512;
};

struct LoadResult {
  std::uint64_t messages = 0;
  std::uint64_t routed_primary = 0;
  std::uint64_t routed_error = 0;
  std::uint64_t failed = 0;  ///< HTTP/XML-level rejections
  double seconds = 0;

  double messages_per_second() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0.0;
  }
};

class Server {
 public:
  explicit Server(const ServerConfig& config);

  /// Processes `total_messages`, cycling through `wires` (pre-built
  /// request bytes), distributed round-robin across workers. Blocks
  /// until done.
  LoadResult run_load(const std::vector<std::string>& wires,
                      std::uint64_t total_messages);

  const ServerConfig& config() const { return config_; }

 private:
  ServerConfig config_;
  Pipeline pipeline_;
};

}  // namespace xaon::aon
