#pragma once

#include <cstdint>
#include <string>

#include "xaon/http/message.hpp"

/// \file messages.hpp
/// AONBench-style test messages (the paper, §3.2.1, uses a 5 KB SOAP
/// message whose Body carries an order with a <quantity> element; CBR
/// routes on `//quantity/text() = "1"`, SV validates the order against
/// a schema; filler elements pad the message to the AONBench-specified
/// 5 KB).

namespace xaon::aon {

struct MessageSpec {
  std::size_t target_bytes = 5 * 1024;  ///< AONBench message size
  std::uint32_t items = 3;              ///< order line items
  std::uint32_t quantity = 1;           ///< first item's quantity (CBR key)
  std::uint64_t seed = 1;               ///< varies filler/skus per message
  bool valid_for_schema = true;         ///< false: inject an SV violation
};

/// The SOAP envelope + order payload, padded with filler to
/// ~target_bytes.
std::string make_order_message(const MessageSpec& spec = {});

/// The XSD the SV use case validates order payloads against.
std::string order_schema_xsd();

/// Wraps a message body in the HTTP POST the AON gateway receives.
http::Request make_post_request(std::string body,
                                std::string target = "/aon/service");

/// Serialized wire form of the POST (what arrives from the network).
std::string make_post_wire(const MessageSpec& spec = {});

}  // namespace xaon::aon
