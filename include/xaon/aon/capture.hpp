#pragma once

#include <cstdint>

#include "xaon/aon/pipeline.hpp"
#include "xaon/uarch/trace.hpp"

/// \file capture.hpp
/// Records instruction traces of the real AON pipelines.
///
/// The capture runs the actual HTTP + XML + XPath/XSD code on real
/// AONBench messages with a wload::TraceRecorder installed, then hands
/// the resulting trace to the microarchitecture simulator. The receive
/// (socket delivery into the input buffer) and transmit (NIC reading
/// the forwarded bytes) copies are recorded explicitly around the
/// pipeline call, so FR traces are dominated by byte movement while SV
/// traces are dominated by content processing — the workload-spectrum
/// axis of the paper's Figure 1.

namespace xaon::aon {

struct CaptureConfig {
  /// Messages per trace; 0 = per-use-case default sized so one stream's
  /// data footprint exceeds the largest simulated L2 (live message
  /// flows have no allocator-level reuse).
  std::uint32_t messages = 0;
  std::uint64_t message_seed = 1;    ///< varies message content
  std::uint64_t data_base = 0x1000'0000;  ///< per-thread address region
  std::uint64_t code_base = 0x0040'0000;
  /// 0 = use the per-use-case default (FR < CBR < SV — proxying touches
  /// far less code than a 2006-era parse+validate stack).
  std::uint64_t code_footprint_bytes = 0;
  double alu_scale = 1.0;            ///< instruction-mix calibration
  /// <0 = per-use-case default. See RecorderConfig::compute_expansion:
  /// emulates the heavyweight commercial XML stack of the paper's SUT.
  double compute_expansion = -1.0;
};

/// Per-use-case workload-model defaults (documented in DESIGN.md).
std::uint64_t default_code_footprint(UseCase use_case);
std::uint32_t default_messages(UseCase use_case);
double default_compute_expansion(UseCase use_case);

/// Records `config.messages` full message round trips of the use case.
/// The work represented by the trace is exactly `config.messages`
/// messages (used to derive throughput from simulated time).
uarch::Trace capture_use_case_trace(UseCase use_case,
                                    const CaptureConfig& config = {});

}  // namespace xaon::aon
