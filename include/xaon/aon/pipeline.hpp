#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/http/message.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xpath/xpath.hpp"
#include "xaon/xsd/validator.hpp"

/// \file pipeline.hpp
/// The three AON use cases of the paper (§3.2.1):
///
///  * **FR** — HTTP Forward Request: proxy the POST to the default
///    endpoint untouched. Pure network I/O; the throughput baseline.
///  * **CBR** — Content Based Routing: parse the XML, evaluate
///    `//quantity/text()`; route to the primary endpoint when it equals
///    "1", else to the error endpoint.
///  * **SV** — Schema Validation: validate the order payload inside the
///    SOAP Body against the order schema; route valid messages to the
///    primary endpoint, invalid ones to the error endpoint.

namespace xaon::aon {

enum class UseCase : std::uint8_t {
  kForwardRequest,
  kContentBasedRouting,
  kSchemaValidation,
  // Extensions implementing the paper's stated future work ("deep
  // packet inspection ... and crypto functions", §6):
  kDeepInspection,   ///< DPI: payload scanned against attack signatures
  kMessageSecurity,  ///< SEC: HMAC-SHA1 message signing / verification
};

/// Paper notation: FR / CBR / SV (extensions: DPI / SEC).
std::string_view use_case_notation(UseCase use_case);

/// The built-in DPI signature patterns (unanchored regexes over the
/// payload bytes — injection attempts, script smuggling, entity bombs).
const std::vector<std::string>& default_dpi_signatures();

/// Header carrying the HMAC-SHA1 signature in the SEC use case.
inline constexpr const char* kSignatureHeader = "X-AON-Signature";

struct Endpoints {
  std::string primary = "http://backend.example:8080/orders";
  std::string error = "http://backend.example:8080/errors";
};

/// One message-processing engine. Construction compiles the XPath /
/// loads the schema; `process*` is const and thread-compatible, so the
/// host-mode server shares one Pipeline across workers.
class Pipeline {
 public:
  struct Outcome {
    bool ok = false;             ///< message handled (even if routed to error)
    bool routed_primary = false; ///< primary vs error endpoint
    std::string forwarded_to;    ///< endpoint URL chosen
    std::string forwarded_wire;  ///< serialized outbound request
    http::Response response;     ///< reply to the original client
    std::string detail;          ///< routing/validation diagnostics
  };

  explicit Pipeline(UseCase use_case, Endpoints endpoints = {});

  UseCase use_case() const { return use_case_; }

  /// Per-message state the pipeline normally frees on return. Trace
  /// capture passes one per message and keeps them alive so the
  /// recorded address stream reflects a live message stream rather
  /// than allocator page recycling.
  struct ProcessScratch {
    http::Request request;
    xml::ParseResult parsed;
  };

  /// Processes an already-parsed request.
  Outcome process(const http::Request& request,
                  ProcessScratch* scratch = nullptr) const;

  /// Processes raw wire bytes: HTTP parse + use case + forward
  /// serialization — the full per-message path the paper measures.
  Outcome process_wire(std::string_view wire,
                       ProcessScratch* scratch = nullptr) const;

 private:
  Outcome forward(const http::Request& request, bool primary,
                  std::string detail) const;

  UseCase use_case_;
  Endpoints endpoints_;
  xpath::XPath quantity_xpath_;
  xsd::Schema schema_;
  std::vector<xsd::Regex> signatures_;  ///< DPI
  std::string hmac_key_;                ///< SEC
};

}  // namespace xaon::aon
