#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "xaon/http/message.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/util/annotations.hpp"
#include "xaon/util/arena.hpp"
#include "xaon/util/cache.hpp"
#include "xaon/util/metrics.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xpath/xpath.hpp"
#include "xaon/xsd/validator.hpp"

/// \file pipeline.hpp
/// The three AON use cases of the paper (§3.2.1):
///
///  * **FR** — HTTP Forward Request: proxy the POST to the default
///    endpoint untouched. Pure network I/O; the throughput baseline.
///  * **CBR** — Content Based Routing: parse the XML, evaluate
///    `//quantity/text()`; route to the primary endpoint when it equals
///    "1", else to the error endpoint.
///  * **SV** — Schema Validation: validate the order payload inside the
///    SOAP Body against the order schema; route valid messages to the
///    primary endpoint, invalid ones to the error endpoint.

namespace xaon::aon {

enum class UseCase : std::uint8_t {
  kForwardRequest,
  kContentBasedRouting,
  kSchemaValidation,
  // Extensions implementing the paper's stated future work ("deep
  // packet inspection ... and crypto functions", §6):
  kDeepInspection,   ///< DPI: payload scanned against attack signatures
  kMessageSecurity,  ///< SEC: HMAC-SHA1 message signing / verification
};

/// Paper notation: FR / CBR / SV (extensions: DPI / SEC).
std::string_view use_case_notation(UseCase use_case);

/// The built-in DPI signature patterns (unanchored regexes over the
/// payload bytes — injection attempts, script smuggling, entity bombs).
const std::vector<std::string>& default_dpi_signatures();

/// Header carrying the HMAC-SHA1 signature in the SEC use case.
inline constexpr const char* kSignatureHeader = "X-AON-Signature";

struct Endpoints {
  std::string primary = "http://backend.example:8080/orders";
  std::string error = "http://backend.example:8080/errors";
};

/// One cached CBR routing plan: where a *structural* XPath's first hit
/// sits in any document sharing the keying tag-skeleton fingerprint.
/// The plan records tree **positions**, never values — on a cache hit
/// the pipeline re-reads the value at the recorded position from the
/// current message, so value-varying messages with a repeated shape
/// still route on their own content.
struct RoutePlan {
  enum class Kind : std::uint8_t {
    kNoHit,     ///< the expression selected nothing: route decided empty
    kNode,      ///< first hit is a text-like node at `path`
    kAttr,      ///< first hit is attribute #`attr_ordinal` of node at `path`
    kUncached,  ///< shape seen, but not plan-cacheable: run full eval
  };
  Kind kind = Kind::kNoHit;
  std::vector<std::uint32_t> path;  ///< child indices, root -> hit node
  std::uint32_t attr_ordinal = 0;   ///< 1-based, for kAttr
};

/// Per-worker structural routing cache: tag-skeleton fingerprint ->
/// RoutePlan, bounded LRU. Lives in ProcessScratch (single-owner, no
/// shared mutable state on the message path); hits are allocation-free.
using RouteCache = util::LruCache<std::uint64_t, RoutePlan>;

/// Default per-worker routing-cache capacity. Sized to hold the shape
/// working set of a mixed AONBench workload (distinct message *shapes*,
/// not messages) with room to spare; ~60 bytes/slot.
inline constexpr std::size_t kDefaultRouteCacheCapacity = 128;

/// One message-processing engine. Construction compiles the XPath /
/// loads the schema; `process*` is const and thread-compatible, so the
/// host-mode server shares one Pipeline across workers.
class Pipeline {
 public:
  struct Outcome {
    bool ok = false;             ///< message handled (even if routed to error)
    bool routed_primary = false; ///< primary vs error endpoint
    std::string forwarded_to;    ///< endpoint URL chosen
    std::string forwarded_wire;  ///< serialized outbound request
    http::Response response;     ///< reply to the original client
    std::string detail;          ///< routing/validation diagnostics

    /// Restores the default-constructed state, retaining string/header
    /// capacity for the next message.
    void reset();
  };

  explicit Pipeline(UseCase use_case, Endpoints endpoints = {});

  UseCase use_case() const { return use_case_; }

  /// Per-message processing state: parser buffers, DOM arena, XPath
  /// node-set pools, a schema-bound validator, and the reusable Outcome.
  /// A worker that keeps one of these across messages processes at
  /// steady state with (near-)zero heap allocation — all per-message
  /// storage is bump-allocated from `arena` and freed wholesale by
  /// Arena::reset(), while the remaining buffers retain their capacity.
  ///
  /// Trace capture instead passes a fresh one per message and keeps them
  /// alive so the recorded address stream reflects a live message stream
  /// rather than allocator page recycling.
  struct ProcessScratch {
    http::RequestParser parser;    ///< wire -> request, buffers reused
    http::Request request;         ///< retained for the capture path
    xml::DomParser dom_parser;     ///< tokenizer scratch
    util::Arena arena{64 * 1024};  ///< DOM storage, reset per message
    xml::ParseResult parsed;       ///< DOM bound to `arena`
    xpath::EvalScratch xpath;      ///< pooled node-set storage
    std::optional<xsd::Validator> validator;  ///< bound on first SV message
    Outcome outcome;               ///< reused result (reference API)

    /// Optional per-worker metrics sink: when set, process_wire records
    /// the parse / route / serialize stage spans into it (the forward
    /// stage is recorded by the caller that owns the downstream send).
    /// Recording is allocation-free; nullptr costs one branch per stage.
    util::WorkerMetrics* metrics = nullptr;
    std::uint64_t stage_start_ns = 0;  ///< internal stage-clock state

    /// Structural routing cache for CBR (DESIGN.md §"Caching"): keyed by
    /// the message's tag-skeleton fingerprint; a hit short-circuits the
    /// XPath evaluation and re-reads the routing value at the cached
    /// tree position. Per-worker and value-safe by construction; set
    /// capacity 0 to disable (every message takes the full-eval path).
    RouteCache route_cache{kDefaultRouteCacheCapacity};
  };

  /// Processes an already-parsed request.
  Outcome process(const http::Request& request,
                  ProcessScratch* scratch = nullptr) const;

  /// Processes raw wire bytes: HTTP parse + use case + forward
  /// serialization — the full per-message path the paper measures.
  Outcome process_wire(std::string_view wire,
                       ProcessScratch* scratch = nullptr) const;

  /// Hot-path variants: the returned Outcome lives in `scratch` and is
  /// invalidated by the next call through the same scratch. No
  /// per-message copies of the request or outcome are made.
  const Outcome& process(const http::Request& request,
                         ProcessScratch& scratch XAON_LIFETIME_BOUND) const;
  const Outcome& process_wire(std::string_view wire,
                              ProcessScratch& scratch XAON_LIFETIME_BOUND)
      const;

 private:
  Outcome& process_into(const http::Request& request,
                        ProcessScratch& state) const;
  Outcome& process_wire_into(std::string_view wire,
                             ProcessScratch& state) const;
  /// Serializes the outbound request straight into the scratch outcome,
  /// rewriting the target and Via (and `extra_name`, when given) without
  /// deep-copying the request.
  Outcome& forward_into(const http::Request& request, bool primary,
                        std::string_view detail, ProcessScratch& state,
                        std::string_view extra_name = {},
                        std::string_view extra_value = {}) const;

  UseCase use_case_;
  Endpoints endpoints_;
  xpath::XPath quantity_xpath_;
  /// True when quantity_xpath_ is a structural location path — the
  /// soundness precondition of the routing cache (checked once here,
  /// never per message).
  bool cbr_cacheable_ = false;
  /// Compiled schema, shared through the content-addressed schema cache
  /// (xsd::load_schema_cached) — immutable, so one compilation serves
  /// every pipeline and every worker thread.
  std::shared_ptr<const xsd::Schema> schema_;
  std::vector<xsd::Regex> signatures_;  ///< DPI
  std::string hmac_key_;                ///< SEC
};

}  // namespace xaon::aon
