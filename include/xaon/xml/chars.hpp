#pragma once

#include <cstdint>
#include <string_view>

/// \file chars.hpp
/// XML 1.0 character classification (ASCII-exact, permissive pass-through
/// for UTF-8 continuation/lead bytes — multi-byte characters are treated
/// as opaque name/text characters, which is sufficient for the AON
/// workloads and keeps the hot loops branch-light).

namespace xaon::xml {

constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// NameStartChar per XML 1.0 5th ed., ASCII subset + any byte >= 0x80.
constexpr bool is_name_start(char c) {
  const auto u = static_cast<unsigned char>(c);
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || u >= 0x80;
}

/// NameChar: NameStartChar plus digits, '-' and '.'.
constexpr bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Characters legal in XML content (excludes most C0 controls).
constexpr bool is_char(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u >= 0x20 || c == '\t' || c == '\n' || c == '\r';
}

constexpr bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

constexpr int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Encodes a Unicode code point as UTF-8 into buf (must hold 4 bytes);
/// returns the byte count, or 0 for an invalid code point.
int utf8_encode(std::uint32_t cp, char* buf);

/// Resolves the five predefined entities (lt, gt, amp, apos, quot);
/// returns the replacement char or '\0' when `name` is not predefined.
char predefined_entity(std::string_view name);

/// Like predefined_entity, but returns the replacement as a view of a
/// static literal (empty when `name` is not predefined) — no scratch
/// string needed on the resolution path.
std::string_view predefined_entity_text(std::string_view name);

}  // namespace xaon::xml
