#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "xaon/util/annotations.hpp"
#include "xaon/util/arena.hpp"

/// \file dom.hpp
/// Arena-backed XML document object model.
///
/// Nodes are POD-style structs allocated from the owning Document's arena:
/// no per-node heap traffic, perfect locality for tree walks (which the
/// probe layer turns into the address streams the cache simulator sees),
/// and O(1) wholesale teardown. All string_views point into the arena and
/// live exactly as long as the Document — the XAON_ARENA_TIED markers and
/// XAON_LIFETIME_BOUND accessor annotations make that contract visible to
/// xlint's view-member rule and Clang's -Wdangling respectively
/// (DESIGN.md §"Arena lifetime contract").

namespace xaon::xml {

enum class NodeType : std::uint8_t {
  kDocument,
  kElement,
  kText,
  kCData,
  kComment,
  kProcessingInstruction,
};

/// Attribute: singly-linked per element, in document order.
struct XAON_ARENA_TIED Attr {
  std::string_view qname;   ///< as written, e.g. "soap:encodingStyle"
  std::string_view prefix;  ///< "" when unprefixed
  std::string_view local;   ///< local part
  std::string_view ns_uri;  ///< resolved namespace URI ("" = none)
  std::string_view value;   ///< entity-decoded, normalized value
  Attr* next = nullptr;
};

/// A DOM node. Element nodes use the name/ns fields and children;
/// text-like nodes use `text`.
struct XAON_ARENA_TIED Node {
  NodeType type = NodeType::kElement;

  std::string_view qname;   ///< element qname / PI target
  std::string_view prefix;
  std::string_view local;
  std::string_view ns_uri;
  std::string_view text;    ///< text/cdata/comment content, PI data

  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* last_child = nullptr;
  Node* prev_sibling = nullptr;
  Node* next_sibling = nullptr;
  Attr* first_attr = nullptr;

  std::uint32_t child_count = 0;
  std::uint32_t depth = 0;      ///< root element has depth 1
  std::uint32_t doc_order = 0;  ///< creation index; monotone in doc order

  bool is_element() const { return type == NodeType::kElement; }
  bool is_text() const {
    return type == NodeType::kText || type == NodeType::kCData;
  }

  /// First child element with the given local name (any namespace),
  /// or nullptr.
  const Node* child_element(std::string_view local_name) const
      XAON_LIFETIME_BOUND;

  /// First child element of any name, or nullptr.
  const Node* first_child_element() const XAON_LIFETIME_BOUND;

  /// Next sibling element, or nullptr.
  const Node* next_sibling_element() const XAON_LIFETIME_BOUND;

  /// Attribute lookup by qname as written; nullptr when absent.
  const Attr* attr(std::string_view attr_qname) const XAON_LIFETIME_BOUND;

  /// Concatenation of all descendant text/CDATA (allocates).
  std::string text_content() const;

  /// Appends all descendant text/CDATA to `out` — the non-allocating
  /// variant for hot paths that reuse `out`'s capacity across messages.
  void text_content_to(std::string& out) const;
};

/// A parsed document. Move-only; nodes live in the arena.
///
/// By default the Document owns its arena and tears the whole tree down
/// on destruction. Alternatively it can be bound to an *external* arena
/// (see `xml::parse(input, arena, ...)`): nodes are then allocated from
/// the caller's arena, which the caller resets wholesale between
/// messages — the zero-allocation message hot path. An externally-backed
/// Document never outlives its arena's next reset().
class XAON_ARENA_TIED Document {
 public:
  Document() = default;

  /// Binds the document to an external arena; the caller owns the node
  /// storage lifetime.
  explicit Document(util::Arena& external) : external_(&external) {}

  Document(Document&& other) noexcept
      : own_arena_(std::move(other.own_arena_)),
        external_(other.external_),
        doc_(other.doc_),
        node_count_(other.node_count_) {
    other.doc_ = nullptr;
    other.node_count_ = 0;
  }

  Document& operator=(Document&& other) noexcept {
    if (this != &other) {
      own_arena_ = std::move(other.own_arena_);
      external_ = other.external_;
      doc_ = other.doc_;
      node_count_ = other.node_count_;
      other.doc_ = nullptr;
      other.node_count_ = 0;
    }
    return *this;
  }

  /// The synthetic document node (type kDocument); never null after a
  /// successful parse.
  Node* doc_node() XAON_LIFETIME_BOUND { return doc_; }
  const Node* doc_node() const XAON_LIFETIME_BOUND { return doc_; }

  /// The root element, or nullptr for an empty document.
  Node* root() XAON_LIFETIME_BOUND;
  const Node* root() const XAON_LIFETIME_BOUND;

  util::Arena& arena() { return external_ != nullptr ? *external_ : own_arena_; }
  const util::Arena& arena() const {
    return external_ != nullptr ? *external_ : own_arena_;
  }

  /// True when node storage lives in a caller-owned arena.
  bool uses_external_arena() const { return external_ != nullptr; }

  /// Total nodes created by the parser (elements + text-likes + document).
  std::size_t node_count() const { return node_count_; }

 private:
  friend class DomBuilder;
  friend class Builder;
  util::Arena own_arena_{16 * 1024};
  util::Arena* external_ = nullptr;
  Node* doc_ = nullptr;
  std::size_t node_count_ = 0;
};

/// Counts element nodes in the subtree rooted at `n` (inclusive when `n`
/// is an element).
std::size_t count_elements(const Node* n);

/// Tag-skeleton fingerprint of the subtree rooted at `root`: a 64-bit
/// digest of the *element structure stream* — node kinds in document
/// order, element local names + namespace URIs, attribute names (local +
/// namespace), PI targets, and explicit open/close framing — with every
/// character-data **value excluded** (text content, CDATA content,
/// attribute values, comment bodies, PI data). Two documents that differ
/// only in values therefore share a fingerprint, while any structural
/// change (element insert/delete/rename, attribute add/remove/rename,
/// text node appearing or vanishing) changes it. Text and CDATA nodes
/// contribute the same presence marker: they are interchangeable to
/// every structural consumer (XPath `text()` matches both).
///
/// This is the key of the CBR structural routing cache (DESIGN.md
/// §"Caching"): equal skeletons mean a structural XPath selects nodes at
/// identical tree positions. Allocation-free (iterative walk via parent
/// links). Collisions are possible in principle; consumers fall back to
/// full evaluation when a cached plan fails to resolve.
std::uint64_t skeleton_fingerprint(const Node* root);

}  // namespace xaon::xml
