#pragma once

#include <cstddef>
#include <string_view>

#include "xaon/util/annotations.hpp"
#include "xaon/xml/error.hpp"
#include "xaon/xml/parser.hpp"

/// \file sax.hpp
/// Streaming (SAX-style) parse interface over the same tokenizer the DOM
/// parser uses. The schema validator's streaming mode and the HTTP
/// fast-paths consume this; no tree is materialized.

namespace xaon::xml {

/// One attribute as delivered to a SaxHandler. Views are valid only for
/// the duration of the callback.
struct XAON_ARENA_TIED SaxAttr {
  std::string_view qname;
  std::string_view prefix;
  std::string_view local;
  std::string_view ns_uri;
  std::string_view value;
};

/// Event callbacks. Return false from any callback to abort the parse
/// (parse_sax then returns ok=true with aborted=true).
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual bool on_start_element(std::string_view qname,
                                std::string_view local,
                                std::string_view ns_uri,
                                const SaxAttr* attrs, std::size_t n_attrs) {
    (void)qname; (void)local; (void)ns_uri; (void)attrs; (void)n_attrs;
    return true;
  }
  virtual bool on_end_element(std::string_view qname, std::string_view local,
                              std::string_view ns_uri) {
    (void)qname; (void)local; (void)ns_uri;
    return true;
  }
  virtual bool on_text(std::string_view text, bool is_cdata) {
    (void)text; (void)is_cdata;
    return true;
  }
  virtual bool on_comment(std::string_view text) {
    (void)text;
    return true;
  }
  virtual bool on_processing_instruction(std::string_view target,
                                         std::string_view data) {
    (void)target; (void)data;
    return true;
  }
};

struct SaxResult {
  Error error;
  bool ok = false;
  bool aborted = false;  ///< a handler returned false

  explicit operator bool() const { return ok; }
};

/// Streams `input` through `handler`.
SaxResult parse_sax(std::string_view input, SaxHandler& handler,
                    const ParseOptions& options = {});

}  // namespace xaon::xml
