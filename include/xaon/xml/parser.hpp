#pragma once

#include <string_view>

#include "xaon/xml/dom.hpp"
#include "xaon/xml/error.hpp"

/// \file parser.hpp
/// Non-validating, namespace-aware XML 1.0 parser producing the arena DOM.
///
/// Supported: elements, attributes, character data, CDATA, comments,
/// processing instructions, predefined + numeric character references,
/// namespace declarations/resolution, XML declaration, DOCTYPE skipping
/// (internal subsets without entity definitions). Unsupported by design:
/// custom DTD entities, external entities (an AON device never resolves
/// those — they are a classic attack vector).

namespace xaon::xml {

struct ParseOptions {
  bool namespace_aware = true;  ///< resolve prefixes to URIs
  bool keep_comments = false;   ///< retain comment nodes in the DOM
  bool keep_pis = false;        ///< retain processing-instruction nodes
  bool keep_whitespace_text = false;  ///< retain whitespace-only text nodes
  std::size_t max_depth = 256;  ///< element nesting limit
};

struct ParseResult {
  Document document;
  Error error;
  bool ok = false;

  explicit operator bool() const { return ok; }
};

/// Parses `input` into a Document. On failure `ok` is false and `error`
/// carries the first diagnostic; the partially-built document is
/// discarded.
ParseResult parse(std::string_view input, const ParseOptions& options = {});

}  // namespace xaon::xml
