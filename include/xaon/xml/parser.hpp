#pragma once

#include <memory>
#include <string_view>

#include "xaon/util/arena.hpp"
#include "xaon/xml/dom.hpp"
#include "xaon/xml/error.hpp"

/// \file parser.hpp
/// Non-validating, namespace-aware XML 1.0 parser producing the arena DOM.
///
/// Supported: elements, attributes, character data, CDATA, comments,
/// processing instructions, predefined + numeric character references,
/// namespace declarations/resolution, XML declaration, DOCTYPE skipping
/// (internal subsets without entity definitions). Unsupported by design:
/// custom DTD entities, external entities (an AON device never resolves
/// those — they are a classic attack vector).

namespace xaon::xml {

struct ParseOptions {
  bool namespace_aware = true;  ///< resolve prefixes to URIs
  bool keep_comments = false;   ///< retain comment nodes in the DOM
  bool keep_pis = false;        ///< retain processing-instruction nodes
  bool keep_whitespace_text = false;  ///< retain whitespace-only text nodes
  /// Element nesting limit (ErrorCode::kDepthLimit when exceeded). The
  /// parser recurses per level, so regardless of this setting the
  /// effective limit is capped at kDepthCeiling — a hostile 100k-deep
  /// document is rejected, never a stack overflow.
  std::size_t max_depth = 256;
  /// Per-element attribute limit (ErrorCode::kAttrLimit).
  std::size_t max_attributes = 256;
  /// Per-document entity/character-reference limit
  /// (ErrorCode::kEntityLimit). Custom DTD entities are unsupported, so
  /// references cannot amplify (no billion-laughs), but an input packed
  /// with references still costs decode work per reference — this bounds
  /// that work.
  std::size_t max_entity_expansions = 1'000'000;

  /// Hard recursion ceiling; max_depth values above it are clamped.
  static constexpr std::size_t kDepthCeiling = 1024;
};

struct ParseResult {
  Document document;
  Error error;
  bool ok = false;

  explicit operator bool() const { return ok; }
};

/// Parses `input` into a Document owning its node storage. On failure
/// `ok` is false and `error` carries the first diagnostic; the
/// partially-built document is discarded.
ParseResult parse(std::string_view input, const ParseOptions& options = {});

/// Arena-parameterized overload: DOM nodes, attributes and decoded text
/// are allocated from `arena` instead of a per-document heap arena. The
/// caller frees the whole message wholesale with `arena.reset()` between
/// messages — nodes (including a failed parse's partial output) dangle
/// after that. The returned Document references `arena` and must not
/// outlive it.
ParseResult parse(std::string_view input, util::Arena& arena,
                  const ParseOptions& options = {});

namespace detail {
struct ParserScratch;
}

/// A reusable DOM parser for the per-message hot path: keeps the
/// tokenizer's internal buffers (namespace stack, attribute lists, text
/// accumulation) alive across parses so a steady-state parse performs no
/// heap allocation at all when paired with a reset() arena.
class DomParser {
 public:
  DomParser();
  ~DomParser();
  DomParser(DomParser&&) noexcept;
  DomParser& operator=(DomParser&&) noexcept;

  /// Like the free `parse(input, arena, options)` but reusing this
  /// parser's buffers.
  ParseResult parse(std::string_view input, util::Arena& arena,
                    const ParseOptions& options = {});

 private:
  std::unique_ptr<detail::ParserScratch> scratch_;
};

}  // namespace xaon::xml
