#pragma once

#include <string>
#include <string_view>

#include "xaon/xml/dom.hpp"

/// \file builder.hpp
/// Programmatic document construction — the write-side counterpart of
/// the parser. The AON gateway uses it to synthesize routing headers
/// and error reports; tests use it to build fixtures without string
/// concatenation.
///
/// Usage:
///   xml::Builder b("order");
///   b.attribute("id", "42")
///    .child("customer").text("ACME").up()
///    .child("item")
///      .child("sku").text("AB-123").up()
///      .child("quantity").text("1").up()
///    .up();
///   xml::Document doc = b.take();

namespace xaon::xml {

class XAON_ARENA_TIED Builder {
 public:
  /// Starts a document whose root element is `root_qname`.
  explicit Builder(std::string_view root_qname);

  Builder(const Builder&) = delete;
  Builder& operator=(const Builder&) = delete;

  /// Opens a child element under the cursor and moves the cursor into
  /// it. Returns *this for chaining.
  Builder& child(std::string_view qname);

  /// Closes the current element, moving the cursor to its parent.
  /// Aborts if already at the root.
  Builder& up();

  /// Adds an attribute to the cursor element. Later duplicates of the
  /// same name are rejected (aborts) — mirroring parser behaviour.
  Builder& attribute(std::string_view name, std::string_view value);

  /// Appends a text node under the cursor.
  Builder& text(std::string_view data);

  /// Appends a CDATA node under the cursor.
  Builder& cdata(std::string_view data);

  /// Appends a comment node under the cursor.
  Builder& comment(std::string_view data);

  /// Binds a namespace prefix on the cursor element (emits the xmlns
  /// attribute and resolves names of the subtree when serialized and
  /// re-parsed). Pass an empty prefix for the default namespace.
  Builder& namespace_binding(std::string_view prefix, std::string_view uri);

  /// The element the cursor points at (for direct inspection).
  const Node* cursor() const { return cursor_; }

  /// Finalizes and returns the document; the Builder must not be used
  /// afterwards. The cursor may be at any depth (remaining elements are
  /// implicitly closed).
  Document take();

 private:
  Node* new_node(NodeType type);

  Document doc_;
  Node* cursor_ = nullptr;
};

}  // namespace xaon::xml
