#pragma once

#include <string>

#include "xaon/xml/dom.hpp"

/// \file writer.hpp
/// DOM serialization back to XML text.

namespace xaon::xml {

struct WriteOptions {
  bool declaration = true;   ///< emit <?xml version="1.0"?>
  bool pretty = false;       ///< indent children (2 spaces per depth)
  bool self_close_empty = true;  ///< <a/> instead of <a></a>
};

/// Serializes the subtree rooted at `node` (pass Document::doc_node() for
/// the whole document). Text is re-escaped; attribute values quoted with
/// '"'.
std::string write(const Node* node, const WriteOptions& options = {});

/// Escapes `s` for use as XML character data (&, <, >).
std::string escape_text(std::string_view s);

/// Escapes `s` for use inside a double-quoted attribute value.
std::string escape_attr(std::string_view s);

}  // namespace xaon::xml
