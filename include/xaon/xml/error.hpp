#pragma once

#include <cstddef>
#include <string>

/// \file error.hpp
/// Parse/validation diagnostics with input position.

namespace xaon::xml {

struct Error {
  std::size_t offset = 0;  ///< byte offset into the input
  std::size_t line = 0;    ///< 1-based; 0 when not applicable
  std::size_t column = 0;  ///< 1-based byte column
  std::string message;

  bool empty() const { return message.empty(); }
  std::string to_string() const;
};

}  // namespace xaon::xml
