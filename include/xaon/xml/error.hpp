#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

/// \file error.hpp
/// Parse/validation diagnostics with input position.

namespace xaon::xml {

/// Structured classification of a parse failure. Resource-limit errors
/// (kDepthLimit/kAttrLimit/kEntityLimit) mean the document tripped one
/// of the parser's hardening bounds, not that it is malformed — callers
/// treat both as rejection but tests and chaos harnesses assert which
/// defense fired.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kSyntax,       ///< not well-formed XML
  kDepthLimit,   ///< element nesting exceeded ParseOptions::max_depth
  kAttrLimit,    ///< attribute count exceeded ParseOptions::max_attributes
  kEntityLimit,  ///< references exceeded ParseOptions::max_entity_expansions
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kSyntax: return "syntax";
    case ErrorCode::kDepthLimit: return "depth-limit";
    case ErrorCode::kAttrLimit: return "attr-limit";
    case ErrorCode::kEntityLimit: return "entity-limit";
  }
  return "?";
}

struct Error {
  std::size_t offset = 0;  ///< byte offset into the input
  std::size_t line = 0;    ///< 1-based; 0 when not applicable
  std::size_t column = 0;  ///< 1-based byte column
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  bool empty() const { return message.empty(); }
  std::string to_string() const;
};

}  // namespace xaon::xml
