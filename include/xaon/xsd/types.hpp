#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// \file types.hpp
/// XML Schema built-in simple types (the subset that appears in
/// enterprise message schemas) with lexical validation and the
/// whitespace-facet machinery layered under user-defined restrictions.

namespace xaon::xsd {

enum class BuiltinType : std::uint8_t {
  kAnySimpleType,
  kString,
  kNormalizedString,
  kToken,
  kLanguage,
  kName,
  kNCName,
  kBoolean,
  kDecimal,
  kInteger,
  kNonPositiveInteger,
  kNegativeInteger,
  kLong,
  kInt,
  kShort,
  kByte,
  kNonNegativeInteger,
  kUnsignedLong,
  kUnsignedInt,
  kUnsignedShort,
  kUnsignedByte,
  kPositiveInteger,
  kFloat,
  kDouble,
  kDate,
  kTime,
  kDateTime,
  kAnyUri,
  kHexBinary,
  kBase64Binary,
};

/// Maps an XSD local name ("string", "int", ...) to the enum;
/// nullopt for unsupported types.
std::optional<BuiltinType> builtin_by_name(std::string_view local);

/// Canonical local name for diagnostics.
std::string_view builtin_name(BuiltinType t);

enum class Whitespace : std::uint8_t {
  kPreserve,  ///< as written
  kReplace,   ///< tab/CR/LF -> space
  kCollapse,  ///< replace, then collapse runs and trim
};

/// The whitespace facet each built-in fixes (string: preserve,
/// normalizedString: replace, everything else: collapse).
Whitespace builtin_whitespace(BuiltinType t);

/// Applies a whitespace facet to a raw lexical value.
std::string apply_whitespace(std::string_view raw, Whitespace ws);

/// True when applying `ws` to `raw` would change nothing — the
/// validation hot path uses this to skip the apply_whitespace() copy
/// (typical machine-generated values are already collapsed).
bool whitespace_is_normalized(std::string_view raw, Whitespace ws);

/// Validates the (already whitespace-processed) lexical value against
/// the built-in's lexical space. On failure returns false and, when
/// `error` is non-null, a human-readable reason.
bool validate_builtin(BuiltinType t, std::string_view value,
                      std::string* error = nullptr);

/// True for types with an ordered numeric value space (range facets
/// apply).
bool builtin_is_numeric(BuiltinType t);

/// Numeric value for range-facet comparison; nullopt when the value is
/// not in the type's lexical space or the type is not numeric.
std::optional<double> builtin_numeric_value(BuiltinType t,
                                            std::string_view value);

}  // namespace xaon::xsd
