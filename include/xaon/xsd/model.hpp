#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/xsd/regex.hpp"
#include "xaon/xsd/types.hpp"

/// \file model.hpp
/// Schema component model: simple types with facets, complex types with
/// particle content models and attribute uses, element declarations, and
/// the Schema container. Built either programmatically (Schema's add_*
/// API) or from an XSD document (loader.hpp).

namespace xaon::xsd {

/// A user-defined (or anonymous) simple type: a restriction of a
/// built-in with constraining facets.
struct SimpleType {
  std::string name;  ///< empty for anonymous types
  BuiltinType base = BuiltinType::kString;

  // Facets (absent = unconstrained).
  std::optional<std::uint64_t> length;
  std::optional<std::uint64_t> min_length;
  std::optional<std::uint64_t> max_length;
  std::vector<Regex> patterns;           ///< all must match (XSD ANDs steps)
  std::vector<std::string> enumeration;  ///< any must match, post-whitespace
  std::optional<double> min_inclusive;
  std::optional<double> max_inclusive;
  std::optional<double> min_exclusive;
  std::optional<double> max_exclusive;
  std::optional<std::uint32_t> total_digits;
  std::optional<std::uint32_t> fraction_digits;
  std::optional<Whitespace> whitespace;  ///< overrides the base default

  /// The effective whitespace facet.
  Whitespace effective_whitespace() const {
    return whitespace.value_or(builtin_whitespace(base));
  }

  /// Validates a raw lexical value (whitespace processing applied
  /// internally). On failure fills `error` when non-null.
  bool validate(std::string_view raw, std::string* error = nullptr) const;
};

struct ElementDecl;

enum class ParticleKind : std::uint8_t {
  kElement,
  kSequence,
  kChoice,
  kAll,  ///< only as the outermost particle; children are elements
};

/// maxOccurs="unbounded".
inline constexpr std::uint32_t kUnbounded = 0xFFFFFFFFu;

struct Particle {
  ParticleKind kind = ParticleKind::kElement;
  std::uint32_t min_occurs = 1;
  std::uint32_t max_occurs = 1;
  const ElementDecl* element = nullptr;  ///< kElement
  std::vector<Particle> children;        ///< groups
};

struct AttributeUse {
  std::string name;  ///< attribute local name (no-namespace attributes)
  const SimpleType* type = nullptr;  ///< null = xs:string, unconstrained
  bool required = false;
  std::optional<std::string> fixed;  ///< value must equal this when present
};

enum class ContentKind : std::uint8_t {
  kEmpty,        ///< no children, no text
  kSimple,       ///< text only, validated against simple_content
  kElementOnly,  ///< children per particle; whitespace-only text allowed
  kMixed,        ///< children per particle; any text allowed
};

namespace detail {
class ContentAutomaton;  // built lazily per complex type
}

struct ComplexType {
  std::string name;  ///< empty for anonymous types
  ContentKind content = ContentKind::kEmpty;
  const SimpleType* simple_content = nullptr;  ///< kSimple
  std::optional<Particle> particle;            ///< kElementOnly / kMixed
  std::vector<AttributeUse> attributes;

  /// Lazily compiled content-model automaton (thread-compatible: compile
  /// happens in Schema::finalize, not during validation).
  std::shared_ptr<const detail::ContentAutomaton> automaton;
};

struct ElementDecl {
  std::string local;   ///< local name
  std::string ns_uri;  ///< element namespace ("" = none)

  // Exactly one of these is set (or neither: anyType — anything goes).
  const SimpleType* simple_type = nullptr;
  const ComplexType* complex_type = nullptr;

  bool nillable = false;
};

/// A compiled schema. Owns every component; addresses are stable for the
/// Schema's lifetime (components live in deques).
class Schema {
 public:
  Schema() = default;
  Schema(Schema&&) noexcept = default;
  Schema& operator=(Schema&&) noexcept = default;

  /// Target namespace for global element names.
  void set_target_namespace(std::string ns) { target_ns_ = std::move(ns); }
  const std::string& target_namespace() const { return target_ns_; }

  /// Component factories. Returned pointers are owned by the Schema and
  /// stable. Named components are registered for lookup.
  SimpleType* add_simple_type(std::string name);
  ComplexType* add_complex_type(std::string name);
  ElementDecl* add_element(std::string local, std::string ns_uri);

  /// Marks an element declaration as a valid document root.
  void add_global_element(const ElementDecl* decl);

  /// Lookup by name; nullptr when absent.
  const SimpleType* find_simple_type(std::string_view name) const;
  const ComplexType* find_complex_type(std::string_view name) const;
  const ElementDecl* find_global_element(std::string_view ns_uri,
                                         std::string_view local) const;

  const std::vector<const ElementDecl*>& global_elements() const {
    return globals_;
  }

  /// Compiles every complex type's content model. Must be called after
  /// construction and before validation; returns false (with `error`)
  /// when a content model is invalid (e.g. explosive occurrence bounds).
  bool finalize(std::string* error = nullptr);

  std::size_t simple_type_count() const { return simple_types_.size(); }
  std::size_t complex_type_count() const { return complex_types_.size(); }
  std::size_t element_count() const { return elements_.size(); }

 private:
  std::string target_ns_;
  std::deque<SimpleType> simple_types_;
  std::deque<ComplexType> complex_types_;
  std::deque<ElementDecl> elements_;
  std::vector<const ElementDecl*> globals_;
};

}  // namespace xaon::xsd
