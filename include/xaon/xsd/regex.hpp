#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "xaon/util/annotations.hpp"

/// \file regex.hpp
/// XML Schema pattern-facet regular expressions.
///
/// Implements the XSD regex dialect subset used by real-world schemas:
/// literals, `.`, escapes (`\d \D \w \W \s \S \. \\ ...`), character
/// classes with ranges and negation, groups, alternation, and the
/// quantifiers `* + ? {n} {n,} {n,m}`. Matching is whole-string
/// (XSD patterns are implicitly anchored) via a Thompson NFA simulated
/// with a Pike-style VM — linear time, no backtracking, no pathological
/// inputs (an AON device validates hostile messages).
///
/// Byte-oriented: multi-byte UTF-8 sequences match via `.`/negated
/// classes byte-wise, which is sufficient for ASCII-dominant facets.

namespace xaon::xsd {

class Regex {
 public:
  /// Compiles `pattern`. On failure returns an invalid Regex and fills
  /// `error` (if non-null).
  static Regex compile(std::string_view pattern, std::string* error = nullptr);

  Regex() = default;
  bool valid() const { return prog_ != nullptr; }

  /// Whole-string match (XSD anchoring).
  bool match(std::string_view text) const;

  /// Unanchored substring search (used by the deep-packet-inspection
  /// extension): true when any substring of `text` matches. Same
  /// linear-time Pike VM; a new match attempt starts at every input
  /// position.
  bool search(std::string_view text) const;

  /// The source pattern (views storage owned by the compiled program).
  std::string_view pattern() const XAON_LIFETIME_BOUND;

  /// Number of compiled VM instructions (exposed for tests/benchmarks).
  std::size_t program_size() const;

  /// Opaque compiled program (defined in regex.cpp).
  struct Program;

 private:
  explicit Regex(std::shared_ptr<const Program> prog) : prog_(std::move(prog)) {}
  std::shared_ptr<const Program> prog_;
};

}  // namespace xaon::xsd
