#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "xaon/util/cache.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xsd/model.hpp"

/// \file loader.hpp
/// Builds a Schema from an XSD document (`<xs:schema>`).
///
/// Supported constructs: global/local `xs:element` (name=/ref=/type=,
/// inline anonymous types, minOccurs/maxOccurs), named and anonymous
/// `xs:complexType` (sequence / choice / all, nested groups, mixed,
/// simpleContent extension, attributes with use=/fixed=), named and
/// anonymous `xs:simpleType` restrictions with the facets in model.hpp,
/// targetNamespace + elementFormDefault. Imports/includes/substitution
/// groups/keys are out of scope (the AON workloads never use them);
/// encountering one is a load error, not a silent skip.

namespace xaon::xsd {

struct LoadResult {
  Schema schema;
  std::string error;
  bool ok = false;

  explicit operator bool() const { return ok; }
};

/// Parses and loads an XSD from text. The result schema is finalized
/// (content models compiled) and ready for Validator.
LoadResult load_schema(std::string_view xsd_text);

/// Loads from an already-parsed document (must outlive the call only;
/// the schema copies what it needs).
LoadResult load_schema(const xml::Document& doc);

/// Content-addressed compiled-schema cache: loads `xsd_text` like
/// load_schema(), but keyed by a fingerprint of the XSD bytes (schema
/// identity == schema content), so repeated pipeline/gateway
/// construction over the same schema parses, loads and compiles the
/// content-model automatons exactly once. Returns a shared immutable
/// schema — safe to validate against from any number of threads (the
/// Validator only reads it). Returns nullptr on a load failure (filling
/// `error`); failures are never cached. Mutex-guarded, construction-path
/// only — never call per message.
std::shared_ptr<const Schema> load_schema_cached(std::string_view xsd_text,
                                                 std::string* error = nullptr);

/// Counters of the shared schema cache.
util::CacheStats schema_cache_stats();

}  // namespace xaon::xsd
