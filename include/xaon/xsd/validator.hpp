#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xaon/util/annotations.hpp"
#include "xaon/xml/dom.hpp"
#include "xaon/xsd/model.hpp"

/// \file validator.hpp
/// Validates parsed documents against a compiled Schema — the paper's SV
/// (schema validation) use case.

namespace xaon::xsd {

struct ValidationError {
  std::string path;     ///< /root/child[2]/leaf style location
  std::string message;

  std::string to_string() const { return path + ": " + message; }
};

struct ValidationResult {
  std::vector<ValidationError> errors;

  bool valid() const { return errors.empty(); }
  std::string to_string() const;
};

namespace detail {
struct WalkScratch;
}

class Validator {
 public:
  /// The schema must outlive the validator and have been finalize()d.
  explicit Validator(const Schema& schema);
  ~Validator();
  Validator(Validator&&) noexcept;
  Validator& operator=(Validator&&) noexcept;

  /// Validates the whole document (root element must match a global
  /// element declaration).
  ValidationResult validate(const xml::Document& doc) const;

  /// Validates a subtree against a specific declaration.
  ValidationResult validate_element(const xml::Node* element,
                                    const ElementDecl* decl) const;

  /// Hot-path variant: reuses this validator's internal walk buffers and
  /// embedded result across calls — a valid document validates with zero
  /// heap allocation at steady state. The returned reference is
  /// invalidated by the next validate_element_reuse() or reset().
  const ValidationResult& validate_element_reuse(const xml::Node* element,
                                                 const ElementDecl* decl)
      XAON_LIFETIME_BOUND;

  /// Clears per-message state (reported errors); internal buffer
  /// capacity is retained for the next message.
  void reset();

  /// Hard cap on reported errors (default 64); validation continues
  /// across sibling subtrees until the cap is hit.
  void set_max_errors(std::size_t n) { max_errors_ = n; }

 private:
  const Schema* schema_;
  std::size_t max_errors_ = 64;
  std::unique_ptr<detail::WalkScratch> scratch_;  ///< reuse-path buffers
  ValidationResult result_;                       ///< reuse-path result
};

}  // namespace xaon::xsd
