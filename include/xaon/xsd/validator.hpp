#pragma once

#include <string>
#include <vector>

#include "xaon/xml/dom.hpp"
#include "xaon/xsd/model.hpp"

/// \file validator.hpp
/// Validates parsed documents against a compiled Schema — the paper's SV
/// (schema validation) use case.

namespace xaon::xsd {

struct ValidationError {
  std::string path;     ///< /root/child[2]/leaf style location
  std::string message;

  std::string to_string() const { return path + ": " + message; }
};

struct ValidationResult {
  std::vector<ValidationError> errors;

  bool valid() const { return errors.empty(); }
  std::string to_string() const;
};

class Validator {
 public:
  /// The schema must outlive the validator and have been finalize()d.
  explicit Validator(const Schema& schema) : schema_(schema) {}

  /// Validates the whole document (root element must match a global
  /// element declaration).
  ValidationResult validate(const xml::Document& doc) const;

  /// Validates a subtree against a specific declaration.
  ValidationResult validate_element(const xml::Node* element,
                                    const ElementDecl* decl) const;

  /// Hard cap on reported errors (default 64); validation continues
  /// across sibling subtrees until the cap is hit.
  void set_max_errors(std::size_t n) { max_errors_ = n; }

 private:
  const Schema& schema_;
  std::size_t max_errors_ = 64;
};

}  // namespace xaon::xsd
