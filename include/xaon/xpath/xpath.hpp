#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xaon/util/annotations.hpp"
#include "xaon/util/cache.hpp"
#include "xaon/xpath/value.hpp"

/// \file xpath.hpp
/// Compiled XPath 1.0 expressions.
///
/// Supported: full expression grammar (or/and/relational/arithmetic/
/// union), location paths over the child, descendant(-or-self), self,
/// parent, ancestor(-or-self), attribute, following-sibling and
/// preceding-sibling axes, all abbreviations (`//`, `.`, `..`, `@`),
/// positional and boolean predicates, and the XPath 1.0 core function
/// library (minus `id()` and `lang()`, which need infrastructure an AON
/// message gateway doesn't have).
///
/// Expressions compile once into an arena-backed AST and can be
/// evaluated many times against different documents — the pattern the
/// paper's CBR (content-based routing) use case depends on.

namespace xaon::xpath {

namespace detail {
struct Compiled;
struct EvalAccess;
}

/// Reusable evaluation context: pools the node-set vectors the evaluator
/// would otherwise allocate per step and per node. Pass the same
/// instance across messages and a steady-state location-path evaluation
/// performs zero heap allocations. Not thread-safe; one per worker.
class EvalScratch {
 public:
  EvalScratch() = default;

 private:
  friend struct detail::EvalAccess;
  std::vector<NodeSet> pool_;  ///< recycled node-set buffers
  NodeSet result_;             ///< storage returned by select(ctx, scratch)
};

struct CompileError {
  std::size_t offset = 0;  ///< character offset into the expression
  std::string message;

  bool empty() const { return message.empty(); }
};

/// Prefix -> namespace-URI bindings used at compile time to resolve
/// prefixed name tests. A binding with an empty prefix gives unprefixed
/// name tests a default namespace (an extension over strict XPath 1.0,
/// handy with default-namespaced SOAP payloads).
using NamespaceBindings =
    std::vector<std::pair<std::string, std::string>>;

class XPath {
 public:
  /// An invalid (never-compiled) expression; evaluate() aborts.
  XPath() = default;

  /// Compiles `expr`. On failure returns an invalid XPath and fills
  /// `error` (if non-null).
  static XPath compile(std::string_view expr, CompileError* error = nullptr,
                       const NamespaceBindings& ns = {});

  /// Like compile(), but served from a process-wide bounded LRU plan
  /// cache keyed by (expression, bindings) — construction-path only
  /// (mutex-guarded; never call per message). Compiled plans are
  /// immutable and shared, so repeated gateway/pipeline construction
  /// over the same expression pays compilation once. Failed
  /// compilations are never cached.
  static XPath compile_cached(std::string_view expr,
                              CompileError* error = nullptr,
                              const NamespaceBindings& ns = {});

  /// Counters of the shared compile_cached plan cache.
  static util::CacheStats shared_plan_cache_stats();

  bool valid() const { return impl_ != nullptr; }

  /// The original expression text.
  std::string_view expression() const XAON_LIFETIME_BOUND;

  /// True when the selection this expression performs depends only on
  /// document *structure* (node kinds, names, nesting order) — never on
  /// character-data values: a location path with no predicates, no
  /// function calls and no filter base. For such expressions, two
  /// documents with equal tag-skeleton fingerprints
  /// (`xml::skeleton_fingerprint`) yield node-sets at identical tree
  /// positions — the soundness condition of the CBR structural routing
  /// cache. Conservative: false for anything it cannot prove.
  bool structural() const;

  /// Evaluates with `context` as the context node (position 1 of 1).
  /// Runtime type mismatches (e.g. count() of a number) yield empty/zero
  /// values rather than hard errors — an AON device must not crash on a
  /// weird message.
  Value evaluate(const xml::Node* context) const;

  /// Evaluation-context variant: internal node-set storage is drawn from
  /// (and recycled into) `scratch` instead of the heap.
  Value evaluate(const xml::Node* context, EvalScratch& scratch) const;

  /// evaluate() then coerced: node-set result (empty when the expression
  /// yields a non-node-set).
  NodeSet select(const xml::Node* context) const;

  /// Zero-allocation select: the result lives in `scratch` and is valid
  /// until the next evaluation through the same scratch.
  const NodeSet& select(const xml::Node* context,
                        EvalScratch& scratch XAON_LIFETIME_BOUND) const;

  /// evaluate() then boolean() — the CBR routing decision.
  bool test(const xml::Node* context) const;

  /// test() drawing node-set storage from `scratch`.
  bool test(const xml::Node* context, EvalScratch& scratch) const;

  /// evaluate() then string().
  std::string string(const xml::Node* context) const;

  /// evaluate() then number().
  double number(const xml::Node* context) const;

 private:
  explicit XPath(std::shared_ptr<const detail::Compiled> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const detail::Compiled> impl_;
};

/// Bounded LRU of compiled XPath plans keyed by (expression text,
/// namespace bindings). Compilation is arena-allocating and
/// grammar-driven — orders of magnitude costlier than the lookup — so a
/// gateway that receives routing rules dynamically (or constructs many
/// pipelines over one rule set) compiles each distinct expression once.
/// Not thread-safe: one per worker, or guard externally (the shared
/// XPath::compile_cached front-door does the latter).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64) : lru_(capacity) {}

  /// Cached compilation. On a miss the expression is compiled and, when
  /// valid, stored; failures pass through uncached with `error` filled.
  XPath get(std::string_view expr, CompileError* error = nullptr,
            const NamespaceBindings& ns = {});

  std::size_t size() const { return lru_.size(); }
  std::size_t capacity() const { return lru_.capacity(); }
  const util::CacheStats& stats() const { return lru_.stats(); }
  void clear() { lru_.clear(); }

 private:
  util::LruCache<std::string, XPath> lru_;
  std::string key_;  ///< reused key buffer (length-prefixed, unambiguous)
};

}  // namespace xaon::xpath
