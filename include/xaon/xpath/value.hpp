#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/util/annotations.hpp"
#include "xaon/xml/dom.hpp"

/// \file value.hpp
/// XPath 1.0 value model: boolean, number, string, node-set.

namespace xaon::xpath {

/// A member of a node-set: either a tree node or an attribute "node"
/// (XPath treats attributes as nodes; our DOM stores them off-tree).
/// Arena-tied through the pointed-to nodes: a NodeRef (and any NodeSet
/// holding one) dangles when the document's arena resets.
struct XAON_ARENA_TIED NodeRef {
  const xml::Node* node = nullptr;  ///< owner element for attributes
  const xml::Attr* attr = nullptr;  ///< non-null => attribute node

  bool is_attr() const { return attr != nullptr; }

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
};

/// Node-sets are kept sorted in document order, without duplicates.
using NodeSet = std::vector<NodeRef>;

/// XPath string-value of a node (XPath 1.0 §5): element/root -> all
/// descendant text; text/cdata -> the text; attribute -> its value;
/// comment/PI -> content.
std::string string_value(const NodeRef& ref);

/// Document-order comparison key for sorting node-sets.
bool doc_order_less(const NodeRef& a, const NodeRef& b);

/// Sorts in document order and removes duplicates, in place.
void normalize(NodeSet& set);

enum class ValueKind : std::uint8_t { kBoolean, kNumber, kString, kNodeSet };

/// Tagged union of the four XPath 1.0 types with the standard conversion
/// rules. Copyable; node-sets share no ownership (they view the DOM).
class Value {
 public:
  Value() : kind_(ValueKind::kBoolean), boolean_(false) {}
  explicit Value(bool b) : kind_(ValueKind::kBoolean), boolean_(b) {}
  explicit Value(double d) : kind_(ValueKind::kNumber), number_(d) {}
  explicit Value(std::string s)
      : kind_(ValueKind::kString), string_(std::move(s)) {}
  explicit Value(NodeSet nodes)
      : kind_(ValueKind::kNodeSet), nodes_(std::move(nodes)) {}

  ValueKind kind() const { return kind_; }
  bool is_node_set() const { return kind_ == ValueKind::kNodeSet; }

  /// XPath boolean(): number!=0 && !NaN; string non-empty; node-set
  /// non-empty.
  bool to_boolean() const;

  /// XPath number(): strings parsed per XPath (NaN on failure);
  /// booleans 0/1; node-set -> number(string-value of first node).
  double to_number() const;

  /// XPath string(): numbers formatted per XPath §4.2 (integers without
  /// decimal point, NaN/Infinity spelled out); node-set -> string-value
  /// of first node in document order, "" if empty.
  std::string to_string() const;

  /// Node-set accessor; aborts if kind() != kNodeSet.
  const NodeSet& nodes() const XAON_LIFETIME_BOUND;

  /// XPath number formatting (shared with string()).
  static std::string format_number(double d);

  /// XPath string->number (whitespace-trimmed decimal; NaN otherwise).
  static double parse_number(std::string_view s);

 private:
  ValueKind kind_;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  NodeSet nodes_;
};

/// XPath '=' with the full node-set existential semantics.
bool compare_equal(const Value& a, const Value& b);

/// XPath '!=' — itself existential over node-sets (NOT the negation of
/// '='; a set can satisfy both `= v` and `!= v`).
bool compare_not_equal(const Value& a, const Value& b);

/// XPath relational ops; `op` one of '<', '>', 'l' (<=), 'g' (>=).
bool compare_relational(const Value& a, const Value& b, char op);

}  // namespace xaon::xpath
