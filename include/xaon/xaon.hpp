#pragma once

/// \file xaon.hpp
/// Umbrella header for the xaon library — everything a downstream user
/// needs to parse XML, evaluate XPath, validate against XSD, proxy
/// HTTP, run the AON gateway pipelines, and reproduce the paper's
/// dual-processor characterization on the simulated platforms.

#include "xaon/aon/capture.hpp"      // IWYU pragma: export
#include "xaon/aon/messages.hpp"     // IWYU pragma: export
#include "xaon/aon/pipeline.hpp"     // IWYU pragma: export
#include "xaon/aon/server.hpp"       // IWYU pragma: export
#include "xaon/crypto/sha1.hpp"      // IWYU pragma: export
#include "xaon/http/message.hpp"     // IWYU pragma: export
#include "xaon/http/parser.hpp"      // IWYU pragma: export
#include "xaon/netsim/netperf.hpp"   // IWYU pragma: export
#include "xaon/perf/experiment.hpp"  // IWYU pragma: export
#include "xaon/perf/report.hpp"      // IWYU pragma: export
#include "xaon/uarch/platform.hpp"   // IWYU pragma: export
#include "xaon/uarch/system.hpp"     // IWYU pragma: export
#include "xaon/wload/synth.hpp"      // IWYU pragma: export
#include "xaon/xml/builder.hpp"      // IWYU pragma: export
#include "xaon/xml/parser.hpp"       // IWYU pragma: export
#include "xaon/xml/writer.hpp"       // IWYU pragma: export
#include "xaon/xpath/xpath.hpp"      // IWYU pragma: export
#include "xaon/xsd/loader.hpp"       // IWYU pragma: export
#include "xaon/xsd/validator.hpp"    // IWYU pragma: export

namespace xaon {

/// Library version (semantic).
inline constexpr const char* kVersion = "1.0.0";

}  // namespace xaon
