#pragma once

#include <functional>
#include <string>
#include <vector>

#include "xaon/perf/experiment.hpp"
#include "xaon/util/table.hpp"

/// \file report.hpp
/// Renders experiment results in the paper's table/figure layouts:
/// workloads as rows, the five platform notations as columns.

namespace xaon::perf {

/// Extracts one scalar from a platform run (e.g. CPI).
using MetricFn = std::function<double(const PlatformRun&)>;

/// Builds a paper-style table: one row per workload, one column per
/// platform, cells formatted with `precision` decimals.
util::TextTable metric_table(const std::string& title,
                             const std::vector<WorkloadResults>& workloads,
                             const MetricFn& metric, int precision = 2);

/// Builds a grouped bar chart (one group per platform, one bar per
/// workload) — the textual analogue of the paper's figures.
util::BarChart metric_chart(const std::string& title,
                            const std::vector<WorkloadResults>& workloads,
                            const MetricFn& metric, int precision = 2);

/// Canonical metric extractors (paper definitions).
double metric_cpi(const PlatformRun& run);
double metric_l2mpi(const PlatformRun& run);
double metric_btpi(const PlatformRun& run);
double metric_branch_frequency(const PlatformRun& run);
double metric_brmpr(const PlatformRun& run);
double metric_throughput(const PlatformRun& run);

}  // namespace xaon::perf
