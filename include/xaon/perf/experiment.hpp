#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xaon/aon/pipeline.hpp"
#include "xaon/uarch/counters.hpp"
#include "xaon/uarch/platform.hpp"

/// \file experiment.hpp
/// The paper's measurement campaigns: each experiment runs a workload
/// on the five system-under-test configurations (1CPm, 2CPm, 1LPx,
/// 2LPx, 2PPx) and reports throughput plus the counter-derived metrics
/// (CPI, L2MPI, BTPI, branch frequency, BrMPR).

namespace xaon::perf {

/// One platform's measurement for one workload.
struct PlatformRun {
  std::string notation;
  double wall_ns = 0;
  double throughput = 0;  ///< messages/sec (AON) or Mbps (netperf)
  uarch::Counters counters;
};

/// A workload measured across all five platforms (paper order).
struct WorkloadResults {
  std::string workload;  ///< "SV", "CBR", "FR", "Netperf-loopback", ...
  std::vector<PlatformRun> runs;

  const PlatformRun* find(std::string_view notation) const;
};

struct AonExperimentConfig {
  /// Messages per captured stream; 0 = per-use-case default (sized so
  /// one stream's fresh data footprint exceeds the largest L2,
  /// reproducing the no-temporal-reuse behaviour of a live message
  /// flow).
  std::uint32_t messages_per_trace = 0;
  std::uint32_t warmup_repeats = 1;
  std::uint32_t measure_repeats = 4;
  double alu_scale = 1.0;
};

/// Runs one AON use case across every platform. Each hardware thread
/// processes its own captured message stream (distinct data, shared
/// code), replayed to steady state.
WorkloadResults run_aon_experiment(aon::UseCase use_case,
                                   const AonExperimentConfig& config = {});

/// All three use cases, SV/CBR/FR (the paper's row order).
std::vector<WorkloadResults> run_all_aon_experiments(
    const AonExperimentConfig& config = {});

struct NetperfExperimentConfig {
  std::uint32_t warmup_repeats = 1;
  std::uint32_t measure_repeats = 4;
  std::uint32_t iterations_per_trace = 24;  ///< 16 KB buffers per trace
};

/// netperf in loopback mode (CPU-bound extreme): Figure 2 left group +
/// Table 3 top half. Throughput is simulated Mbps.
WorkloadResults run_netperf_loopback(
    const NetperfExperimentConfig& config = {});

/// netperf end-to-end over simulated Gigabit Ethernet (network-I/O
/// extreme): Figure 2 right group + Table 3 bottom half. Throughput is
/// min(CPU-limited rate, TCP goodput from the network simulator).
WorkloadResults run_netperf_endtoend(
    const NetperfExperimentConfig& config = {});

/// Throughput ratio between two platforms of one workload (Figure 3's
/// scaling bars); 0 when either is missing.
double scaling(const WorkloadResults& results, std::string_view from,
               std::string_view to);

}  // namespace xaon::perf
