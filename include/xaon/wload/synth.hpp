#pragma once

#include <cstdint>

#include "xaon/uarch/trace.hpp"

/// \file synth.hpp
/// Parameterized synthetic trace generation for tests, ablations and
/// calibration sweeps (the recorded AON traces come from recorder.hpp;
/// this is the knob-driven counterpart).

namespace xaon::wload {

enum class AddressPattern : std::uint8_t {
  kSequential,  ///< streaming with a fixed stride
  kRandom,      ///< uniform over the working set (line-aligned)
  kZipf,        ///< hot-cold skew (80/20-style temporal locality)
};

struct SynthConfig {
  std::uint64_t ops = 100'000;
  double branch_fraction = 0.2;
  double memory_fraction = 0.35;
  double store_fraction = 0.3;    ///< of memory ops
  double branch_taken_bias = 0.85;
  /// 0 = perfectly predictable outcomes (loop-like), 1 = i.i.d. random
  /// at `branch_taken_bias`.
  double branch_entropy = 1.0;

  std::uint64_t data_base = 0x1000'0000;
  std::uint64_t working_set_bytes = 64 * 1024;
  std::uint64_t stride_bytes = 16;
  AddressPattern pattern = AddressPattern::kRandom;

  std::uint64_t code_base = 0x0040'0000;
  std::uint64_t code_footprint_bytes = 16 * 1024;
  std::uint32_t branch_sites = 32;

  std::uint64_t seed = 1;
};

/// Generates a trace matching the configuration.
uarch::Trace make_synthetic_trace(const SynthConfig& config);

}  // namespace xaon::wload
