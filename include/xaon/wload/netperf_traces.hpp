#pragma once

#include <cstdint>

#include "xaon/uarch/trace.hpp"

/// \file netperf_traces.hpp
/// Instruction-trace models of the netperf TCP_STREAM benchmark for the
/// microarchitecture simulator (the network-timing side lives in
/// netsim).
///
/// Loopback mode is a producer/consumer pair: netperf copies
/// application buffers into the kernel socket ring (stores), netserver
/// reads them back out (loads of the *same* simulated addresses — this
/// sharing is what makes the 2PPx loopback collapse of Figure 2 emerge
/// from cross-package coherence). End-to-end mode is the sender-side
/// kernel path only; the wire is netsim's job.

namespace xaon::wload {

struct NetperfTraceConfig {
  std::uint64_t buffer_bytes = 16 * 1024;  ///< netperf send size
  std::uint32_t iterations = 32;           ///< buffers per trace
  std::uint64_t socket_ring_bytes = 256 * 1024;
  std::uint32_t mss = 1460;

  std::uint64_t app_buffer_base = 0x2000'0000;
  std::uint64_t sink_buffer_base = 0x3000'0000;
  std::uint64_t socket_ring_base = 0x4000'0000;
  /// Kernel TCP path code footprint (shared by sender and receiver —
  /// it is the same kernel).
  std::uint64_t code_base = 0x0080'0000;
  std::uint64_t code_footprint_bytes = 24 * 1024;

  /// Copy-loop granularity (bytes moved per load/store pair).
  std::uint32_t copy_chunk_bytes = 16;
};

/// Total payload bytes one trace represents.
std::uint64_t netperf_trace_bytes(const NetperfTraceConfig& config);

/// The sending process (netperf): app buffer -> socket ring + protocol
/// work per MSS. Used alone for end-to-end mode.
uarch::Trace make_netperf_sender_trace(const NetperfTraceConfig& config);

/// The receiving process (netserver): socket ring -> sink buffer.
uarch::Trace make_netperf_receiver_trace(const NetperfTraceConfig& config);

/// Both roles interleaved buffer-by-buffer — the single-CPU loopback
/// case where netperf and netserver timeshare one processor.
uarch::Trace make_netperf_loopback_timeshared_trace(
    const NetperfTraceConfig& config);

}  // namespace xaon::wload
