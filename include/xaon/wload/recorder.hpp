#pragma once

#include <cstdint>
#include <unordered_map>

#include "xaon/uarch/trace.hpp"
#include "xaon/util/probe.hpp"

/// \file recorder.hpp
/// Probe-events -> instruction-trace conversion.
///
/// The XML/XPath/XSD/HTTP libraries report loads, stores, branch
/// decisions and ALU batches through the probe layer while processing a
/// *real* message. The TraceRecorder turns that event stream into a
/// uarch::Trace:
///
///  * Host data addresses are remapped page-by-page (in first-touch
///    order) into a deterministic simulated address space, preserving
///    intra-page offsets and therefore cache-line behaviour, while
///    making runs reproducible under ASLR.
///  * Code addresses are synthesized from probe-site identity: each
///    site hashes to an entry point inside a configurable code
///    footprint; non-branch ops advance a fall-through fetch cursor and
///    taken branches jump to their site's entry. Loops therefore
///    re-fetch the same cache lines, and bigger application code means
///    a bigger simulated I-footprint.
///  * Span loads/stores are emitted as one memory op per
///    `bytes_per_access` chunk; ALU batches become ALU ops (optionally
///    scaled to calibrate the instruction mix).

namespace xaon::wload {

struct RecorderConfig {
  /// Base of the simulated heap region for this recorder. Distinct
  /// streams (e.g. two worker threads handling different messages) use
  /// distinct bases so their data does not falsely alias.
  std::uint64_t data_base = 0x1000'0000;

  /// Simulated code region base and size. The footprint models the
  /// application + kernel path size of the workload (FR < CBR < SV).
  std::uint64_t code_base = 0x0040'0000;
  std::uint64_t code_footprint_bytes = 32 * 1024;

  /// One memory op covers this many bytes of a recorded span.
  std::uint32_t bytes_per_access = 16;

  /// Multiplier applied to on_alu counts (instruction-mix calibration).
  double alu_scale = 1.0;

  /// Cap on ALU ops emitted per event (keeps pathological batches from
  /// flooding the trace).
  std::uint32_t max_alu_batch = 64;

  /// Compute-expansion: synthetic instructions injected per recorded
  /// op, emulating the much heavier per-token processing of the
  /// 2006-era commercial XML stacks the paper measured (transcoding,
  /// DFA tables, allocator bookkeeping). Injected work has strong
  /// temporal locality: memory references land in a small hot region
  /// (symbol/DFA tables), branches are mostly predictable. Zero
  /// disables injection (FR's thin proxy path).
  double compute_expansion = 0.0;
  double expansion_branch_fraction = 0.28;
  double expansion_memory_fraction = 0.30;
  double expansion_branch_bias = 0.985;  ///< P(taken) — strongly biased
  double expansion_branch_entropy = 1.0; ///< draws i.i.d. at the bias
  /// Hot-table size: fits the Pentium M's 32 KB L1D but not the Xeon's
  /// 16 KB — one of the microarchitectural asymmetries (Table 1) behind
  /// the per-arch CPI gap.
  std::uint64_t expansion_hot_bytes = 24 * 1024;
  /// Warm working set (session state, symbol pools, DOM fragments kept
  /// across messages): fits the PM's 2 MB L2 but not the Xeon's 1 MB —
  /// the capacity asymmetry behind the paper's higher Xeon L2MPI.
  std::uint64_t expansion_warm_bytes = 448 * 1024;
  double expansion_warm_fraction = 0.15;  ///< of expansion memory ops
};

class TraceRecorder final : public probe::Recorder {
 public:
  explicit TraceRecorder(const RecorderConfig& config = {});

  // probe::Recorder:
  void on_load(const void* addr, std::uint32_t bytes) override;
  void on_store(const void* addr, std::uint32_t bytes) override;
  void on_branch(std::uint32_t site, bool taken) override;
  void on_alu(std::uint32_t count) override;

  /// The trace accumulated so far (move it out when done).
  uarch::Trace& trace() { return trace_; }
  const uarch::Trace& trace() const { return trace_; }
  uarch::Trace take_trace();

  /// Number of distinct host pages touched (diagnostics).
  std::size_t pages_mapped() const { return page_map_.size(); }

 private:
  std::uint64_t remap(std::uint64_t host_addr);
  std::uint64_t site_entry_pc(std::uint32_t site) const;
  void emit_memory(const void* addr, std::uint32_t bytes, bool is_write);
  void advance_pc();
  void inject_expansion(std::uint64_t recorded_ops);

  RecorderConfig config_;
  uarch::Trace trace_;
  std::unordered_map<std::uint64_t, std::uint64_t> page_map_;
  std::uint64_t next_page_ = 0;
  std::uint64_t pc_;
  double alu_carry_ = 0;
  double expansion_carry_ = 0;
  std::uint64_t expansion_state_ = 0x9E3779B97F4A7C15ull;
  std::uint64_t expansion_counter_ = 0;
  static constexpr std::uint32_t kExpansionSites = 24;
  std::uint32_t expansion_site_count_[kExpansionSites] = {};
};

}  // namespace xaon::wload
