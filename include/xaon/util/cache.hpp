#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file cache.hpp
/// Content-aware caching primitives for the compiled-artifact caches
/// (DESIGN.md §"Caching"): a bounded LRU map and a streaming 64-bit
/// fingerprint.
///
/// The gateway pays the same compilation and evaluation work over
/// near-identical inputs — XPath plans over one expression, XSD
/// automatons over one schema, routing decisions over one message
/// *shape*. These caches close that loop under the hot-path contract of
/// §5b: `find` never touches the allocator (index walk + intrusive list
/// splice only), so a warm cache serves hits with **zero heap
/// allocation**; only `insert` — the miss path — may allocate. Each
/// cache is single-owner (per worker, or mutex-guarded off the message
/// path); nothing here is thread-safe by itself.

namespace xaon::util {

/// Hit/miss/insert/evict counters every cache exposes; merged across
/// workers into the MetricsSnapshot and dumped in the bench JSON lines.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  ///< accepted inserts (stores of a new key)
  std::uint64_t evictions = 0;   ///< LRU entries displaced by inserts

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }

  void merge(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
  }

  /// Appends `{"hits":..,"misses":..,"insertions":..,"evictions":..,
  /// "hit_rate":..}` to `out` (bench JSON-line convention).
  void append_json(std::string& out) const;
};

/// Streaming 64-bit content fingerprint (FNV-1a accumulation with a
/// murmur-style final avalanche). Byte-oriented: the caller owns framing
/// — `mix("ab"); mix("c")` and `mix("a"); mix("bc")` hash identically,
/// so structured streams must interleave separator bytes (as the
/// tag-skeleton fingerprint does). Collisions are possible in principle
/// (64-bit digest); every consumer either keys immutable content (plan /
/// schema caches, where a collision is unreachable without a content
/// match) or falls back to full evaluation on resolution failure and
/// documents the residual risk (route cache, DESIGN.md §"Caching").
class Fingerprint64 {
 public:
  void mix_byte(std::uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }

  void mix(std::string_view bytes) {
    std::uint64_t h = h_;
    for (const char c : bytes) {
      h = (h ^ static_cast<std::uint8_t>(c)) * kPrime;
    }
    h_ = h;
  }

  /// The avalanched digest; `mix` may continue afterwards (value() is
  /// pure).
  std::uint64_t value() const {
    std::uint64_t v = h_;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
  }

  /// One-shot convenience over a byte string.
  static std::uint64_t of(std::string_view bytes) {
    Fingerprint64 fp;
    fp.mix(bytes);
    return fp.value();
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

/// Bounded LRU map with fixed storage: `capacity` slots, an
/// open-chaining index and an intrusive recency list, all preallocated
/// by set_capacity. `find` is allocation-free (the §5b hit-path
/// contract); `insert` of a new key may allocate only inside the stored
/// Value (e.g. a vector payload) and recycles the least-recently-used
/// slot when full. A capacity of 0 disables the cache: every find
/// misses, every insert is dropped.
///
/// Single-owner by design — one per worker (route cache) or externally
/// mutex-guarded off the message path (plan / schema caches).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  LruCache() = default;
  explicit LruCache(std::size_t capacity) { set_capacity(capacity); }

  /// Clears the cache and rebuilds storage for `capacity` entries.
  /// Counters survive (they describe the cache's lifetime, not one
  /// generation); clear_stats() resets them separately.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    slots_.clear();
    slots_.resize(capacity);
    std::size_t nbuckets = 1;
    while (nbuckets < capacity * 2) nbuckets <<= 1;
    buckets_.assign(capacity == 0 ? 0 : nbuckets, kNil);
    mask_ = buckets_.empty() ? 0 : static_cast<std::uint32_t>(nbuckets - 1);
    head_ = tail_ = kNil;
    size_ = 0;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool enabled() const { return capacity_ != 0; }

  /// Lookup; a hit refreshes the entry's recency. The pointer is valid
  /// until the next insert/set_capacity/clear. Never allocates.
  Value* find(const Key& key) {
    if (capacity_ == 0) {
      ++stats_.misses;
      return nullptr;
    }
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(Hash{}(key)) & mask_;
    for (std::uint32_t i = buckets_[bucket]; i != kNil;
         i = slots_[i].hash_next) {
      if (slots_[i].key == key) {
        ++stats_.hits;
        touch(i);
        return &slots_[i].value;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Inserts (or overwrites) `key`. A new key counts as an insertion and
  /// evicts the LRU entry when full; overwriting an existing key updates
  /// the value and recency without counting. Returns the stored value
  /// (nullptr when capacity is 0 and the insert was dropped).
  Value* insert(const Key& key, Value value) {
    if (capacity_ == 0) return nullptr;
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(Hash{}(key)) & mask_;
    for (std::uint32_t i = buckets_[bucket]; i != kNil;
         i = slots_[i].hash_next) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        touch(i);
        return &slots_[i].value;
      }
    }
    std::uint32_t slot;
    if (size_ == capacity_) {
      slot = tail_;  // recycle the least-recently-used entry
      unlink_list(slot);
      unlink_chain(slot);
      ++stats_.evictions;
    } else {
      slot = static_cast<std::uint32_t>(size_);
      ++size_;
    }
    slots_[slot].key = key;
    slots_[slot].value = std::move(value);
    slots_[slot].hash_next = buckets_[bucket];
    buckets_[bucket] = slot;
    push_front(slot);
    ++stats_.insertions;
    return &slots_[slot].value;
  }

  /// Drops every entry; storage and counters are retained.
  void clear() {
    for (std::uint32_t& b : buckets_) b = kNil;
    head_ = tail_ = kNil;
    size_ = 0;
  }

  const CacheStats& stats() const { return stats_; }
  void clear_stats() { stats_ = CacheStats{}; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    Key key{};
    Value value{};
    std::uint32_t prev = kNil;       ///< recency list (head = most recent)
    std::uint32_t next = kNil;
    std::uint32_t hash_next = kNil;  ///< bucket chain
  };

  void push_front(std::uint32_t i) {
    slots_[i].prev = kNil;
    slots_[i].next = head_;
    if (head_ != kNil) slots_[head_].prev = i;
    head_ = i;
    if (tail_ == kNil) tail_ = i;
  }

  void unlink_list(std::uint32_t i) {
    const std::uint32_t p = slots_[i].prev;
    const std::uint32_t n = slots_[i].next;
    if (p != kNil) slots_[p].next = n; else head_ = n;
    if (n != kNil) slots_[n].prev = p; else tail_ = p;
  }

  void unlink_chain(std::uint32_t i) {
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(Hash{}(slots_[i].key)) & mask_;
    std::uint32_t cur = buckets_[bucket];
    if (cur == i) {
      buckets_[bucket] = slots_[i].hash_next;
      return;
    }
    while (cur != kNil) {
      if (slots_[cur].hash_next == i) {
        slots_[cur].hash_next = slots_[i].hash_next;
        return;
      }
      cur = slots_[cur].hash_next;
    }
  }

  void touch(std::uint32_t i) {
    if (head_ == i) return;
    unlink_list(i);
    push_front(i);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> buckets_;
  std::uint32_t mask_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  CacheStats stats_;
};

}  // namespace xaon::util
