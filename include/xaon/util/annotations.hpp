#pragma once

/// \file annotations.hpp
/// Clang thread-safety-analysis annotations.
///
/// Wraps Clang's `-Wthread-safety` attribute set in `XAON_*` macros that
/// compile to nothing on other compilers, so annotated code stays
/// portable while Clang builds get static lock-discipline checking:
/// every access to a `XAON_GUARDED_BY(mu)` member must happen with `mu`
/// held, and every `XAON_REQUIRES(mu)` function must be called with `mu`
/// held — violations are compile errors under `-Wthread-safety -Werror`.
///
/// The analysis is purely static and intraprocedural; it complements
/// (not replaces) the TSan tier, which observes real interleavings at
/// run time. See DESIGN.md §"Static analysis & concurrency contracts".
///
/// Naming follows the canonical mutex.h example from the Clang docs:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define XAON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define XAON_THREAD_ANNOTATION(x)  // no-op off-Clang
#endif

/// Declares a type to be a capability (e.g. a mutex wrapper class).
/// `std::mutex` itself is already annotated in libc++; under libstdc++
/// the analysis still tracks it through std::lock_guard/unique_lock.
#define XAON_CAPABILITY(x) XAON_THREAD_ANNOTATION(capability(x))

/// Declares that a data member is protected by the given capability.
#define XAON_GUARDED_BY(x) XAON_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointed-to* data is protected by the capability.
#define XAON_PT_GUARDED_BY(x) XAON_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define XAON_REQUIRES(...) \
  XAON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define XAON_ACQUIRE(...) \
  XAON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define XAON_RELEASE(...) \
  XAON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define XAON_EXCLUDES(...) \
  XAON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// RAII type that acquires in its constructor / releases in its
/// destructor (std::lock_guard-alike wrappers).
#define XAON_SCOPED_CAPABILITY XAON_THREAD_ANNOTATION(scoped_lockable)

/// Return value is a reference to data guarded by the capability.
#define XAON_RETURN_CAPABILITY(x) XAON_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis for one function. Used where the
/// locking pattern is correct but outside the analysis' vocabulary
/// (e.g. condition-variable wait predicates invoked under the lock).
#define XAON_NO_THREAD_SAFETY_ANALYSIS \
  XAON_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Memory-lifetime annotations (DESIGN.md §"Arena lifetime contract").
//
// The arena-backed message hot path hands out pointers and string_views
// that all dangle at once when the per-message Arena::reset() runs.
// Three layers make that contract machine-checked instead of folklore:
// the xlint arena rule pack (token-level dataflow, every build), these
// lifetime annotations (Clang's -Wdangling, call-site escapes the token
// pass can't see), and the poisoned debug arena (ASan, run time).

/// `[[clang::lifetimebound]]`: declares that the function's return value
/// refers to storage owned by the annotated parameter (or by `*this`
/// when placed after the member function's cv-qualifiers). Clang's
/// -Wdangling then diagnoses call sites that keep the result alive
/// longer than the bound argument — e.g. binding the view returned by
/// `Arena::intern` on a temporary arena, or holding a DOM accessor
/// result past the document. No-op on gcc (attribute unknown there).
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define XAON_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef XAON_LIFETIME_BOUND
#define XAON_LIFETIME_BOUND  // no-op off-Clang
#endif

/// Marks a struct/class whose string_view or node-pointer members alias
/// arena storage (or another registry with explicit lifetime): the type
/// is *tied* to that arena and must never outlive its next reset().
/// Expands to nothing — it exists for the reader and for xlint's
/// `view-member` rule, which flags view/node-pointer members in any
/// unmarked struct. Write it between the class-key and the name:
/// `struct XAON_ARENA_TIED Node { ... };`
#define XAON_ARENA_TIED

/// AddressSanitizer feature detection, shared by the poisoned debug
/// arena (util/arena.hpp) and its death tests. gcc defines
/// __SANITIZE_ADDRESS__; Clang reports it via __has_feature.
#if defined(__SANITIZE_ADDRESS__)
#define XAON_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XAON_HAS_ASAN 1
#endif
#endif
#ifndef XAON_HAS_ASAN
#define XAON_HAS_ASAN 0
#endif
