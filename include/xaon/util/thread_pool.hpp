#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Fixed-size worker pool mirroring the paper's server threading model:
/// "XML server application consists of multiple threads, which are kept
/// equal to the number of (logical) CPUs". The host-mode AON server and
/// the parallel experiment runner both use it.

namespace xaon::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1 enforced).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; an escaping exception
  /// terminates the process (by design — workloads are noexcept-clean).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;        // signals workers: work or stop
  std::condition_variable idle_cv_;   // signals wait_idle()
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace xaon::util
