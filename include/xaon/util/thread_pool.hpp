#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "xaon/util/annotations.hpp"
#include "xaon/util/sync.hpp"

/// \file thread_pool.hpp
/// Fixed-size worker pool mirroring the paper's server threading model:
/// "XML server application consists of multiple threads, which are kept
/// equal to the number of (logical) CPUs". The host-mode AON server and
/// the parallel experiment runner both use it.
///
/// Lock discipline is machine-checked: every shared field is
/// `XAON_GUARDED_BY(mu_)` and Clang's `-Wthread-safety` verifies all
/// accesses hold the lock (see util/annotations.hpp).

namespace xaon::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1 enforced).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; an escaping exception
  /// terminates the process (by design — workloads are noexcept-clean).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  /// True when a worker has something to do (work available or told to
  /// stop). Callers must hold `mu_` — enforced statically.
  bool wake_worker() const XAON_REQUIRES(mu_) {
    return stop_ || !queue_.empty();
  }

  /// True when all submitted work has completed.
  bool idle() const XAON_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  }

  Mutex mu_;
  CondVar cv_;        // signals workers: work or stop
  CondVar idle_cv_;   // signals wait_idle()
  std::deque<std::function<void()>> queue_ XAON_GUARDED_BY(mu_);
  std::size_t active_ XAON_GUARDED_BY(mu_) = 0;
  bool stop_ XAON_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written once in ctor, then const
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace xaon::util
