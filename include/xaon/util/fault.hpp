#pragma once

#include <cstdint>

#include "xaon/util/rng.hpp"

/// \file fault.hpp
/// Seeded, deterministic fault injection.
///
/// Every stochastic failure the test/chaos infrastructure injects —
/// link-level drops, corruption, extra delay, reordering, and the chaos
/// harness's message mutations — draws its decisions from one
/// `FaultInjector` holding one explicitly seeded `Xoshiro256ss` stream.
/// Two runs constructed with the same seed therefore produce
/// bit-identical fault schedules, which is what lets the chaos harness
/// assert exact outcome counts and what makes any injected failure
/// replayable from nothing but its seed.

namespace xaon::util {

/// One fault decision. `kNone` is the overwhelmingly common verdict on
/// realistic schedules; everything else names an injected failure class.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDrop,     ///< the event is lost outright
  kCorrupt,  ///< delivered damaged (receivers discard, as a CRC would)
  kDelay,    ///< delivered late by a configured extra delay
  kReorder,  ///< held back so later events overtake it
};

/// Human-readable fault name ("none", "drop", ...).
const char* fault_kind_name(FaultKind kind);

/// Independent per-event probabilities of each fault class. The classes
/// are mutually exclusive per event (one decision draw); their sum must
/// be <= 1.
struct FaultRates {
  double drop = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  double reorder = 0.0;

  bool any() const {
    return drop > 0.0 || corrupt > 0.0 || delay > 0.0 || reorder > 0.0;
  }
  double total() const { return drop + corrupt + delay + reorder; }
};

struct FaultStats {
  std::uint64_t decisions = 0;  ///< next() calls
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t reorders = 0;

  std::uint64_t faults() const {
    return drops + corruptions + delays + reorders;
  }
};

/// Deterministic fault-decision stream. Not thread-safe; give each
/// concurrently-faulted component its own injector (seeded distinctly —
/// e.g. seed ^ component index) so streams stay independent and
/// replayable.
class FaultInjector {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x10552;

  FaultInjector() : FaultInjector(FaultRates{}, kDefaultSeed) {}
  FaultInjector(const FaultRates& rates, std::uint64_t seed)
      : rates_(rates), seed_(seed), rng_(seed) {}

  /// Draws one fault decision. A fault-free schedule (no positive rate)
  /// never consumes randomness, so enabling the injector on a clean
  /// configuration leaves every downstream draw sequence unchanged.
  FaultKind next() {
    ++stats_.decisions;
    if (!rates_.any()) return FaultKind::kNone;
    double u = rng_.next_double();
    if ((u -= rates_.drop) < 0.0) {
      ++stats_.drops;
      return FaultKind::kDrop;
    }
    if ((u -= rates_.corrupt) < 0.0) {
      ++stats_.corruptions;
      return FaultKind::kCorrupt;
    }
    if ((u -= rates_.delay) < 0.0) {
      ++stats_.delays;
      return FaultKind::kDelay;
    }
    if ((u -= rates_.reorder) < 0.0) {
      ++stats_.reorders;
      return FaultKind::kReorder;
    }
    return FaultKind::kNone;
  }

  /// Auxiliary draws (corruption offsets, mutation parameters) come
  /// from the same stream, so they are part of the replayable schedule.
  Xoshiro256ss& rng() { return rng_; }

  const FaultRates& rates() const { return rates_; }
  const FaultStats& stats() const { return stats_; }
  std::uint64_t seed() const { return seed_; }

  /// Restarts the schedule from `seed` with cleared stats.
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    rng_ = Xoshiro256ss(seed);
    stats_ = FaultStats{};
  }

 private:
  FaultRates rates_;
  std::uint64_t seed_;
  Xoshiro256ss rng_;
  FaultStats stats_;
};

inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kReorder: return "reorder";
  }
  return "?";
}

}  // namespace xaon::util
