#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/util/annotations.hpp"

/// \file str.hpp
/// ASCII string helpers shared by the XML, HTTP and CLI layers.
/// Locale-independent on purpose: XML and HTTP define their own ASCII
/// rules and must not be affected by the process locale.

namespace xaon::util {

constexpr bool is_ascii_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

constexpr bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

constexpr bool is_ascii_alpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Case-insensitive ASCII equality (HTTP header names, XML charset names).
bool iequals(std::string_view a, std::string_view b);

/// Lowercases ASCII letters; other bytes pass through.
std::string to_lower(std::string_view s);

/// Strips leading and trailing ASCII whitespace. The result views `s`'s
/// bytes — binding it from a temporary string dangles (-Wdangling on
/// Clang via the annotation).
std::string_view trim(std::string_view s XAON_LIFETIME_BOUND);

/// Splits on a single separator char; keeps empty fields. Every field
/// views `s`'s bytes (same lifetime contract as trim()).
std::vector<std::string_view> split(std::string_view s XAON_LIFETIME_BOUND,
                                    char sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);

/// Strict decimal parse of the full string; nullopt on any deviation
/// (sign handled for i64, not for u64).
std::optional<std::int64_t> parse_i64(std::string_view s);
std::optional<std::uint64_t> parse_u64(std::string_view s);
std::optional<double> parse_f64(std::string_view s);

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string format(const char* fmt, ...);

}  // namespace xaon::util
