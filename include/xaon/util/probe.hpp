#pragma once

#include <cstdint>
#include <string_view>

/// \file probe.hpp
/// Workload instrumentation layer.
///
/// The paper measures its workloads with on-chip performance counters
/// (VTune). We have no 2006 silicon, so the library's XML / XPath / XSD /
/// HTTP hot paths carry lightweight probes instead: each significant
/// memory touch, branch decision and batch of ALU work is reported to a
/// thread-local `Recorder`. A workload-characterization pass installs a
/// recorder, runs the *real* code on the *real* message, and converts the
/// event stream into an instruction trace that the microarchitecture
/// simulator replays on each modeled platform.
///
/// When no recorder is installed (the common case — e.g. the host-mode
/// AON server under load) every probe is a thread-local load plus one
/// predictable branch, cheap enough to leave compiled in.
///
/// Branch probes carry a *site id* so the simulated branch predictors see
/// distinct PCs with realistic per-site outcome streams: the predictor
/// accuracy the paper reports then emerges from the actual data-dependent
/// behaviour of the code rather than from an assumed misprediction rate.

namespace xaon::probe {

/// Classifies a probe site; used by trace expansion to synthesize
/// instruction-fetch locality (loop bodies are tight; call sites jump).
enum class SiteKind : std::uint8_t {
  kLoop,  ///< back-edge of a loop (usually strongly biased taken)
  kData,  ///< data-dependent conditional (parser dispatch, compares)
  kCall,  ///< call/dispatch site (indirect or virtual)
};

/// Interface the workload characterizer implements to observe execution.
/// All sizes are in bytes; pointers are real host addresses that the
/// recorder remaps into a deterministic simulated address space.
class Recorder {
 public:
  virtual ~Recorder() = default;
  virtual void on_load(const void* addr, std::uint32_t bytes) = 0;
  virtual void on_store(const void* addr, std::uint32_t bytes) = 0;
  virtual void on_branch(std::uint32_t site, bool taken) = 0;
  /// `count` straight-line non-memory instructions executed.
  virtual void on_alu(std::uint32_t count) = 0;
};

/// Registers (or looks up) the stable id for a named probe site.
/// Ids are assigned in first-registration order and are process-global;
/// registering the same name twice returns the same id. Thread-safe.
std::uint32_t register_site(std::string_view name, SiteKind kind);

/// Number of registered sites.
std::uint32_t site_count();

/// Name/kind lookup for a registered site id (aborts on bad id).
std::string_view site_name(std::uint32_t id);
SiteKind site_kind(std::uint32_t id);

/// Installs `r` as the calling thread's recorder (nullptr disables).
/// Returns the previously installed recorder.
Recorder* set_recorder(Recorder* r);

/// The calling thread's recorder, or nullptr.
Recorder* recorder();

namespace detail {
extern thread_local Recorder* tl_recorder;
}  // namespace detail

/// Convenience wrapper: registers the site once per call site.
/// Usage:  static const std::uint32_t s = probe::site("xml.lex.lt",
///                                                    probe::SiteKind::kData);
inline std::uint32_t site(std::string_view name, SiteKind kind) {
  return register_site(name, kind);
}

inline void load(const void* addr, std::uint32_t bytes) {
  if (Recorder* r = detail::tl_recorder) r->on_load(addr, bytes);
}

inline void store(const void* addr, std::uint32_t bytes) {
  if (Recorder* r = detail::tl_recorder) r->on_store(addr, bytes);
}

/// Records the branch decision and returns `taken` so probes can wrap
/// conditions in place:  if (probe::branch(kSite, c == '<')) { ... }
inline bool branch(std::uint32_t site_id, bool taken) {
  if (Recorder* r = detail::tl_recorder) r->on_branch(site_id, taken);
  return taken;
}

inline void alu(std::uint32_t count) {
  if (Recorder* r = detail::tl_recorder) r->on_alu(count);
}

/// RAII guard installing a recorder for the current scope.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* r) : prev_(set_recorder(r)) {}
  ~ScopedRecorder() { set_recorder(prev_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

}  // namespace xaon::probe
