#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file table.hpp
/// ASCII rendering of result tables and bar "figures".
///
/// The benchmark binaries print every reproduced table and figure in the
/// same row/column layout the paper uses; these helpers keep that output
/// consistent and machine-greppable (`<table>\t<row>\t<col>\t<value>` TSV
/// lines follow each rendered block when tsv(true) is set).

namespace xaon::util {

/// Column-aligned text table. Cells are strings; callers format numbers
/// with the precision the paper uses.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (first column is the row-label column).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match header width once a header is set.
  void add_row(std::vector<std::string> row);

  /// Also emit TSV lines (for scripted consumption) after the table.
  void set_tsv(bool enabled) { tsv_ = enabled; }

  /// Renders the table with box-drawing rules.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  const std::string& title() const { return title_; }
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  bool tsv_ = false;
};

/// Horizontal bar chart: one group per label, one bar per series —
/// the textual equivalent of the paper's grouped-bar figures.
class BarChart {
 public:
  explicit BarChart(std::string title) : title_(std::move(title)) {}

  /// Names the series (bar per group), in display order.
  void set_series(std::vector<std::string> series);

  /// Adds a group (e.g. a platform) with one value per series.
  void add_group(std::string label, std::vector<double> values);

  /// Max bar width in characters (default 48).
  void set_width(int w) { width_ = w; }

  /// Value formatting precision (digits after the decimal point).
  void set_precision(int p) { precision_ = p; }

  std::string render() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> series_;
  struct Group {
    std::string label;
    std::vector<double> values;
  };
  std::vector<Group> groups_;
  int width_ = 48;
  int precision_ = 2;
};

}  // namespace xaon::util
