#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "xaon/util/assert.hpp"
#include "xaon/util/backoff.hpp"

/// \file spsc_queue.hpp
/// Bounded single-producer/single-consumer ring buffer.
///
/// Used as the per-worker message queue in the host-mode AON server: the
/// acceptor thread produces parsed messages, one worker per (logical) CPU
/// consumes them. Lock-free with acquire/release ordering only; head and
/// tail live on separate cache lines to avoid false sharing between the
/// producer and consumer cores.

namespace xaon::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;  // one slot kept empty
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> out(std::move(buffer_[tail]));
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return out;
  }

  /// Blocking push: spins with bounded backoff (PAUSE burst, then
  /// yield) until the consumer frees a slot. Written against the ring
  /// directly — retrying try_push would re-move a moved-from value.
  void push_wait(T value) {
    Backoff backoff;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    while (next == tail_.load(std::memory_order_acquire)) backoff.pause();
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
  }

  /// Blocking pop: spins with bounded backoff until an item arrives or
  /// `stop()` returns true with the queue drained (then nullopt).
  template <typename Stop>
  std::optional<T> pop_wait(Stop&& stop) {
    Backoff backoff;
    for (;;) {
      if (std::optional<T> item = try_pop()) return item;
      if (stop() && empty()) return std::nullopt;
      backoff.pause();
    }
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace xaon::util
