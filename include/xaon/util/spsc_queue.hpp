#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "xaon/util/assert.hpp"
#include "xaon/util/backoff.hpp"

/// \file spsc_queue.hpp
/// Bounded single-producer/single-consumer ring buffer.
///
/// Used as the per-worker message queue in the host-mode AON server: the
/// acceptor thread produces parsed messages, one worker per (logical)
/// CPU consumes them. Lock-free with acquire/release ordering only; head
/// and tail live on separate cache lines to avoid false sharing between
/// the producer and consumer cores.
///
/// Memory-order contract (each order states the invariant it preserves):
///  * `head_` store is **release** (producer) / load **acquire**
///    (consumer): a consumer that observes the new head also observes
///    the slot write sequenced before it — the element hand-off edge.
///  * `tail_` store is **release** (consumer) / load **acquire**
///    (producer): a producer that observes the new tail also observes
///    the consumer's move-out of the slot, so overwriting it is safe.
///  * Same-side loads (`head_` in the producer, `tail_` in the
///    consumer) are **relaxed**: each index has a single writer — its
///    own side — so the thread reads back its own last store.
/// The `tests/model` interleaving checker exhausts every schedule of
/// these operations (via the XAON_MODEL_POINT hooks below) and the TSan
/// tier watches real executions; see DESIGN.md §"Static analysis &
/// concurrency contracts".

/// Model-checker yield hook: a no-op in production builds. The
/// deterministic interleaving checker (tests/model/sched.hpp) defines
/// this to hand control to its scheduler, so every window between two
/// atomic accesses becomes a schedulable context-switch point in the
/// *real* queue code, not a re-implementation of it.
#ifndef XAON_MODEL_POINT
#define XAON_MODEL_POINT() ((void)0)
#endif

namespace xaon::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity.
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity + 1) cap <<= 1;  // one slot kept empty
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    XAON_MODEL_POINT();
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    XAON_MODEL_POINT();
    if (next == tail_.load(std::memory_order_acquire)) return false;
    XAON_MODEL_POINT();
    buffer_[head] = std::move(value);
    XAON_MODEL_POINT();
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    XAON_MODEL_POINT();
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    XAON_MODEL_POINT();
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    XAON_MODEL_POINT();
    std::optional<T> out(std::move(buffer_[tail]));
    XAON_MODEL_POINT();
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return out;
  }

  /// Blocking push: spins with bounded backoff (PAUSE burst, then
  /// yield) until the consumer frees a slot. Written against the ring
  /// directly — retrying try_push would re-move a moved-from value.
  void push_wait(T value) {
    Backoff backoff;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    for (;;) {
      XAON_MODEL_POINT();
      if (next != tail_.load(std::memory_order_acquire)) break;
      backoff.pause();
    }
    XAON_MODEL_POINT();
    buffer_[head] = std::move(value);
    XAON_MODEL_POINT();
    head_.store(next, std::memory_order_release);
  }

  /// Blocking pop: spins with bounded backoff until an item arrives or
  /// `stop()` returns true with the queue drained (then nullopt).
  ///
  /// The exit test order matters: `stop()` is sampled *before* the
  /// emptiness re-check, so when the producer's protocol is
  /// "push everything, then publish stop with release" (Server::
  /// run_load), observing stop==true implies all pushes are visible and
  /// a true `empty()` really is the final state — no message is lost.
  template <typename Stop>
  std::optional<T> pop_wait(Stop&& stop) {
    Backoff backoff;
    for (;;) {
      if (std::optional<T> item = try_pop()) return item;
      XAON_MODEL_POINT();
      if (stop() && empty()) return std::nullopt;
      backoff.pause();
    }
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_; }

  /// Raw ring indices, for tests and the model checker's invariant
  /// probes (head/tail monotonicity, occupancy bounds). Not
  /// synchronization points — don't build protocols on them.
  std::size_t debug_head() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::size_t debug_tail() const {
    return tail_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace xaon::util
