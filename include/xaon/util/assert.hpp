#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Lightweight runtime check macros used across the library.
///
/// `XAON_CHECK` is always on (cheap, used on API boundaries and invariants
/// whose violation would corrupt results). `XAON_DCHECK` compiles out in
/// NDEBUG builds and is used on hot paths.

namespace xaon::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "XAON_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace xaon::detail

#define XAON_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::xaon::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define XAON_CHECK_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr))                                                   \
      ::xaon::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define XAON_DCHECK(expr) ((void)0)
#else
#define XAON_DCHECK(expr) XAON_CHECK(expr)
#endif
