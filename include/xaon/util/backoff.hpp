#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

/// \file backoff.hpp
/// Bounded spin-then-yield-then-sleep backoff for the host-mode
/// server's queue hand-off points.
///
/// A raw `std::this_thread::yield()` loop burns a syscall per iteration
/// and, on SMT parts like the paper's Xeons, starves the sibling thread
/// of issue slots. The conventional fix is a short PAUSE loop (which
/// frees the sibling's pipeline resources and cuts the memory-order
/// mis-speculation cost on spin exit) before falling back to the
/// scheduler; a stall that outlives the yield budget too (a worker
/// parked on an idle queue) graduates to a bounded sleep so it stops
/// consuming its whole timeslice on a core someone else could use.

namespace xaon::util {

/// One spin-wait hint: PAUSE on x86, YIELD on ARM, a compiler barrier
/// elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter with three phases — spin (PAUSE bursts), yield
/// (scheduler handoff), sleep (bounded OS sleep) — advancing strictly
/// in that order as the stall persists. reset() after progress so the
/// next stall starts cheap again.
class Backoff {
 public:
  enum class Phase : std::uint8_t { kSpin, kYield, kSleep };

  static constexpr std::uint32_t kSpinLimit = 1024;  ///< total pauses before yielding
  static constexpr std::uint32_t kYieldLimit = 64;   ///< yields before sleeping
  static constexpr std::chrono::microseconds kSleep{50};  ///< per-sleep bound

  void pause() {
    if (spins_ < kSpinLimit) {
      // Exponential burst: 1, 2, 4, ... pauses per call, so a short
      // stall costs a handful of PAUSEs and a long one converges to
      // yield without hammering the cache line in between.
      const std::uint32_t burst = spins_ == 0 ? 1 : spins_;
      for (std::uint32_t i = 0; i < burst; ++i) cpu_relax();
      spins_ = spins_ == 0 ? 1 : spins_ * 2;
      return;
    }
    if (yields_ < kYieldLimit) {
      ++yields_;
      std::this_thread::yield();
      return;
    }
    // Bounded (not escalating) sleep: latency on wake stays capped at
    // kSleep, and the wait loop above remains responsive to shutdown
    // flags that are only polled between pauses.
    std::this_thread::sleep_for(kSleep);
  }

  /// The phase the *next* pause() call will execute in.
  Phase phase() const {
    if (spins_ < kSpinLimit) return Phase::kSpin;
    if (yields_ < kYieldLimit) return Phase::kYield;
    return Phase::kSleep;
  }

  void reset() {
    spins_ = 0;
    yields_ = 0;
  }

 private:
  std::uint32_t spins_ = 0;
  std::uint32_t yields_ = 0;
};

}  // namespace xaon::util
