#pragma once

#include <cstdint>
#include <thread>

/// \file backoff.hpp
/// Bounded spin-then-yield backoff for the host-mode server's queue
/// hand-off points.
///
/// A raw `std::this_thread::yield()` loop burns a syscall per iteration
/// and, on SMT parts like the paper's Xeons, starves the sibling thread
/// of issue slots. The conventional fix is a short PAUSE loop (which
/// frees the sibling's pipeline resources and cuts the memory-order
/// mis-speculation cost on spin exit) before falling back to the
/// scheduler.

namespace xaon::util {

/// One spin-wait hint: PAUSE on x86, YIELD on ARM, a compiler barrier
/// elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Escalating waiter: spins with cpu_relax() in growing bursts, then
/// yields to the scheduler once the spin budget is exhausted. reset()
/// after progress so the next stall starts cheap again.
class Backoff {
 public:
  static constexpr std::uint32_t kSpinLimit = 1024;  ///< total pauses before yielding

  void pause() {
    if (spins_ < kSpinLimit) {
      // Exponential burst: 1, 2, 4, ... pauses per call, so a short
      // stall costs a handful of PAUSEs and a long one converges to
      // yield without hammering the cache line in between.
      const std::uint32_t burst = spins_ == 0 ? 1 : spins_;
      for (std::uint32_t i = 0; i < burst; ++i) cpu_relax();
      spins_ = spins_ == 0 ? 1 : spins_ * 2;
      return;
    }
    std::this_thread::yield();
  }

  void reset() { spins_ = 0; }

 private:
  std::uint32_t spins_ = 0;
};

}  // namespace xaon::util
