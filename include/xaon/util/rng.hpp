#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// All stochastic components of the workload models and simulators draw
/// from `Xoshiro256ss` seeded explicitly, so every experiment in the paper
/// reproduction is bit-for-bit repeatable. Never use std::rand or
/// std::random_device in library code.

namespace xaon::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the library-wide PRNG (public-domain algorithm by
/// Blackman & Vigna). Not cryptographic; statistical quality is ample for
/// workload synthesis.
class Xoshiro256ss {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit constexpr Xoshiro256ss(std::uint64_t seed = 0x9E3779B9D1B54A32ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias for practical use
  /// (Lemire's multiply-shift reduction).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Bernoulli draw with probability p of returning true.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace xaon::util
