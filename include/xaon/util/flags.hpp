#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file flags.hpp
/// Minimal command-line flag parsing for the example and benchmark
/// binaries. Flags take the forms `--name=value`, `--name value` and the
/// boolean shorthand `--name` / `--no-name`.

namespace xaon::util {

class Flags {
 public:
  /// Parses argv. Unknown `--flags` are collected as errors; bare
  /// arguments are collected as positional.
  Flags(int argc, const char* const* argv);

  /// Declares flags (with defaults) and returns the effective value.
  /// Declaring also registers the flag for --help and unknown-flag checks.
  std::string str(std::string_view name, std::string_view default_value,
                  std::string_view help);
  std::int64_t i64(std::string_view name, std::int64_t default_value,
                   std::string_view help);
  double f64(std::string_view name, double default_value,
             std::string_view help);
  bool boolean(std::string_view name, bool default_value,
               std::string_view help);

  const std::vector<std::string>& positional() const { return positional_; }

  /// True when --help was passed; callers should print usage() and exit.
  bool help_requested() const { return help_; }

  /// Usage text listing every declared flag with its default and help.
  std::string usage() const;

  /// Flags present on the command line but never declared. Non-empty
  /// after all declarations means the invocation had a typo.
  std::vector<std::string> unknown() const;

  const std::string& program() const { return program_; }

 private:
  struct Given {
    std::string name;
    std::optional<std::string> value;  // nullopt: bare boolean form
    bool negated = false;              // --no-name
    bool consumed = false;
  };
  struct Decl {
    std::string name;
    std::string default_repr;
    std::string help;
  };

  Given* find(std::string_view name);

  std::string program_;
  std::vector<Given> given_;
  std::vector<Decl> decls_;
  std::vector<std::string> positional_;
  bool help_ = false;
};

}  // namespace xaon::util
