#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/util/cache.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/scan.hpp"
#include "xaon/util/stats.hpp"

/// \file metrics.hpp
/// The per-worker metrics spine of the host-mode gateway.
///
/// The paper's contribution is *measurement*; a gateway that reports a
/// single wall-clock throughput number cannot be characterized. This
/// layer records, per worker and per pipeline stage, where each
/// message's nanoseconds went — with the same discipline as the rest
/// of the hot path: **zero heap allocation while recording**.
///
/// Ownership / merge model (mirrors Server::run_load's WorkerState):
///  * One `WorkerMetrics` per worker thread, single-writer, fixed
///    footprint (LogHistogram buckets + a few integers). Recording is
///    an array index, a bucket increment and an add — no locks, no
///    atomics, no allocator.
///  * After join() the acceptor merges every worker's block into one
///    `MetricsSnapshot` (allocation there is fine — it happens once,
///    off the message path).
///  * The snapshot is the single dump path: per-stage quantiles,
///    per-worker message/busy accounting, the imbalance ratio, and the
///    `util::probe` site registry all export through one
///    `MetricsSnapshot::to_json()` in the bench JSON-line convention.
///
/// Overhead budget (DESIGN.md §"Observability"): at most six
/// steady-clock reads per message (~20-30 ns each on x86), well under
/// 1% of the cheapest use case's per-message cost; `tests/
/// aon_alloc_test.cpp` holds the steady-state allocation count at zero
/// with metrics enabled.

namespace xaon::util {

/// Nanosecond timestamp for stage spans (steady clock, monotonic).
inline std::uint64_t metrics_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The per-message pipeline stages the gateway distinguishes.
enum class Stage : std::uint8_t {
  kParse = 0,      ///< HTTP wire -> request (first stage of process_wire)
  kRoute = 1,      ///< use-case work: XML parse + XPath route / validate
  kSerialize = 2,  ///< outbound wire serialization (forward_into)
  kForward = 3,    ///< downstream send incl. retries (server-side)
};
inline constexpr std::size_t kStageCount = 4;

/// Stable lower-case stage name ("parse", "route", "serialize",
/// "forward") — these are the metric names in the JSON dump.
std::string_view stage_name(Stage stage);

/// Monotonic event counter. Trivial by design: the point is a common
/// vocabulary for the snapshot dump, not clever encoding.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t n = 1) { value += n; }
  void merge(const Counter& other) { value += other.value; }
};

/// Last-value gauge with a high-water mark (e.g. queue depth samples).
struct Gauge {
  std::int64_t value = 0;
  std::int64_t high = 0;
  void set(std::int64_t v) {
    value = v;
    if (v > high) high = v;
  }
  void merge(const Gauge& other) {
    value += other.value;
    if (other.high > high) high = other.high;
  }
};

/// Transport-level counters of the real-socket server (`xaon::net`).
/// Same ownership discipline as the rest of the block: one instance per
/// worker, written only by its event loop (plain increments,
/// allocation-free), merged into the snapshot after join.
struct NetCounters {
  std::uint64_t accepted = 0;      ///< connections handed to this worker
  std::uint64_t closed = 0;        ///< connections fully torn down
  std::uint64_t read_eagain = 0;   ///< reads that drained to EAGAIN
  std::uint64_t short_writes = 0;  ///< writes the kernel took partially
  std::uint64_t bytes_in = 0;      ///< request bytes off the wire
  std::uint64_t bytes_out = 0;     ///< response bytes onto the wire

  void merge(const NetCounters& o) {
    accepted += o.accepted;
    closed += o.closed;
    read_eagain += o.read_eagain;
    short_writes += o.short_writes;
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
  }
};

/// Fixed-footprint latency distribution: a power-of-two LogHistogram
/// for quantiles plus exact count/min/max/sum. `add` never allocates.
class LatencyTrack {
 public:
  void add(std::uint64_t ns) {
    hist_.add(ns);
    sum_ += ns;
    if (count_ == 0 || ns < min_) min_ = ns;
    if (ns > max_) max_ = ns;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return min_; }
  /// Exact observed maximum (the histogram alone would round it up to
  /// its bucket's upper bound).
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Bucketed quantile (upper bound of the bucket holding the q-th
  /// sample; within 2x of the exact value — see LogHistogram).
  std::uint64_t quantile(double q) const { return hist_.quantile(q); }
  const LogHistogram& histogram() const { return hist_; }

  void merge(const LatencyTrack& other);

 private:
  LogHistogram hist_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

/// One worker thread's metrics block. Single writer (the owning
/// worker); readers merge after join. Every record_* is allocation-free
/// and lock-free — safe inside the zero-alloc steady-state contract.
class WorkerMetrics {
 public:
  /// One pipeline stage's span for the current message.
  void record_stage(Stage stage, std::uint64_t ns) {
    stage_[static_cast<std::size_t>(stage)].add(ns);
  }

  /// The whole message's span (dequeue -> response decided, including
  /// the forward). Also accumulates the worker's busy time.
  void record_message(std::uint64_t ns) { message_.add(ns); }

  const LatencyTrack& stage(Stage s) const {
    return stage_[static_cast<std::size_t>(s)];
  }
  const LatencyTrack& message() const { return message_; }
  std::uint64_t messages() const { return message_.count(); }
  /// Seconds this worker spent processing (sum of message spans —
  /// excludes queue-wait idle time).
  double busy_seconds() const {
    return static_cast<double>(message_.sum()) * 1e-9;
  }

  /// Final counters of this worker's structural routing cache, copied
  /// once after the worker's message loop drains (a struct assignment,
  /// not a per-message record).
  void record_route_cache(const CacheStats& stats) { route_cache_ = stats; }
  const CacheStats& route_cache() const { return route_cache_; }

  /// Per-message arena footprint: bytes the DOM arena handed out for
  /// the message just processed, and bytes it holds reserved-but-unused
  /// (`Arena::bytes_allocated()` / `bytes_retained()`). Two Gauge::set
  /// calls — allocation-free, inside the steady-state contract. The
  /// high-water marks spot messages that spill the arena's first chunk
  /// (each spill is a reset-time coalesce, i.e. a hidden allocation).
  void record_arena(std::size_t allocated_bytes, std::size_t retained_bytes) {
    arena_allocated_.set(static_cast<std::int64_t>(allocated_bytes));
    arena_retained_.set(static_cast<std::int64_t>(retained_bytes));
  }
  const Gauge& arena_allocated() const { return arena_allocated_; }
  const Gauge& arena_retained() const { return arena_retained_; }

  /// Transport counters, incremented in place by the owning worker's
  /// event loop (`xaon::net`); zero for in-process (host-mode) workers.
  NetCounters& net() { return net_; }
  const NetCounters& net() const { return net_; }

  /// Final scan-kernel counters (util::scan thread-local bytes/calls),
  /// copied once after the worker's loop drains — the observable side
  /// of the bulk-scanning layer: bytes-per-kernel-call is the
  /// bytes-per-branch improvement Table 5/6 motivates. Zero when probe
  /// capture forced the scalar probe-annotated loops.
  void record_scan(const scan::Counters& c) { scan_ = c; }
  const scan::Counters& scan_counters() const { return scan_; }

 private:
  LatencyTrack stage_[kStageCount];
  LatencyTrack message_;
  CacheStats route_cache_;
  Gauge arena_allocated_;
  Gauge arena_retained_;
  NetCounters net_;
  scan::Counters scan_;
};

/// Merged view over every worker's metrics, produced after join.
/// This is the one dump path: stages, message distribution, per-worker
/// balance, and the probe-site registry all export through to_json().
struct MetricsSnapshot {
  struct Worker {
    std::uint64_t messages = 0;
    double busy_seconds = 0.0;
  };
  struct ProbeSite {
    // xlint: allow(view-member): views the process-global probe registry
    std::string_view name;  ///< registry lives for the whole process
    probe::SiteKind kind = probe::SiteKind::kData;
  };

  LatencyTrack stages[kStageCount];
  LatencyTrack message;
  std::vector<Worker> workers;
  std::vector<ProbeSite> probes;
  /// Structural routing cache counters summed over workers (the caches
  /// themselves are per-worker; only their counts merge).
  CacheStats route_cache;
  /// DOM-arena footprint gauges merged over workers: `value` sums the
  /// workers' last-message footprints, `high` keeps the fleet-wide
  /// high-water mark (Gauge::merge semantics).
  Gauge arena_allocated;
  Gauge arena_retained;
  /// Transport counters summed over workers (all zero for host-mode
  /// in-process runs — the "net" JSON block still appears, at zero).
  NetCounters net;
  /// Scan-kernel work summed over workers ("scan" JSON block; zero in
  /// probe-capture runs, where the scalar fallback loops do the work).
  scan::Counters scan;

  /// Folds one worker's block in (order of calls = worker index).
  void add_worker(const WorkerMetrics& w);

  /// Snapshots the util::probe site registry so probes and metrics
  /// share one registry and one dump path.
  void capture_probe_sites();

  std::uint64_t messages_total() const;
  double busy_seconds_total() const;

  /// Max-over-mean of per-worker message counts: 1.0 = perfectly
  /// balanced, n_workers = one worker took everything. 0 when empty.
  double imbalance() const;

  /// One JSON object (no trailing newline) in the bench JSON-line
  /// convention: {"stages":{"parse":{...},...},"message":{...},
  /// "workers":[...],"imbalance":...,"probes":[...]}. Embed it as a
  /// value in a bench line: printf("... \"metrics\": %s}", ...).
  std::string to_json() const;
};

}  // namespace xaon::util
