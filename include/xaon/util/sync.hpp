#pragma once

#include <condition_variable>
#include <mutex>

#include "xaon/util/annotations.hpp"

/// \file sync.hpp
/// Annotation-visible synchronization primitives.
///
/// Clang's thread-safety analysis only understands lock acquisition it
/// can see: libc++ annotates `std::mutex`/`std::lock_guard`, libstdc++
/// does not — so code locking a raw `std::mutex` through
/// `std::lock_guard` is invisible to the analysis and every access to a
/// `XAON_GUARDED_BY` member would be flagged. These thin wrappers carry
/// the capability attributes themselves, making annotated code
/// warning-clean under `-Wthread-safety -Werror` on either standard
/// library (and compiling to exactly the std types' code elsewhere).
///
/// Project rule (enforced by `tools/xlint`, rule `mutex-guard`): data
/// members synchronize with `util::Mutex`, not naked `std::mutex`, and
/// every file declaring one also declares what it guards via
/// `XAON_GUARDED_BY`.

namespace xaon::util {

/// Annotated `std::mutex`. Lockable; use `MutexLock` for RAII scopes.
class XAON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XAON_ACQUIRE() { mu_.lock(); }
  void unlock() XAON_RELEASE() { mu_.unlock(); }
  bool try_lock() XAON_THREAD_ANNOTATION(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

  /// The wrapped mutex, for APIs that need the std type (CondVar).
  std::mutex& native() { return mu_; }  // xlint: allow(mutex-guard): sanctioned wrapper — this is the annotation-visible mutex type

 private:
  std::mutex mu_;  // xlint: allow(mutex-guard): sanctioned wrapper — this is the annotation-visible mutex type
};

/// RAII lock over `Mutex`, analysis-visible (`std::lock_guard` /
/// `std::unique_lock` equivalent). Exposes the underlying
/// `std::unique_lock` so `std::condition_variable` can wait on it.
class XAON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XAON_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() XAON_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `cv.wait(lock.native())`; the capability stays held across the
  /// wait from the analysis' point of view, which matches the semantics
  /// of a condition-variable wait at every observable program point.
  std::unique_lock<std::mutex>& native() { return lock_; }  // xlint: allow(mutex-guard): sanctioned wrapper — this is the annotation-visible mutex type

 private:
  std::unique_lock<std::mutex> lock_;  // xlint: allow(mutex-guard): sanctioned wrapper — this is the annotation-visible mutex type
};

/// Condition variable paired with `Mutex`. Waits take the `MutexLock`
/// so the analysis tracks that the lock is held around the predicate
/// re-check; use explicit `while (!pred) cv.wait(lock);` loops so
/// predicate member accesses are visibly under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.native()); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xaon::util
