#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xaon/util/annotations.hpp"

/// \file arena.hpp
/// Chunked bump allocator.
///
/// The XML DOM, XPath ASTs and schema component graphs are built out of
/// many small, identically-scoped objects; an arena gives them O(1)
/// allocation, perfect spatial locality (which the microarchitecture
/// simulator observes through the probe layer) and trivially correct
/// wholesale deallocation. Objects allocated from an arena must be
/// trivially destructible or have their destructors managed by the caller;
/// the arena never runs destructors.
///
/// `reset()` retains the chunks it already owns and rewinds into them, so
/// a per-message arena reaches a steady state where no allocation ever
/// goes to the system allocator — the property the AON hot path depends
/// on. `release()` gives the memory back.
///
/// ## Debug guards (DESIGN.md §"Arena lifetime contract")
///
/// Every pointer an arena hands out dangles wholesale at the next
/// reset() — a bug that reads stale-but-valid bytes and corrupts
/// verdicts silently. Guarded builds make such escapes a deterministic
/// crash instead:
///
///  * **kPoison** (default under ASan): the whole retained chunk is
///    `__asan_poison_memory_region`ed on reset() and each allocation
///    unpoisons exactly its user bytes, so any use-after-reset or
///    overflow into the red-zone gap between allocations dies with an
///    ASan use-after-poison report.
///  * **kCanary** (default in !NDEBUG non-ASan builds): the alignment
///    pad and a `kRedZoneBytes` gap after each allocation are filled
///    with `kCanaryByte` and re-checked on the next reset()/release() —
///    an overflow between allocations aborts via XAON_CHECK.
///  * **kOff** (default in NDEBUG non-ASan builds): the exact PR-1
///    layout and zero guard overhead — allocations are contiguous.
///
/// The mode is fixed per arena at construction; tests pass an explicit
/// mode to exercise canaries in any build.

#if XAON_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace xaon::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  /// Red-zone gap inserted after every allocation in guarded modes.
  static constexpr std::size_t kRedZoneBytes = 16;

  /// Fill byte of canary-guarded gaps (kCanary mode).
  static constexpr std::byte kCanaryByte{0xCD};

  enum class GuardMode : std::uint8_t {
    kOff,     ///< contiguous bump allocation, no checking (release)
    kCanary,  ///< canary-filled gaps, verified on reset()/release()
    kPoison,  ///< ASan-poisoned free space + red zones (needs ASan)
  };

  /// kPoison under ASan, kCanary in plain debug, kOff in release.
  static constexpr GuardMode default_guard_mode() {
#if XAON_HAS_ASAN
    return GuardMode::kPoison;
#elif !defined(NDEBUG)
    return GuardMode::kCanary;
#else
    return GuardMode::kOff;
#endif
  }

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes,
                 GuardMode guard = default_guard_mode())
      : chunk_bytes_(chunk_bytes),
        guard_(guard == GuardMode::kPoison && !XAON_HAS_ASAN
                   ? GuardMode::kCanary  // poisoning needs ASan; degrade
                   : guard) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocates `bytes` with the given alignment. Never returns nullptr;
  /// allocation failure aborts (this library treats OOM as fatal).
  /// The result aliases storage owned by this arena and dangles at the
  /// next reset()/release().
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t))
      XAON_LIFETIME_BOUND;

  /// Constructs a T in the arena. T must be trivially destructible —
  /// enforced at compile time so leaks of nontrivial resources are
  /// impossible by construction.
  template <typename T, typename... Args>
  T* make(Args&&... args) XAON_LIFETIME_BOUND {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed; T must be trivially "
                  "destructible");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  /// Allocates an uninitialized array of trivially-destructible T.
  template <typename T>
  T* make_array(std::size_t n) XAON_LIFETIME_BOUND {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  /// The copy is NUL-terminated (handy for C-style diagnostics) but the
  /// terminator is not part of the returned view.
  std::string_view intern(std::string_view s) XAON_LIFETIME_BOUND;

  /// Rewinds the arena: all pointers obtained from it dangle, but the
  /// chunks already reserved are retained and reused by subsequent
  /// allocations. After the first message warms the arena up, a
  /// reset-per-message loop performs zero system allocations. When the
  /// previous cycle spilled into multiple chunks they are coalesced
  /// (folded into the preferred chunk size) so the steady state is a
  /// single contiguous chunk — unless shrink_on_reset() is set, in
  /// which case spill chunks are released and the first chunk is kept
  /// at its original size (bounded footprint over coalesced speed).
  ///
  /// Guarded modes verify canaries / re-poison the retained space here,
  /// so a buffer overflow between allocations or a pointer that
  /// survives the reset is caught at the reset boundary or on its next
  /// dereference.
  void reset();

  /// Releases every chunk back to the system; all pointers dangle.
  void release();

  /// When set, reset() releases every chunk but the first instead of
  /// coalescing spill into a bigger chunk — long-running workers trade
  /// the single-chunk steady state for a hard memory bound. Off by
  /// default (the PR-1 zero-allocation steady state).
  void set_shrink_on_reset(bool on) { shrink_on_reset_ = on; }
  bool shrink_on_reset() const { return shrink_on_reset_; }

  GuardMode guard_mode() const { return guard_; }

  /// Total bytes handed out by allocate() since construction/reset.
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system (>= bytes_allocated).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Reserved bytes currently *unused* — capacity the arena retains for
  /// future cycles (free space in the active chunk plus every chunk not
  /// yet bumped into). Right after reset() this equals bytes_reserved();
  /// a retained high-water that keeps climbing across messages is an
  /// arena that grows without bound (surfaced as a gauge in
  /// util::MetricsSnapshot).
  std::size_t bytes_retained() const;

  /// Number of chunks currently held.
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_chunk(std::size_t min_bytes);
  void guard_gap(std::byte* from, std::byte* to);  ///< fill/record a gap
  void check_canaries() const;

  std::size_t chunk_bytes_;
  GuardMode guard_;
  bool shrink_on_reset_ = false;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently bump-allocated from
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
  /// kCanary bookkeeping: every guarded gap, re-verified on reset().
  /// Cleared (capacity retained) each cycle, so the steady state stays
  /// allocation-free after warm-up.
  std::vector<std::pair<std::byte*, std::uint32_t>> canary_gaps_;
};

}  // namespace xaon::util
