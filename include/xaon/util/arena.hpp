#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <vector>

/// \file arena.hpp
/// Chunked bump allocator.
///
/// The XML DOM, XPath ASTs and schema component graphs are built out of
/// many small, identically-scoped objects; an arena gives them O(1)
/// allocation, perfect spatial locality (which the microarchitecture
/// simulator observes through the probe layer) and trivially correct
/// wholesale deallocation. Objects allocated from an arena must be
/// trivially destructible or have their destructors managed by the caller;
/// the arena never runs destructors.
///
/// `reset()` retains the chunks it already owns and rewinds into them, so
/// a per-message arena reaches a steady state where no allocation ever
/// goes to the system allocator — the property the AON hot path depends
/// on. `release()` gives the memory back.

namespace xaon::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocates `bytes` with the given alignment. Never returns nullptr;
  /// allocation failure aborts (this library treats OOM as fatal).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Constructs a T in the arena. T must be trivially destructible —
  /// enforced at compile time so leaks of nontrivial resources are
  /// impossible by construction.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed; T must be trivially "
                  "destructible");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  /// Allocates an uninitialized array of trivially-destructible T.
  template <typename T>
  T* make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  /// The copy is NUL-terminated (handy for C-style diagnostics) but the
  /// terminator is not part of the returned view.
  std::string_view intern(std::string_view s);

  /// Rewinds the arena: all pointers obtained from it dangle, but the
  /// chunks already reserved are retained and reused by subsequent
  /// allocations. After the first message warms the arena up, a
  /// reset-per-message loop performs zero system allocations. When the
  /// previous cycle spilled into multiple chunks they are coalesced
  /// (folded into the preferred chunk size) so the steady state is a
  /// single contiguous chunk.
  void reset();

  /// Releases every chunk back to the system; all pointers dangle.
  void release();

  /// Total bytes handed out by allocate() since construction/reset.
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system (>= bytes_allocated).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Number of chunks currently held.
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_chunk(std::size_t min_bytes);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently bump-allocated from
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace xaon::util
