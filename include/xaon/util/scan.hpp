#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file scan.hpp
/// Bulk byte-scanning kernels for the tokenizer hot loops.
///
/// The paper's Table 5/6 analysis pins the AON server's cost on
/// branch-heavy byte scanning: XML workloads execute roughly twice the
/// branch frequency of netperf, and branch misprediction drives CPI on
/// both measured microarchitectures. The lexer loops this layer
/// replaces retired one-plus branches per input byte; each kernel here
/// classifies 8 (SWAR), 16 (SSE2) or 32 (AVX2) bytes per iteration and
/// branches once per *block*, so the predictor sees a short, strongly
/// biased stream instead of a data-dependent per-byte one.
///
/// Contract (every implementation, every kernel):
///  * Never reads past `p + n` — blocks narrower than the vector width
///    fall through to a scalar tail, so kernels are ASan-clean at every
///    length including 0 (where `p` may be null).
///  * Returns byte-identical results across scalar / SWAR / SSE2 / AVX2
///    (proven differentially by tests/util_scan_test.cpp).
///  * Allocation-free and iostream-free (xlint kHotPaths).
///
/// Dispatch: the widest implementation the CPU supports is selected
/// once at startup (CPUID), overridable with the `XAON_SCAN_IMPL`
/// environment variable (`scalar|swar|sse2|avx2`) or `set_impl()` for
/// benching and differential tests.
///
/// Probe-mode contract (DESIGN.md §"Scanning kernels"): these kernels
/// carry no `probe::branch` sites. Consumers that feed the Table 5/6
/// branch-frequency reproduction keep their original probe-annotated
/// byte loops and take them whenever a `probe::Recorder` is installed
/// on the thread; the bulk kernels run only in the unrecorded
/// (production) mode, where they additionally account scanned bytes
/// and calls into thread-local counters (-> MetricsSnapshot "scan").

namespace xaon::util::scan {

/// Implementation tiers, narrowest first. kScalar is the reference the
/// differential tests compare against; kSwar is the portable fallback
/// (uint64_t SWAR); kSse2/kAvx2 exist only on x86 hosts.
enum class Impl : std::uint8_t {
  kScalar = 0,
  kSwar = 1,
  kSse2 = 2,
  kAvx2 = 3,
};
inline constexpr std::size_t kImplCount = 4;

/// Stable lower-case name ("scalar", "swar", "sse2", "avx2") — used in
/// bench JSON lines and the XAON_SCAN_IMPL override.
std::string_view impl_name(Impl impl);

/// Parses an impl name; returns false (and leaves *out alone) on an
/// unknown name.
bool parse_impl(std::string_view name, Impl* out);

/// True when this build/CPU can execute `impl`.
bool impl_available(Impl impl);

/// The widest implementation this CPU supports.
Impl best_impl();

/// The currently dispatched implementation.
Impl active_impl();

/// Activates `impl` if available and returns it; otherwise leaves the
/// dispatch unchanged and returns the still-active implementation.
/// Not thread-safe against concurrent scans — call it from test/bench
/// setup, not while workers run.
Impl set_impl(Impl impl);

/// A 256-bit byte-membership bitmap plus the derived nibble tables the
/// AVX2 classifier uses. Build it once (static const / constexpr) and
/// pass it to find_any_of / skip_while_class; construction is O(set
/// size), membership tests are O(1).
class ByteClass {
 public:
  constexpr ByteClass() = default;

  /// Class containing exactly the bytes of `members`.
  static constexpr ByteClass of(std::string_view members) {
    ByteClass c;
    for (char m : members) c.add(static_cast<unsigned char>(m));
    return c;
  }

  constexpr void add(unsigned char c) {
    if (contains(c)) return;
    bits_[c >> 6] |= std::uint64_t{1} << (c & 63);
    if (c < 0x80) {
      lo_tab_[c & 0x0F] |= static_cast<unsigned char>(1u << (c >> 4));
    } else {
      ++high_count_;
    }
  }

  constexpr void add_range(unsigned char lo, unsigned char hi) {
    for (unsigned c = lo; c <= hi; ++c) add(static_cast<unsigned char>(c));
  }

  /// Adds every byte with the top bit set (0x80..0xFF) — the shape the
  /// XML name/text classes use (UTF-8 pass-through).
  constexpr void add_high() { add_range(0x80, 0xFF); }

  constexpr bool contains(unsigned char c) const {
    return (bits_[c >> 6] >> (c & 63)) & 1;
  }

  /// True when membership of bytes >= 0x80 is uniform (all in or all
  /// out) — the precondition for the AVX2 nibble-table classifier; a
  /// non-uniform high half falls back to the bytewise path.
  constexpr bool high_uniform() const {
    return high_count_ == 0 || high_count_ == 128;
  }
  constexpr bool high_member() const { return high_count_ == 128; }

  const std::uint64_t* bits() const { return bits_; }
  const unsigned char* lo_tab() const { return lo_tab_; }

 private:
  std::uint64_t bits_[4] = {0, 0, 0, 0};
  /// lo_tab_[b & 15] has bit (b >> 4) set iff ASCII byte b is a member:
  /// the 8x16 pshufb classification grid (bytes >= 0x80 are handled by
  /// the uniform high flag).
  unsigned char lo_tab_[16] = {0};
  std::uint16_t high_count_ = 0;
};

/// Scanned-work accounting, accumulated per thread by every kernel
/// call: `bytes` counts bytes the caller advanced over (the kernel's
/// return value — identical across implementations by the differential
/// contract), `calls` counts kernel invocations. bytes/branch-ish
/// observability: each call costs O(bytes/width) block branches where
/// the scalar loop cost O(bytes).
struct Counters {
  std::uint64_t bytes = 0;
  std::uint64_t calls = 0;

  void merge(const Counters& o) {
    bytes += o.bytes;
    calls += o.calls;
  }
};

/// The calling thread's counters (mutable reference — workers reset at
/// loop entry and publish into WorkerMetrics after draining).
Counters& thread_counters();
void reset_thread_counters();

// --- kernels ---------------------------------------------------------------
// All return a count in [0, n]: the index of the first byte matching
// the kernel's predicate, or n when no byte matches ("skip" kernels
// phrase the same value as the length of the matching prefix).

/// Index of the first occurrence of `c`, or n.
std::size_t find_byte(const char* p, std::size_t n, char c);

/// Index of the first byte that is a member of `cls`, or n.
std::size_t find_any_of(const char* p, std::size_t n, const ByteClass& cls);

/// Length of the longest prefix whose bytes are all members of `cls`.
std::size_t skip_while_class(const char* p, std::size_t n,
                             const ByteClass& cls);

/// Index of the first "\r\n" pair, or n. A lone trailing '\r' at p[n-1]
/// is NOT a match (the caller sees the pair only once the '\n' arrives
/// — incremental feeds stay split-offset independent).
std::size_t find_crlf(const char* p, std::size_t n);

/// Length of the longest prefix of XML NameChars (xml::is_name_char:
/// [A-Za-z0-9_:.-] plus every byte >= 0x80).
std::size_t match_name_run(const char* p, std::size_t n);

/// Length of the longest prefix of XML whitespace (space, tab, CR, LF).
std::size_t skip_xml_whitespace(const char* p, std::size_t n);

/// Index of the first '<' or '&' — the two bytes that terminate an XML
/// content-text run — or n.
std::size_t find_markup_or_amp(const char* p, std::size_t n);

// string_view conveniences (same kernels).
inline std::size_t find_byte(std::string_view s, char c) {
  return find_byte(s.data(), s.size(), c);
}
inline std::size_t find_any_of(std::string_view s, const ByteClass& cls) {
  return find_any_of(s.data(), s.size(), cls);
}
inline std::size_t skip_while_class(std::string_view s,
                                    const ByteClass& cls) {
  return skip_while_class(s.data(), s.size(), cls);
}
inline std::size_t find_crlf(std::string_view s) {
  return find_crlf(s.data(), s.size());
}
inline std::size_t match_name_run(std::string_view s) {
  return match_name_run(s.data(), s.size());
}
inline std::size_t skip_xml_whitespace(std::string_view s) {
  return skip_xml_whitespace(s.data(), s.size());
}
inline std::size_t find_markup_or_amp(std::string_view s) {
  return find_markup_or_amp(s.data(), s.size());
}

}  // namespace xaon::util::scan
