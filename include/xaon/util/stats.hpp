#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file stats.hpp
/// Streaming statistics and fixed-bucket histograms used by the
/// experiment harness and the simulators' internal accounting.

namespace xaon::util {

/// Welford-style streaming mean/variance plus min/max. O(1) per sample,
/// numerically stable, no sample storage.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-scaled latency histogram: power-of-two buckets from 1 to 2^63.
/// Used for per-message service time distributions in the AON server.
class LogHistogram {
 public:
  void add(std::uint64_t value);

  std::uint64_t count() const { return total_; }
  /// Approximate quantile (q in [0,1]): returns the upper bound of the
  /// bucket containing the q-th sample. 0 when empty.
  std::uint64_t quantile(double q) const;

  /// Bucket-wise sum of another histogram (per-worker merge at join).
  void merge(const LogHistogram& other);

  static constexpr int kBuckets = 64;
  std::uint64_t bucket(int i) const { return buckets_[i]; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Exact percentile over a stored sample vector (used in tests and for
/// small result sets where exactness matters). `q` in [0,1]. Sorts a copy.
double percentile(std::vector<double> samples, double q);

/// Geometric mean of strictly positive values; 0 if empty or any v<=0.
double geomean(const std::vector<double>& values);

}  // namespace xaon::util
