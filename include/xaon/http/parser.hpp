#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "xaon/http/message.hpp"

/// \file parser.hpp
/// Incremental HTTP/1.1 parsing. `feed()` accepts arbitrary byte chunks
/// (the network simulator delivers segment-sized pieces); a message is
/// ready when state() == kDone. Supports Content-Length and chunked
/// transfer-coding bodies.

namespace xaon::http {

enum class ParseState : std::uint8_t {
  kStartLine,
  kHeaders,
  kBody,
  kChunkSize,
  kChunkData,
  kChunkTrailer,
  kDone,
  kError,
};

/// Structured reason for state() == kError. Hostile inputs (chaos/fuzz
/// harnesses, faulty peers) are classified rather than reported as one
/// opaque string, so callers can map them to responses and tests can
/// assert the exact defense that fired.
enum class ParseError : std::uint8_t {
  kNone = 0,
  kBadStartLine,
  kBadHeader,
  kHeaderLineTooLong,
  kTooManyHeaders,
  kHeadersTooLarge,
  kBadContentLength,
  kBodyTooLarge,
  kBadChunk,
};

inline const char* parse_error_name(ParseError e) {
  switch (e) {
    case ParseError::kNone: return "none";
    case ParseError::kBadStartLine: return "bad-start-line";
    case ParseError::kBadHeader: return "bad-header";
    case ParseError::kHeaderLineTooLong: return "header-line-too-long";
    case ParseError::kTooManyHeaders: return "too-many-headers";
    case ParseError::kHeadersTooLarge: return "headers-too-large";
    case ParseError::kBadContentLength: return "bad-content-length";
    case ParseError::kBodyTooLarge: return "body-too-large";
    case ParseError::kBadChunk: return "bad-chunk";
  }
  return "?";
}

namespace detail {

/// Shared machinery for request/response parsing.
class MessageParser {
 public:
  ParseState state() const { return state_; }
  bool done() const { return state_ == ParseState::kDone; }
  bool failed() const { return state_ == ParseState::kError; }
  const std::string& error() const { return error_; }
  ParseError error_code() const { return error_code_; }

  /// Total body bytes limit (default 16 MiB) — an AON device bounds
  /// message sizes defensively.
  void set_max_body(std::size_t n) { max_body_ = n; }
  /// Header-section limits: per-message header count (default 128) and
  /// cumulative header bytes (default 256 KiB). Both bound the memory a
  /// hostile peer can pin with an endless header section.
  void set_max_header_count(std::size_t n) { max_header_count_ = n; }
  void set_max_header_bytes(std::size_t n) { max_header_bytes_ = n; }

 protected:
  /// Consumes as much of `data` as possible; returns bytes consumed.
  /// Trailing bytes beyond the message end are left unconsumed
  /// (pipelining).
  std::size_t feed_impl(std::string_view data, HeaderMap* headers,
                        std::string* body);

  virtual bool parse_start_line(std::string_view line) = 0;
  virtual ~MessageParser() = default;

  void reset_impl();

  bool fail(ParseError code, std::string message) {
    state_ = ParseState::kError;
    error_code_ = code;
    error_ = std::move(message);
    return false;
  }

  ParseState state_ = ParseState::kStartLine;
  ParseError error_code_ = ParseError::kNone;
  std::string error_;
  std::string line_buf_;
  std::size_t body_remaining_ = 0;
  std::size_t header_count_ = 0;
  std::size_t header_bytes_ = 0;
  bool chunked_ = false;
  bool has_length_ = false;
  /// kChunkData terminator sub-state: '\r' of the post-payload CRLF
  /// seen, '\n' still owed. The terminator must be an exact CRLF —
  /// anything else is kBadChunk (see feed_impl).
  bool chunk_cr_seen_ = false;
  std::size_t max_body_ = 16 * 1024 * 1024;
  std::size_t max_header_count_ = 128;
  std::size_t max_header_bytes_ = 256 * 1024;
};

}  // namespace detail

class RequestParser : public detail::MessageParser {
 public:
  /// Feeds bytes; returns how many were consumed. Check done()/failed().
  std::size_t feed(std::string_view data);

  /// The parsed request; valid once done().
  const Request& request() const { return request_; }
  Request take_request();

  /// Prepares for the next message on the same connection.
  void reset();

 private:
  bool parse_start_line(std::string_view line) override;
  Request request_;
};

class ResponseParser : public detail::MessageParser {
 public:
  std::size_t feed(std::string_view data);
  const Response& response() const { return response_; }
  Response take_response();
  void reset();

 private:
  bool parse_start_line(std::string_view line) override;
  Response response_;
};

}  // namespace xaon::http
