#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "xaon/http/message.hpp"

/// \file parser.hpp
/// Incremental HTTP/1.1 parsing. `feed()` accepts arbitrary byte chunks
/// (the network simulator delivers segment-sized pieces); a message is
/// ready when state() == kDone. Supports Content-Length and chunked
/// transfer-coding bodies.

namespace xaon::http {

enum class ParseState : std::uint8_t {
  kStartLine,
  kHeaders,
  kBody,
  kChunkSize,
  kChunkData,
  kChunkTrailer,
  kDone,
  kError,
};

namespace detail {

/// Shared machinery for request/response parsing.
class MessageParser {
 public:
  ParseState state() const { return state_; }
  bool done() const { return state_ == ParseState::kDone; }
  bool failed() const { return state_ == ParseState::kError; }
  const std::string& error() const { return error_; }

  /// Total body bytes limit (default 16 MiB) — an AON device bounds
  /// message sizes defensively.
  void set_max_body(std::size_t n) { max_body_ = n; }

 protected:
  /// Consumes as much of `data` as possible; returns bytes consumed.
  /// Trailing bytes beyond the message end are left unconsumed
  /// (pipelining).
  std::size_t feed_impl(std::string_view data, HeaderMap* headers,
                        std::string* body);

  virtual bool parse_start_line(std::string_view line) = 0;
  virtual ~MessageParser() = default;

  void reset_impl();

  bool fail(std::string message) {
    state_ = ParseState::kError;
    error_ = std::move(message);
    return false;
  }

  ParseState state_ = ParseState::kStartLine;
  std::string error_;
  std::string line_buf_;
  std::size_t body_remaining_ = 0;
  bool chunked_ = false;
  bool has_length_ = false;
  std::size_t max_body_ = 16 * 1024 * 1024;
};

}  // namespace detail

class RequestParser : public detail::MessageParser {
 public:
  /// Feeds bytes; returns how many were consumed. Check done()/failed().
  std::size_t feed(std::string_view data);

  /// The parsed request; valid once done().
  const Request& request() const { return request_; }
  Request take_request();

  /// Prepares for the next message on the same connection.
  void reset();

 private:
  bool parse_start_line(std::string_view line) override;
  Request request_;
};

class ResponseParser : public detail::MessageParser {
 public:
  std::size_t feed(std::string_view data);
  const Response& response() const { return response_; }
  Response take_response();
  void reset();

 private:
  bool parse_start_line(std::string_view line) override;
  Response response_;
};

}  // namespace xaon::http
