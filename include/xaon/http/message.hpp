#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/util/annotations.hpp"

/// \file message.hpp
/// HTTP/1.1 message model. The AON server proxies HTTP POST requests
/// carrying XML payloads (the paper's FR/CBR/SV use cases all arrive
/// this way), so requests and responses are first-class values here.

namespace xaon::http {

/// Ordered header list with case-insensitive name lookup (HTTP header
/// names are case-insensitive; order is preserved for proxying
/// fidelity).
class HeaderMap {
 public:
  /// Appends a header. Cleared/removed entries are recycled, so a
  /// HeaderMap reused across messages adds headers without allocating
  /// once its entry strings have grown to the working-set size.
  void add(std::string_view name, std::string_view value);

  /// Replaces every existing `name` header with one instance.
  void set(std::string_view name, std::string_view value);

  /// First value for `name`, or nullopt. The view aliases this map's
  /// entry storage: it dangles when the header is removed/cleared or the
  /// map is destroyed.
  std::optional<std::string_view> get(std::string_view name) const
      XAON_LIFETIME_BOUND;

  /// All values for `name` in order (same lifetime contract as get()).
  std::vector<std::string_view> get_all(std::string_view name) const
      XAON_LIFETIME_BOUND;

  bool has(std::string_view name) const { return get(name).has_value(); }

  /// Removes every `name` header; returns how many were removed.
  std::size_t remove(std::string_view name);

  /// Removes all headers; entry storage is retained for reuse.
  void clear();

  std::size_t size() const { return headers_.size(); }

  struct Entry {
    std::string name;
    std::string value;
  };
  const std::vector<Entry>& entries() const XAON_LIFETIME_BOUND {
    return headers_;
  }

 private:
  std::vector<Entry> headers_;
  std::vector<Entry> pool_;  ///< recycled entries (string capacity kept)
};

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Content-Length as parsed, or nullopt.
  std::optional<std::uint64_t> content_length() const;

  /// True when Connection: close (or HTTP/1.0 without keep-alive).
  bool wants_close() const;

  /// Restores the default-constructed field values, retaining string and
  /// header capacity for the next message.
  void reset();
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Restores defaults retaining capacity (see Request::reset()).
  void reset();
};

/// Serializes with a correct Content-Length (overriding any present).
std::string write_request(const Request& request);
std::string write_response(const Response& response);

/// In-place variants: `out` is cleared and reused, so a caller that
/// keeps the buffer across messages serializes without allocating.
void write_request_to(const Request& request, std::string* out);
void write_response_to(const Response& response, std::string* out);

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view reason_phrase(int status);

}  // namespace xaon::http
