#pragma once

#include <string>
#include <vector>

#include "xaon/uarch/cache.hpp"
#include "xaon/uarch/predictor.hpp"
#include "xaon/uarch/prefetch.hpp"

/// \file platform.hpp
/// Core microarchitecture parameters and the five system-under-test
/// configurations of the paper (Tables 1 and 2).
///
/// Cache geometries, frequencies and the 667 MHz front-side bus come
/// straight from Table 1. Pipeline/issue parameters are calibrated so
/// the simulated baselines land in the paper's reported ranges; every
/// headline *trend* is produced by a structural mechanism (shared L2,
/// SMT slot sharing, predictor aliasing, FSB arbitration, uop
/// expansion), not by per-experiment constants.

namespace xaon::uarch {

/// Parameters of one core microarchitecture (Pentium M or Xeon).
struct CoreArch {
  std::string name;
  double freq_ghz = 1.0;

  /// Retired instructions per trace op. Netburst decodes x86 into ~2x
  /// more retired uops than the P6-family Pentium M — the mechanism
  /// behind the paper's halved Xeon branch frequency (Table 5).
  double uop_expansion = 1.0;

  /// Issue-slot occupancy per op, in core cycles. This cost is charged
  /// to the *core* (shared between SMT threads); memory/branch stalls
  /// are charged to the thread. The split is what makes Hyper-Threading
  /// help stall-heavy workloads and not compute-bound ones.
  double issue_cycles_per_op = 0.5;

  /// Extra pipeline cycles on a branch mispredict (Netburst's 31-stage
  /// pipeline vs Pentium M's ~12).
  double mispredict_penalty = 11;

  /// Cache-port / L2-bandwidth occupancy charged to the CORE per L1
  /// miss that hits L2 (shared between SMT threads, like the issue
  /// slots). This is why Hyper-Threading barely helps cache-resident
  /// copy loops (loopback netperf) while overlapping the long
  /// DRAM-latency stalls of miss-bound workloads (FR) nicely.
  double l2_port_cycles = 6;

  CacheConfig l1i;
  CacheConfig l1d;
  double l1_latency_cycles = 3;    ///< hit latency beyond issue
  double l2_latency_cycles = 9;    ///< L1-miss/L2-hit penalty
  double memory_latency_ns = 90;   ///< L2-miss DRAM round trip

  /// Fraction of a memory stall the pipeline cannot hide (OoO cores
  /// overlap some of it; loads expose more than stores).
  double load_stall_exposure = 0.7;
  double store_stall_exposure = 0.15;
  double ifetch_stall_exposure = 0.5;

  PredictorConfig predictor;
  PrefetchConfig prefetch;
};

/// Chip/board topology on top of a CoreArch.
struct PlatformConfig {
  std::string notation;  ///< 1CPm / 2CPm / 1LPx / 2LPx / 2PPx
  std::string description;
  CoreArch arch;

  int chips = 1;             ///< physical packages on the FSB
  int cores_per_chip = 1;
  bool smt = false;          ///< two logical CPUs per core
  CacheConfig l2;            ///< per chip, shared by its cores
  double bus_freq_mhz = 667;
  double bus_bytes_per_cycle = 8;  ///< 64-bit FSB
  double bus_transaction_bytes = 64;  ///< one cache line per transaction

  /// Cross-unit ownership-transfer penalties (coherence), in ns: a read
  /// of a line last written by another core pays for cache-to-cache /
  /// modified-intervention transfer — through the shared L2 within a
  /// package, over the FSB between packages.
  double same_chip_snoop_ns = 40;   ///< via shared L2
  double cross_chip_snoop_ns = 150; ///< via FSB intervention

  int hardware_threads() const {
    return chips * cores_per_chip * (smt ? 2 : 1);
  }
  int cores() const { return chips * cores_per_chip; }

  /// ns one bus transaction occupies the FSB.
  double bus_occupancy_ns() const {
    return bus_transaction_bytes /
           (bus_bytes_per_cycle * bus_freq_mhz * 1e6) * 1e9;
  }
};

/// The two microarchitectures of Table 1.
CoreArch pentium_m_arch();
CoreArch xeon_netburst_arch();

/// The five SUT configurations of Table 2.
PlatformConfig platform_1cpm();
PlatformConfig platform_2cpm();
PlatformConfig platform_1lpx();
PlatformConfig platform_2lpx();
PlatformConfig platform_2ppx();

/// All five, in the paper's reporting order.
std::vector<PlatformConfig> all_platforms();

}  // namespace xaon::uarch
