#pragma once

#include <cstdint>
#include <vector>

/// \file predictor.hpp
/// Branch predictors. The Pentium M model is a hybrid (bimodal + gshare
/// with a chooser, large tables — Intel's "advanced branch prediction");
/// the Netburst Xeon model is a smaller gshare. Under Hyper-Threading
/// both logical CPUs share the same tables (and optionally the global
/// history register), which is exactly the aliasing mechanism the paper
/// blames for the 2LPx misprediction increase.

namespace xaon::uarch {

struct PredictorConfig {
  std::uint32_t bimodal_bits = 12;  ///< log2 of bimodal table entries
  std::uint32_t gshare_bits = 12;   ///< log2 of gshare table entries
  std::uint32_t history_bits = 12;  ///< global history length
  bool hybrid = true;               ///< use chooser between the two
  bool shared_history = false;      ///< SMT threads share the history reg
};

struct PredictorStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;

  double miss_ratio() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(mispredictions) /
                                  static_cast<double>(predictions);
  }
};

/// One predictor instance = one physical core's tables. `thread` selects
/// the logical CPU (affects only the history register unless
/// shared_history).
class BranchPredictor {
 public:
  explicit BranchPredictor(const PredictorConfig& config);

  /// Predicts, updates tables with the outcome, and reports whether the
  /// prediction was wrong.
  bool predict_and_update(std::uint32_t thread, std::uint64_t pc,
                          bool taken);

  const PredictorStats& stats(std::uint32_t thread) const {
    return stats_[thread & 1];
  }
  PredictorStats total_stats() const;
  void reset_stats();

 private:
  static bool counter_taken(std::uint8_t c) { return c >= 2; }
  static std::uint8_t bump(std::uint8_t c, bool taken) {
    if (taken) return c < 3 ? static_cast<std::uint8_t>(c + 1) : c;
    return c > 0 ? static_cast<std::uint8_t>(c - 1) : c;
  }

  PredictorConfig config_;
  std::vector<std::uint8_t> bimodal_;
  std::vector<std::uint8_t> gshare_;
  std::vector<std::uint8_t> chooser_;
  std::uint64_t history_[2] = {0, 0};
  PredictorStats stats_[2];
};

}  // namespace xaon::uarch
