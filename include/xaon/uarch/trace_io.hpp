#pragma once

#include <iosfwd>
#include <string>

#include "xaon/uarch/trace.hpp"

/// \file trace_io.hpp
/// Binary trace serialization.
///
/// Captured traces are expensive to regenerate (they run the whole
/// instrumented stack); saving them lets experiments, regression checks
/// and the trace_inspector example replay identical instruction streams
/// across processes and machines. The format is a fixed little-endian
/// layout with a magic/version header and a length field — no host
/// struct dumping, so files are portable.

namespace xaon::uarch {

inline constexpr char kTraceMagic[8] = {'X', 'A', 'O', 'N',
                                        'T', 'R', 'C', '1'};

/// Writes `trace` to `out`. Returns false on stream failure.
bool save_trace(const Trace& trace, std::ostream& out);

/// Convenience: writes to `path` (overwrites). Returns false on any
/// I/O failure.
bool save_trace(const Trace& trace, const std::string& path);

struct TraceLoadResult {
  Trace trace;
  std::string error;
  bool ok = false;

  explicit operator bool() const { return ok; }
};

/// Reads a trace written by save_trace. Validates magic, version and
/// op-kind ranges; a corrupt or truncated file yields ok=false with a
/// diagnostic, never a partially-valid trace.
TraceLoadResult load_trace(std::istream& in);
TraceLoadResult load_trace(const std::string& path);

}  // namespace xaon::uarch
