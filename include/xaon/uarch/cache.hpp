#pragma once

#include <cstdint>
#include <vector>

/// \file cache.hpp
/// Set-associative write-back/write-allocate cache with true-LRU
/// replacement — the model behind every L1/L2 in the simulated
/// platforms (Table 1 of the paper gives the geometries).

namespace xaon::uarch {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;

  std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                         associativity);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< dirty evictions

  double miss_rate() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// Result of one cache access.
struct AccessResult {
  bool hit = false;
  bool writeback = false;       ///< a dirty line was evicted
  std::uint64_t victim_line = 0;  ///< line address of the eviction victim
  bool evicted = false;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up / fills `addr`. A miss allocates the line (victim evicted
  /// per LRU). `is_write` marks the line dirty.
  AccessResult access(std::uint64_t addr, bool is_write);

  /// True without side effects.
  bool contains(std::uint64_t addr) const;

  /// Invalidates the line if present (coherence). Returns true when the
  /// invalidated line was dirty.
  bool invalidate(std::uint64_t addr);

  /// Inserts a line without counting an access (prefetch fill).
  /// Returns the access result of the fill (hit = already present).
  AccessResult fill(std::uint64_t addr);

  void reset_stats() { stats_ = CacheStats{}; }
  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  std::uint64_t line_of(std::uint64_t addr) const {
    return addr / config_.line_bytes;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< larger = more recent
    bool valid = false;
    bool dirty = false;
  };

  AccessResult touch(std::uint64_t addr, bool is_write, bool count);

  CacheConfig config_;
  std::uint64_t set_mask_;
  std::vector<Way> ways_;  ///< sets * associativity, row-major
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace xaon::uarch
