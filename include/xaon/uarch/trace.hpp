#pragma once

#include <cstdint>
#include <vector>

/// \file trace.hpp
/// Instruction traces consumed by the microarchitecture simulator.
///
/// One Op is one (pre-decode) x86-level instruction; the per-arch uop
/// expansion factor maps ops to the "instructions retired" the paper's
/// counters report. Every op carries the code address it was fetched
/// from (drives the I-side cache hierarchy) and, for memory ops, the
/// data address.

namespace xaon::uarch {

enum class OpKind : std::uint8_t {
  kAlu,     ///< non-memory compute
  kLoad,
  kStore,
  kBranch,  ///< conditional branch; `taken` holds the outcome
};

struct Op {
  std::uint64_t pc = 0;     ///< code address
  std::uint64_t addr = 0;   ///< data address (loads/stores)
  OpKind kind = OpKind::kAlu;
  std::uint8_t size = 4;    ///< access size in bytes
  bool taken = false;       ///< branch outcome
};

using Trace = std::vector<Op>;

/// Aggregate shape of a trace (used by tests and workload reports).
struct TraceStats {
  std::uint64_t total = 0;
  std::uint64_t alu = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_branches = 0;

  double branch_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(branches) /
                            static_cast<double>(total);
  }
  double memory_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(loads + stores) /
                            static_cast<double>(total);
  }
};

TraceStats compute_stats(const Trace& trace);

}  // namespace xaon::uarch
