#pragma once

#include <cstdint>
#include <string>

/// \file counters.hpp
/// The on-chip performance-counter set the paper samples with VTune,
/// reproduced over the simulated hardware. One instance per hardware
/// thread; aggregate with operator+=.

namespace xaon::uarch {

struct Counters {
  // Raw event counts (names follow the VTune events the paper lists).
  std::uint64_t clockticks = 0;            ///< cycles incl. idle
  std::uint64_t busy_cycles = 0;           ///< cycles doing work
  std::uint64_t inst_retired = 0;          ///< post-uop-expansion
  std::uint64_t ops = 0;                   ///< trace ops executed
  std::uint64_t branch_retired = 0;
  std::uint64_t branch_mispredicted = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_accesses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t bus_transactions = 0;      ///< incl. prefetch + coherence
  std::uint64_t bus_wait_cycles = 0;       ///< stall cycles from arbitration
  std::uint64_t coherence_invalidations = 0;
  std::uint64_t prefetch_fills = 0;

  Counters& operator+=(const Counters& other);

  // Derived metrics exactly as the paper defines them.
  double cpi() const;     ///< clockticks / instructions retired
  double l2mpi() const;   ///< L2 misses per retired instruction (as %)
  double btpi() const;    ///< bus transactions per retired instruction (%)
  double branch_frequency() const;  ///< branch/inst retired (%)
  double brmpr() const;   ///< mispredictions per retired branch (%)

  std::string to_string() const;
};

}  // namespace xaon::uarch
