#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "xaon/uarch/cache.hpp"
#include "xaon/uarch/counters.hpp"
#include "xaon/uarch/platform.hpp"
#include "xaon/uarch/predictor.hpp"
#include "xaon/uarch/prefetch.hpp"
#include "xaon/uarch/trace.hpp"

/// \file system.hpp
/// The simulated machine: cores (L1I/L1D/predictor/prefetcher per
/// core), chips (L2 per chip, shared by its cores), one front-side bus,
/// and a coherence directory. Execution is a deterministic interleaving
/// of per-thread traces ordered by simulated time, with a
/// stall-accounting core model:
///
///   op cost = issue-slot occupancy (charged to the CORE — SMT threads
///             compete for it) + exposed memory stalls + branch
///             mispredict penalty + bus arbitration wait (charged to the
///             THREAD).
///
/// This split is what makes the paper's dual-processing effects fall
/// out structurally: Hyper-Threading overlaps thread-private stalls but
/// serializes issue occupancy; shared L2s thrash under streaming
/// workloads; separate packages pay FSB coherence for producer/consumer
/// sharing.

namespace xaon::uarch {

struct RunResult {
  double wall_ns = 0;                ///< simulated wall-clock time
  Counters total;                    ///< summed over hardware threads
  std::vector<Counters> per_thread;

  /// Work throughput helper: units of work per second given the number
  /// of work items the traces represented.
  double items_per_second(double items) const {
    return wall_ns <= 0 ? 0.0 : items / (wall_ns * 1e-9);
  }
};

class System {
 public:
  explicit System(const PlatformConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Runs one trace per hardware thread (fewer traces than threads
  /// leaves the remaining units idle; nullptr entries are idle too).
  /// Microarchitectural state (caches, predictors) persists across
  /// calls, so "run once to warm, run again to measure" gives
  /// steady-state numbers.
  RunResult run(const std::vector<const Trace*>& traces);

  const PlatformConfig& config() const { return config_; }

  /// Clears caches, predictors, directory and the bus clock (cold
  /// start). Does not touch configuration.
  void reset();

 private:
  struct Core;
  struct Chip;
  struct ThreadState;

  /// Cost of one memory reference, split into the thread-private
  /// exposed stall and the core-shared cache-port occupancy.
  struct MemCost {
    double stall_ns = 0;  ///< private (overlappable by the SMT sibling)
    double port_ns = 0;   ///< occupies the core's cache port (shared)
  };
  MemCost memory_access(ThreadState& thread, Core& core, Chip& chip,
                        std::uint64_t addr, bool is_write, bool is_ifetch,
                        double now_ns);

  /// Reserves the FSB at `now`; returns wait time in ns.
  double bus_acquire(double now_ns, Counters& counters);

  /// Write-invalidation + dirty-intervention bookkeeping. Returns extra
  /// latency in ns.
  double coherence(ThreadState& thread, std::uint64_t line, bool is_write,
                   double now_ns);

  PlatformConfig config_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<Chip>> chips_;

  struct DirEntry {
    std::uint32_t core_mask = 0;  ///< cores that may cache the line (L1)
    std::uint32_t chip_mask = 0;  ///< chips that may cache it (L2)
    std::int32_t dirty_core = -1; ///< last writer, -1 = clean
  };
  std::unordered_map<std::uint64_t, DirEntry> directory_;

  double bus_free_ns_ = 0;
  std::vector<std::uint64_t> prefetch_buf_;
};

}  // namespace xaon::uarch
