#pragma once

#include <cstdint>
#include <vector>

/// \file prefetch.hpp
/// Hardware prefetcher model: per-core stream table detecting
/// next-line/stride patterns on L2-bound traffic and issuing prefetch
/// fills ahead of the stream. Models Pentium M's "Smart Memory Access"
/// (two advanced L2 prefetchers) whose extra bus traffic the paper
/// identifies as the reason 1CPm's bus transactions match 1LPx despite
/// PM's double-size L2.

namespace xaon::uarch {

struct PrefetchConfig {
  bool enabled = false;
  std::uint32_t streams = 16;    ///< tracked concurrent streams
  std::uint32_t degree = 2;      ///< lines fetched ahead on a hit stream
  std::uint32_t train_hits = 2;  ///< accesses before a stream goes live
};

struct PrefetchStats {
  std::uint64_t issued = 0;   ///< prefetch fills handed to L2
  std::uint64_t trained = 0;  ///< streams that reached live state
};

/// Observes demand miss addresses; returns prefetch candidate lines.
class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const PrefetchConfig& config);

  /// Reports a demand access at line granularity. Appends up to
  /// `degree` prefetch line addresses to `out` when a live stream
  /// matches.
  void observe(std::uint64_t line, std::vector<std::uint64_t>* out);

  const PrefetchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PrefetchStats{}; }

 private:
  struct Stream {
    std::uint64_t last_line = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  PrefetchConfig config_;
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
  PrefetchStats stats_;
};

}  // namespace xaon::uarch
