#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "xaon/aon/server.hpp"
#include "xaon/net/socket.hpp"
#include "xaon/util/annotations.hpp"
#include "xaon/util/sync.hpp"

/// \file downstream.hpp
/// Real-socket forward path for `xaon::net`: a `Downstream` that writes
/// each outbound wire to a loopback TCP peer, and the sink peer the
/// tests and bench stand up behind it. Together they close the loop the
/// host-mode doubles only model — the transport's 502/503 shedding now
/// reacts to actual kernel behavior (connect refusals, full send
/// buffers) instead of scripted verdicts.

namespace xaon::net {

/// Socket-backed `aon::Downstream`: each send checks out a pooled
/// loopback connection, performs a nonblocking connect (first use) and
/// nonblocking writes under one wall-clock deadline, and returns the
/// connection to the pool on success. Deadline mapping (DESIGN.md
/// §"Transport"):
///
///   - connect/write past the deadline  -> kBusy (peer alive but slow;
///     the caller's retry budget decides between retry and 503)
///   - refusal / reset / socket error   -> kFail (hard 502 after the
///     retry budget)
///   - wire fully written               -> kAck
///
/// Thread-safe: workers share the pool under a mutex; the socket I/O
/// itself happens outside the lock on the checked-out fd, so one slow
/// peer write never serializes the other workers' sends.
class SocketDownstream : public aon::Downstream {
 public:
  /// Forwards to 127.0.0.1:`port`. `deadline_ms` bounds each send's
  /// total connect+write wall-clock time.
  explicit SocketDownstream(std::uint16_t port, std::uint32_t deadline_ms = 50);
  ~SocketDownstream() override;

  aon::SendStatus send(std::string_view wire) override;

  /// Drops every pooled connection (e.g. after the peer restarts).
  void close_all();

 private:
  int check_out();           ///< pooled fd or -1 (caller then connects)
  void check_in(int fd);     ///< return a healthy fd to the pool

  const std::uint16_t port_;
  const std::uint32_t deadline_ms_;
  util::Mutex mu_;
  std::vector<int> idle_ XAON_GUARDED_BY(mu_);  ///< pooled connections
};

/// Loopback peer that accepts connections and discards whatever
/// arrives, counting bytes — the "healthy downstream" stand-in for the
/// transport tests and `bench/net_throughput`. Single poll() thread;
/// not a performance actor, just a correct one. Stop to get totals.
class SinkServer {
 public:
  SinkServer() = default;
  ~SinkServer();

  /// Binds 127.0.0.1 (kernel-assigned port) and starts the thread.
  bool start(std::string* error = nullptr);
  std::uint16_t port() const { return port_; }

  /// Joins the thread and closes every connection. Idempotent.
  void stop();

  /// Total payload bytes drained (readable while running).
  std::uint64_t bytes_received() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Connections accepted so far.
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  Fd listen_fd_;
  Fd stop_event_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace xaon::net
