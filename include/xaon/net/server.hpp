#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "xaon/aon/pipeline.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/util/metrics.hpp"

/// \file server.hpp
/// Real-network AON server: an epoll-based nonblocking TCP transport
/// terminating the HTTP connections the paper's appliance terminates
/// (its Fig. 2 / Table 3 numbers are socket-level). One acceptor thread
/// accepts on the loopback listener and hands fds round-robin to
/// per-worker event loops; each worker drives the incremental
/// `http::MessageParser` over whatever read chunks the kernel delivers,
/// supports HTTP/1.1 keep-alive pipelining, and reuses one arena-backed
/// `Pipeline::ProcessScratch` across every message it handles — the
/// parse → route → serialize path stays allocation-free at steady
/// state, same contract as the host-mode server (DESIGN.md §5b).
///
/// The forward path mirrors host mode: an optional `aon::Downstream`
/// (see `net::SocketDownstream` for the real-socket one) with the
/// bounded `ForwardPolicy` retry budget; an exhausted budget degrades
/// the one message to 502/503 and the event loop moves on. DESIGN.md
/// §"Transport" documents the connection state machine and the
/// timeout → shed mapping.

namespace xaon::net {

struct ServerConfig {
  aon::UseCase use_case = aon::UseCase::kForwardRequest;
  std::size_t workers = 2;  ///< event-loop threads (paper: one per CPU)
  /// Loopback port to bind; 0 = kernel-assigned (read it back via
  /// `Server::port()` once started).
  std::uint16_t port = 0;
  /// Capacity of each worker's acceptor→worker fd handoff ring.
  std::size_t handoff_capacity = 256;
  /// Per-read buffer; also the largest chunk the parser sees at once.
  std::size_t read_chunk = 64 * 1024;
  /// Per-message HTTP body cap (`MessageParser::set_max_body`).
  std::size_t max_body = 16 * 1024 * 1024;
  aon::Downstream* downstream = nullptr;  ///< optional next hop (not owned)
  aon::ForwardPolicy forward;
  /// Per-worker CBR structural routing cache capacity (0 disables).
  std::size_t route_cache_capacity = aon::kDefaultRouteCacheCapacity;
};

/// Merged results, valid after `stop()`. The shape mirrors
/// `aon::LoadResult` so benches emit the same JSON-line schema; the
/// transport-level counters (accepted/closed/EAGAIN/short-writes,
/// bytes in/out) ride inside `metrics` as `util::NetCounters`.
struct ServerStats {
  std::uint64_t messages = 0;        ///< requests fully parsed + processed
  std::uint64_t routed_primary = 0;
  std::uint64_t routed_error = 0;
  std::uint64_t failed = 0;          ///< HTTP/XML-level rejections
  aon::StatusBuckets status;         ///< response classes, reconciled
  std::uint64_t forward_retries = 0;
  std::uint64_t forward_failures = 0;  ///< budget exhausted on kFail (502)
  std::uint64_t forward_shed = 0;      ///< budget exhausted on kBusy (503)
  util::MetricsSnapshot metrics;
};

/// The transport server. start() binds and spawns the threads; stop()
/// tears everything down and merges per-worker state into stats().
class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();  ///< stops if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1 and starts acceptor + worker threads. False (with
  /// `*error`) on bind/listen/epoll failure.
  bool start(std::string* error = nullptr);

  /// The bound loopback port (valid after start()).
  std::uint16_t port() const;

  bool running() const;

  /// Stops accepting, closes every connection, joins all threads and
  /// merges worker state. Idempotent; returns the merged stats.
  const ServerStats& stop();

  /// Merged stats (meaningful after stop()).
  const ServerStats& stats() const;

  const ServerConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xaon::net
