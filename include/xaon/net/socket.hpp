#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "xaon/http/parser.hpp"

/// \file socket.hpp
/// Thin POSIX socket layer under the real-network transport
/// (`xaon::net`): an RAII fd, loopback listen/connect helpers, and a
/// blocking client connection for tests and the bench client fleet.
/// Everything here is loopback TCP — the paper's appliance terminates
/// real sockets, and loopback is how its Fig. 2 baseline isolates the
/// protocol stack from the physical link.

namespace xaon::net {

/// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on; false on fcntl failure.
bool set_nonblocking(int fd);

/// TCP_NODELAY on (the request/response pattern here is latency-bound;
/// Nagle would serialize the keep-alive pipeline). False on failure.
bool set_nodelay(int fd);

/// Nonblocking listener bound to 127.0.0.1:`port` (0 = kernel-assigned;
/// the bound port is written to `*bound_port`). Invalid Fd + `*error`
/// on failure.
Fd listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
              std::string* error);

/// Blocking loopback connect (client side of tests/bench).
Fd connect_tcp(std::uint16_t port, std::string* error);

/// Writes all of `data` (blocking fd; EINTR-safe). False on error.
bool write_all(int fd, std::string_view data);

/// One blocking keep-alive client connection: writes request wires,
/// reads responses through an incremental `http::ResponseParser`.
/// Response bytes beyond the current message stay buffered, so a
/// pipelined burst (N writes, then N reads) parses correctly however
/// the kernel segments the stream. The receive buffer and parser
/// capacity are retained across messages — a warm client adds nothing
/// to the per-message allocation count.
class BlockingClient {
 public:
  bool connect(std::uint16_t port, std::string* error = nullptr);
  bool connected() const { return fd_.valid(); }
  void close();

  /// Sends raw request bytes (one wire or a pipelined batch).
  bool send(std::string_view bytes);

  /// Blocks until one full response is parsed; returns its status, or
  /// -1 on EOF / socket error / parse error. `parser` is reset on
  /// entry and holds the response on return.
  int read_response(http::ResponseParser& parser);

 private:
  Fd fd_;
  std::string pending_;    ///< unconsumed response bytes
  std::size_t pos_ = 0;    ///< parse cursor into pending_
};

}  // namespace xaon::net
