#pragma once

#include <cstdint>

#include "xaon/netsim/link.hpp"
#include "xaon/netsim/tcp.hpp"

/// \file netperf.hpp
/// The netperf "TCP Stream Test" driver: netperf (client) blasts
/// buffers at netserver over one TCP stream as fast as the window,
/// link and CPUs allow — exactly the benchmark the paper baselines
/// with (Section 3.2.2, Figure 2, Table 3).

namespace xaon::netsim {

struct TcpStreamResult {
  double goodput_mbps = 0;     ///< application payload rate
  SimTime duration_ns = 0;
  std::uint64_t bytes_delivered = 0;
  TcpStats tcp;
  LinkStats data_link;
};

/// Streams `total_bytes` through a fresh simulation. `sender_cpu` /
/// `receiver_cpu` (optional) model the hosts' protocol-processing
/// capacity; pass the same resource for both to model loopback's single
/// shared machine (netperf + netserver on one host).
TcpStreamResult run_tcp_stream(const LinkConfig& link_config,
                               const TcpConfig& tcp_config,
                               std::uint64_t total_bytes,
                               CpuResource* sender_cpu = nullptr,
                               CpuResource* receiver_cpu = nullptr);

}  // namespace xaon::netsim
