#pragma once

#include <cstdint>
#include <functional>

#include "xaon/netsim/link.hpp"
#include "xaon/netsim/simulator.hpp"

/// \file tcp.hpp
/// Simplified unidirectional TCP stream: MSS segmentation, slow start
/// and congestion avoidance over a (lossless) link pair, cumulative
/// per-segment ACKs, a fixed receive window, and optional per-segment
/// CPU costs at both ends (the sender/receiver kernel path). This is
/// the machinery behind the netperf TCP_STREAM reproduction: goodput
/// converges to ~94% of a GigE link (TCP/IP + Ethernet framing
/// overhead), or to the CPU-limited rate in loopback mode — the two
/// regimes of the paper's Figure 2.

namespace xaon::netsim {

struct TcpConfig {
  std::uint32_t mss = 1460;           ///< max segment payload
  std::uint32_t header_bytes = 40;    ///< IP + TCP headers
  std::uint32_t initial_cwnd_segments = 10;
  std::uint32_t rwnd_bytes = 256 * 1024;
  /// Per-segment CPU cost at each end (kernel protocol processing), plus
  /// per-byte copy cost. Zero = infinitely fast host.
  SimTime sender_cpu_ns_per_segment = 0;
  double sender_cpu_ns_per_byte = 0;
  SimTime receiver_cpu_ns_per_segment = 0;
  double receiver_cpu_ns_per_byte = 0;
  /// Retransmission timeout for segments lost on a lossy link.
  SimTime retransmit_timeout_ns = 10'000'000;  // 10 ms
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t bytes_delivered = 0;  ///< application payload
  std::uint32_t cwnd_bytes = 0;       ///< final congestion window
};

/// One-directional data stream; the reverse link carries ACKs.
class TcpStream {
 public:
  /// `sender_cpu` / `receiver_cpu` may be nullptr (no CPU modeling) or
  /// shared across streams to model competing processes on one core.
  TcpStream(Simulator& sim, Link& data_link, Link& ack_link,
            const TcpConfig& config, CpuResource* sender_cpu = nullptr,
            CpuResource* receiver_cpu = nullptr);

  /// Appends application bytes to the send queue and starts
  /// transmitting.
  void send(std::uint64_t bytes);

  /// Fires at the receiver as payload arrives (after CPU cost).
  void set_on_deliver(std::function<void(std::uint32_t)> fn) {
    on_deliver_ = std::move(fn);
  }

  std::uint64_t delivered() const { return stats_.bytes_delivered; }
  bool idle() const { return pending_ == 0 && in_flight_ == 0; }
  const TcpStats& stats() const { return stats_; }

 private:
  void pump();
  void send_segment(std::uint32_t payload, bool is_retransmit);
  void on_segment_arrival(std::uint32_t payload);
  void on_segment_lost(std::uint32_t payload);
  void send_ack(std::uint32_t payload);
  void on_ack(std::uint32_t acked_payload);

  Simulator& sim_;
  Link& data_link_;
  Link& ack_link_;
  TcpConfig config_;
  CpuResource* sender_cpu_;
  CpuResource* receiver_cpu_;

  std::uint64_t pending_ = 0;    ///< bytes queued, not yet segmented
  std::uint64_t in_flight_ = 0;  ///< bytes sent, not yet acked
  double cwnd_ = 0;              ///< congestion window in bytes
  double ssthresh_ = 0;
  TcpStats stats_;
  std::function<void(std::uint32_t)> on_deliver_;
};

}  // namespace xaon::netsim
