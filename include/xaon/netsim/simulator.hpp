#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

/// \file simulator.hpp
/// Discrete-event simulation core. Time is in integer nanoseconds;
/// events with equal timestamps fire in scheduling order
/// (deterministic).

namespace xaon::netsim {

using SimTime = std::int64_t;  ///< nanoseconds

inline constexpr SimTime kSimTimeMax =
    std::numeric_limits<SimTime>::max();

class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, Callback fn);

  /// Schedules `fn` `delay` ns from now.
  void after(SimTime delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the earliest event; false when the queue is empty.
  bool step();

  /// Runs until the queue drains or the next event is past `until`.
  /// Returns the number of events processed.
  std::size_t run(SimTime until = kSimTimeMax);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  ///< FIFO tie-break
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A serially-used resource with a time-based acquire (a host CPU, a
/// DMA engine): requests at time `t` start at max(t, free) and occupy
/// for `cost`.
class CpuResource {
 public:
  /// Returns the completion time of work submitted at `t`.
  SimTime acquire(SimTime t, SimTime cost) {
    const SimTime start = t > busy_until_ ? t : busy_until_;
    busy_until_ = start + cost;
    busy_total_ += cost;
    return busy_until_;
  }

  SimTime busy_until() const { return busy_until_; }
  SimTime busy_total() const { return busy_total_; }
  void reset() { busy_until_ = 0; busy_total_ = 0; }

 private:
  SimTime busy_until_ = 0;
  SimTime busy_total_ = 0;
};

}  // namespace xaon::netsim
