#pragma once

#include <cstdint>
#include <functional>

#include "xaon/netsim/simulator.hpp"
#include "xaon/util/fault.hpp"

/// \file link.hpp
/// Point-to-point link: FIFO serialization at a fixed bandwidth plus
/// propagation latency. A Gigabit Ethernet instance (with per-frame
/// overhead) is the paper's end-to-end netperf substrate; a loopback
/// instance has effectively infinite bandwidth and zero latency,
/// leaving the host CPU as the bottleneck — matching the paper's two
/// netperf modes.
///
/// Links can inject deterministic faults (drop / corrupt / delay /
/// reorder), all drawn from one seeded `util::FaultInjector` stream, so
/// a faulty-wire experiment replays bit-identically from its seed.

namespace xaon::netsim {

struct LinkConfig {
  double bandwidth_bps = 1e9;   ///< serialization rate
  SimTime latency_ns = 50'000;  ///< propagation delay (50 us default)
  /// Per-frame bytes that consume wire time but not payload: Ethernet
  /// preamble(8) + header(14) + CRC(4) + interframe gap(12).
  std::uint32_t frame_overhead_bytes = 38;
  std::uint32_t mtu_bytes = 1500;  ///< max L3 payload per frame
  /// Independent per-frame drop probability (0 = lossless, the
  /// default — the paper's testbed LAN). Added to `faults.drop`; both
  /// draw from the same seeded stream.
  double loss_rate = 0.0;
  std::uint64_t loss_seed = util::FaultInjector::kDefaultSeed;
  /// Additional per-frame fault classes. A corrupted frame consumes
  /// wire time and is discarded at the receiver (frame CRC), which to
  /// the transport looks like a drop; a delayed frame arrives
  /// `extra_delay_ns` late; a reordered frame is held `reorder_hold_ns`
  /// so frames serialized after it overtake it in arrival order.
  util::FaultRates faults;
  SimTime extra_delay_ns = 200'000;   ///< added per delay fault (200 us)
  SimTime reorder_hold_ns = 500'000;  ///< hold per reorder fault (500 us)
};

struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t dropped_frames = 0;    ///< lost outright (loss_rate + drop)
  std::uint64_t corrupted_frames = 0;  ///< discarded at the receiver
  std::uint64_t delayed_frames = 0;
  std::uint64_t reordered_frames = 0;
  std::uint64_t payload_bytes = 0;  ///< excludes frame overhead
  SimTime busy_ns = 0;              ///< total serialization time

  /// Utilization over an interval.
  double utilization(SimTime interval_ns) const {
    return interval_ns <= 0 ? 0.0
                            : static_cast<double>(busy_ns) /
                                  static_cast<double>(interval_ns);
  }
};

class Link {
 public:
  using DeliverFn = std::function<void(std::uint32_t bytes)>;

  Link(Simulator& sim, const LinkConfig& config)
      : sim_(sim),
        config_(config),
        injector_(effective_rates(config), config.loss_seed) {}

  /// Queues one frame of `bytes` L3 payload (must be <= MTU). The
  /// callback fires at the receiver after serialization + latency.
  /// A lost or corrupted frame consumes wire time but never delivers;
  /// `dropped` (optional) fires at the would-be arrival time instead —
  /// transports use it to model their retransmission timers.
  void transmit(std::uint32_t bytes, DeliverFn deliver,
                DeliverFn dropped = nullptr);

  const LinkConfig& config() const { return config_; }
  const LinkStats& stats() const { return stats_; }
  const util::FaultInjector& fault_injector() const { return injector_; }
  void reset_stats() { stats_ = LinkStats{}; }

  /// Gigabit Ethernet preset.
  static LinkConfig gigabit_ethernet() { return LinkConfig{}; }

  /// Loopback preset: 100 Gbps, 1 us, no frame overhead (the kernel
  /// copies; the CPU resource models its cost).
  static LinkConfig loopback() {
    LinkConfig c;
    c.bandwidth_bps = 100e9;
    c.latency_ns = 1'000;
    c.frame_overhead_bytes = 0;
    c.mtu_bytes = 65536;
    return c;
  }

 private:
  /// loss_rate is legacy sugar for faults.drop; both feed one stream.
  static util::FaultRates effective_rates(const LinkConfig& config) {
    util::FaultRates rates = config.faults;
    rates.drop += config.loss_rate;
    return rates;
  }

  Simulator& sim_;
  LinkConfig config_;
  LinkStats stats_;
  SimTime tx_free_ns_ = 0;  ///< when the transmitter becomes idle
  util::FaultInjector injector_;  ///< per-frame fault decisions
};

}  // namespace xaon::netsim
