
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/builder.cpp" "src/xml/CMakeFiles/xaon_xml.dir/builder.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/builder.cpp.o.d"
  "/root/repo/src/xml/chars.cpp" "src/xml/CMakeFiles/xaon_xml.dir/chars.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/chars.cpp.o.d"
  "/root/repo/src/xml/dom.cpp" "src/xml/CMakeFiles/xaon_xml.dir/dom.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/dom.cpp.o.d"
  "/root/repo/src/xml/error.cpp" "src/xml/CMakeFiles/xaon_xml.dir/error.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/error.cpp.o.d"
  "/root/repo/src/xml/parser.cpp" "src/xml/CMakeFiles/xaon_xml.dir/parser.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/parser.cpp.o.d"
  "/root/repo/src/xml/parser_core.cpp" "src/xml/CMakeFiles/xaon_xml.dir/parser_core.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/parser_core.cpp.o.d"
  "/root/repo/src/xml/sax.cpp" "src/xml/CMakeFiles/xaon_xml.dir/sax.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/sax.cpp.o.d"
  "/root/repo/src/xml/writer.cpp" "src/xml/CMakeFiles/xaon_xml.dir/writer.cpp.o" "gcc" "src/xml/CMakeFiles/xaon_xml.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
