file(REMOVE_RECURSE
  "CMakeFiles/xaon_xml.dir/builder.cpp.o"
  "CMakeFiles/xaon_xml.dir/builder.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/chars.cpp.o"
  "CMakeFiles/xaon_xml.dir/chars.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/dom.cpp.o"
  "CMakeFiles/xaon_xml.dir/dom.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/error.cpp.o"
  "CMakeFiles/xaon_xml.dir/error.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/parser.cpp.o"
  "CMakeFiles/xaon_xml.dir/parser.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/parser_core.cpp.o"
  "CMakeFiles/xaon_xml.dir/parser_core.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/sax.cpp.o"
  "CMakeFiles/xaon_xml.dir/sax.cpp.o.d"
  "CMakeFiles/xaon_xml.dir/writer.cpp.o"
  "CMakeFiles/xaon_xml.dir/writer.cpp.o.d"
  "libxaon_xml.a"
  "libxaon_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
