# Empty dependencies file for xaon_xml.
# This may be replaced when dependencies are built.
