file(REMOVE_RECURSE
  "libxaon_xml.a"
)
