file(REMOVE_RECURSE
  "CMakeFiles/xaon_uarch.dir/cache.cpp.o"
  "CMakeFiles/xaon_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/counters.cpp.o"
  "CMakeFiles/xaon_uarch.dir/counters.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/platform.cpp.o"
  "CMakeFiles/xaon_uarch.dir/platform.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/predictor.cpp.o"
  "CMakeFiles/xaon_uarch.dir/predictor.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/prefetch.cpp.o"
  "CMakeFiles/xaon_uarch.dir/prefetch.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/system.cpp.o"
  "CMakeFiles/xaon_uarch.dir/system.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/trace.cpp.o"
  "CMakeFiles/xaon_uarch.dir/trace.cpp.o.d"
  "CMakeFiles/xaon_uarch.dir/trace_io.cpp.o"
  "CMakeFiles/xaon_uarch.dir/trace_io.cpp.o.d"
  "libxaon_uarch.a"
  "libxaon_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
