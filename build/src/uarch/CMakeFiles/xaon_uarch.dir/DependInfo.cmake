
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/counters.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/counters.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/counters.cpp.o.d"
  "/root/repo/src/uarch/platform.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/platform.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/platform.cpp.o.d"
  "/root/repo/src/uarch/predictor.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/predictor.cpp.o.d"
  "/root/repo/src/uarch/prefetch.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/prefetch.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/prefetch.cpp.o.d"
  "/root/repo/src/uarch/system.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/system.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/system.cpp.o.d"
  "/root/repo/src/uarch/trace.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/trace.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/trace.cpp.o.d"
  "/root/repo/src/uarch/trace_io.cpp" "src/uarch/CMakeFiles/xaon_uarch.dir/trace_io.cpp.o" "gcc" "src/uarch/CMakeFiles/xaon_uarch.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
