file(REMOVE_RECURSE
  "libxaon_uarch.a"
)
