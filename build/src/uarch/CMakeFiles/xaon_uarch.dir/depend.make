# Empty dependencies file for xaon_uarch.
# This may be replaced when dependencies are built.
