# Empty dependencies file for xaon_perf.
# This may be replaced when dependencies are built.
