file(REMOVE_RECURSE
  "libxaon_perf.a"
)
