file(REMOVE_RECURSE
  "CMakeFiles/xaon_perf.dir/experiment.cpp.o"
  "CMakeFiles/xaon_perf.dir/experiment.cpp.o.d"
  "CMakeFiles/xaon_perf.dir/report.cpp.o"
  "CMakeFiles/xaon_perf.dir/report.cpp.o.d"
  "libxaon_perf.a"
  "libxaon_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
