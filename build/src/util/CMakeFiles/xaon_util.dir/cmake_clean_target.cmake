file(REMOVE_RECURSE
  "libxaon_util.a"
)
