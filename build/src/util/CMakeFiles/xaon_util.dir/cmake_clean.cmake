file(REMOVE_RECURSE
  "CMakeFiles/xaon_util.dir/arena.cpp.o"
  "CMakeFiles/xaon_util.dir/arena.cpp.o.d"
  "CMakeFiles/xaon_util.dir/flags.cpp.o"
  "CMakeFiles/xaon_util.dir/flags.cpp.o.d"
  "CMakeFiles/xaon_util.dir/probe.cpp.o"
  "CMakeFiles/xaon_util.dir/probe.cpp.o.d"
  "CMakeFiles/xaon_util.dir/stats.cpp.o"
  "CMakeFiles/xaon_util.dir/stats.cpp.o.d"
  "CMakeFiles/xaon_util.dir/str.cpp.o"
  "CMakeFiles/xaon_util.dir/str.cpp.o.d"
  "CMakeFiles/xaon_util.dir/table.cpp.o"
  "CMakeFiles/xaon_util.dir/table.cpp.o.d"
  "CMakeFiles/xaon_util.dir/thread_pool.cpp.o"
  "CMakeFiles/xaon_util.dir/thread_pool.cpp.o.d"
  "libxaon_util.a"
  "libxaon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
