# Empty compiler generated dependencies file for xaon_util.
# This may be replaced when dependencies are built.
