file(REMOVE_RECURSE
  "libxaon_crypto.a"
)
