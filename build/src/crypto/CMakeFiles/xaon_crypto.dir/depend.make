# Empty dependencies file for xaon_crypto.
# This may be replaced when dependencies are built.
