file(REMOVE_RECURSE
  "CMakeFiles/xaon_crypto.dir/sha1.cpp.o"
  "CMakeFiles/xaon_crypto.dir/sha1.cpp.o.d"
  "libxaon_crypto.a"
  "libxaon_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
