file(REMOVE_RECURSE
  "CMakeFiles/xaon_netsim.dir/link.cpp.o"
  "CMakeFiles/xaon_netsim.dir/link.cpp.o.d"
  "CMakeFiles/xaon_netsim.dir/netperf.cpp.o"
  "CMakeFiles/xaon_netsim.dir/netperf.cpp.o.d"
  "CMakeFiles/xaon_netsim.dir/simulator.cpp.o"
  "CMakeFiles/xaon_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/xaon_netsim.dir/tcp.cpp.o"
  "CMakeFiles/xaon_netsim.dir/tcp.cpp.o.d"
  "libxaon_netsim.a"
  "libxaon_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
