# Empty compiler generated dependencies file for xaon_netsim.
# This may be replaced when dependencies are built.
