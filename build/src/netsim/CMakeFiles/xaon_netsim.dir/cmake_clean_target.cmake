file(REMOVE_RECURSE
  "libxaon_netsim.a"
)
