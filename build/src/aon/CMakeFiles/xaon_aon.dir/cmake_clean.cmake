file(REMOVE_RECURSE
  "CMakeFiles/xaon_aon.dir/capture.cpp.o"
  "CMakeFiles/xaon_aon.dir/capture.cpp.o.d"
  "CMakeFiles/xaon_aon.dir/messages.cpp.o"
  "CMakeFiles/xaon_aon.dir/messages.cpp.o.d"
  "CMakeFiles/xaon_aon.dir/pipeline.cpp.o"
  "CMakeFiles/xaon_aon.dir/pipeline.cpp.o.d"
  "CMakeFiles/xaon_aon.dir/server.cpp.o"
  "CMakeFiles/xaon_aon.dir/server.cpp.o.d"
  "libxaon_aon.a"
  "libxaon_aon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_aon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
