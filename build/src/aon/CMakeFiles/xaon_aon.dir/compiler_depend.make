# Empty compiler generated dependencies file for xaon_aon.
# This may be replaced when dependencies are built.
