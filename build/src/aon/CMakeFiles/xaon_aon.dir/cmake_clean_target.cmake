file(REMOVE_RECURSE
  "libxaon_aon.a"
)
