file(REMOVE_RECURSE
  "CMakeFiles/xaon_wload.dir/netperf_traces.cpp.o"
  "CMakeFiles/xaon_wload.dir/netperf_traces.cpp.o.d"
  "CMakeFiles/xaon_wload.dir/recorder.cpp.o"
  "CMakeFiles/xaon_wload.dir/recorder.cpp.o.d"
  "CMakeFiles/xaon_wload.dir/synth.cpp.o"
  "CMakeFiles/xaon_wload.dir/synth.cpp.o.d"
  "libxaon_wload.a"
  "libxaon_wload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_wload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
