# Empty dependencies file for xaon_wload.
# This may be replaced when dependencies are built.
