file(REMOVE_RECURSE
  "libxaon_wload.a"
)
