
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wload/netperf_traces.cpp" "src/wload/CMakeFiles/xaon_wload.dir/netperf_traces.cpp.o" "gcc" "src/wload/CMakeFiles/xaon_wload.dir/netperf_traces.cpp.o.d"
  "/root/repo/src/wload/recorder.cpp" "src/wload/CMakeFiles/xaon_wload.dir/recorder.cpp.o" "gcc" "src/wload/CMakeFiles/xaon_wload.dir/recorder.cpp.o.d"
  "/root/repo/src/wload/synth.cpp" "src/wload/CMakeFiles/xaon_wload.dir/synth.cpp.o" "gcc" "src/wload/CMakeFiles/xaon_wload.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/xaon_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
