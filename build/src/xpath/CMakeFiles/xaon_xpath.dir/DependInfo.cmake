
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/compile.cpp" "src/xpath/CMakeFiles/xaon_xpath.dir/compile.cpp.o" "gcc" "src/xpath/CMakeFiles/xaon_xpath.dir/compile.cpp.o.d"
  "/root/repo/src/xpath/eval.cpp" "src/xpath/CMakeFiles/xaon_xpath.dir/eval.cpp.o" "gcc" "src/xpath/CMakeFiles/xaon_xpath.dir/eval.cpp.o.d"
  "/root/repo/src/xpath/lexer.cpp" "src/xpath/CMakeFiles/xaon_xpath.dir/lexer.cpp.o" "gcc" "src/xpath/CMakeFiles/xaon_xpath.dir/lexer.cpp.o.d"
  "/root/repo/src/xpath/value.cpp" "src/xpath/CMakeFiles/xaon_xpath.dir/value.cpp.o" "gcc" "src/xpath/CMakeFiles/xaon_xpath.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/xaon_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
