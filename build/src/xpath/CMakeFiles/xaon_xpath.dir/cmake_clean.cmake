file(REMOVE_RECURSE
  "CMakeFiles/xaon_xpath.dir/compile.cpp.o"
  "CMakeFiles/xaon_xpath.dir/compile.cpp.o.d"
  "CMakeFiles/xaon_xpath.dir/eval.cpp.o"
  "CMakeFiles/xaon_xpath.dir/eval.cpp.o.d"
  "CMakeFiles/xaon_xpath.dir/lexer.cpp.o"
  "CMakeFiles/xaon_xpath.dir/lexer.cpp.o.d"
  "CMakeFiles/xaon_xpath.dir/value.cpp.o"
  "CMakeFiles/xaon_xpath.dir/value.cpp.o.d"
  "libxaon_xpath.a"
  "libxaon_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
