# Empty compiler generated dependencies file for xaon_xpath.
# This may be replaced when dependencies are built.
