file(REMOVE_RECURSE
  "libxaon_xpath.a"
)
