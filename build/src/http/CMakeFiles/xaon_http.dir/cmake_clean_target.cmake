file(REMOVE_RECURSE
  "libxaon_http.a"
)
