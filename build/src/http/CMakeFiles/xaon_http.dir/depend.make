# Empty dependencies file for xaon_http.
# This may be replaced when dependencies are built.
