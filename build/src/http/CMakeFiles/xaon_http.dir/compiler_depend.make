# Empty compiler generated dependencies file for xaon_http.
# This may be replaced when dependencies are built.
