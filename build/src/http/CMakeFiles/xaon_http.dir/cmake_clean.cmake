file(REMOVE_RECURSE
  "CMakeFiles/xaon_http.dir/message.cpp.o"
  "CMakeFiles/xaon_http.dir/message.cpp.o.d"
  "CMakeFiles/xaon_http.dir/parser.cpp.o"
  "CMakeFiles/xaon_http.dir/parser.cpp.o.d"
  "libxaon_http.a"
  "libxaon_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
