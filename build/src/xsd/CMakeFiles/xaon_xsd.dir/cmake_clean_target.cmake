file(REMOVE_RECURSE
  "libxaon_xsd.a"
)
