
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsd/automaton.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/automaton.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/automaton.cpp.o.d"
  "/root/repo/src/xsd/loader.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/loader.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/loader.cpp.o.d"
  "/root/repo/src/xsd/model.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/model.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/model.cpp.o.d"
  "/root/repo/src/xsd/regex.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/regex.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/regex.cpp.o.d"
  "/root/repo/src/xsd/types.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/types.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/types.cpp.o.d"
  "/root/repo/src/xsd/validator.cpp" "src/xsd/CMakeFiles/xaon_xsd.dir/validator.cpp.o" "gcc" "src/xsd/CMakeFiles/xaon_xsd.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/xaon_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
