# Empty compiler generated dependencies file for xaon_xsd.
# This may be replaced when dependencies are built.
