file(REMOVE_RECURSE
  "CMakeFiles/xaon_xsd.dir/automaton.cpp.o"
  "CMakeFiles/xaon_xsd.dir/automaton.cpp.o.d"
  "CMakeFiles/xaon_xsd.dir/loader.cpp.o"
  "CMakeFiles/xaon_xsd.dir/loader.cpp.o.d"
  "CMakeFiles/xaon_xsd.dir/model.cpp.o"
  "CMakeFiles/xaon_xsd.dir/model.cpp.o.d"
  "CMakeFiles/xaon_xsd.dir/regex.cpp.o"
  "CMakeFiles/xaon_xsd.dir/regex.cpp.o.d"
  "CMakeFiles/xaon_xsd.dir/types.cpp.o"
  "CMakeFiles/xaon_xsd.dir/types.cpp.o.d"
  "CMakeFiles/xaon_xsd.dir/validator.cpp.o"
  "CMakeFiles/xaon_xsd.dir/validator.cpp.o.d"
  "libxaon_xsd.a"
  "libxaon_xsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaon_xsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
