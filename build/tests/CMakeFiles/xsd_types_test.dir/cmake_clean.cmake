file(REMOVE_RECURSE
  "CMakeFiles/xsd_types_test.dir/xsd_types_test.cpp.o"
  "CMakeFiles/xsd_types_test.dir/xsd_types_test.cpp.o.d"
  "xsd_types_test"
  "xsd_types_test.pdb"
  "xsd_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
