# Empty dependencies file for netsim_loss_test.
# This may be replaced when dependencies are built.
