file(REMOVE_RECURSE
  "CMakeFiles/netsim_loss_test.dir/netsim_loss_test.cpp.o"
  "CMakeFiles/netsim_loss_test.dir/netsim_loss_test.cpp.o.d"
  "netsim_loss_test"
  "netsim_loss_test.pdb"
  "netsim_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
