file(REMOVE_RECURSE
  "CMakeFiles/wload_traces_test.dir/wload_traces_test.cpp.o"
  "CMakeFiles/wload_traces_test.dir/wload_traces_test.cpp.o.d"
  "wload_traces_test"
  "wload_traces_test.pdb"
  "wload_traces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wload_traces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
