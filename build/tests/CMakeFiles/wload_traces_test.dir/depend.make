# Empty dependencies file for wload_traces_test.
# This may be replaced when dependencies are built.
