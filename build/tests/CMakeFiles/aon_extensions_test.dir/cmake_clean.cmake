file(REMOVE_RECURSE
  "CMakeFiles/aon_extensions_test.dir/aon_extensions_test.cpp.o"
  "CMakeFiles/aon_extensions_test.dir/aon_extensions_test.cpp.o.d"
  "aon_extensions_test"
  "aon_extensions_test.pdb"
  "aon_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
