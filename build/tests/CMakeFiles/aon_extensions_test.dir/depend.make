# Empty dependencies file for aon_extensions_test.
# This may be replaced when dependencies are built.
