file(REMOVE_RECURSE
  "CMakeFiles/xml_sax_test.dir/xml_sax_test.cpp.o"
  "CMakeFiles/xml_sax_test.dir/xml_sax_test.cpp.o.d"
  "xml_sax_test"
  "xml_sax_test.pdb"
  "xml_sax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_sax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
