# Empty compiler generated dependencies file for xml_sax_test.
# This may be replaced when dependencies are built.
