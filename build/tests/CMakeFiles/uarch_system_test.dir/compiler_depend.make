# Empty compiler generated dependencies file for uarch_system_test.
# This may be replaced when dependencies are built.
