file(REMOVE_RECURSE
  "CMakeFiles/uarch_system_test.dir/uarch_system_test.cpp.o"
  "CMakeFiles/uarch_system_test.dir/uarch_system_test.cpp.o.d"
  "uarch_system_test"
  "uarch_system_test.pdb"
  "uarch_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
