# Empty compiler generated dependencies file for aon_messages_test.
# This may be replaced when dependencies are built.
