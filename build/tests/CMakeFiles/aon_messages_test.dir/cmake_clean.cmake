file(REMOVE_RECURSE
  "CMakeFiles/aon_messages_test.dir/aon_messages_test.cpp.o"
  "CMakeFiles/aon_messages_test.dir/aon_messages_test.cpp.o.d"
  "aon_messages_test"
  "aon_messages_test.pdb"
  "aon_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
