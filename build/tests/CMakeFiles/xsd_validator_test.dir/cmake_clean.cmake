file(REMOVE_RECURSE
  "CMakeFiles/xsd_validator_test.dir/xsd_validator_test.cpp.o"
  "CMakeFiles/xsd_validator_test.dir/xsd_validator_test.cpp.o.d"
  "xsd_validator_test"
  "xsd_validator_test.pdb"
  "xsd_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
