
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xsd_validator_test.cpp" "tests/CMakeFiles/xsd_validator_test.dir/xsd_validator_test.cpp.o" "gcc" "tests/CMakeFiles/xsd_validator_test.dir/xsd_validator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xsd/CMakeFiles/xaon_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xaon_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
