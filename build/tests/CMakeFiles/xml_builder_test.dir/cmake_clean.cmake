file(REMOVE_RECURSE
  "CMakeFiles/xml_builder_test.dir/xml_builder_test.cpp.o"
  "CMakeFiles/xml_builder_test.dir/xml_builder_test.cpp.o.d"
  "xml_builder_test"
  "xml_builder_test.pdb"
  "xml_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
