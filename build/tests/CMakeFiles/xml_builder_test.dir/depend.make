# Empty dependencies file for xml_builder_test.
# This may be replaced when dependencies are built.
