file(REMOVE_RECURSE
  "CMakeFiles/xsd_loader_test.dir/xsd_loader_test.cpp.o"
  "CMakeFiles/xsd_loader_test.dir/xsd_loader_test.cpp.o.d"
  "xsd_loader_test"
  "xsd_loader_test.pdb"
  "xsd_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
