# Empty dependencies file for xsd_loader_test.
# This may be replaced when dependencies are built.
