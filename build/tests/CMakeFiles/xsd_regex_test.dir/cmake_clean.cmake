file(REMOVE_RECURSE
  "CMakeFiles/xsd_regex_test.dir/xsd_regex_test.cpp.o"
  "CMakeFiles/xsd_regex_test.dir/xsd_regex_test.cpp.o.d"
  "xsd_regex_test"
  "xsd_regex_test.pdb"
  "xsd_regex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
