# Empty dependencies file for xsd_regex_test.
# This may be replaced when dependencies are built.
