file(REMOVE_RECURSE
  "CMakeFiles/uarch_trace_io_test.dir/uarch_trace_io_test.cpp.o"
  "CMakeFiles/uarch_trace_io_test.dir/uarch_trace_io_test.cpp.o.d"
  "uarch_trace_io_test"
  "uarch_trace_io_test.pdb"
  "uarch_trace_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
