# Empty dependencies file for uarch_trace_io_test.
# This may be replaced when dependencies are built.
