file(REMOVE_RECURSE
  "CMakeFiles/perf_experiment_test.dir/perf_experiment_test.cpp.o"
  "CMakeFiles/perf_experiment_test.dir/perf_experiment_test.cpp.o.d"
  "perf_experiment_test"
  "perf_experiment_test.pdb"
  "perf_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
