# Empty dependencies file for perf_experiment_test.
# This may be replaced when dependencies are built.
