# Empty dependencies file for util_probe_test.
# This may be replaced when dependencies are built.
