file(REMOVE_RECURSE
  "CMakeFiles/util_probe_test.dir/util_probe_test.cpp.o"
  "CMakeFiles/util_probe_test.dir/util_probe_test.cpp.o.d"
  "util_probe_test"
  "util_probe_test.pdb"
  "util_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
