# Empty dependencies file for aon_capture_test.
# This may be replaced when dependencies are built.
