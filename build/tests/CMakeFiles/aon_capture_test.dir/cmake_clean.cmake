file(REMOVE_RECURSE
  "CMakeFiles/aon_capture_test.dir/aon_capture_test.cpp.o"
  "CMakeFiles/aon_capture_test.dir/aon_capture_test.cpp.o.d"
  "aon_capture_test"
  "aon_capture_test.pdb"
  "aon_capture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
