# Empty dependencies file for aon_pipeline_test.
# This may be replaced when dependencies are built.
