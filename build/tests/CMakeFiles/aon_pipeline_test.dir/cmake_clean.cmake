file(REMOVE_RECURSE
  "CMakeFiles/aon_pipeline_test.dir/aon_pipeline_test.cpp.o"
  "CMakeFiles/aon_pipeline_test.dir/aon_pipeline_test.cpp.o.d"
  "aon_pipeline_test"
  "aon_pipeline_test.pdb"
  "aon_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
