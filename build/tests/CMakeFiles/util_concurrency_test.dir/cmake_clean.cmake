file(REMOVE_RECURSE
  "CMakeFiles/util_concurrency_test.dir/util_concurrency_test.cpp.o"
  "CMakeFiles/util_concurrency_test.dir/util_concurrency_test.cpp.o.d"
  "util_concurrency_test"
  "util_concurrency_test.pdb"
  "util_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
