file(REMOVE_RECURSE
  "CMakeFiles/aon_server_test.dir/aon_server_test.cpp.o"
  "CMakeFiles/aon_server_test.dir/aon_server_test.cpp.o.d"
  "aon_server_test"
  "aon_server_test.pdb"
  "aon_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
