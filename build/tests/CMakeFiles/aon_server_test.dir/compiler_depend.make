# Empty compiler generated dependencies file for aon_server_test.
# This may be replaced when dependencies are built.
