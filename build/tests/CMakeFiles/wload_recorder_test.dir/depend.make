# Empty dependencies file for wload_recorder_test.
# This may be replaced when dependencies are built.
