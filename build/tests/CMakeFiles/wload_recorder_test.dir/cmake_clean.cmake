file(REMOVE_RECURSE
  "CMakeFiles/wload_recorder_test.dir/wload_recorder_test.cpp.o"
  "CMakeFiles/wload_recorder_test.dir/wload_recorder_test.cpp.o.d"
  "wload_recorder_test"
  "wload_recorder_test.pdb"
  "wload_recorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wload_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
