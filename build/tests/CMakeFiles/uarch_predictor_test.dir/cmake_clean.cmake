file(REMOVE_RECURSE
  "CMakeFiles/uarch_predictor_test.dir/uarch_predictor_test.cpp.o"
  "CMakeFiles/uarch_predictor_test.dir/uarch_predictor_test.cpp.o.d"
  "uarch_predictor_test"
  "uarch_predictor_test.pdb"
  "uarch_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
