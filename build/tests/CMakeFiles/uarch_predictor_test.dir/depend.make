# Empty dependencies file for uarch_predictor_test.
# This may be replaced when dependencies are built.
