file(REMOVE_RECURSE
  "CMakeFiles/uarch_prefetch_test.dir/uarch_prefetch_test.cpp.o"
  "CMakeFiles/uarch_prefetch_test.dir/uarch_prefetch_test.cpp.o.d"
  "uarch_prefetch_test"
  "uarch_prefetch_test.pdb"
  "uarch_prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
