file(REMOVE_RECURSE
  "CMakeFiles/netperf_sim.dir/netperf_sim.cpp.o"
  "CMakeFiles/netperf_sim.dir/netperf_sim.cpp.o.d"
  "netperf_sim"
  "netperf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netperf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
