# Empty dependencies file for netperf_sim.
# This may be replaced when dependencies are built.
