file(REMOVE_RECURSE
  "CMakeFiles/aon_gateway.dir/aon_gateway.cpp.o"
  "CMakeFiles/aon_gateway.dir/aon_gateway.cpp.o.d"
  "aon_gateway"
  "aon_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aon_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
