
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/aon_gateway.cpp" "examples/CMakeFiles/aon_gateway.dir/aon_gateway.cpp.o" "gcc" "examples/CMakeFiles/aon_gateway.dir/aon_gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/xaon_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/aon/CMakeFiles/xaon_aon.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/xaon_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/wload/CMakeFiles/xaon_wload.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/xaon_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/xaon_http.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/xaon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/xaon_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xaon_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xaon_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xaon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
