# Empty compiler generated dependencies file for aon_gateway.
# This may be replaced when dependencies are built.
