file(REMOVE_RECURSE
  "../bench/fig4_l2mpi"
  "../bench/fig4_l2mpi.pdb"
  "CMakeFiles/fig4_l2mpi.dir/fig4_l2mpi.cpp.o"
  "CMakeFiles/fig4_l2mpi.dir/fig4_l2mpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_l2mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
