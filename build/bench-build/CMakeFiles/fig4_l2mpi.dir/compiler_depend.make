# Empty compiler generated dependencies file for fig4_l2mpi.
# This may be replaced when dependencies are built.
