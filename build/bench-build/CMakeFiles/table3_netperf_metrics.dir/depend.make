# Empty dependencies file for table3_netperf_metrics.
# This may be replaced when dependencies are built.
