file(REMOVE_RECURSE
  "../bench/table3_netperf_metrics"
  "../bench/table3_netperf_metrics.pdb"
  "CMakeFiles/table3_netperf_metrics.dir/table3_netperf_metrics.cpp.o"
  "CMakeFiles/table3_netperf_metrics.dir/table3_netperf_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_netperf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
