# Empty dependencies file for table4_cpi.
# This may be replaced when dependencies are built.
