file(REMOVE_RECURSE
  "../bench/table4_cpi"
  "../bench/table4_cpi.pdb"
  "CMakeFiles/table4_cpi.dir/table4_cpi.cpp.o"
  "CMakeFiles/table4_cpi.dir/table4_cpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
