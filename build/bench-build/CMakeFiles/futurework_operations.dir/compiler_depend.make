# Empty compiler generated dependencies file for futurework_operations.
# This may be replaced when dependencies are built.
