file(REMOVE_RECURSE
  "../bench/futurework_operations"
  "../bench/futurework_operations.pdb"
  "CMakeFiles/futurework_operations.dir/futurework_operations.cpp.o"
  "CMakeFiles/futurework_operations.dir/futurework_operations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
