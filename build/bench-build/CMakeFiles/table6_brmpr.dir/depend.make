# Empty dependencies file for table6_brmpr.
# This may be replaced when dependencies are built.
