file(REMOVE_RECURSE
  "../bench/table6_brmpr"
  "../bench/table6_brmpr.pdb"
  "CMakeFiles/table6_brmpr.dir/table6_brmpr.cpp.o"
  "CMakeFiles/table6_brmpr.dir/table6_brmpr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_brmpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
