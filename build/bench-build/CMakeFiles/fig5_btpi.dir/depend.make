# Empty dependencies file for fig5_btpi.
# This may be replaced when dependencies are built.
