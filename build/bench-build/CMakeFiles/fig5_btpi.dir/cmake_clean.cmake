file(REMOVE_RECURSE
  "../bench/fig5_btpi"
  "../bench/fig5_btpi.pdb"
  "CMakeFiles/fig5_btpi.dir/fig5_btpi.cpp.o"
  "CMakeFiles/fig5_btpi.dir/fig5_btpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_btpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
