# Empty dependencies file for table5_branch_frequency.
# This may be replaced when dependencies are built.
