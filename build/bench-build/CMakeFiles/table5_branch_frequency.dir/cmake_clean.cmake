file(REMOVE_RECURSE
  "../bench/table5_branch_frequency"
  "../bench/table5_branch_frequency.pdb"
  "CMakeFiles/table5_branch_frequency.dir/table5_branch_frequency.cpp.o"
  "CMakeFiles/table5_branch_frequency.dir/table5_branch_frequency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_branch_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
