file(REMOVE_RECURSE
  "../bench/ablation_smt_predictor"
  "../bench/ablation_smt_predictor.pdb"
  "CMakeFiles/ablation_smt_predictor.dir/ablation_smt_predictor.cpp.o"
  "CMakeFiles/ablation_smt_predictor.dir/ablation_smt_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smt_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
