# Empty dependencies file for ablation_smt_predictor.
# This may be replaced when dependencies are built.
