file(REMOVE_RECURSE
  "../bench/ablation_shared_l2"
  "../bench/ablation_shared_l2.pdb"
  "CMakeFiles/ablation_shared_l2.dir/ablation_shared_l2.cpp.o"
  "CMakeFiles/ablation_shared_l2.dir/ablation_shared_l2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
