file(REMOVE_RECURSE
  "../bench/fig3_scaling"
  "../bench/fig3_scaling.pdb"
  "CMakeFiles/fig3_scaling.dir/fig3_scaling.cpp.o"
  "CMakeFiles/fig3_scaling.dir/fig3_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
