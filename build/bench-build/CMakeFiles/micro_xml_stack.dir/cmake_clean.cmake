file(REMOVE_RECURSE
  "../bench/micro_xml_stack"
  "../bench/micro_xml_stack.pdb"
  "CMakeFiles/micro_xml_stack.dir/micro_xml_stack.cpp.o"
  "CMakeFiles/micro_xml_stack.dir/micro_xml_stack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_xml_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
