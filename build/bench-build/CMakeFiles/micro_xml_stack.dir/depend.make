# Empty dependencies file for micro_xml_stack.
# This may be replaced when dependencies are built.
