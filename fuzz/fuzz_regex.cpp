// libFuzzer harness for xsd::Regex compile+match (see targets.hpp).

#include <cstdint>

#include "targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  xaon::fuzz::one_regex(
      {reinterpret_cast<const char*>(data), size});
  return 0;
}
