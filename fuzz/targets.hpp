#pragma once

/// \file targets.hpp
/// Shared fuzz entry points. Each function drives one parser subsystem
/// with arbitrary bytes and checks only internal invariants — the
/// contract under fuzzing is "no crash, no hang, coherent result
/// state", never a specific parse outcome.
///
/// Two consumers share these entries so findings reproduce in both:
///   * the libFuzzer harnesses under fuzz/ (XAON_FUZZ=ON, Clang), and
///   * tests/fuzz_replay_test.cpp, which replays the checked-in corpus
///     under the regular toolchain on every ctest run (label `fuzz`).

#include <cstddef>
#include <string>
#include <string_view>

#include "xaon/http/parser.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xml/sax.hpp"
#include "xaon/xsd/regex.hpp"

namespace xaon::fuzz {

/// DOM and SAX parse of arbitrary bytes. Hardening limits are dialed
/// low so rejection paths (depth/attr/entity budgets) are reached with
/// small inputs.
inline void one_xml(std::string_view input) {
  xml::ParseOptions opt;
  opt.max_depth = 128;
  opt.max_attributes = 64;
  opt.max_entity_expansions = 4096;

  const xml::ParseResult dom = xml::parse(input, opt);
  if (!dom.ok && dom.error.code == xml::ErrorCode::kNone) __builtin_trap();

  class Null : public xml::SaxHandler {
   public:
    bool on_start_element(std::string_view, std::string_view,
                          std::string_view, const xml::SaxAttr*,
                          std::size_t) override {
      return true;
    }
    bool on_end_element(std::string_view, std::string_view,
                        std::string_view) override {
      return true;
    }
    bool on_text(std::string_view, bool) override { return true; }
  } handler;
  const xml::SaxResult sax = xml::parse_sax(input, handler, opt);

  // Both front ends run the same core grammar; they must agree on
  // accept/reject for identical options.
  if (dom.ok != sax.ok) __builtin_trap();
}

/// HTTP request + response parsers, fed incrementally (split at the
/// midpoint) to exercise the resumable state machine, with small
/// hardening limits.
inline void one_http(std::string_view input) {
  http::RequestParser req;
  req.set_max_body(1 << 20);
  req.set_max_header_count(32);
  req.set_max_header_bytes(16 * 1024);
  const std::size_t cut = input.size() / 2;
  req.feed(input.substr(0, cut));
  if (!req.done() && !req.failed()) req.feed(input.substr(cut));
  if (req.done() && req.failed()) __builtin_trap();
  if (req.failed() && req.error_code() == http::ParseError::kNone)
    __builtin_trap();

  http::ResponseParser resp;
  resp.set_max_body(1 << 20);
  resp.feed(input);
  if (resp.done() && resp.failed()) __builtin_trap();
}

/// XSD regex: input is "pattern\ntext". Compile must either produce a
/// valid program or report an error, and matching a valid program must
/// terminate (linear-time Pike VM — no pathological backtracking).
inline void one_regex(std::string_view input) {
  const std::size_t nl = input.find('\n');
  const std::string_view pattern =
      input.substr(0, nl == std::string_view::npos ? input.size() : nl);
  const std::string_view text =
      nl == std::string_view::npos ? std::string_view{}
                                   : input.substr(nl + 1);
  if (pattern.size() > 256) return;  // bound {n,m} program blow-up

  std::string error;
  const xsd::Regex re = xsd::Regex::compile(pattern, &error);
  if (!re.valid() && error.empty()) __builtin_trap();
  if (re.valid()) {
    re.match(text);
    re.search(text.substr(0, text.size() < 1024 ? text.size() : 1024));
  }
}

}  // namespace xaon::fuzz
