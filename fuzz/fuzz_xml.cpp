// libFuzzer harness for xml::parse / xml::parse_sax (see targets.hpp).

#include <cstdint>

#include "targets.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  xaon::fuzz::one_xml(
      {reinterpret_cast<const char*>(data), size});
  return 0;
}
