// Reproduces Table 3: microarchitectural metrics for netperf in
// loopback and end-to-end modes.

#include "bench_common.hpp"

using namespace xaon;

namespace {

void print_mode(const perf::WorkloadResults& results,
                const double paper_cpi[5], const double paper_brf[5],
                const double paper_brmpr[5]) {
  util::TextTable table("Table 3: " + results.workload);
  table.set_header({"Metric", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx"});
  table.set_tsv(true);
  auto add_metric = [&](const char* name, auto fn, int precision) {
    std::vector<std::string> row{name};
    for (const auto& r : results.runs) {
      row.push_back(util::format("%.*f", precision, fn(r)));
    }
    table.add_row(std::move(row));
  };
  add_metric("CPI", [](const perf::PlatformRun& r) { return r.counters.cpi(); }, 2);
  add_metric("L2MPI (%)",
             [](const perf::PlatformRun& r) { return r.counters.l2mpi(); }, 3);
  add_metric("Bus transactions per inst (%)",
             [](const perf::PlatformRun& r) { return r.counters.btpi(); }, 2);
  add_metric("Branch inst per inst (%)",
             [](const perf::PlatformRun& r) {
               return r.counters.branch_frequency();
             },
             0);
  add_metric("BrMPR (%)",
             [](const perf::PlatformRun& r) { return r.counters.brmpr(); }, 2);
  table.print();

  util::TextTable ref("Table 3: " + results.workload + " — paper reported");
  ref.set_header({"Metric", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx"});
  auto paper_row = [&](const char* name, const double v[5], int precision) {
    std::vector<std::string> row{name};
    for (int i = 0; i < 5; ++i) {
      row.push_back(util::format("%.*f", precision, v[i]));
    }
    ref.add_row(std::move(row));
  };
  paper_row("CPI", paper_cpi, 2);
  paper_row("Branch inst per inst (%)", paper_brf, 0);
  paper_row("BrMPR (%)", paper_brmpr, 2);
  ref.print();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::NetperfExperimentConfig config =
      bench::netperf_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Table 3 (netperf microarchitectural metrics)\n");
  const perf::WorkloadResults loopback = perf::run_netperf_loopback(config);
  const perf::WorkloadResults e2e = perf::run_netperf_endtoend(config);

  const double lb_cpi[5] = {3.03, 6.05, 6.38, 7.70, 22.13};
  const double lb_brf[5] = {36, 34, 18, 19, 18};
  const double lb_brmpr[5] = {0.96, 0.70, 3.23, 3.04, 2.30};
  print_mode(loopback, lb_cpi, lb_brf, lb_brmpr);

  const double e2e_cpi[5] = {3.46, 6.27, 8.10, 18.52, 11.53};
  const double e2e_brf[5] = {33, 34, 18, 19, 17};
  const double e2e_brmpr[5] = {0.85, 0.83, 1.68, 3.96, 1.87};
  print_mode(e2e, e2e_cpi, e2e_brf, e2e_brmpr);

  bool ok = true;
  // CPI roughly doubles from single to dual units in e2e mode (the
  // idle second unit burns counted cycles — paper pt 1).
  const double r_pm = e2e.find("2CPm")->counters.cpi() /
                      e2e.find("1CPm")->counters.cpi();
  const double r_x = e2e.find("2PPx")->counters.cpi() /
                     e2e.find("1LPx")->counters.cpi();
  const bool doubling = r_pm > 1.6 && r_pm < 2.4 && r_x > 1.4 && r_x < 2.4;
  std::printf("shape e2e: CPI ~doubles 1->2 units (PM %.2fx, Xeon %.2fx): %s\n",
              r_pm, r_x, doubling ? "PASS" : "FAIL");
  ok = ok && doubling;
  // Loopback 2PPx CPI explodes (FSB coherence thrash — paper pt 1/3).
  const bool explode = loopback.find("2PPx")->counters.cpi() >
                       3.0 * loopback.find("1LPx")->counters.cpi();
  std::printf("shape loopback: 2PPx CPI explodes vs 1LPx: %s\n",
              explode ? "PASS" : "FAIL");
  ok = ok && explode;
  // PM branch frequency ~2x Xeon in both modes.
  const double brf_ratio = loopback.find("1CPm")->counters.branch_frequency() /
                           loopback.find("1LPx")->counters.branch_frequency();
  const bool brf_ok = brf_ratio > 1.6 && brf_ratio < 2.4;
  std::printf("shape: PM/Xeon branch frequency ratio %.2f: %s\n", brf_ratio,
              brf_ok ? "PASS" : "FAIL");
  ok = ok && brf_ok;
  return ok ? 0 : 1;
}
