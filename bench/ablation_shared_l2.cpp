// Ablation: shared vs private L2 on the dual-core Pentium M.
// The paper (finding 3) attributes 2CPm's lower FR scaling (vs dual
// Xeon's near-2x) to the shared L2. This bench compares the shipping
// 2CPm (one 2 MB L2 shared by both cores) against a hypothetical
// design with a private 1 MB L2 per core (same total silicon).

#include <cmath>
#include <cstdio>

#include "xaon/aon/capture.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;

namespace {

struct Result {
  double wall_ns = 0;
  uarch::Counters counters;
};

Result run(const uarch::PlatformConfig& platform,
           const std::vector<const uarch::Trace*>& traces,
           std::uint32_t repeats) {
  uarch::System system(platform);
  (void)system.run(traces);
  Result out;
  for (std::uint32_t i = 0; i < repeats; ++i) {
    const auto r = system.run(traces);
    out.wall_ns += r.wall_ns;
    out.counters += r.total;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto repeats = static_cast<std::uint32_t>(
      flags.i64("repeats", 2, "measured trace replays"));
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  std::printf("Ablation: shared vs private L2 (dual-core PM, FR + SV)\n");
  util::TextTable table("Ablation: 2CPm L2 organization");
  table.set_header(
      {"Workload", "Config", "throughput-proxy (1/ms)", "L2MPI (%)"});
  table.set_tsv(true);

  bool ok = true;
  double fr_shared_mpi = 0, fr_split_mpi = 0;
  double sv_shared_mpi = 0, sv_split_mpi = 0;
  for (const auto use_case : {aon::UseCase::kForwardRequest,
                              aon::UseCase::kSchemaValidation}) {
    aon::CaptureConfig c0, c1;
    c1.data_base = 0x2000'0000;
    c1.message_seed = 1000;
    const uarch::Trace t0 = capture_use_case_trace(use_case, c0);
    const uarch::Trace t1 = capture_use_case_trace(use_case, c1);

    // Shipping design: both cores on one chip share the 2 MB L2.
    const uarch::PlatformConfig shared = uarch::platform_2cpm();
    // Hypothetical: same dies, two "chips" with a private 1 MB L2 each
    // (the Xeon 2PPx topology with PM cores).
    uarch::PlatformConfig split = uarch::platform_2cpm();
    split.chips = 2;
    split.cores_per_chip = 1;
    split.l2.size_bytes = 1 * 1024 * 1024;

    const Result r_shared = run(shared, {&t0, &t1}, repeats);
    const Result r_split = run(split, {&t0, &t1}, repeats);

    const std::string name(use_case_notation(use_case));
    table.add_row({name, "shared 2MB L2",
                   util::format("%.2f", 1e6 / r_shared.wall_ns * repeats),
                   util::format("%.3f", r_shared.counters.l2mpi())});
    table.add_row({name, "2x private 1MB L2",
                   util::format("%.2f", 1e6 / r_split.wall_ns * repeats),
                   util::format("%.3f", r_split.counters.l2mpi())});

    if (use_case == aon::UseCase::kForwardRequest) {
      fr_shared_mpi = r_shared.counters.l2mpi();
      fr_split_mpi = r_split.counters.l2mpi();
    } else {
      sv_shared_mpi = r_shared.counters.l2mpi();
      sv_split_mpi = r_split.counters.l2mpi();
    }
  }
  table.print();

  // What the organization actually changes in this model: halving the
  // per-stream capacity raises streaming FR's miss rate (capacity
  // effect), while cache-resident SV barely notices. Throughput is
  // nearly a wash either way — the paper's 2CPm-vs-2PPx FR gap comes
  // from the whole-platform difference (bus load, prefetch pressure),
  // not from L2 organization alone, which is itself an instructive
  // refinement of the paper's finding 3.
  const bool fr_capacity_effect = fr_split_mpi > fr_shared_mpi * 1.05;
  const bool sv_insensitive =
      sv_shared_mpi > 0 &&
      std::abs(sv_split_mpi - sv_shared_mpi) / sv_shared_mpi < 0.10;
  std::printf(
      "shape FR: private halves raise streaming L2MPI (%.3f -> %.3f): %s\n"
      "shape SV: cache-resident workload insensitive to L2 split: %s\n",
      fr_shared_mpi, fr_split_mpi, fr_capacity_effect ? "PASS" : "FAIL",
      sv_insensitive ? "PASS" : "FAIL");
  ok = fr_capacity_effect && sv_insensitive;
  return ok ? 0 : 1;
}
