// Ablation: branch-predictor resource sharing under Hyper-Threading.
// The paper (finding 6) observes 2LPx mispredicts significantly more
// than 1LPx or 2PPx on the same workload and blames sharing of physical
// predictor resources between the two logical streams. This bench runs
// the same two SV streams on 2LPx (one core, shared tables + history)
// and on 2PPx (two cores, private predictors): same thread count, same
// traces — the BrMPR delta isolates the sharing.

#include <cstdio>

#include "xaon/aon/capture.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;

namespace {

uarch::Counters run_platform(const uarch::PlatformConfig& platform,
                             const std::vector<const uarch::Trace*>& traces,
                             std::uint32_t repeats) {
  uarch::System system(platform);
  (void)system.run(traces);
  uarch::Counters total;
  for (std::uint32_t i = 0; i < repeats; ++i) {
    total += system.run(traces).total;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto repeats = static_cast<std::uint32_t>(
      flags.i64("repeats", 2, "measured trace replays"));
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  std::printf(
      "Ablation: SMT predictor sharing (same SV streams, 2LPx vs 2PPx)\n");
  aon::CaptureConfig c0, c1;
  c1.data_base = 0x2000'0000;
  c1.message_seed = 1000;
  const uarch::Trace t0 =
      capture_use_case_trace(aon::UseCase::kSchemaValidation, c0);
  const uarch::Trace t1 =
      capture_use_case_trace(aon::UseCase::kSchemaValidation, c1);

  const uarch::Counters base =
      run_platform(uarch::platform_1lpx(), {&t0}, repeats);
  const uarch::Counters smt =
      run_platform(uarch::platform_2lpx(), {&t0, &t1}, repeats);
  const uarch::Counters dual =
      run_platform(uarch::platform_2ppx(), {&t0, &t1}, repeats);

  // Counterfactual: Hyper-Threading with per-thread history registers
  // (tables still shared — history pollution is the tunable half).
  uarch::PlatformConfig no_hist_share = uarch::platform_2lpx();
  no_hist_share.arch.predictor.shared_history = false;
  const uarch::Counters split_hist =
      run_platform(no_hist_share, {&t0, &t1}, repeats);

  util::TextTable table("Ablation: predictor sharing under SMT");
  table.set_header({"Config", "BrMPR (%)", "CPI"});
  table.set_tsv(true);
  auto row = [&](const char* name, const uarch::Counters& c) {
    table.add_row({name, util::format("%.2f", c.brmpr()),
                   util::format("%.2f", c.cpi())});
  };
  row("1LPx (one stream, private predictor)", base);
  row("2PPx (two streams, private predictors)", dual);
  row("2LPx (two streams, SHARED predictor)", smt);
  row("2LPx + per-thread history (hypothetical)", split_hist);
  table.print();

  // The paper's effects: sharing raises BrMPR over both 1LPx and 2PPx;
  // thread count alone (2PPx) leaves BrMPR untouched.
  const bool sharing_hurts = smt.brmpr() > base.brmpr() * 1.05 &&
                             smt.brmpr() > dual.brmpr() * 1.05;
  const bool count_is_free =
      std::abs(dual.brmpr() - base.brmpr()) / base.brmpr() < 0.10;
  std::printf(
      "SMT sharing raises BrMPR (+%.0f%% vs 1LPx, +%.0f%% vs 2PPx): %s\n"
      "thread count alone leaves BrMPR unchanged (2PPx vs 1LPx): %s\n",
      (smt.brmpr() / base.brmpr() - 1.0) * 100.0,
      (smt.brmpr() / dual.brmpr() - 1.0) * 100.0,
      sharing_hurts ? "PASS" : "FAIL", count_is_free ? "PASS" : "FAIL");
  return (sharing_hurts && count_is_free) ? 0 : 1;
}
