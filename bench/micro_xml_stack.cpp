// Google-benchmark microbenchmarks for the XML software stack: parse,
// XPath evaluation, schema validation, HTTP round trip and regex — the
// per-message primitives every AON experiment composes.

#include <benchmark/benchmark.h>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/pipeline.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xpath/xpath.hpp"
#include "xaon/xsd/loader.hpp"
#include "xaon/xsd/regex.hpp"
#include "xaon/xsd/validator.hpp"

namespace {

using namespace xaon;

const std::string& message() {
  static const std::string m = aon::make_order_message();
  return m;
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& doc = message();
  for (auto _ : state) {
    auto r = xml::parse(doc);
    benchmark::DoNotOptimize(r.document.root());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlParseSizeSweep(benchmark::State& state) {
  aon::MessageSpec spec;
  spec.target_bytes = static_cast<std::size_t>(state.range(0));
  const std::string doc = aon::make_order_message(spec);
  for (auto _ : state) {
    auto r = xml::parse(doc);
    benchmark::DoNotOptimize(r.ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParseSizeSweep)->Arg(1024)->Arg(5 * 1024)->Arg(64 * 1024);

void BM_XPathCompile(benchmark::State& state) {
  for (auto _ : state) {
    auto x = xpath::XPath::compile("//quantity/text()");
    benchmark::DoNotOptimize(x.valid());
  }
}
BENCHMARK(BM_XPathCompile);

void BM_XPathEvaluate(benchmark::State& state) {
  auto parsed = xml::parse(message());
  auto x = xpath::XPath::compile("//quantity/text()");
  for (auto _ : state) {
    auto v = x.evaluate(parsed.document.root());
    benchmark::DoNotOptimize(v.to_boolean());
  }
}
BENCHMARK(BM_XPathEvaluate);

void BM_SchemaLoad(benchmark::State& state) {
  const std::string xsd = aon::order_schema_xsd();
  for (auto _ : state) {
    auto r = xsd::load_schema(xsd);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_SchemaLoad);

void BM_SchemaValidate(benchmark::State& state) {
  auto loaded = xsd::load_schema(aon::order_schema_xsd());
  auto parsed = xml::parse(message());
  const xml::Node* payload =
      parsed.document.root()->child_element("Body")->first_child_element();
  const xsd::ElementDecl* decl =
      loaded.schema.find_global_element(payload->ns_uri, payload->local);
  xsd::Validator validator(loaded.schema);
  for (auto _ : state) {
    auto r = validator.validate_element(payload, decl);
    benchmark::DoNotOptimize(r.valid());
  }
}
BENCHMARK(BM_SchemaValidate);

void BM_HttpParse(benchmark::State& state) {
  const std::string wire = aon::make_post_wire();
  for (auto _ : state) {
    http::RequestParser parser;
    parser.feed(wire);
    benchmark::DoNotOptimize(parser.done());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParse);

void BM_RegexMatch(benchmark::State& state) {
  auto re = xsd::Regex::compile("[A-Z]{2}-\\d{3}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.match("AB-123"));
    benchmark::DoNotOptimize(re.match("not-a-sku"));
  }
}
BENCHMARK(BM_RegexMatch);

void BM_PipelineFR(benchmark::State& state) {
  aon::Pipeline pipeline(aon::UseCase::kForwardRequest);
  const std::string wire = aon::make_post_wire();
  for (auto _ : state) {
    auto out = pipeline.process_wire(wire);
    benchmark::DoNotOptimize(out.ok);
  }
}
BENCHMARK(BM_PipelineFR);

void BM_PipelineCBR(benchmark::State& state) {
  aon::Pipeline pipeline(aon::UseCase::kContentBasedRouting);
  const std::string wire = aon::make_post_wire();
  for (auto _ : state) {
    auto out = pipeline.process_wire(wire);
    benchmark::DoNotOptimize(out.routed_primary);
  }
}
BENCHMARK(BM_PipelineCBR);

void BM_PipelineSV(benchmark::State& state) {
  aon::Pipeline pipeline(aon::UseCase::kSchemaValidation);
  const std::string wire = aon::make_post_wire();
  for (auto _ : state) {
    auto out = pipeline.process_wire(wire);
    benchmark::DoNotOptimize(out.routed_primary);
  }
}
BENCHMARK(BM_PipelineSV);

}  // namespace

BENCHMARK_MAIN();
