// Real-network gateway throughput: messages/s per use case (FR / CBR /
// SV) through the xaon::net epoll transport over loopback TCP, driven
// by an in-process keep-alive client fleet — the socket-level analogue
// of host_throughput (the paper's appliance numbers are socket-level:
// Fig. 2 / Table 3 isolate the stack over loopback the same way). Also
// reports steady-state heap allocations per message across the WHOLE
// server process while the load runs: accept -> epoll read -> parse ->
// route -> serialize -> write must hold the §5b zero-alloc contract,
// not just the pipeline in isolation. Each use case emits one JSON
// line with the same schema as host_throughput (BENCH_*.json).

#define XAON_ALLOC_COUNT_INTERPOSE
#include "alloc_counter.hpp"

#include "bench_common.hpp"

#include <thread>

#include "xaon/aon/messages.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/net/downstream.hpp"
#include "xaon/net/server.hpp"
#include "xaon/net/socket.hpp"
#include "xaon/util/metrics.hpp"
#include "xaon/util/scan.hpp"

using namespace xaon;

namespace {

/// One client thread: a keep-alive connection cycling through the wire
/// mix, lock-step request/response. Returns messages that got a 2xx.
std::uint64_t drive_client(std::uint16_t port,
                           const std::vector<std::string>& wires,
                           std::uint64_t count, std::uint64_t cursor0) {
  net::BlockingClient client;
  if (!client.connect(port)) return 0;
  http::ResponseParser parser;
  std::uint64_t ok = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string& wire = wires[(cursor0 + i) % wires.size()];
    if (!client.send(wire)) break;
    const int status = client.read_response(parser);
    if (status < 0) break;
    if (status >= 200 && status < 300) ++ok;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t messages = static_cast<std::uint64_t>(
      flags.i64("messages", 8000, "messages per measured run (all clients)"));
  const std::size_t workers = static_cast<std::size_t>(
      flags.i64("workers", 2, "event-loop threads (paper: one per CPU)"));
  const std::size_t clients = static_cast<std::size_t>(
      flags.i64("clients", 4, "keep-alive client connections"));
  const std::size_t mix = static_cast<std::size_t>(
      flags.i64("mix", 64, "distinct 5KB messages cycled through"));
  const std::size_t route_cache = static_cast<std::size_t>(flags.i64(
      "route_cache", static_cast<std::int64_t>(aon::kDefaultRouteCacheCapacity),
      "per-worker CBR routing-cache capacity (0 disables)"));
  const std::string scan_impl_flag =
      flags.str("scan_impl", "", "scan kernel impl (scalar|swar|sse2|avx2)");
  if (bench::handle_help(flags)) return 0;
  if (!scan_impl_flag.empty()) {
    util::scan::Impl want = util::scan::active_impl();
    if (!util::scan::parse_impl(scan_impl_flag, &want) ||
        util::scan::set_impl(want) != want) {
      std::fprintf(stderr, "net_throughput: scan impl '%s' unavailable\n",
                   scan_impl_flag.c_str());
      return 2;
    }
  }
  const std::string_view scan_impl =
      util::scan::impl_name(util::scan::active_impl());

  std::vector<std::string> wires;
  wires.reserve(mix);
  for (std::size_t i = 0; i < mix; ++i) {
    aon::MessageSpec spec;
    spec.seed = i + 1;
    spec.quantity = static_cast<std::uint32_t>(i % 2) + 1;
    wires.push_back(aon::make_post_wire(spec));
  }

  const aon::UseCase cases[] = {aon::UseCase::kForwardRequest,
                                aon::UseCase::kContentBasedRouting,
                                aon::UseCase::kSchemaValidation};

  util::TextTable table("Real-network (loopback TCP) gateway throughput");
  table.set_header({"Use case", "msgs/s", "allocs/msg", "bytes/msg"});
  table.set_tsv(true);

  for (aon::UseCase use_case : cases) {
    const std::string name(aon::use_case_notation(use_case));

    // A healthy sink behind the gateway so the forward path writes
    // real bytes to a second socket, like the appliance it models.
    net::SinkServer sink;
    std::string error;
    if (!sink.start(&error)) {
      std::fprintf(stderr, "sink: %s\n", error.c_str());
      return 1;
    }
    net::SocketDownstream downstream(sink.port());

    net::ServerConfig config;
    config.use_case = use_case;
    config.workers = workers;
    config.downstream = &downstream;
    config.route_cache_capacity = route_cache;
    net::Server server(config);
    if (!server.start(&error)) {
      std::fprintf(stderr, "server: %s\n", error.c_str());
      return 1;
    }

    const std::uint64_t per_client = messages / clients;
    auto run_fleet = [&](std::uint64_t count) {
      std::vector<std::thread> fleet;
      std::vector<std::uint64_t> ok(clients, 0);
      fleet.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        fleet.emplace_back([&, c] {
          ok[c] = drive_client(server.port(), wires, count, c * 17);
        });
      }
      for (auto& t : fleet) t.join();
      std::uint64_t total = 0;
      for (const std::uint64_t v : ok) total += v;
      return total;
    };

    // Warm-up grows every reusable buffer (connection out-buffers,
    // parser storage, arenas) to working capacity, then the measured
    // run counts process-wide allocations.
    (void)run_fleet(per_client / 4 + 1);
    bench::reset_alloc_counter();
    const std::uint64_t t0 = util::metrics_now_ns();
    const std::uint64_t ok = run_fleet(per_client);
    const std::uint64_t t1 = util::metrics_now_ns();
    const std::uint64_t sent = per_client * clients;
    // Client-side allocations ride the same interposer; the fleet's
    // steady state is also allocation-free (retained parser/buffer
    // capacity), so the quotient stays honest about the server.
    const double allocs_per_msg = static_cast<double>(bench::alloc_count()) /
                                  static_cast<double>(sent);
    const double bytes_per_msg = static_cast<double>(bench::alloc_bytes()) /
                                 static_cast<double>(sent);
    const double wall_seconds = static_cast<double>(t1 - t0) * 1e-9;
    const double msgs_per_sec =
        wall_seconds > 0.0 ? static_cast<double>(ok) / wall_seconds : 0.0;
    // Payload bandwidth: request wire bytes acknowledged per wall
    // second — the trajectory's MB/s companion to msgs/s.
    std::uint64_t wire_bytes = 0;
    for (const std::string& wire : wires) wire_bytes += wire.size();
    const double avg_wire =
        static_cast<double>(wire_bytes) / static_cast<double>(wires.size());
    const double mb_per_s =
        wall_seconds > 0.0
            ? avg_wire * static_cast<double>(ok) / wall_seconds / 1e6
            : 0.0;

    const net::ServerStats& stats = server.stop();
    sink.stop();

    table.add_row({name, util::format("%.0f", msgs_per_sec),
                   util::format("%.2f", allocs_per_msg),
                   util::format("%.1f", bytes_per_msg)});
    std::printf(
        "{\"bench\": \"net_throughput\", \"use_case\": \"%s\", "
        "\"workers\": %zu, \"clients\": %zu, \"messages\": %llu, "
        "\"seconds\": %.4f, \"wall_seconds\": %.4f, \"msgs_per_sec\": %.1f, "
        "\"mb_per_s\": %.2f, \"scan_impl\": \"%.*s\", "
        "\"allocs_per_msg\": %.2f, \"bytes_per_msg\": %.1f, "
        "\"failed\": %llu, \"forward_shed\": %llu, "
        "\"forward_failures\": %llu, \"cache_hit_rate\": %.4f, "
        "\"sink_bytes\": %llu, \"metrics\": %s}\n",
        name.c_str(), workers, clients,
        static_cast<unsigned long long>(stats.messages),
        stats.metrics.busy_seconds_total(), wall_seconds, msgs_per_sec,
        mb_per_s, static_cast<int>(scan_impl.size()), scan_impl.data(),
        allocs_per_msg, bytes_per_msg,
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.forward_shed),
        static_cast<unsigned long long>(stats.forward_failures),
        stats.metrics.route_cache.hit_rate(),
        static_cast<unsigned long long>(sink.bytes_received()),
        stats.metrics.to_json().c_str());
  }

  table.print();
  return 0;
}
