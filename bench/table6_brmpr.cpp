// Reproduces Table 6: branch misprediction ratios (%).

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Table 6 (branch misprediction ratio)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  util::TextTable table = perf::metric_table(
      "Table 6: BrMPR (%)", workloads, perf::metric_brmpr);
  table.set_tsv(true);
  bench::print_with_paper(
      table,
      bench::PaperTable{"Table 6: BrMPR (%)",
                        {"SV", "CBR", "FR"},
                        {{1.98, 1.97, 3.62, 4.61, 3.65},
                         {1.07, 1.04, 2.01, 2.91, 1.96},
                         {1.13, 1.21, 2.65, 3.96, 2.71}}});

  bool ok = true;
  for (const auto& w : workloads) {
    const double pm1 = w.find("1CPm")->counters.brmpr();
    const double pm2 = w.find("2CPm")->counters.brmpr();
    const double x1 = w.find("1LPx")->counters.brmpr();
    const double ht = w.find("2LPx")->counters.brmpr();
    const double x2 = w.find("2PPx")->counters.brmpr();
    // PM predicts better than Xeon (paper pt 2).
    const bool pm_better = pm1 < x1;
    // Unit count alone doesn't change BrMPR (pt 3)...
    const bool stable = std::abs(pm2 - pm1) / pm1 < 0.15 &&
                        std::abs(x2 - x1) / x1 < 0.15;
    // ...but Hyper-Threading does: shared tables alias (pt 3/6).
    const bool ht_worse = ht > x1 * 1.05;
    std::printf(
        "shape %s: PM < Xeon: %s; stable 1->2 units: %s; "
        "2LPx raises BrMPR (+%.0f%%): %s\n",
        w.workload.c_str(), pm_better ? "PASS" : "FAIL",
        stable ? "PASS" : "FAIL", (ht / x1 - 1.0) * 100.0,
        ht_worse ? "PASS" : "FAIL");
    ok = ok && pm_better && stable && ht_worse;
  }
  // SV mispredicts more than the I/O-heavy cases (pt 1).
  const double sv = workloads[0].find("1CPm")->counters.brmpr();
  const double fr = workloads[2].find("1CPm")->counters.brmpr();
  std::printf("shape: BrMPR(SV) > BrMPR(FR) on PM: %s (%.2f > %.2f)\n",
              sv > fr ? "PASS" : "FAIL", sv, fr);
  ok = ok && sv > fr;
  return ok ? 0 : 1;
}
