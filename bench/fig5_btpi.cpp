// Reproduces Figure 5: bus transactions per retired instruction (%) for
// the AON use cases.

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf(
      "Reproducing Figure 5 (bus transactions per retired instruction)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  util::BarChart chart = perf::metric_chart("Figure 5: BTPI (%)", workloads,
                                            perf::metric_btpi, 2);
  chart.print();
  util::TextTable table = perf::metric_table("Figure 5: BTPI (%)",
                                             workloads, perf::metric_btpi);
  table.set_tsv(true);
  bench::print_with_paper(
      table,
      // Approximate values read off the paper's Figure 5 (chart-only).
      bench::PaperTable{"Figure 5: BTPI (%)",
                        {"SV", "CBR", "FR"},
                        {{0.55, 1.30, 0.80, 0.70, 0.80},
                         {1.00, 1.90, 1.40, 1.20, 1.40},
                         {2.20, 3.50, 2.40, 2.20, 2.40}}});

  bool ok = true;
  for (const std::string& p : bench::platforms()) {
    const double sv = workloads[0].find(p)->counters.btpi();
    const double fr = workloads[2].find(p)->counters.btpi();
    const bool rises = sv < fr;
    std::printf("shape %s: BTPI(SV) < BTPI(FR): %s\n", p.c_str(),
                rises ? "PASS" : "FAIL");
    ok = ok && rises;
  }
  for (const auto& w : workloads) {
    // Smart Memory Access: PM's prefetch traffic keeps 1CPm's BTPI near
    // 1LPx's despite PM's double-size L2 (paper §5.4 point 2).
    const double pm = w.find("1CPm")->counters.btpi();
    const double xeon = w.find("1LPx")->counters.btpi();
    const bool near = pm > 0.5 * xeon;  // not cut in half by the big L2
    // 2CPm > 2PPx (shared L2 + prefetchers vs private L2s, §5.4 pt 4).
    const bool dualcore_higher =
        w.find("2CPm")->counters.btpi() > w.find("2PPx")->counters.btpi();
    std::printf(
        "shape %s: BTPI(1CPm) not halved vs 1LPx: %s; "
        "BTPI(2CPm) > BTPI(2PPx): %s\n",
        w.workload.c_str(), near ? "PASS" : "FAIL",
        dualcore_higher ? "PASS" : "FAIL");
    ok = ok && near && dualcore_higher;
  }
  return ok ? 0 : 1;
}
