// Ablation: Pentium M "Smart Memory Access" prefetchers on/off.
// Tests the paper's §5.4 mechanism: the PM prefetchers hide streaming
// load misses at the price of extra bus transactions (which is why
// 1CPm's BTPI matches 1LPx's despite PM's double-size L2).

#include <cstdio>

#include "xaon/uarch/system.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"
#include "xaon/wload/synth.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto repeats = static_cast<std::uint32_t>(
      flags.i64("repeats", 3, "measured trace replays"));
  const auto ws_mb =
      flags.i64("working_set_mb", 8, "streamed working set (MiB)");
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return 0;
  }

  std::printf(
      "Ablation: Smart Memory Access prefetchers (Pentium M, streaming "
      "loads over %lld MiB)\n",
      static_cast<long long>(ws_mb));

  // A load-dominated streaming kernel — the pattern the PM L2
  // prefetchers were built for (message payloads swept by the parser).
  wload::SynthConfig synth;
  synth.ops = 600'000;
  synth.branch_fraction = 0.15;
  synth.memory_fraction = 0.45;
  synth.store_fraction = 0.05;
  synth.pattern = wload::AddressPattern::kSequential;
  synth.working_set_bytes = static_cast<std::uint64_t>(ws_mb) << 20;
  synth.stride_bytes = 16;
  const uarch::Trace trace = make_synthetic_trace(synth);

  util::TextTable table("Ablation: PM prefetchers on a load stream");
  table.set_header({"Config", "wall (ms)", "CPI", "L2MPI (%)", "BTPI (%)",
                    "prefetch fills"});
  table.set_tsv(true);

  double wall_on = 0, wall_off = 0, btpi_on = 0, btpi_off = 0;
  double l2mpi_on = 0, l2mpi_off = 0;
  for (const bool enabled : {true, false}) {
    uarch::PlatformConfig platform = uarch::platform_1cpm();
    platform.arch.prefetch.enabled = enabled;
    uarch::System system(platform);
    (void)system.run({&trace});
    double wall = 0;
    uarch::Counters total;
    for (std::uint32_t i = 0; i < repeats; ++i) {
      const auto r = system.run({&trace});
      wall += r.wall_ns;
      total += r.total;
    }
    table.add_row({enabled ? "prefetch ON (shipping PM)" : "prefetch OFF",
                   util::format("%.2f", wall / 1e6),
                   util::format("%.2f", total.cpi()),
                   util::format("%.3f", total.l2mpi()),
                   util::format("%.2f", total.btpi()),
                   std::to_string(total.prefetch_fills)});
    (enabled ? wall_on : wall_off) = wall;
    (enabled ? btpi_on : btpi_off) = total.btpi();
    (enabled ? l2mpi_on : l2mpi_off) = total.l2mpi();
  }
  table.print();

  const double speedup = wall_off / wall_on;
  const bool faster = speedup > 1.05;
  const bool hides_misses = l2mpi_on < 0.6 * l2mpi_off;
  const bool keeps_bus_busy = btpi_on > 0.8 * btpi_off;
  std::printf(
      "prefetch speedup on the load stream: %.2fx (%s)\n"
      "prefetch hides demand misses (L2MPI %.3f -> %.3f): %s\n"
      "bus traffic stays (fills replace demand fills): %s\n",
      speedup, faster ? "PASS" : "FAIL", l2mpi_off, l2mpi_on,
      hides_misses ? "PASS" : "FAIL", keeps_bus_busy ? "PASS" : "FAIL");
  return (faster && hides_misses && keeps_bus_busy) ? 0 : 1;
}
