#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

/// \file alloc_counter.hpp
/// Heap-allocation counter for benches and regression tests. The
/// counters are always available; the global `operator new` / `delete`
/// interposer that feeds them is opt-in:
///
///     #define XAON_ALLOC_COUNT_INTERPOSE
///     #include "alloc_counter.hpp"
///
/// The interposer defines the replaceable global allocation functions,
/// so it must be enabled in exactly ONE translation unit per binary
/// (single-TU benches and tests — which is all of ours).

namespace xaon::bench {

inline std::atomic<std::uint64_t> g_alloc_count{0};
inline std::atomic<std::uint64_t> g_alloc_bytes{0};
inline std::atomic<std::uint64_t> g_free_count{0};

inline void count_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void count_free() {
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}

inline void reset_alloc_counter() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
}

inline std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

inline std::uint64_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

inline std::uint64_t free_count() {
  return g_free_count.load(std::memory_order_relaxed);
}

}  // namespace xaon::bench

#ifdef XAON_ALLOC_COUNT_INTERPOSE

namespace xaon::bench::detail {

inline void* counted_alloc(std::size_t size) {
  count_alloc(size);
  return std::malloc(size);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  count_alloc(size);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

}  // namespace xaon::bench::detail

void* operator new(std::size_t size) {
  if (void* p = xaon::bench::detail::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = xaon::bench::detail::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return xaon::bench::detail::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return xaon::bench::detail::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = xaon::bench::detail::counted_aligned_alloc(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = xaon::bench::detail::counted_aligned_alloc(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return xaon::bench::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return xaon::bench::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  xaon::bench::count_free();
  std::free(p);
}

#endif  // XAON_ALLOC_COUNT_INTERPOSE
