// Reproduces Figure 2: netperf TCP_STREAM throughput in loopback and
// end-to-end (Gigabit Ethernet) modes on all five platforms.

#include "bench_common.hpp"

#include "xaon/util/table.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::NetperfExperimentConfig config =
      bench::netperf_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Figure 2 (netperf throughput, Mbps)\n");
  const perf::WorkloadResults loopback = perf::run_netperf_loopback(config);
  const perf::WorkloadResults e2e = perf::run_netperf_endtoend(config);

  util::BarChart chart("Figure 2: netperf throughput (Mbps)");
  chart.set_series({"loopback", "end-to-end"});
  chart.set_precision(0);
  for (std::size_t i = 0; i < loopback.runs.size(); ++i) {
    chart.add_group(loopback.runs[i].notation,
                    {loopback.runs[i].throughput, e2e.runs[i].throughput});
  }
  chart.print();

  util::TextTable table("Figure 2: netperf throughput (Mbps)");
  table.set_header({"Mode", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx"});
  table.set_tsv(true);
  auto row_of = [](const perf::WorkloadResults& w, const char* label) {
    std::vector<std::string> row{label};
    for (const auto& r : w.runs) {
      row.push_back(util::format("%.0f", r.throughput));
    }
    return row;
  };
  table.add_row(row_of(loopback, "Netperf-loopback"));
  table.add_row(row_of(e2e, "Netperf"));
  table.print();

  util::TextTable ref("Figure 2 — paper reported (Mbps)");
  ref.set_header({"Mode", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx"});
  ref.add_row({"Netperf-loopback", "9550", "6252", "8897", "8496", "2823"});
  ref.add_row({"Netperf", "940", "936", "940", "936", "920"});
  ref.print();

  bool ok = true;
  // End-to-end: every configuration saturates GigE (~94% of 1 Gbps).
  for (const auto& r : e2e.runs) {
    const bool saturated = r.throughput > 900 && r.throughput < 960;
    std::printf("shape e2e %s saturates GigE (%.0f Mbps): %s\n",
                r.notation.c_str(), r.throughput,
                saturated ? "PASS" : "FAIL");
    ok = ok && saturated;
  }
  // Loopback orderings the paper calls out.
  const auto lb = [&](const char* n) {
    return loopback.find(n)->throughput;
  };
  const bool pm_degrades = lb("2CPm") < lb("1CPm");
  const bool xeon_collapses = lb("2PPx") < 0.45 * lb("1LPx");
  const bool collapse_worse_than_pm =
      lb("2PPx") / lb("1LPx") < lb("2CPm") / lb("1CPm");
  std::printf(
      "shape loopback: degrades 1CPm->2CPm: %s; collapses 1LPx->2PPx: %s; "
      "Xeon dual hit worse than PM dual: %s\n",
      pm_degrades ? "PASS" : "FAIL", xeon_collapses ? "PASS" : "FAIL",
      collapse_worse_than_pm ? "PASS" : "FAIL");
  ok = ok && pm_degrades && xeon_collapses && collapse_worse_than_pm;
  return ok ? 0 : 1;
}
