// Per-kernel scanning throughput: GB/s for every compiled scan
// implementation (scalar / swar / sse2 / avx2) on short (16B),
// SOAP-typical (5KB) and long (1MB) inputs. Inputs are built so each
// kernel scans the whole buffer (no early match) — the number is the
// classify-and-skip bandwidth ceiling the lexer hot loops draw on.
// One JSON line per (kernel, impl, size) for trajectory tracking.

#include "bench_common.hpp"

#include <cstring>
#include <vector>

#include "xaon/util/metrics.hpp"
#include "xaon/util/scan.hpp"
#include "xaon/util/table.hpp"

using namespace xaon;
namespace scan = xaon::util::scan;

namespace {

const scan::ByteClass kMarkup = scan::ByteClass::of("<&");
const scan::ByteClass kNameChars = [] {
  scan::ByteClass c;
  c.add_range('a', 'z');
  c.add_range('A', 'Z');
  c.add_range('0', '9');
  c.add(static_cast<unsigned char>('_'));
  c.add(static_cast<unsigned char>(':'));
  c.add(static_cast<unsigned char>('-'));
  c.add(static_cast<unsigned char>('.'));
  c.add_high();
  return c;
}();

struct Kernel {
  const char* name;
  /// Runs the kernel over the whole buffer; returns the kernel result
  /// (== n for these no-match inputs) so the call cannot be elided.
  std::size_t (*run)(const char* p, std::size_t n);
  /// Fill byte pattern: every byte of the input is drawn from here.
  const char* fill;
};

const Kernel kKernels[] = {
    {"find_byte",
     [](const char* p, std::size_t n) { return scan::find_byte(p, n, 'X'); },
     "abcdefgh"},
    {"find_any_of",
     [](const char* p, std::size_t n) {
       return scan::find_any_of(p, n, kMarkup);
     },
     "abcdefgh"},
    {"skip_while_class",
     [](const char* p, std::size_t n) {
       return scan::skip_while_class(p, n, kNameChars);
     },
     "abc:def-"},
    {"find_crlf",
     [](const char* p, std::size_t n) { return scan::find_crlf(p, n); },
     "abcd\refg"},  // lone CRs: candidate hits, never a pair
    {"match_name_run",
     [](const char* p, std::size_t n) { return scan::match_name_run(p, n); },
     "abc:def-"},
    {"skip_xml_whitespace",
     [](const char* p, std::size_t n) {
       return scan::skip_xml_whitespace(p, n);
     },
     " \t \n \r "},
    {"find_markup_or_amp",
     [](const char* p, std::size_t n) {
       return scan::find_markup_or_amp(p, n);
     },
     "abcdefgh"},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t target_ms = static_cast<std::uint64_t>(
      flags.i64("ms", 20, "measure time per (kernel, impl, size)"));
  if (bench::handle_help(flags)) return 0;

  const std::size_t sizes[] = {16, 5 * 1024, 1024 * 1024};

  util::TextTable table("Scan kernel bandwidth (GB/s)");
  table.set_header({"Kernel", "impl", "size", "GB/s"});
  table.set_tsv(true);

  for (const Kernel& k : kKernels) {
    for (std::size_t impl_i = 0; impl_i < scan::kImplCount; ++impl_i) {
      const auto impl = static_cast<scan::Impl>(impl_i);
      if (!scan::impl_available(impl)) continue;
      if (scan::set_impl(impl) != impl) continue;
      for (const std::size_t size : sizes) {
        std::vector<char> buf(size);
        const std::size_t fill_len = std::strlen(k.fill);
        for (std::size_t i = 0; i < size; ++i) {
          buf[i] = k.fill[i % fill_len];
        }
        // Warm-up, then iterate until the time budget is spent.
        std::size_t sink = 0;
        for (int i = 0; i < 8; ++i) sink += k.run(buf.data(), size);
        const std::uint64_t t0 = util::metrics_now_ns();
        const std::uint64_t budget = target_ms * 1000000ull;
        std::uint64_t bytes = 0;
        std::uint64_t elapsed = 0;
        do {
          for (int i = 0; i < 64; ++i) sink += k.run(buf.data(), size);
          bytes += 64ull * size;
          elapsed = util::metrics_now_ns() - t0;
        } while (elapsed < budget);
        if (sink == 0) std::fputs("", stderr);  // keep the result live
        const double seconds = static_cast<double>(elapsed) * 1e-9;
        const double gb_per_s =
            seconds > 0.0 ? static_cast<double>(bytes) / seconds / 1e9 : 0.0;
        const std::string_view impl_name = scan::impl_name(impl);
        table.add_row({k.name, std::string(impl_name),
                       util::format("%zu", size),
                       util::format("%.2f", gb_per_s)});
        std::printf(
            "{\"bench\": \"micro_scan\", \"kernel\": \"%s\", "
            "\"impl\": \"%.*s\", \"size_bytes\": %zu, \"gb_per_s\": %.3f, "
            "\"bytes\": %llu, \"seconds\": %.4f}\n",
            k.name, static_cast<int>(impl_name.size()), impl_name.data(),
            size, gb_per_s, static_cast<unsigned long long>(bytes), seconds);
      }
    }
  }
  scan::set_impl(scan::best_impl());

  table.print();
  return 0;
}
