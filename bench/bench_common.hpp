#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "xaon/perf/experiment.hpp"
#include "xaon/perf/report.hpp"
#include "xaon/util/flags.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/table.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the per-table/figure reproduction binaries:
/// experiment configs from command-line flags, and the paper's reported
/// values so every binary prints measured-vs-paper side by side.

namespace xaon::bench {

/// The five platform notations in the paper's column order.
inline const std::vector<std::string>& platforms() {
  static const std::vector<std::string> p{"1CPm", "2CPm", "1LPx", "2LPx",
                                          "2PPx"};
  return p;
}

/// Paper-reported values, one row per workload in SV/CBR/FR order,
/// columns per platforms().
struct PaperTable {
  const char* title;
  std::vector<std::string> workloads;
  std::vector<std::vector<double>> values;
};

inline perf::AonExperimentConfig aon_config_from_flags(util::Flags& flags) {
  perf::AonExperimentConfig config;
  config.messages_per_trace = static_cast<std::uint32_t>(
      flags.i64("messages", 0, "messages per trace (0 = per-use-case)"));
  config.warmup_repeats = static_cast<std::uint32_t>(
      flags.i64("warmup", 1, "warm-up trace replays"));
  config.measure_repeats = static_cast<std::uint32_t>(
      flags.i64("repeats", 2, "measured trace replays"));
  return config;
}

inline perf::NetperfExperimentConfig netperf_config_from_flags(
    util::Flags& flags) {
  perf::NetperfExperimentConfig config;
  config.measure_repeats = static_cast<std::uint32_t>(
      flags.i64("repeats", 2, "measured trace replays"));
  config.iterations_per_trace = static_cast<std::uint32_t>(
      flags.i64("iterations", 24, "16KB buffers per netperf trace"));
  return config;
}

inline bool handle_help(util::Flags& flags) {
  if (flags.help_requested()) {
    std::fputs(flags.usage().c_str(), stderr);
    return true;
  }
  for (const std::string& unknown : flags.unknown()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", unknown.c_str());
  }
  return false;
}

/// Prints a measured table followed by the paper's reported values and
/// the measured/paper ratio per cell (shape check at a glance).
inline void print_with_paper(const util::TextTable& measured,
                             const PaperTable& paper, int precision = 2) {
  measured.print();
  util::TextTable ref(std::string(paper.title) + " — paper reported");
  std::vector<std::string> header{"Workload"};
  for (const std::string& p : platforms()) header.push_back(p);
  ref.set_header(header);
  for (std::size_t w = 0; w < paper.workloads.size(); ++w) {
    std::vector<std::string> row{paper.workloads[w]};
    for (double v : paper.values[w]) {
      row.push_back(util::format("%.*f", precision, v));
    }
    ref.add_row(std::move(row));
  }
  ref.print();
}

}  // namespace xaon::bench
