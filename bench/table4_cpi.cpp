// Reproduces Table 4: CPIs of the AON use cases on all five platforms.

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Table 4 (cycles per instruction)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  util::TextTable table =
      perf::metric_table("Table 4: CPI", workloads, perf::metric_cpi);
  table.set_tsv(true);
  bench::print_with_paper(
      table,
      bench::PaperTable{"Table 4: CPI",
                        {"SV", "CBR", "FR"},
                        {{1.02, 1.05, 1.91, 3.50, 1.96},
                         {1.12, 1.22, 2.26, 4.34, 2.32},
                         {2.24, 2.96, 5.71, 7.65, 5.92}}});

  // Shape checks per the paper's Section 5.2 analysis.
  bool ok = true;
  for (const auto& w : workloads) {
    const double pm = w.find("1CPm")->counters.cpi();
    const double xeon = w.find("1LPx")->counters.cpi();
    const double ht = w.find("2LPx")->counters.cpi();
    const double dual = w.find("2PPx")->counters.cpi();
    const bool pm_wins = pm < xeon;
    const bool ht_worst = ht > xeon && ht > dual;
    const bool dual_matches_single = dual / xeon < 1.25;
    std::printf(
        "shape %s: PM CPI < Xeon: %s; 2LPx highest Xeon CPI: %s; "
        "2PPx ~= 1LPx: %s\n",
        w.workload.c_str(), pm_wins ? "PASS" : "FAIL",
        ht_worst ? "PASS" : "FAIL", dual_matches_single ? "PASS" : "FAIL");
    ok = ok && pm_wins && ht_worst && dual_matches_single;
  }
  // CPI rises from CPU-intensive (SV) to I/O-intensive (FR) everywhere.
  for (const std::string& p : bench::platforms()) {
    const double sv = workloads[0].find(p)->counters.cpi();
    const double fr = workloads[2].find(p)->counters.cpi();
    const bool rises = sv < fr;
    std::printf("shape %s: CPI(SV) < CPI(FR): %s\n", p.c_str(),
                rises ? "PASS" : "FAIL");
    ok = ok && rises;
  }
  return ok ? 0 : 1;
}
