// Host-mode gateway throughput: real messages/s per use case (FR / CBR
// / SV) through Server::run_load, plus steady-state heap allocations
// per message on the single-worker hot path. Each use case emits one
// JSON line for trajectory tracking (BENCH_*.json).

#define XAON_ALLOC_COUNT_INTERPOSE
#include "alloc_counter.hpp"

#include "bench_common.hpp"

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/util/scan.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t messages = static_cast<std::uint64_t>(
      flags.i64("messages", 20000, "messages per measured run"));
  const std::size_t workers = static_cast<std::size_t>(
      flags.i64("workers", 2, "worker threads (paper: one per CPU)"));
  const std::size_t mix = static_cast<std::size_t>(
      flags.i64("mix", 64, "distinct 5KB messages cycled through"));
  const std::size_t route_cache = static_cast<std::size_t>(flags.i64(
      "route_cache", static_cast<std::int64_t>(aon::kDefaultRouteCacheCapacity),
      "per-worker CBR routing-cache capacity (0 disables)"));
  const std::string scan_impl_flag =
      flags.str("scan_impl", "", "scan kernel impl (scalar|swar|sse2|avx2)");
  if (bench::handle_help(flags)) return 0;
  if (!scan_impl_flag.empty()) {
    util::scan::Impl want = util::scan::active_impl();
    if (!util::scan::parse_impl(scan_impl_flag, &want) ||
        util::scan::set_impl(want) != want) {
      std::fprintf(stderr, "host_throughput: scan impl '%s' unavailable\n",
                   scan_impl_flag.c_str());
      return 2;
    }
  }
  const std::string_view scan_impl =
      util::scan::impl_name(util::scan::active_impl());

  // AONBench-style 5 KB orders; half route primary (quantity=1), half
  // to the error endpoint, seeds vary the filler so the parse never
  // sees the same bytes twice in a row.
  std::vector<std::string> wires;
  wires.reserve(mix);
  for (std::size_t i = 0; i < mix; ++i) {
    aon::MessageSpec spec;
    spec.seed = i + 1;
    spec.quantity = static_cast<std::uint32_t>(i % 2) + 1;
    wires.push_back(aon::make_post_wire(spec));
  }

  const aon::UseCase cases[] = {aon::UseCase::kForwardRequest,
                                aon::UseCase::kContentBasedRouting,
                                aon::UseCase::kSchemaValidation};

  util::TextTable table("Host-mode gateway throughput");
  table.set_header({"Use case", "msgs/s", "allocs/msg", "bytes/msg"});
  table.set_tsv(true);

  for (aon::UseCase use_case : cases) {
    const std::string name(aon::use_case_notation(use_case));

    aon::ServerConfig config;
    config.use_case = use_case;
    config.workers = workers;
    config.route_cache_capacity = route_cache;
    aon::Server server(config);
    (void)server.run_load(wires, messages / 4);  // warm-up
    const aon::LoadResult load = server.run_load(wires, messages);

    // Steady-state allocation accounting: one worker, one scratch,
    // counted after the reusable buffers have reached capacity.
    aon::Pipeline pipeline(use_case);
    aon::Pipeline::ProcessScratch scratch;
    for (int rep = 0; rep < 4; ++rep) {
      for (const std::string& wire : wires) {
        (void)pipeline.process_wire(wire, scratch);
      }
    }
    bench::reset_alloc_counter();
    const std::uint64_t counted = 4 * static_cast<std::uint64_t>(mix);
    for (int rep = 0; rep < 4; ++rep) {
      for (const std::string& wire : wires) {
        (void)pipeline.process_wire(wire, scratch);
      }
    }
    const double allocs_per_msg =
        static_cast<double>(bench::alloc_count()) /
        static_cast<double>(counted);
    const double bytes_per_msg =
        static_cast<double>(bench::alloc_bytes()) /
        static_cast<double>(counted);

    table.add_row({name, util::format("%.0f", load.messages_per_second()),
                   util::format("%.2f", allocs_per_msg),
                   util::format("%.1f", bytes_per_msg)});
    // Payload bandwidth: request wire bytes through the gateway per
    // processing second — the trajectory's MB/s companion to msgs/s.
    std::uint64_t wire_bytes = 0;
    for (const std::string& wire : wires) wire_bytes += wire.size();
    const double avg_wire =
        static_cast<double>(wire_bytes) / static_cast<double>(wires.size());
    const double mb_per_s =
        load.seconds > 0.0
            ? avg_wire * static_cast<double>(load.messages) / load.seconds / 1e6
            : 0.0;
    // The MetricsSnapshot rides in the same JSON line: per-stage
    // p50/p99 latency, per-worker message counts and busy time, the
    // imbalance ratio and the probe-site registry.
    std::printf(
        "{\"bench\": \"host_throughput\", \"use_case\": \"%s\", "
        "\"workers\": %zu, \"messages\": %llu, \"seconds\": %.4f, "
        "\"wall_seconds\": %.4f, \"msgs_per_sec\": %.1f, "
        "\"mb_per_s\": %.2f, \"scan_impl\": \"%.*s\", "
        "\"allocs_per_msg\": %.2f, \"bytes_per_msg\": %.1f, "
        "\"failed\": %llu, \"cache_hit_rate\": %.4f, \"metrics\": %s}\n",
        name.c_str(), workers,
        static_cast<unsigned long long>(load.messages), load.seconds,
        load.wall_seconds, load.messages_per_second(), mb_per_s,
        static_cast<int>(scan_impl.size()), scan_impl.data(), allocs_per_msg,
        bytes_per_msg, static_cast<unsigned long long>(load.failed),
        load.metrics.route_cache.hit_rate(),
        load.metrics.to_json().c_str());
  }

  table.print();
  return 0;
}
