// Chaos soak: long-running seeded fault replay through the host-mode
// server — mutated messages plus a misbehaving downstream — reporting
// outcome counts per use case in the same JSON-line format as
// host_throughput. Exits nonzero if the exactly-one-response invariant
// is violated, so it doubles as a soak check in scripts.

#include "bench_common.hpp"

#include <string>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/aon/server.hpp"
#include "xaon/util/fault.hpp"

using namespace xaon;

namespace {

std::string deep_nest_wire(std::size_t depth) {
  std::string body;
  body.reserve(depth * 7 + 16);
  for (std::size_t i = 0; i < depth; ++i) body += "<a>";
  body += "x";
  for (std::size_t i = 0; i < depth; ++i) body += "</a>";
  return http::write_request(aon::make_post_request(std::move(body)));
}

/// Seeded corpus with the chaos test's mutation classes: truncation,
/// byte corruption, oversized Content-Length, deep nesting, garbage.
std::vector<std::string> chaos_corpus(std::uint64_t seed,
                                      std::size_t count) {
  util::FaultRates rates;
  rates.drop = 0.05;
  rates.corrupt = 0.10;
  rates.delay = 0.05;
  rates.reorder = 0.05;
  util::FaultInjector injector(rates, seed);

  std::vector<std::string> base;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    aon::MessageSpec spec;
    spec.seed = s;
    spec.quantity = static_cast<std::uint32_t>(s % 2) + 1;
    base.push_back(aon::make_post_wire(spec));
  }

  std::vector<std::string> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& wire = base[i % base.size()];
    auto& rng = injector.rng();
    switch (injector.next()) {
      case util::FaultKind::kNone:
        corpus.push_back(wire);
        break;
      case util::FaultKind::kDrop:
        corpus.push_back(wire.substr(0, rng.next() % wire.size()));
        break;
      case util::FaultKind::kCorrupt:
        if (rng.next() & 1) {
          std::string out = wire;
          const std::size_t at = rng.next() % out.size();
          out[at] = static_cast<char>(
              out[at] ^ static_cast<char>(1 + rng.next() % 255));
          corpus.push_back(std::move(out));
        } else {
          std::string out(64 + rng.next() % 512, '\0');
          for (char& c : out) c = static_cast<char>(rng.next() & 0xFF);
          corpus.push_back(std::move(out));
        }
        break;
      case util::FaultKind::kDelay: {
        const std::size_t at = wire.find("Content-Length:");
        const std::size_t eol = wire.find("\r\n", at);
        corpus.push_back(wire.substr(0, at) +
                         "Content-Length: 99999999999" + wire.substr(eol));
        break;
      }
      case util::FaultKind::kReorder:
        corpus.push_back(deep_nest_wire(2'000 + rng.next() % 1'000));
        break;
    }
  }
  return corpus;
}

class HashVerdictDownstream : public aon::Downstream {
 public:
  explicit HashVerdictDownstream(std::uint64_t seed) : seed_(seed) {}

  aon::SendStatus send(std::string_view wire) override {
    std::uint64_t h = 1469598103934665603ull ^ seed_;
    for (char c : wire) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    const std::uint64_t roll = h % 100;
    if (roll < 5) return aon::SendStatus::kBusy;
    if (roll < 10) return aon::SendStatus::kFail;
    return aon::SendStatus::kAck;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t messages = static_cast<std::uint64_t>(
      flags.i64("messages", 50000, "messages per use case"));
  const std::size_t workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "worker threads"));
  const std::uint64_t seed = static_cast<std::uint64_t>(
      flags.i64("seed", 0xC4A05, "fault schedule seed"));
  const std::size_t route_cache = static_cast<std::size_t>(flags.i64(
      "route_cache", static_cast<std::int64_t>(aon::kDefaultRouteCacheCapacity),
      "per-worker CBR routing-cache capacity (0 disables)"));
  if (bench::handle_help(flags)) return 0;

  const std::vector<std::string> corpus = chaos_corpus(seed, 256);

  const aon::UseCase cases[] = {aon::UseCase::kForwardRequest,
                                aon::UseCase::kContentBasedRouting,
                                aon::UseCase::kSchemaValidation};

  util::TextTable table("Chaos soak (seeded fault replay)");
  table.set_header({"Use case", "msgs/s", "2xx", "4xx", "5xx", "retries"});
  table.set_tsv(true);

  bool invariant_ok = true;
  for (aon::UseCase use_case : cases) {
    const std::string name(aon::use_case_notation(use_case));

    HashVerdictDownstream downstream(seed);
    aon::ServerConfig config;
    config.use_case = use_case;
    config.workers = workers;
    config.queue_capacity = 64;
    config.downstream = &downstream;
    config.forward.max_attempts = 2;
    config.forward.backoff_pauses = 1;
    config.route_cache_capacity = route_cache;
    aon::Server server(config);
    const aon::LoadResult load = server.run_load(corpus, messages);

    const bool one_response_each =
        load.messages == messages &&
        load.status_2xx + load.status_4xx + load.status_5xx ==
            load.messages;
    invariant_ok = invariant_ok && one_response_each;

    table.add_row({name, util::format("%.0f", load.messages_per_second()),
                   util::format("%llu", static_cast<unsigned long long>(
                                            load.status_2xx)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            load.status_4xx)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            load.status_5xx)),
                   util::format("%llu", static_cast<unsigned long long>(
                                            load.forward_retries))});
    std::printf(
        "{\"bench\": \"chaos_soak\", \"use_case\": \"%s\", "
        "\"workers\": %zu, \"seed\": %llu, \"messages\": %llu, "
        "\"seconds\": %.4f, \"wall_seconds\": %.4f, "
        "\"msgs_per_sec\": %.1f, "
        "\"status_2xx\": %llu, \"status_4xx\": %llu, "
        "\"status_5xx\": %llu, \"forward_retries\": %llu, "
        "\"forward_shed\": %llu, \"forward_failures\": %llu, "
        "\"failed\": %llu, \"invariant_ok\": %s, "
        "\"cache_hit_rate\": %.4f, \"metrics\": %s}\n",
        name.c_str(), workers, static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(load.messages), load.seconds,
        load.wall_seconds, load.messages_per_second(),
        static_cast<unsigned long long>(load.status_2xx),
        static_cast<unsigned long long>(load.status_4xx),
        static_cast<unsigned long long>(load.status_5xx),
        static_cast<unsigned long long>(load.forward_retries),
        static_cast<unsigned long long>(load.forward_shed),
        static_cast<unsigned long long>(load.forward_failures),
        static_cast<unsigned long long>(load.failed),
        one_response_each ? "true" : "false",
        load.metrics.route_cache.hit_rate(),
        load.metrics.to_json().c_str());
  }

  table.print();
  return invariant_ok ? 0 : 1;
}
