// Reproduces Figure 3: dual-processor throughput scaling for the three
// AON use cases across the three single->dual transitions.

#include "bench_common.hpp"

#include "xaon/util/table.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Figure 3 (dual-processor throughput scaling)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  struct Transition {
    const char* label;
    const char* from;
    const char* to;
  };
  const Transition transitions[] = {
      {"1CPm->2CPm", "1CPm", "2CPm"},
      {"1LPx->2LPx", "1LPx", "2LPx"},
      {"1LPx->2PPx", "1LPx", "2PPx"},
  };
  // Paper Figure 3 values, rows SV/CBR/FR.
  const double paper[3][3] = {
      {1.91, 1.12, 1.97},  // SV
      {1.84, 1.32, 1.98},  // CBR
      {1.51, 1.49, 1.97},  // FR
  };

  util::TextTable table("Figure 3: dual-processor throughput scaling");
  table.set_header({"Workload", "1CPm->2CPm", "1LPx->2LPx", "1LPx->2PPx"});
  table.set_tsv(true);
  util::TextTable ref("Figure 3 — paper reported");
  ref.set_header({"Workload", "1CPm->2CPm", "1LPx->2LPx", "1LPx->2PPx"});

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::vector<std::string> row{workloads[w].workload};
    std::vector<std::string> paper_row{workloads[w].workload};
    for (std::size_t t = 0; t < 3; ++t) {
      row.push_back(util::format(
          "%.2f",
          perf::scaling(workloads[w], transitions[t].from,
                        transitions[t].to)));
      paper_row.push_back(util::format("%.2f", paper[w][t]));
    }
    table.add_row(std::move(row));
    ref.add_row(std::move(paper_row));
  }
  table.print();
  ref.print();

  // The paper's headline claims as explicit checks.
  const double pm_sv = perf::scaling(workloads[0], "1CPm", "2CPm");
  const double pm_fr = perf::scaling(workloads[2], "1CPm", "2CPm");
  const double ht_sv = perf::scaling(workloads[0], "1LPx", "2LPx");
  const double ht_fr = perf::scaling(workloads[2], "1LPx", "2LPx");
  std::printf(
      "\nshape checks:\n"
      "  dual-core PM scaling rises with CPU intensity (FR<SV): %s "
      "(%.2f < %.2f)\n"
      "  Hyper-Threading scaling FALLS with CPU intensity (SV<FR): %s "
      "(%.2f < %.2f)\n",
      pm_fr < pm_sv ? "PASS" : "FAIL", pm_fr, pm_sv,
      ht_sv < ht_fr ? "PASS" : "FAIL", ht_sv, ht_fr);
  return (pm_fr < pm_sv && ht_sv < ht_fr) ? 0 : 1;
}
