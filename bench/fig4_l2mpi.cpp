// Reproduces Figure 4: L2 cache misses per retired instruction for the
// AON use cases (values are percentages, read off the paper's chart).

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Figure 4 (L2 misses per retired instruction)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  util::BarChart chart = perf::metric_chart(
      "Figure 4: L2MPI (%)", workloads, perf::metric_l2mpi, 3);
  chart.print();
  util::TextTable table =
      perf::metric_table("Figure 4: L2MPI (%)", workloads,
                         perf::metric_l2mpi, 3);
  table.set_tsv(true);
  bench::print_with_paper(
      table,
      // Approximate values read off the paper's Figure 4 (chart-only).
      bench::PaperTable{"Figure 4: L2MPI (%)",
                        {"SV", "CBR", "FR"},
                        {{0.30, 0.55, 0.55, 0.45, 0.55},
                         {0.55, 0.90, 1.10, 0.90, 1.10},
                         {1.40, 1.75, 2.80, 2.40, 2.80}}},
      3);

  bool ok = true;
  for (const std::string& p : bench::platforms()) {
    const double sv = workloads[0].find(p)->counters.l2mpi();
    const double cbr = workloads[1].find(p)->counters.l2mpi();
    const double fr = workloads[2].find(p)->counters.l2mpi();
    const bool ordering = sv < cbr && cbr < fr;
    std::printf("shape %s: L2MPI(SV) < L2MPI(CBR) < L2MPI(FR): %s\n",
                p.c_str(), ordering ? "PASS" : "FAIL");
    ok = ok && ordering;
  }
  for (const auto& w : workloads) {
    // Dual physical Xeons keep single-Xeon L2MPI (private L2s).
    const double one = w.find("1LPx")->counters.l2mpi();
    const double two = w.find("2PPx")->counters.l2mpi();
    const bool same = one > 0 && std::abs(two - one) / one < 0.15;
    // Shared-L2 dual core does not reduce L2MPI.
    const bool shared_up = w.find("2CPm")->counters.l2mpi() >=
                           w.find("1CPm")->counters.l2mpi() * 0.95;
    std::printf("shape %s: L2MPI(2PPx) ~= L2MPI(1LPx): %s; "
                "L2MPI(2CPm) >= L2MPI(1CPm): %s\n",
                w.workload.c_str(), same ? "PASS" : "FAIL",
                shared_up ? "PASS" : "FAIL");
    ok = ok && same && shared_up;
  }
  return ok ? 0 : 1;
}
