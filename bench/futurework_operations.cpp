// Extension bench: the paper's future work (§6) asks for the same
// dual-processing characterization of "deep packet inspection ... and
// crypto functions". This binary runs the DPI and SEC use cases through
// the identical five-platform campaign and reports where they land on
// the paper's network-I/O <-> CPU-intensive spectrum.

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf(
      "Future-work extension: DPI and crypto (SEC) use cases across the "
      "paper's platforms\n");
  std::vector<perf::WorkloadResults> workloads;
  workloads.push_back(
      perf::run_aon_experiment(aon::UseCase::kSchemaValidation, config));
  workloads.push_back(
      perf::run_aon_experiment(aon::UseCase::kMessageSecurity, config));
  workloads.push_back(
      perf::run_aon_experiment(aon::UseCase::kDeepInspection, config));
  workloads.push_back(
      perf::run_aon_experiment(aon::UseCase::kForwardRequest, config));

  perf::metric_table("Future work: CPI", workloads, perf::metric_cpi)
      .print();
  perf::metric_table("Future work: L2MPI (%)", workloads,
                     perf::metric_l2mpi, 3)
      .print();
  perf::metric_table("Future work: throughput (msg/s)", workloads,
                     perf::metric_throughput, 0)
      .print();

  util::TextTable scaling_table("Future work: dual-processing scaling");
  scaling_table.set_header(
      {"Workload", "1CPm->2CPm", "1LPx->2LPx", "1LPx->2PPx"});
  scaling_table.set_tsv(true);
  for (const auto& w : workloads) {
    scaling_table.add_row(
        {w.workload,
         util::format("%.2f", perf::scaling(w, "1CPm", "2CPm")),
         util::format("%.2f", perf::scaling(w, "1LPx", "2LPx")),
         util::format("%.2f", perf::scaling(w, "1LPx", "2PPx"))});
  }
  scaling_table.print();

  // Expectations extrapolated from the paper's model: SEC (pure crypto
  // sweep) behaves CPU-intensive — HT scales it worst; DPI sits between
  // FR and SV.
  const auto& sec = workloads[1];
  const auto& dpi = workloads[2];
  const auto& fr = workloads[3];
  const double ht_sec = perf::scaling(sec, "1LPx", "2LPx");
  const double ht_dpi = perf::scaling(dpi, "1LPx", "2LPx");
  const double ht_fr = perf::scaling(fr, "1LPx", "2LPx");
  const bool sec_cpu_like = ht_sec < ht_fr;
  // DPI scans bytes with hot tables: compute-bound, low L2MPI — it
  // lands on the CPU-intensive side of the spectrum like SV, not the
  // I/O side like FR.
  const bool dpi_cpu_like =
      ht_dpi < ht_fr && dpi.find("1CPm")->counters.l2mpi() <
                            fr.find("1CPm")->counters.l2mpi();
  std::printf(
      "\nshape: SEC behaves CPU-intensive under HT (%.2f < FR %.2f): %s\n"
      "shape: DPI behaves CPU-intensive (HT %.2f < FR %.2f, lower "
      "L2MPI): %s\n",
      ht_sec, ht_fr, sec_cpu_like ? "PASS" : "FAIL", ht_dpi, ht_fr,
      dpi_cpu_like ? "PASS" : "FAIL");
  return (sec_cpu_like && dpi_cpu_like) ? 0 : 1;
}
