// Google-benchmark microbenchmarks for the simulation substrate: cache
// model, branch predictors, trace execution rate and the network
// simulator — how fast the reproduction machinery itself runs.

#include <benchmark/benchmark.h>

#include "xaon/netsim/netperf.hpp"
#include "xaon/uarch/cache.hpp"
#include "xaon/uarch/predictor.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/util/rng.hpp"
#include "xaon/wload/synth.hpp"

namespace {

using namespace xaon;

void BM_CacheAccess(benchmark::State& state) {
  uarch::Cache cache(uarch::CacheConfig{
      static_cast<std::uint64_t>(state.range(0)) * 1024, 64, 8});
  util::Xoshiro256ss rng(1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = rng.next_below(1 << 22);
    benchmark::DoNotOptimize(cache.access(addr, (addr & 7) == 0).hit);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(32)->Arg(1024)->Arg(2048);

void BM_BranchPredictor(benchmark::State& state) {
  uarch::BranchPredictor predictor(uarch::PredictorConfig{});
  util::Xoshiro256ss rng(2);
  std::uint64_t pc = 0x1000;
  for (auto _ : state) {
    pc = 0x1000 + (rng.next() & 0xFF) * 4;
    benchmark::DoNotOptimize(
        predictor.predict_and_update(0, pc, rng.next_bool(0.8)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BranchPredictor);

void BM_SystemOpsPerSecond(benchmark::State& state) {
  wload::SynthConfig config;
  config.ops = 200'000;
  config.working_set_bytes = 1 << 20;
  const uarch::Trace trace = make_synthetic_trace(config);
  uarch::System system(uarch::platform_1cpm());
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run({&trace}).wall_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.ops));
}
BENCHMARK(BM_SystemOpsPerSecond);

void BM_SystemDualSmt(benchmark::State& state) {
  wload::SynthConfig config;
  config.ops = 100'000;
  const uarch::Trace a = make_synthetic_trace(config);
  config.seed = 2;
  config.data_base = 0x5000'0000;
  const uarch::Trace b = make_synthetic_trace(config);
  uarch::System system(uarch::platform_2lpx());
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.run({&a, &b}).wall_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * config.ops));
}
BENCHMARK(BM_SystemDualSmt);

void BM_NetsimTcpStream(benchmark::State& state) {
  for (auto _ : state) {
    auto r = netsim::run_tcp_stream(netsim::Link::gigabit_ethernet(),
                                    netsim::TcpConfig{}, 4 * 1024 * 1024);
    benchmark::DoNotOptimize(r.goodput_mbps);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4 * 1024 * 1024);
}
BENCHMARK(BM_NetsimTcpStream);

}  // namespace

BENCHMARK_MAIN();
