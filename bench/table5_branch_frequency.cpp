// Reproduces Table 5: branch instructions retired per instruction
// retired (branch frequency, %).

#include "bench_common.hpp"

using namespace xaon;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const perf::AonExperimentConfig config =
      bench::aon_config_from_flags(flags);
  if (bench::handle_help(flags)) return 0;

  std::printf("Reproducing Table 5 (branch frequency)\n");
  const auto workloads = perf::run_all_aon_experiments(config);

  util::TextTable table =
      perf::metric_table("Table 5: branch frequency (%)", workloads,
                         perf::metric_branch_frequency, 0);
  table.set_tsv(true);
  bench::print_with_paper(
      table,
      bench::PaperTable{"Table 5: branch frequency (%)",
                        {"SV", "CBR", "FR"},
                        {{27, 28, 15, 15, 15},
                         {28, 27, 15, 15, 15},
                         {35, 36, 19, 19, 19}}},
      0);

  bool ok = true;
  for (const auto& w : workloads) {
    // The paper's key observation: Pentium M retires ~2x the branch
    // fraction of Xeon (Netburst uop expansion dilutes the ratio).
    const double pm = w.find("1CPm")->counters.branch_frequency();
    const double xeon = w.find("1LPx")->counters.branch_frequency();
    const double ratio = xeon > 0 ? pm / xeon : 0;
    const bool doubled = ratio > 1.6 && ratio < 2.4;
    // Frequency is a workload property: constant across same-arch
    // configurations.
    const double pm2 = w.find("2CPm")->counters.branch_frequency();
    const double ht = w.find("2LPx")->counters.branch_frequency();
    const bool stable =
        std::abs(pm2 - pm) < 2.0 && std::abs(ht - xeon) < 2.0;
    std::printf(
        "shape %s: PM branch frequency ~2x Xeon (%.2fx): %s; stable "
        "within arch: %s\n",
        w.workload.c_str(), ratio, doubled ? "PASS" : "FAIL",
        stable ? "PASS" : "FAIL");
    ok = ok && doubled && stable;
  }
  return ok ? 0 : 1;
}
