// Deliberately-bad xlint fixture for the reset-order rule: once an
// arena is visibly reset()/release()d, every local derived from it is a
// stale pointer/view — the bug the poisoned debug arena aborts on at
// runtime, caught here at lint time. Never compiled.

void stale_after_reset(util::Arena& arena) {
  const char* p = arena.intern("v");
  arena.reset();
  consume(p);  // xlint: expect(reset-order)
}

void stale_through_member_chain(Scratch& scratch) {
  const char* name = scratch.arena.intern("n");
  scratch.arena.reset();
  consume(name);  // xlint: expect(reset-order)
}

void stale_after_release(util::Arena& arena) {
  void* block = arena.allocate(64, 8);
  arena.release();
  consume(block);  // xlint: expect(reset-order)
}

// Not stale: re-deriving after the reset makes the local fresh again —
// this is exactly the per-message reuse pattern the pipeline runs.
void fine_rederive(util::Arena& arena) {
  const char* p = arena.intern("v");
  arena.reset();
  p = arena.intern("w");
  consume(p);
}

// Not stale: resetting some unrelated object does not invalidate
// arena-derived locals (the receiver must look like an arena).
void fine_unrelated_reset(util::Arena& arena, Parser& parser) {
  const char* p = arena.intern("v");
  parser.reset();
  consume(p);
}
