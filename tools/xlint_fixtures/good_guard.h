#ifndef XAON_TOOLS_XLINT_FIXTURES_GOOD_GUARD_H_
#define XAON_TOOLS_XLINT_FIXTURES_GOOD_GUARD_H_
// xlint fixture: a classic include guard satisfies pragma-once hygiene.

struct ClassicallyGuarded {};

#endif  // XAON_TOOLS_XLINT_FIXTURES_GOOD_GUARD_H_
