#pragma once
// xlint fixture: the sanctioned pattern — util::Mutex plus
// XAON_GUARDED_BY stating what it protects — must produce no findings.

struct Guarded {
  util::Mutex mu;
  int data XAON_GUARDED_BY(mu) = 0;
};
