// xlint: expect(pragma-once)
// xlint fixture: a header with neither #pragma once nor an include
// guard; the finding is reported at line 1.
struct MissingGuard {};
