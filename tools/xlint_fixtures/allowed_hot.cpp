// xlint fixture ("hot" filename => hot rules active): allow() waives a
// finding on its own line or the line directly below, so documented
// cold paths inside hot files stay clean. No expects — this file must
// produce zero findings.

void setup_time() {
  // xlint: allow(hot-new): setup-time allocation, runs once per process
  int* p = new int(1);
  delete p;
  auto s = std::string("ok");  // xlint: allow(hot-string): cold error path
  (void)s;
  (void)p;
}
