// Deliberately-bad xlint fixture for the arena-escape rule: a function
// taking Arena& may not leak an arena-derived pointer/view through its
// return value or into a member — both outlive the arena's next
// reset(). Linter input only — this file is never compiled.

const char* leak_via_local(util::Arena& arena) {
  const char* p = arena.intern("boom");
  return p;  // xlint: expect(arena-escape)
}

void* leak_direct(util::Arena& arena) {
  return arena.allocate(16, 8);  // xlint: expect(arena-escape)
}

struct XAON_ARENA_TIED Holder {
  const char* name_ = nullptr;

  void bind(util::Arena& arena) {
    name_ = arena.intern("leak");  // xlint: expect(arena-escape)
  }

  void bind_through_this(util::Arena& arena) {
    this->name_ = arena.intern("leak");  // xlint: expect(arena-escape)
  }

  void bind_local_then_member(util::Arena& arena) {
    const char* tmp = arena.intern("leak");
    name_ = tmp;  // xlint: expect(arena-escape)
  }
};

// The sanctioned form: the waiver names who owns the lifetime.
const char* blessed_escape(util::Arena& arena) {
  // xlint: allow(arena-escape): caller owns the arena and outlives it
  return arena.intern("ok");
}

// Not escapes: values computed FROM a derived pointer (not the pointer
// itself) may leave freely, and purely local use is the normal idiom.
bool local_use_only(util::Arena& arena) {
  const char* p = arena.intern("scratch");
  return p != nullptr;
}
