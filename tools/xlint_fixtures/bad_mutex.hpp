#pragma once
// xlint fixture: naked std::mutex members and unannotated Mutex members
// must both be flagged. Never compiled — linter input only.
#include <mutex>

struct NakedMutex {
  std::mutex mu;  // xlint: expect(mutex-guard)
  int data = 0;
};

struct UnguardedWrapped {
  util::Mutex mu;  // xlint: expect(mutex-guard)
  int data = 0;
};
