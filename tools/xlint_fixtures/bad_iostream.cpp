// xlint fixture: <iostream> is banned in library code.
#include <iostream>  // xlint: expect(iostream)

void shout() { std::cout << "hi\n"; }
