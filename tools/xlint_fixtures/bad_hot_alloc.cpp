// Deliberately-bad xlint fixture ("hot" in the filename opts into the
// hot-path rules). Every marked line must trip exactly the rule named
// in its expect marker; unmarked lines must stay silent. This file is
// linter input only — it is never compiled.
#include <vector>

void hot_path_offenders() {
  int* leak = new int[4];            // xlint: expect(hot-new)
  void* m = malloc(16);              // xlint: expect(hot-new)
  void* r = realloc(m, 32);          // xlint: expect(hot-new)
  auto s = std::string("boom");      // xlint: expect(hot-string)
  auto b = std::string{};            // xlint: expect(hot-string)
  auto n = std::to_string(42);       // xlint: expect(hot-string)
  std::unordered_map<int, int> lut;  // xlint: expect(hot-map)
  std::map<int, int> tree;           // xlint: expect(hot-map)
  (void)leak;
  (void)r;
}

void not_offenders(void* slot) {
  // Placement-new is the arena idiom — it does not allocate.
  new (slot) int(7);
  // Mentions of `new` or std::string("...") inside comments and string
  // literals must never fire.
  const char* text = "call new and std::string(x) and malloc(1)";
  (void)text;
  // A declaration or reference is not a temporary.
  std::vector<int> renewal;  // identifier containing 'new'
  (void)renewal;
}
