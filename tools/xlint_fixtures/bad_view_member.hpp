#pragma once
// Deliberately-bad xlint fixture for the view-member rule: string_view
// and DOM-pointer members are lifetime liabilities, so a struct holding
// one must carry XAON_ARENA_TIED — the documented admission that the
// object dangles when its backing storage goes away. Never compiled.

struct UnmarkedView {
  std::string_view name;  // xlint: expect(view-member)
  int count = 0;
};

struct UnmarkedNodePtr {
  const xml::Node* first = nullptr;  // xlint: expect(view-member)
};

struct UnmarkedAttrPtr {
  const xml::Attr* attr = nullptr;  // xlint: expect(view-member)
};

// The sanctioned form: the marker states the contract.
struct XAON_ARENA_TIED MarkedView {
  std::string_view name;
  const xml::Node* node = nullptr;
  const xml::Attr* attr = nullptr;
};

// Owning members need no marker; neither do non-member locals.
struct OwningMembers {
  std::string name;
  std::vector<int> counts;
};

inline void locals_are_fine() {
  std::string_view local = "stack-scoped";
  consume(local);
}
