// xlint — the project-invariant linter.
//
// A standalone token-level C++ linter (no external dependencies) that
// walks `include/` + `src/` and enforces xaon's cross-cutting contracts
// as machine-checked rules instead of code-review folklore:
//
//   hot-new      no `new`-expressions / malloc family in hot-path files
//                (the PR-1 arena contract: the per-message pipeline runs
//                allocation-free at steady state; placement-new into an
//                arena is fine and is not flagged)
//   hot-string   no `std::string(...)` / `std::string{...}` temporaries
//                or `std::to_string` in hot-path files (each one is a
//                hidden heap allocation on the message path)
//   hot-map      no `std::unordered_map/set` or `std::map` in hot-path
//                files (node-based containers allocate per insert)
//   mutex-guard  no naked `std::mutex` members — use the
//                annotation-visible `xaon::util::Mutex` (util/sync.hpp),
//                and a file declaring a Mutex member must state what it
//                guards via XAON_GUARDED_BY
//   iostream     no `#include <iostream>` in the library (include/ or
//                src/) — iostreams drag static ctors and locale state
//                into every translation unit; bench/tools/tests stay
//                free to use it (they are outside the walked roots)
//   pragma-once  every header opens with `#pragma once` (or a classic
//                #ifndef/#define include guard)
//
// Arena lifetime rules (dataflow over a brace-scope statement stream —
// the machine-checked half of DESIGN.md §"Arena lifetime contract"):
//
//   arena-escape a function taking `Arena&`/`Arena*` may not `return`
//                a pointer/view derived from the arena (allocate /
//                intern / make / make_array, or a local assigned from
//                one), nor store one into a member (`foo_ = ...` /
//                `this->foo = ...`) — escaping values outlive the next
//                reset(). Waive with `// xlint: allow(arena-escape)`
//                stating who owns the lifetime.
//   view-member  no `std::string_view` members and no `Node*`/`Attr*`
//                members in a struct/class that does not carry the
//                XAON_ARENA_TIED marker (util/annotations.hpp) — the
//                marker is the documented admission that the object
//                dangles when its backing storage goes away.
//   reset-order  no use of an arena-derived local after a visible
//                `.reset()` / `.release()` / `clear_scratch()` of an
//                arena in the same scope chain — the classic
//                use-after-reset bug the poisoned debug arena aborts on
//                at runtime; this catches it at lint time.
//
// Suppression: a finding is waived when its line, or the line directly
// above it, carries `// xlint: allow(<rule>)` — make the comment say
// *why*. Rules fire on comment- and string-stripped text, so the
// directive itself can never trigger a rule.
//
// `xlint --list-allows <root>` prints every allow() directive under
// include/ + src/ as TAB-separated `file:line  rule  reason` lines —
// the machine-readable waiver inventory CI audits (an allow with no
// stated reason prints an empty third field, easy to grep for).
// `xlint --rules base|arena|all <root>` restricts which rule family
// runs (the `lifetime` ctest tier runs `--rules arena`).
//
// Self-test: `xlint --self-test <dir>` lints a fixture directory in
// which every intended violation is marked `// xlint: expect(<rule>)`,
// and exits nonzero unless the set of findings matches the set of
// expect markers exactly — each rule must fire precisely where the
// fixtures say, so linter regressions fail tier-1 like any other bug
// (ctest `xlint_selftest`, label `lint`).
//
// Exit codes: 0 clean, 1 findings/self-test mismatch, 2 usage or I/O.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>  // xlint: allow(iostream): xlint is a tool, not library code
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as reported (relative to the lint root)
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule) < std::tie(o.file, o.line, o.rule);
  }
};

// ---------------------------------------------------------------------------
// Comment / literal stripping.
//
// Produces one "code only" string per line: comments and the *contents*
// of string/char literals are blanked with spaces (so column positions
// and line counts survive), while the raw text is kept alongside for
// directive parsing. Handles //, /*...*/ (multi-line), "...", '...',
// and R"delim(...)delim" raw strings.

struct StrippedFile {
  std::vector<std::string> code;  // literals/comments blanked
  std::vector<std::string> raw;   // original lines
};

StrippedFile strip(const std::string& text) {
  StrippedFile out;
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRaw: the ")delim" terminator
  std::string cur_raw, cur_code;

  auto flush_line = [&] {
    out.raw.push_back(cur_raw);
    out.code.push_back(cur_code);
    cur_raw.clear();
    cur_code.clear();
    if (mode == Mode::kLineComment) mode = Mode::kCode;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush_line();
      continue;
    }
    cur_raw.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          cur_code.push_back(' ');
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          cur_code.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (cur_code.empty() ||
                    !(std::isalnum(static_cast<unsigned char>(cur_code.back())) ||
                      cur_code.back() == '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < text.size() && text[j] != '(' && text[j] != '\n') {
            delim.push_back(text[j]);
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          mode = Mode::kRaw;
          cur_code.push_back('R');
        } else if (c == '"') {
          mode = Mode::kString;
          cur_code.push_back('"');
        } else if (c == '\'') {
          mode = Mode::kChar;
          cur_code.push_back('\'');
        } else {
          cur_code.push_back(c);
        }
        break;
      case Mode::kLineComment:
        cur_code.push_back(' ');
        break;
      case Mode::kBlockComment:
        cur_code.push_back(' ');
        if (c == '*' && next == '/') {
          // consume the '/'
          ++i;
          cur_raw.push_back('/');
          cur_code.push_back(' ');
          mode = Mode::kCode;
        }
        break;
      case Mode::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
          cur_raw.push_back(text[i]);
          cur_code += "  ";
        } else if (c == '"') {
          cur_code.push_back('"');
          mode = Mode::kCode;
        } else {
          cur_code.push_back(' ');
        }
        break;
      case Mode::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
          cur_raw.push_back(text[i]);
          cur_code += "  ";
        } else if (c == '\'') {
          cur_code.push_back('\'');
          mode = Mode::kCode;
        } else {
          cur_code.push_back(' ');
        }
        break;
      case Mode::kRaw:
        cur_code.push_back(' ');
        if (c == raw_delim[0] &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            ++i;
            cur_raw.push_back(text[i]);
            cur_code.push_back(' ');
          }
          mode = Mode::kCode;
        }
        break;
    }
  }
  if (!cur_raw.empty() || !cur_code.empty()) flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Tiny token helpers (hand-rolled; std::regex is avoided on purpose —
// the tool must stay fast enough to run on every ctest invocation).

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `word` in `s` at an identifier boundary, starting at `from`.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t p = s.find(word, from); p != std::string::npos;
       p = s.find(word, p + 1)) {
    const bool left_ok = p == 0 || !is_ident(s[p - 1]);
    const std::size_t end = p + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return p;
  }
  return std::string::npos;
}

char first_nonspace_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos < s.size() ? s[pos] : '\0';
}

bool line_is_blank_or_comment(const std::string& code_line) {
  return code_line.find_first_not_of(" \t") == std::string::npos;
}

// Extracts `xlint: <directive>(<rule>)` markers from a raw line.
std::vector<std::string> directives(const std::string& raw,
                                    const std::string& kind) {
  std::vector<std::string> rules;
  const std::string key = "xlint: " + kind + "(";
  for (std::size_t p = raw.find(key); p != std::string::npos;
       p = raw.find(key, p + 1)) {
    const std::size_t open = p + key.size();
    const std::size_t close = raw.find(')', open);
    if (close != std::string::npos) {
      rules.push_back(raw.substr(open, close - open));
    }
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Rules.

// Files on the per-message hot path: the PR-1 arena contract ("0 allocs
// per message at steady state") is enforced here at the token level.
// Setup-time code in the same subsystems (xpath compile, xsd loader,
// xml builder/writer, message synthesis) is deliberately NOT listed —
// it runs once, not per message.
const char* const kHotPaths[] = {
    // http: request parse (first stage of process_wire)
    "src/http/parser.cpp", "src/http/message.cpp",
    "include/xaon/http/parser.hpp", "include/xaon/http/message.hpp",
    // xml: tokenize + DOM-into-arena
    "src/xml/parser.cpp", "src/xml/parser_core.cpp", "src/xml/parser_core.hpp",
    "src/xml/sax.cpp", "src/xml/dom.cpp", "src/xml/chars.cpp",
    "include/xaon/xml/parser.hpp", "include/xaon/xml/sax.hpp",
    "include/xaon/xml/dom.hpp", "include/xaon/xml/chars.hpp",
    // xpath: compiled-expression evaluation
    "src/xpath/eval.cpp", "src/xpath/value.cpp",
    "include/xaon/xpath/xpath.hpp", "include/xaon/xpath/value.hpp",
    // xsd: validation walk + regex matching
    "src/xsd/validator.cpp", "src/xsd/regex.cpp",
    "src/xsd/automaton.cpp", "src/xsd/automaton.hpp",
    "include/xaon/xsd/validator.hpp", "include/xaon/xsd/regex.hpp",
    // aon: the pipeline + server worker loop
    "src/aon/pipeline.cpp", "src/aon/server.cpp",
    "include/xaon/aon/pipeline.hpp", "include/xaon/aon/server.hpp",
    // net: the epoll event loop (read -> parse -> process -> write) and
    // the socket layer's per-message client/downstream paths — same
    // zero-alloc steady-state contract as the host-mode worker loop
    // (src/net/downstream.cpp connect/pool code is setup/recovery, not
    // per-message, deliberately not listed).
    "src/net/server.cpp", "include/xaon/net/server.hpp",
    "include/xaon/net/socket.hpp", "include/xaon/net/downstream.hpp",
    // util pieces the hot loop leans on
    "include/xaon/util/arena.hpp", "include/xaon/util/spsc_queue.hpp",
    "include/xaon/util/backoff.hpp",
    // cache: LruCache::find is the per-message route-cache hit path —
    // held to the zero-allocation contract like the pipeline around it
    // (insert, the miss path, may allocate inside the stored value).
    "include/xaon/util/cache.hpp",
    // metrics: the recording helpers run once per message per stage —
    // the whole point of the spine is that observation is free of
    // allocation, so the inline record path is held to the same
    // contract as the pipeline it measures. (src/util/metrics.cpp is
    // merge/JSON code that runs after join, deliberately not listed.)
    "include/xaon/util/metrics.hpp",
    // scan: the bulk-scanning kernels ARE the lexer hot loops — every
    // byte of every message flows through them, so allocation or
    // iostream sites here would break the zero-alloc contract at its
    // tightest point.
    "include/xaon/util/scan.hpp", "src/util/scan.cpp",
};

bool is_hot_path(const std::string& rel, bool self_test) {
  if (self_test) {
    // Fixtures opt into the hot rules by carrying "hot" in the name.
    return rel.find("hot") != std::string::npos;
  }
  for (const char* p : kHotPaths) {
    if (rel == p) return true;
  }
  return false;
}

bool is_header(const std::string& rel) {
  return rel.size() > 4 && (rel.rfind(".hpp") == rel.size() - 4 ||
                            rel.rfind(".h") == rel.size() - 2);
}

void rule_hot_alloc(const std::string& rel, const StrippedFile& f,
                    std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    // Preprocessor lines are type/include plumbing (`#include <new>`),
    // not expressions.
    if (first_nonspace_after(s, 0) == '#') continue;
    // `new` expressions; `new (addr) T` placement form is exempt (it
    // does not allocate — it is exactly how the arena constructs).
    for (std::size_t p = find_word(s, "new"); p != std::string::npos;
         p = find_word(s, "new", p + 1)) {
      if (first_nonspace_after(s, p + 3) != '(') {
        out.push_back({rel, i + 1, "hot-new",
                       "new-expression on the hot path (arena contract)"});
      }
    }
    for (const char* fn : {"malloc", "calloc", "realloc", "strdup"}) {
      const std::size_t p = find_word(s, fn);
      if (p != std::string::npos &&
          first_nonspace_after(s, p + std::string(fn).size()) == '(') {
        out.push_back({rel, i + 1, "hot-new",
                       std::string(fn) + "() on the hot path"});
      }
    }
    // std::string temporaries / std::to_string: hidden allocations.
    for (std::size_t p = find_word(s, "string"); p != std::string::npos;
         p = find_word(s, "string", p + 1)) {
      const bool qualified = p >= 5 && s.compare(p - 5, 5, "std::") == 0;
      if (!qualified) continue;
      const char nxt = first_nonspace_after(s, p + 6);
      if (nxt == '(' || nxt == '{') {
        out.push_back({rel, i + 1, "hot-string",
                       "std::string temporary on the hot path"});
      }
    }
    const std::size_t ts = find_word(s, "to_string");
    if (ts != std::string::npos && ts >= 5 &&
        s.compare(ts - 5, 5, "std::") == 0) {
      out.push_back({rel, i + 1, "hot-string",
                     "std::to_string allocates on the hot path"});
    }
    for (const char* t : {"unordered_map", "unordered_set"}) {
      if (find_word(s, t) != std::string::npos) {
        out.push_back({rel, i + 1, "hot-map",
                       std::string("std::") + t +
                           " on the hot path (allocates per insert)"});
      }
    }
    const std::size_t mp = find_word(s, "map");
    if (mp != std::string::npos && mp >= 5 &&
        s.compare(mp - 5, 5, "std::") == 0) {
      out.push_back({rel, i + 1, "hot-map",
                     "std::map on the hot path (allocates per insert)"});
    }
  }
}

void rule_mutex_guard(const std::string& rel, const StrippedFile& f,
                      std::vector<Finding>& out) {
  bool has_guarded_by = false;
  for (const std::string& s : f.code) {
    if (find_word(s, "XAON_GUARDED_BY") != std::string::npos) {
      has_guarded_by = true;
      break;
    }
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    if (find_word(s, "mutex") != std::string::npos) {
      const std::size_t p = find_word(s, "mutex");
      if (p >= 5 && s.compare(p - 5, 5, "std::") == 0) {
        out.push_back(
            {rel, i + 1, "mutex-guard",
             "naked std::mutex — use xaon::util::Mutex (annotation-visible, "
             "util/sync.hpp) and XAON_GUARDED_BY"});
        continue;
      }
    }
    // `Mutex name;` member declaration: the file must say what it
    // guards. (Token-level heuristic: any Mutex member declaration in a
    // file with zero XAON_GUARDED_BY annotations is flagged.)
    const std::size_t m = find_word(s, "Mutex");
    if (m != std::string::npos && !has_guarded_by) {
      const std::size_t before = s.find_first_not_of(" \t");
      const bool decl_like =
          (before == m || s.compare(before, m - before, "mutable ") == 0 ||
           (m >= 6 && s.compare(m - 6, 6, "util::") == 0)) &&
          s.find(';') != std::string::npos && s.find('(') == std::string::npos;
      if (decl_like) {
        out.push_back({rel, i + 1, "mutex-guard",
                       "Mutex member but no XAON_GUARDED_BY in this file — "
                       "annotate the data it protects"});
      }
    }
  }
}

void rule_iostream(const std::string& rel, const StrippedFile& f,
                   std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    const std::size_t h = s.find('#');
    if (h == std::string::npos) continue;
    if (s.find("include", h) != std::string::npos &&
        s.find("<iostream>") != std::string::npos) {
      out.push_back({rel, i + 1, "iostream",
                     "#include <iostream> in library code (bench/tools/"
                     "tests only)"});
    }
  }
}

void rule_pragma_once(const std::string& rel, const StrippedFile& f,
                      std::vector<Finding>& out) {
  if (!is_header(rel)) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (line_is_blank_or_comment(f.code[i])) continue;
    const std::string& s = f.code[i];
    const std::size_t h = s.find('#');
    if (h != std::string::npos) {
      if (s.find("pragma", h) != std::string::npos &&
          s.find("once") != std::string::npos) {
        return;  // #pragma once up top
      }
      if (s.find("ifndef", h) != std::string::npos) return;  // classic guard
    }
    out.push_back({rel, 1, "pragma-once",
                   "header does not open with #pragma once or an include "
                   "guard"});
    return;
  }
  // Empty header: fine.
}

// ---------------------------------------------------------------------------
// Arena lifetime rules.
//
// A single pass over the file's statement stream with a brace-depth
// scope stack. Token-level dataflow, deliberately conservative: an
// identifier is "an arena" when it was declared `Arena x` / bound as an
// `Arena&` parameter, or when its name contains "arena" (catches member
// chains like `scratch.arena` without type resolution); a local is
// "arena-derived" when it is assigned from `<arena>.allocate/intern/
// make/make_array` or from another derived local.

struct ArenaScope {
  bool struct_scope = false;  // opened by struct/class (not enum class)
  bool arena_tied = false;    // head carries XAON_ARENA_TIED
  bool arena_fn = false;      // function with an Arena&/Arena* parameter
  std::set<std::string> arena_vars;
  std::map<std::string, bool> derived;  // local -> invalidated by reset?
};

bool ident_is_arena_ish(const std::string& id) {
  std::string low;
  for (char c : id) {
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return low.find("arena") != std::string::npos;
}

// The identifier ending just before `pos` (whitespace skipped).
std::string ident_before(const std::string& s, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(s[pos - 1]))) {
    --pos;
  }
  const std::size_t end = pos;
  while (pos > 0 && is_ident(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

// The identifier starting at/after `pos`, skipping whitespace and the
// declarator decorations `&` / `*` (so `Arena& name` yields "name").
std::string ident_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (std::isspace(static_cast<unsigned char>(s[pos])) || s[pos] == '&' ||
          s[pos] == '*')) {
    ++pos;
  }
  const std::size_t begin = pos;
  while (pos < s.size() && is_ident(s[pos])) ++pos;
  return s.substr(begin, pos - begin);
}

bool is_arena_expr(const std::string& id,
                   const std::vector<ArenaScope>& stack) {
  if (id.empty()) return false;
  for (const ArenaScope& sc : stack) {
    if (sc.arena_vars.count(id) != 0) return true;
  }
  return ident_is_arena_ish(id);
}

// True when `stmt` contains `<recv>.name(...)` / `<recv>->name<...>(...)`
// with an arena-ish receiver.
bool has_arena_member_call(const std::string& stmt, const std::string& name,
                           bool allow_template_args,
                           const std::vector<ArenaScope>& stack) {
  for (std::size_t p = find_word(stmt, name); p != std::string::npos;
       p = find_word(stmt, name, p + 1)) {
    std::size_t recv_end;
    if (p >= 1 && stmt[p - 1] == '.') {
      recv_end = p - 1;
    } else if (p >= 2 && stmt[p - 2] == '-' && stmt[p - 1] == '>') {
      recv_end = p - 2;
    } else {
      continue;
    }
    const char nxt = first_nonspace_after(stmt, p + name.size());
    if (nxt != '(' && !(allow_template_args && nxt == '<')) continue;
    if (is_arena_expr(ident_before(stmt, recv_end), stack)) return true;
  }
  return false;
}

bool stmt_has_arena_deriv(const std::string& stmt,
                          const std::vector<ArenaScope>& stack) {
  return has_arena_member_call(stmt, "allocate", false, stack) ||
         has_arena_member_call(stmt, "intern", false, stack) ||
         has_arena_member_call(stmt, "make", true, stack) ||
         has_arena_member_call(stmt, "make_array", true, stack);
}

bool stmt_has_arena_reset(const std::string& stmt,
                          const std::vector<ArenaScope>& stack) {
  if (has_arena_member_call(stmt, "reset", false, stack) ||
      has_arena_member_call(stmt, "release", false, stack)) {
    return true;
  }
  const std::size_t p = find_word(stmt, "clear_scratch");
  return p != std::string::npos &&
         first_nonspace_after(stmt, p + 13) == '(';
}

// Position of the first top-level assignment `=` (not ==, <=, +=, ...).
std::size_t assign_pos(const std::string& s) {
  int par = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '(' || c == '[') ++par;
    if (c == ')' || c == ']') --par;
    if (c != '=' || par != 0) continue;
    const char prev = i > 0 ? s[i - 1] : '\0';
    const char next = i + 1 < s.size() ? s[i + 1] : '\0';
    if (next == '=') {
      ++i;  // skip ==
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
        prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      continue;
    }
    return i;
  }
  return std::string::npos;
}

void rule_arena(const std::string& rel, const StrippedFile& f,
                std::vector<Finding>& out) {
  std::vector<ArenaScope> stack(1);
  std::string chunk;          // text since the last '{' '}' or ';'
  std::size_t chunk_line = 0; // 1-based line of its first non-space char
  int paren = 0;
  bool in_pp = false;  // inside a (possibly continued) # directive

  auto in_arena_fn = [&stack] {
    for (const ArenaScope& sc : stack) {
      if (sc.arena_fn) return true;
    }
    return false;
  };

  auto find_derived_use = [&stack](const std::string& stmt,
                                   std::size_t from) -> std::string {
    for (const ArenaScope& sc : stack) {
      for (const auto& [name, stale] : sc.derived) {
        if (find_word(stmt, name, from) != std::string::npos) return name;
      }
    }
    return {};
  };

  auto handle_statement = [&](const std::string& stmt, std::size_t line) {
    if (stmt.find_first_not_of(" \t") == std::string::npos) return;
    const bool deriv = stmt_has_arena_deriv(stmt, stack);
    const std::size_t eq = assign_pos(stmt);
    const std::string lhs =
        eq == std::string::npos ? std::string() : ident_before(stmt, eq);
    const bool is_return = find_word(stmt, "return") != std::string::npos;
    const std::size_t this_arrow = stmt.find("this->");
    const bool member_lhs =
        eq != std::string::npos && !lhs.empty() &&
        (lhs.back() == '_' ||
         (this_arrow != std::string::npos && this_arrow < eq));

    // reset-order: any mention of a stale derived local is a
    // use-after-reset, unless the statement re-derives / reassigns it.
    for (ArenaScope& sc : stack) {
      for (auto& [name, stale] : sc.derived) {
        if (!stale || find_word(stmt, name) == std::string::npos) continue;
        const bool redefined =
            eq != std::string::npos && lhs == name &&
            (deriv || find_word(stmt, name, eq + 1) == std::string::npos);
        if (!redefined) {
          out.push_back({rel, line, "reset-order",
                         "`" + name +
                             "` derives from an arena that has since been "
                             "reset — stale pointer/view use"});
        }
        stale = false;  // re-derived, reassigned, or reported once
      }
    }

    // `Arena name{...}` / `Arena name(...)` local declarations.
    const std::size_t ap = find_word(stmt, "Arena");
    if (ap != std::string::npos) {
      const std::string v = ident_after(stmt, ap + 5);
      if (!v.empty()) stack.back().arena_vars.insert(v);
    }

    if (deriv) {
      if (is_return && in_arena_fn()) {
        out.push_back({rel, line, "arena-escape",
                       "returning an arena-derived pointer/view from a "
                       "function taking Arena& — dies at the next reset()"});
      } else if (member_lhs && in_arena_fn()) {
        out.push_back({rel, line, "arena-escape",
                       "storing an arena-derived pointer/view into a member "
                       "from a function taking Arena&"});
      } else if (eq != std::string::npos && !lhs.empty()) {
        stack.back().derived[lhs] = false;
      }
    } else {
      // Escapes of an already-derived local. Only the exact-identifier
      // forms (`return p;`, `member_ = p;`) are claimed — a wrapping
      // expression (`return p != nullptr;`) changes what escapes in
      // ways a token scan cannot judge, so it stays silent.
      auto trim = [](std::string s) {
        while (!s.empty() &&
               std::isspace(static_cast<unsigned char>(s.front()))) {
          s.erase(s.begin());
        }
        while (!s.empty() &&
               std::isspace(static_cast<unsigned char>(s.back()))) {
          s.pop_back();
        }
        return s;
      };
      auto is_derived_local = [&stack](const std::string& name) {
        for (const ArenaScope& sc : stack) {
          if (sc.derived.count(name) != 0) return true;
        }
        return false;
      };
      std::string escapee;
      if (is_return) {
        escapee = trim(stmt.substr(find_word(stmt, "return") + 6));
      } else if (member_lhs) {
        escapee = trim(stmt.substr(eq + 1));
      }
      const bool bare_ident =
          !escapee.empty() &&
          std::all_of(escapee.begin(), escapee.end(), is_ident);
      if (bare_ident && is_derived_local(escapee) && in_arena_fn()) {
        out.push_back({rel, line, "arena-escape",
                       is_return
                           ? "returning arena-derived local `" + escapee +
                                 "` from a function taking Arena&"
                           : "storing arena-derived local `" + escapee +
                                 "` into a member from a function taking "
                                 "Arena&"});
      } else if (eq != std::string::npos && !lhs.empty()) {
        const std::string used = find_derived_use(stmt, eq + 1);
        if (!used.empty() && lhs != used) {
          stack.back().derived[lhs] = false;  // derived-ness propagates
        }
      }
    }

    if (stmt_has_arena_reset(stmt, stack)) {
      for (ArenaScope& sc : stack) {
        for (auto& kv : sc.derived) kv.second = true;
      }
    }

    // view-member: a data-member declaration inside an unmarked struct.
    const ArenaScope& top = stack.back();
    if (top.struct_scope && !top.arena_tied &&
        stmt.find('(') == std::string::npos && !is_return &&
        find_word(stmt, "using") == std::string::npos &&
        find_word(stmt, "typedef") == std::string::npos &&
        find_word(stmt, "friend") == std::string::npos &&
        find_word(stmt, "static") == std::string::npos) {
      if (find_word(stmt, "string_view") != std::string::npos) {
        out.push_back({rel, line, "view-member",
                       "string_view member in a struct without "
                       "XAON_ARENA_TIED — mark the type or own the bytes"});
      } else {
        for (const char* t : {"Node", "Attr"}) {
          const std::size_t p = find_word(stmt, t);
          if (p != std::string::npos &&
              first_nonspace_after(stmt, p + std::string(t).size()) == '*') {
            out.push_back({rel, line, "view-member",
                           std::string(t) +
                               "* member in a struct without XAON_ARENA_TIED "
                               "— dangles at the owning arena's reset()"});
            break;
          }
        }
      }
    }
  };

  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& s = f.code[li];
    if (in_pp || first_nonspace_after(s, 0) == '#') {
      in_pp = !f.raw[li].empty() && f.raw[li].back() == '\\';
      continue;
    }
    for (std::size_t ci = 0; ci < s.size(); ++ci) {
      const char c = s[ci];
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == '{' && paren == 0) {
        ArenaScope sc;
        const bool is_struct =
            (find_word(chunk, "struct") != std::string::npos ||
             find_word(chunk, "class") != std::string::npos) &&
            find_word(chunk, "enum") == std::string::npos &&
            chunk.find('(') == std::string::npos;
        if (is_struct) {
          sc.struct_scope = true;
          sc.arena_tied =
              find_word(chunk, "XAON_ARENA_TIED") != std::string::npos;
        } else {
          std::size_t ap = find_word(chunk, "Arena");
          const std::size_t op = chunk.find('(');
          if (ap != std::string::npos && op != std::string::npos && ap > op) {
            // Arena&/Arena* parameters of the function being opened.
            for (; ap != std::string::npos;
                 ap = find_word(chunk, "Arena", ap + 1)) {
              const std::string v = ident_after(chunk, ap + 5);
              if (!v.empty()) {
                sc.arena_fn = true;
                sc.arena_vars.insert(v);
              }
            }
          } else if (ap != std::string::npos && op == std::string::npos) {
            // `Arena name{` brace-initialized declaration.
            const std::string v = ident_after(chunk, ap + 5);
            if (!v.empty()) stack.back().arena_vars.insert(v);
          }
        }
        stack.push_back(sc);
        chunk.clear();
        chunk_line = 0;
      } else if (c == '}' && paren == 0) {
        chunk.clear();
        chunk_line = 0;
        if (stack.size() > 1) stack.pop_back();
      } else if (c == ';' && paren == 0) {
        handle_statement(chunk, chunk_line != 0 ? chunk_line : li + 1);
        chunk.clear();
        chunk_line = 0;
      } else {
        if (chunk_line == 0 &&
            !std::isspace(static_cast<unsigned char>(c))) {
          chunk_line = li + 1;
        }
        chunk.push_back(c);
      }
    }
    chunk.push_back(' ');  // the line break separates tokens
  }
}

// ---------------------------------------------------------------------------
// Driver.

// Which rule families run: the base hygiene set, the arena lifetime
// dataflow set, or both (default).
enum RuleSet : unsigned { kRulesBase = 1u, kRulesArena = 2u,
                          kRulesAll = kRulesBase | kRulesArena };

struct LintResult {
  std::vector<Finding> findings;     // after allow() suppression
  std::vector<Finding> suppressed;   // waived by allow()
  std::set<std::pair<std::string, std::size_t>> expect_unmatched;  // self-test
  std::size_t files = 0;
  unsigned rules = kRulesAll;
};

void lint_file(const fs::path& path, const std::string& rel, bool self_test,
               LintResult& res,
               std::vector<std::pair<Finding, bool>>* expect_log) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "xlint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const StrippedFile f = strip(ss.str());
  ++res.files;

  std::vector<Finding> raw_findings;
  if ((res.rules & kRulesBase) != 0) {
    if (is_hot_path(rel, self_test)) rule_hot_alloc(rel, f, raw_findings);
    rule_mutex_guard(rel, f, raw_findings);
    rule_iostream(rel, f, raw_findings);
    rule_pragma_once(rel, f, raw_findings);
  }
  if ((res.rules & kRulesArena) != 0) {
    rule_arena(rel, f, raw_findings);
  }

  // allow() applies to its own line and the line directly below.
  std::set<std::pair<std::size_t, std::string>> allows;
  std::map<std::pair<std::size_t, std::string>, bool> expects;  // matched?
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    for (const std::string& r : directives(f.raw[i], "allow")) {
      allows.insert({i + 1, r});
      allows.insert({i + 2, r});
    }
    for (const std::string& r : directives(f.raw[i], "expect")) {
      expects[{i + 1, r}] = false;
    }
  }

  for (Finding& fd : raw_findings) {
    if (allows.count({fd.line, fd.rule}) != 0) {
      res.suppressed.push_back(fd);
      continue;
    }
    if (self_test) {
      auto it = expects.find({fd.line, fd.rule});
      if (it != expects.end()) {
        it->second = true;  // expected violation, fired where promised
        continue;
      }
    }
    res.findings.push_back(fd);
  }
  if (self_test) {
    for (const auto& [key, matched] : expects) {
      if (!matched) res.expect_unmatched.insert({rel, key.first});
      if (expect_log != nullptr) {
        expect_log->push_back(
            {Finding{rel, key.first, key.second, ""}, matched});
      }
    }
  }
}

void walk(const fs::path& root, const fs::path& sub, bool self_test,
          LintResult& res) {
  const fs::path dir = sub.empty() ? root : root / sub;
  if (!fs::exists(dir)) return;
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
        ext == ".ipp") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    lint_file(p, fs::relative(p, root).generic_string(), self_test, res,
              nullptr);
  }
}

int run_lint(const fs::path& root, unsigned rules) {
  LintResult res;
  res.rules = rules;
  walk(root, "include", false, res);
  walk(root, "src", false, res);
  if (res.files == 0) {
    std::cerr << "xlint: no sources under " << root << "/{include,src}\n";
    return 2;
  }
  std::sort(res.findings.begin(), res.findings.end());
  for (const Finding& fd : res.findings) {
    std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
              << fd.message << "\n";
  }
  std::cout << "xlint: " << res.files << " files, " << res.findings.size()
            << " violation(s), " << res.suppressed.size()
            << " allow-listed\n";
  return res.findings.empty() ? 0 : 1;
}

int run_self_test(const fs::path& dir) {
  LintResult res;
  walk(dir, "", true, res);
  if (res.files == 0) {
    std::cerr << "xlint: no fixture sources under " << dir << "\n";
    return 2;
  }
  bool ok = true;
  for (const Finding& fd : res.findings) {
    std::cout << "self-test: UNEXPECTED finding " << fd.file << ":" << fd.line
              << " [" << fd.rule << "] " << fd.message << "\n";
    ok = false;
  }
  for (const auto& [file, line] : res.expect_unmatched) {
    std::cout << "self-test: rule did NOT fire at " << file << ":" << line
              << " (expect marker unmatched)\n";
    ok = false;
  }
  std::cout << "xlint self-test: " << res.files << " fixture files, "
            << (ok ? "all rules fired exactly as expected"
                   : "MISMATCH — see above")
            << "\n";
  return ok ? 0 : 1;
}

// Prints every `xlint: allow(<rule>)` directive under include/ + src/
// as `file:line<TAB>rule<TAB>reason` — the waiver inventory CI audits.
int run_list_allows(const fs::path& root) {
  struct AllowSite {
    std::string file;
    std::size_t line;
    std::string rule;
    std::string reason;
  };
  std::vector<AllowSite> sites;
  std::size_t files = 0;
  for (const char* sub : {"include", "src"}) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".hpp" && ext != ".h" && ext != ".cpp" && ext != ".cc" &&
          ext != ".ipp") {
        continue;
      }
      std::ifstream in(e.path(), std::ios::binary);
      if (!in) {
        std::cerr << "xlint: cannot read " << e.path() << "\n";
        return 2;
      }
      ++files;
      const std::string rel = fs::relative(e.path(), root).generic_string();
      std::string line;
      for (std::size_t no = 1; std::getline(in, line); ++no) {
        const std::string key = "xlint: allow(";
        for (std::size_t p = line.find(key); p != std::string::npos;
             p = line.find(key, p + 1)) {
          const std::size_t open = p + key.size();
          const std::size_t close = line.find(')', open);
          if (close == std::string::npos) continue;
          std::string reason;
          std::size_t r = close + 1;
          if (r < line.size() && line[r] == ':') ++r;
          while (r < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[r]))) {
            ++r;
          }
          reason = line.substr(r);
          while (!reason.empty() &&
                 std::isspace(static_cast<unsigned char>(reason.back()))) {
            reason.pop_back();
          }
          sites.push_back({rel, no, line.substr(open, close - open), reason});
        }
      }
    }
  }
  if (files == 0) {
    std::cerr << "xlint: no sources under " << root << "/{include,src}\n";
    return 2;
  }
  std::sort(sites.begin(), sites.end(), [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line);
  });
  for (const AllowSite& s : sites) {
    std::cout << s.file << ":" << s.line << "\t" << s.rule << "\t" << s.reason
              << "\n";
  }
  std::cerr << "xlint: " << sites.size() << " allow directive(s) in " << files
            << " files\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--self-test") {
    return run_self_test(argv[2]);
  }
  if (argc == 3 && std::string(argv[1]) == "--list-allows") {
    return run_list_allows(argv[2]);
  }
  if (argc == 4 && std::string(argv[1]) == "--rules") {
    const std::string which = argv[2];
    unsigned rules = 0;
    if (which == "all") rules = kRulesAll;
    if (which == "base") rules = kRulesBase;
    if (which == "arena") rules = kRulesArena;
    if (rules != 0) return run_lint(argv[3], rules);
  }
  if (argc == 2) {
    return run_lint(argv[1], kRulesAll);
  }
  std::cerr << "usage: xlint [--rules all|base|arena] <repo-root>\n"
               "       xlint --self-test <fixture-dir>\n"
               "       xlint --list-allows <repo-root>\n";
  return 2;
}
