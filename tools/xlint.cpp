// xlint — the project-invariant linter.
//
// A standalone token-level C++ linter (no external dependencies) that
// walks `include/` + `src/` and enforces xaon's cross-cutting contracts
// as machine-checked rules instead of code-review folklore:
//
//   hot-new      no `new`-expressions / malloc family in hot-path files
//                (the PR-1 arena contract: the per-message pipeline runs
//                allocation-free at steady state; placement-new into an
//                arena is fine and is not flagged)
//   hot-string   no `std::string(...)` / `std::string{...}` temporaries
//                or `std::to_string` in hot-path files (each one is a
//                hidden heap allocation on the message path)
//   hot-map      no `std::unordered_map/set` or `std::map` in hot-path
//                files (node-based containers allocate per insert)
//   mutex-guard  no naked `std::mutex` members — use the
//                annotation-visible `xaon::util::Mutex` (util/sync.hpp),
//                and a file declaring a Mutex member must state what it
//                guards via XAON_GUARDED_BY
//   iostream     no `#include <iostream>` in the library (include/ or
//                src/) — iostreams drag static ctors and locale state
//                into every translation unit; bench/tools/tests stay
//                free to use it (they are outside the walked roots)
//   pragma-once  every header opens with `#pragma once` (or a classic
//                #ifndef/#define include guard)
//
// Suppression: a finding is waived when its line, or the line directly
// above it, carries `// xlint: allow(<rule>)` — make the comment say
// *why*. Rules fire on comment- and string-stripped text, so the
// directive itself can never trigger a rule.
//
// Self-test: `xlint --self-test <dir>` lints a fixture directory in
// which every intended violation is marked `// xlint: expect(<rule>)`,
// and exits nonzero unless the set of findings matches the set of
// expect markers exactly — each rule must fire precisely where the
// fixtures say, so linter regressions fail tier-1 like any other bug
// (ctest `xlint_selftest`, label `lint`).
//
// Exit codes: 0 clean, 1 findings/self-test mismatch, 2 usage or I/O.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>  // xlint: allow(iostream): xlint is a tool, not library code
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // path as reported (relative to the lint root)
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule) < std::tie(o.file, o.line, o.rule);
  }
};

// ---------------------------------------------------------------------------
// Comment / literal stripping.
//
// Produces one "code only" string per line: comments and the *contents*
// of string/char literals are blanked with spaces (so column positions
// and line counts survive), while the raw text is kept alongside for
// directive parsing. Handles //, /*...*/ (multi-line), "...", '...',
// and R"delim(...)delim" raw strings.

struct StrippedFile {
  std::vector<std::string> code;  // literals/comments blanked
  std::vector<std::string> raw;   // original lines
};

StrippedFile strip(const std::string& text) {
  StrippedFile out;
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Mode mode = Mode::kCode;
  std::string raw_delim;  // for kRaw: the ")delim" terminator
  std::string cur_raw, cur_code;

  auto flush_line = [&] {
    out.raw.push_back(cur_raw);
    out.code.push_back(cur_code);
    cur_raw.clear();
    cur_code.clear();
    if (mode == Mode::kLineComment) mode = Mode::kCode;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      flush_line();
      continue;
    }
    cur_raw.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          cur_code.push_back(' ');
        } else if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          cur_code.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (cur_code.empty() ||
                    !(std::isalnum(static_cast<unsigned char>(cur_code.back())) ||
                      cur_code.back() == '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < text.size() && text[j] != '(' && text[j] != '\n') {
            delim.push_back(text[j]);
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          mode = Mode::kRaw;
          cur_code.push_back('R');
        } else if (c == '"') {
          mode = Mode::kString;
          cur_code.push_back('"');
        } else if (c == '\'') {
          mode = Mode::kChar;
          cur_code.push_back('\'');
        } else {
          cur_code.push_back(c);
        }
        break;
      case Mode::kLineComment:
        cur_code.push_back(' ');
        break;
      case Mode::kBlockComment:
        cur_code.push_back(' ');
        if (c == '*' && next == '/') {
          // consume the '/'
          ++i;
          cur_raw.push_back('/');
          cur_code.push_back(' ');
          mode = Mode::kCode;
        }
        break;
      case Mode::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
          cur_raw.push_back(text[i]);
          cur_code += "  ";
        } else if (c == '"') {
          cur_code.push_back('"');
          mode = Mode::kCode;
        } else {
          cur_code.push_back(' ');
        }
        break;
      case Mode::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
          cur_raw.push_back(text[i]);
          cur_code += "  ";
        } else if (c == '\'') {
          cur_code.push_back('\'');
          mode = Mode::kCode;
        } else {
          cur_code.push_back(' ');
        }
        break;
      case Mode::kRaw:
        cur_code.push_back(' ');
        if (c == raw_delim[0] &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size(); ++k) {
            ++i;
            cur_raw.push_back(text[i]);
            cur_code.push_back(' ');
          }
          mode = Mode::kCode;
        }
        break;
    }
  }
  if (!cur_raw.empty() || !cur_code.empty()) flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Tiny token helpers (hand-rolled; std::regex is avoided on purpose —
// the tool must stay fast enough to run on every ctest invocation).

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `word` in `s` at an identifier boundary, starting at `from`.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t p = s.find(word, from); p != std::string::npos;
       p = s.find(word, p + 1)) {
    const bool left_ok = p == 0 || !is_ident(s[p - 1]);
    const std::size_t end = p + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return p;
  }
  return std::string::npos;
}

char first_nonspace_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos < s.size() ? s[pos] : '\0';
}

bool line_is_blank_or_comment(const std::string& code_line) {
  return code_line.find_first_not_of(" \t") == std::string::npos;
}

// Extracts `xlint: <directive>(<rule>)` markers from a raw line.
std::vector<std::string> directives(const std::string& raw,
                                    const std::string& kind) {
  std::vector<std::string> rules;
  const std::string key = "xlint: " + kind + "(";
  for (std::size_t p = raw.find(key); p != std::string::npos;
       p = raw.find(key, p + 1)) {
    const std::size_t open = p + key.size();
    const std::size_t close = raw.find(')', open);
    if (close != std::string::npos) {
      rules.push_back(raw.substr(open, close - open));
    }
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Rules.

// Files on the per-message hot path: the PR-1 arena contract ("0 allocs
// per message at steady state") is enforced here at the token level.
// Setup-time code in the same subsystems (xpath compile, xsd loader,
// xml builder/writer, message synthesis) is deliberately NOT listed —
// it runs once, not per message.
const char* const kHotPaths[] = {
    // http: request parse (first stage of process_wire)
    "src/http/parser.cpp", "src/http/message.cpp",
    "include/xaon/http/parser.hpp", "include/xaon/http/message.hpp",
    // xml: tokenize + DOM-into-arena
    "src/xml/parser.cpp", "src/xml/parser_core.cpp", "src/xml/parser_core.hpp",
    "src/xml/sax.cpp", "src/xml/dom.cpp", "src/xml/chars.cpp",
    "include/xaon/xml/parser.hpp", "include/xaon/xml/sax.hpp",
    "include/xaon/xml/dom.hpp", "include/xaon/xml/chars.hpp",
    // xpath: compiled-expression evaluation
    "src/xpath/eval.cpp", "src/xpath/value.cpp",
    "include/xaon/xpath/xpath.hpp", "include/xaon/xpath/value.hpp",
    // xsd: validation walk + regex matching
    "src/xsd/validator.cpp", "src/xsd/regex.cpp",
    "src/xsd/automaton.cpp", "src/xsd/automaton.hpp",
    "include/xaon/xsd/validator.hpp", "include/xaon/xsd/regex.hpp",
    // aon: the pipeline + server worker loop
    "src/aon/pipeline.cpp", "src/aon/server.cpp",
    "include/xaon/aon/pipeline.hpp", "include/xaon/aon/server.hpp",
    // util pieces the hot loop leans on
    "include/xaon/util/arena.hpp", "include/xaon/util/spsc_queue.hpp",
    "include/xaon/util/backoff.hpp",
    // cache: LruCache::find is the per-message route-cache hit path —
    // held to the zero-allocation contract like the pipeline around it
    // (insert, the miss path, may allocate inside the stored value).
    "include/xaon/util/cache.hpp",
    // metrics: the recording helpers run once per message per stage —
    // the whole point of the spine is that observation is free of
    // allocation, so the inline record path is held to the same
    // contract as the pipeline it measures. (src/util/metrics.cpp is
    // merge/JSON code that runs after join, deliberately not listed.)
    "include/xaon/util/metrics.hpp",
};

bool is_hot_path(const std::string& rel, bool self_test) {
  if (self_test) {
    // Fixtures opt into the hot rules by carrying "hot" in the name.
    return rel.find("hot") != std::string::npos;
  }
  for (const char* p : kHotPaths) {
    if (rel == p) return true;
  }
  return false;
}

bool is_header(const std::string& rel) {
  return rel.size() > 4 && (rel.rfind(".hpp") == rel.size() - 4 ||
                            rel.rfind(".h") == rel.size() - 2);
}

void rule_hot_alloc(const std::string& rel, const StrippedFile& f,
                    std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    // Preprocessor lines are type/include plumbing (`#include <new>`),
    // not expressions.
    if (first_nonspace_after(s, 0) == '#') continue;
    // `new` expressions; `new (addr) T` placement form is exempt (it
    // does not allocate — it is exactly how the arena constructs).
    for (std::size_t p = find_word(s, "new"); p != std::string::npos;
         p = find_word(s, "new", p + 1)) {
      if (first_nonspace_after(s, p + 3) != '(') {
        out.push_back({rel, i + 1, "hot-new",
                       "new-expression on the hot path (arena contract)"});
      }
    }
    for (const char* fn : {"malloc", "calloc", "realloc", "strdup"}) {
      const std::size_t p = find_word(s, fn);
      if (p != std::string::npos &&
          first_nonspace_after(s, p + std::string(fn).size()) == '(') {
        out.push_back({rel, i + 1, "hot-new",
                       std::string(fn) + "() on the hot path"});
      }
    }
    // std::string temporaries / std::to_string: hidden allocations.
    for (std::size_t p = find_word(s, "string"); p != std::string::npos;
         p = find_word(s, "string", p + 1)) {
      const bool qualified = p >= 5 && s.compare(p - 5, 5, "std::") == 0;
      if (!qualified) continue;
      const char nxt = first_nonspace_after(s, p + 6);
      if (nxt == '(' || nxt == '{') {
        out.push_back({rel, i + 1, "hot-string",
                       "std::string temporary on the hot path"});
      }
    }
    const std::size_t ts = find_word(s, "to_string");
    if (ts != std::string::npos && ts >= 5 &&
        s.compare(ts - 5, 5, "std::") == 0) {
      out.push_back({rel, i + 1, "hot-string",
                     "std::to_string allocates on the hot path"});
    }
    for (const char* t : {"unordered_map", "unordered_set"}) {
      if (find_word(s, t) != std::string::npos) {
        out.push_back({rel, i + 1, "hot-map",
                       std::string("std::") + t +
                           " on the hot path (allocates per insert)"});
      }
    }
    const std::size_t mp = find_word(s, "map");
    if (mp != std::string::npos && mp >= 5 &&
        s.compare(mp - 5, 5, "std::") == 0) {
      out.push_back({rel, i + 1, "hot-map",
                     "std::map on the hot path (allocates per insert)"});
    }
  }
}

void rule_mutex_guard(const std::string& rel, const StrippedFile& f,
                      std::vector<Finding>& out) {
  bool has_guarded_by = false;
  for (const std::string& s : f.code) {
    if (find_word(s, "XAON_GUARDED_BY") != std::string::npos) {
      has_guarded_by = true;
      break;
    }
  }
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    if (find_word(s, "mutex") != std::string::npos) {
      const std::size_t p = find_word(s, "mutex");
      if (p >= 5 && s.compare(p - 5, 5, "std::") == 0) {
        out.push_back(
            {rel, i + 1, "mutex-guard",
             "naked std::mutex — use xaon::util::Mutex (annotation-visible, "
             "util/sync.hpp) and XAON_GUARDED_BY"});
        continue;
      }
    }
    // `Mutex name;` member declaration: the file must say what it
    // guards. (Token-level heuristic: any Mutex member declaration in a
    // file with zero XAON_GUARDED_BY annotations is flagged.)
    const std::size_t m = find_word(s, "Mutex");
    if (m != std::string::npos && !has_guarded_by) {
      const std::size_t before = s.find_first_not_of(" \t");
      const bool decl_like =
          (before == m || s.compare(before, m - before, "mutable ") == 0 ||
           (m >= 6 && s.compare(m - 6, 6, "util::") == 0)) &&
          s.find(';') != std::string::npos && s.find('(') == std::string::npos;
      if (decl_like) {
        out.push_back({rel, i + 1, "mutex-guard",
                       "Mutex member but no XAON_GUARDED_BY in this file — "
                       "annotate the data it protects"});
      }
    }
  }
}

void rule_iostream(const std::string& rel, const StrippedFile& f,
                   std::vector<Finding>& out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& s = f.code[i];
    const std::size_t h = s.find('#');
    if (h == std::string::npos) continue;
    if (s.find("include", h) != std::string::npos &&
        s.find("<iostream>") != std::string::npos) {
      out.push_back({rel, i + 1, "iostream",
                     "#include <iostream> in library code (bench/tools/"
                     "tests only)"});
    }
  }
}

void rule_pragma_once(const std::string& rel, const StrippedFile& f,
                      std::vector<Finding>& out) {
  if (!is_header(rel)) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (line_is_blank_or_comment(f.code[i])) continue;
    const std::string& s = f.code[i];
    const std::size_t h = s.find('#');
    if (h != std::string::npos) {
      if (s.find("pragma", h) != std::string::npos &&
          s.find("once") != std::string::npos) {
        return;  // #pragma once up top
      }
      if (s.find("ifndef", h) != std::string::npos) return;  // classic guard
    }
    out.push_back({rel, 1, "pragma-once",
                   "header does not open with #pragma once or an include "
                   "guard"});
    return;
  }
  // Empty header: fine.
}

// ---------------------------------------------------------------------------
// Driver.

struct LintResult {
  std::vector<Finding> findings;     // after allow() suppression
  std::vector<Finding> suppressed;   // waived by allow()
  std::set<std::pair<std::string, std::size_t>> expect_unmatched;  // self-test
  std::size_t files = 0;
};

void lint_file(const fs::path& path, const std::string& rel, bool self_test,
               LintResult& res,
               std::vector<std::pair<Finding, bool>>* expect_log) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "xlint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const StrippedFile f = strip(ss.str());
  ++res.files;

  std::vector<Finding> raw_findings;
  if (is_hot_path(rel, self_test)) rule_hot_alloc(rel, f, raw_findings);
  rule_mutex_guard(rel, f, raw_findings);
  rule_iostream(rel, f, raw_findings);
  rule_pragma_once(rel, f, raw_findings);

  // allow() applies to its own line and the line directly below.
  std::set<std::pair<std::size_t, std::string>> allows;
  std::map<std::pair<std::size_t, std::string>, bool> expects;  // matched?
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    for (const std::string& r : directives(f.raw[i], "allow")) {
      allows.insert({i + 1, r});
      allows.insert({i + 2, r});
    }
    for (const std::string& r : directives(f.raw[i], "expect")) {
      expects[{i + 1, r}] = false;
    }
  }

  for (Finding& fd : raw_findings) {
    if (allows.count({fd.line, fd.rule}) != 0) {
      res.suppressed.push_back(fd);
      continue;
    }
    if (self_test) {
      auto it = expects.find({fd.line, fd.rule});
      if (it != expects.end()) {
        it->second = true;  // expected violation, fired where promised
        continue;
      }
    }
    res.findings.push_back(fd);
  }
  if (self_test) {
    for (const auto& [key, matched] : expects) {
      if (!matched) res.expect_unmatched.insert({rel, key.first});
      if (expect_log != nullptr) {
        expect_log->push_back(
            {Finding{rel, key.first, key.second, ""}, matched});
      }
    }
  }
}

void walk(const fs::path& root, const fs::path& sub, bool self_test,
          LintResult& res) {
  const fs::path dir = sub.empty() ? root : root / sub;
  if (!fs::exists(dir)) return;
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
        ext == ".ipp") {
      files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    lint_file(p, fs::relative(p, root).generic_string(), self_test, res,
              nullptr);
  }
}

int run_lint(const fs::path& root) {
  LintResult res;
  walk(root, "include", false, res);
  walk(root, "src", false, res);
  if (res.files == 0) {
    std::cerr << "xlint: no sources under " << root << "/{include,src}\n";
    return 2;
  }
  std::sort(res.findings.begin(), res.findings.end());
  for (const Finding& fd : res.findings) {
    std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
              << fd.message << "\n";
  }
  std::cout << "xlint: " << res.files << " files, " << res.findings.size()
            << " violation(s), " << res.suppressed.size()
            << " allow-listed\n";
  return res.findings.empty() ? 0 : 1;
}

int run_self_test(const fs::path& dir) {
  LintResult res;
  walk(dir, "", true, res);
  if (res.files == 0) {
    std::cerr << "xlint: no fixture sources under " << dir << "\n";
    return 2;
  }
  bool ok = true;
  for (const Finding& fd : res.findings) {
    std::cout << "self-test: UNEXPECTED finding " << fd.file << ":" << fd.line
              << " [" << fd.rule << "] " << fd.message << "\n";
    ok = false;
  }
  for (const auto& [file, line] : res.expect_unmatched) {
    std::cout << "self-test: rule did NOT fire at " << file << ":" << line
              << " (expect marker unmatched)\n";
    ok = false;
  }
  std::cout << "xlint self-test: " << res.files << " fixture files, "
            << (ok ? "all rules fired exactly as expected"
                   : "MISMATCH — see above")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--self-test") {
    return run_self_test(argv[2]);
  }
  if (argc == 2) {
    return run_lint(argv[1]);
  }
  std::cerr << "usage: xlint <repo-root> | xlint --self-test <fixture-dir>\n";
  return 2;
}
