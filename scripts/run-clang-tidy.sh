#!/usr/bin/env sh
# Run clang-tidy over the library sources using the repo's .clang-tidy
# profile. Degrades to a no-op (exit 0) with a notice when clang-tidy
# is not installed, so it is safe to wire into CI and `ctest -L tidy`
# on toolchains that only ship gcc.
#
# Usage: scripts/run-clang-tidy.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run-clang-tidy: clang-tidy not found on PATH; skipping (not a failure)."
  echo "run-clang-tidy: install clang-tidy to enable the 'tidy' tier."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run-clang-tidy: no compile_commands.json in $build_dir; configuring..."
  cmake -S "$repo_root" -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Library code only: tests and bench link gtest/benchmark headers whose
# diagnostics are not ours to fix.
files=$(find "$repo_root/src" -name '*.cpp' | sort)

status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run-clang-tidy: violations found."
else
  echo "run-clang-tidy: clean."
fi
exit "$status"
