#!/usr/bin/env sh
# Lifetime-annotation check: verifies the XAON_LIFETIME_BOUND
# ([[clang::lifetimebound]]) annotations across the arena/DOM/XPath/str
# APIs both ways under Clang:
#
#   positive  a TU including every annotated header compiles clean with
#             -Wdangling -Werror (the annotations introduce no noise on
#             correct code);
#   negative  a deliberately-dangling use (binding a view to a
#             temporary's storage) MUST produce the warning — proving
#             the annotations actually bite, not just parse.
#
# Degrades to a no-op (exit 0) with a notice when no clang++ is on
# PATH: the annotation macro expands to nothing on gcc, so there is
# nothing to check there. Same convention as run-clang-tidy.sh.
#
# Usage: scripts/check-lifetime.sh
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

if ! command -v clang++ >/dev/null 2>&1; then
  echo "check-lifetime: clang++ not found on PATH; skipping (not a failure)."
  echo "check-lifetime: XAON_LIFETIME_BOUND is a no-op on gcc — install clang to enable."
  exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

flags="-std=c++20 -fsyntax-only -I$repo_root/include -Wdangling -Werror"

# Positive: every annotated public header, warning-clean.
cat > "$tmp/clean.cpp" <<'EOF'
#include "xaon/aon/pipeline.hpp"
#include "xaon/http/message.hpp"
#include "xaon/util/arena.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/dom.hpp"
#include "xaon/xpath/xpath.hpp"
#include "xaon/xsd/regex.hpp"
#include "xaon/xsd/validator.hpp"

std::string_view fine(std::string_view s) { return xaon::util::trim(s); }
EOF
if ! clang++ $flags "$tmp/clean.cpp"; then
  echo "check-lifetime: FAIL — annotated headers are not -Wdangling-clean."
  exit 1
fi

# Negative: a view bound to a temporary's bytes must warn (and with
# -Werror, fail to compile). If this COMPILES, the annotations are dead.
cat > "$tmp/dangle.cpp" <<'EOF'
#include <string>

#include "xaon/util/str.hpp"

std::string_view oops() {
  // trim()'s result views its argument; the argument dies at the end
  // of the full-expression. XAON_LIFETIME_BOUND makes Clang see it.
  return xaon::util::trim(std::string("temporary storage"));
}
EOF
if clang++ $flags "$tmp/dangle.cpp" 2>/dev/null; then
  echo "check-lifetime: FAIL — deliberate dangling use compiled silently;"
  echo "check-lifetime: XAON_LIFETIME_BOUND annotations are not taking effect."
  exit 1
fi

echo "check-lifetime: annotated headers clean; deliberate dangle caught. OK."
exit 0
