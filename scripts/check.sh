#!/usr/bin/env sh
# One-shot gate driver: configure, build, and run every tier this
# machine's toolchain supports. Tiers whose toolchain prerequisite is
# missing are skipped with a notice, never silently — the summary at
# the end lists exactly what ran.
#
# Tiers:
#   unit      default build, full ctest suite (tier-1 gate)
#   lint      xlint invariant linter + its fixture self-test
#   lifetime  arena lifetime contract: xlint arena dataflow rules,
#             allow-directive inventory, Clang -Wdangling annotation
#             check (skips inside without clang++), canary death tests
#   model     interleaving model checker (exhaustive + random schedules)
#   metrics   per-worker metrics spine: zero-alloc recording + run_load
#             stage/balance accounting
#   cache     compiled-artifact caches: LRU/fingerprint units, skeleton
#             property tests, cached-vs-uncached differential
#   net       real-network transport: loopback TCP through the epoll
#             event loops (framing over kernel-segmented reads,
#             keep-alive pipelining, socket-downstream 502/503)
#   scan      bulk-scanning kernels: scalar/SWAR/SSE2/AVX2 differential
#             agreement, every-length tail safety, parser-level
#             impl/probe-mode differential
#   labels    static audit: every tests/*_test.cpp registers under a
#             label-carrying registrar, and every test label has a
#             matching ctest preset
#   tidy      clang-tidy profile           (skips without clang-tidy)
#   tsan      ThreadSanitizer rerun of threaded tests (skips if TSan
#             probe compile fails)
#   sanitize  ASan+UBSan suite             (skips if ASan probe fails)
#
# Usage: scripts/check.sh [--fast]
#   --fast: unit + lint + lifetime + model + metrics + cache + net +
#           scan + labels only.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
fast=0
[ "${1:-}" = "--fast" ] && fast=1

jobs=$(nproc 2>/dev/null || echo 2)
failures=""
ran=""
skipped=""

note() { printf '\n== %s ==\n' "$*"; }
record() { # record <name> <status>
  if [ "$2" -eq 0 ]; then ran="$ran $1"; else failures="$failures $1"; fi
}

probe_compiles() { # probe_compiles <extra flags...>
  tmp=$(mktemp -d)
  printf 'int main(){return 0;}\n' > "$tmp/p.c"
  cc "$@" "$tmp/p.c" -o "$tmp/p" >/dev/null 2>&1
  rc=$?
  rm -rf "$tmp"
  return $rc
}

note "unit (tier-1)"
cmake --preset default >/dev/null && \
  cmake --build "$repo_root/build" -j"$jobs" >/dev/null && \
  ctest --test-dir "$repo_root/build" -j"$jobs" --output-on-failure
record unit $?

note "lint"
ctest --test-dir "$repo_root/build" -L lint --output-on-failure
record lint $?

note "lifetime"
ctest --test-dir "$repo_root/build" -L lifetime --output-on-failure
record lifetime $?

note "model"
ctest --test-dir "$repo_root/build" -L model --output-on-failure
record model $?

note "metrics"
ctest --test-dir "$repo_root/build" -L metrics --output-on-failure
record metrics $?

note "cache"
ctest --test-dir "$repo_root/build" -L cache -j"$jobs" --output-on-failure
record cache $?

note "net"
ctest --test-dir "$repo_root/build" -L net --output-on-failure
record net $?

note "scan"
ctest --test-dir "$repo_root/build" -L scan -j"$jobs" --output-on-failure
record scan $?

# Label coverage audit: a test file that registers without a label is
# invisible to every `ctest -L` tier above — fail loudly instead.
note "labels"
labels_rc=0
for f in "$repo_root"/tests/*_test.cpp "$repo_root"/tests/model/*_test.cpp; do
  [ -e "$f" ] || continue
  name=$(basename "$f" .cpp)
  if ! grep -Eq "(xaon_test|xaon_labeled_test|xaon_register_labeled)\\($name[ )\"]" \
       "$repo_root/tests/CMakeLists.txt"; then
    echo "labels: $name has no label-carrying registration in tests/CMakeLists.txt"
    labels_rc=1
  fi
done
# Every label a labeled registration declares must have a ctest preset
# (`unit` is the tier-1 default and is exercised by the full suite).
for label in $(grep -Eo '(xaon_labeled_test|xaon_register_labeled)\([a-z_0-9]+ "?[a-z;]+"?' \
                 "$repo_root/tests/CMakeLists.txt" \
               | awk '{print $2}' | tr -d '"' | tr ';' '\n' | sort -u); do
  [ "$label" = "unit" ] && continue
  if ! grep -q "\"label\": \"$label\"" "$repo_root/CMakePresets.json"; then
    echo "labels: label '$label' has no test preset in CMakePresets.json"
    labels_rc=1
  fi
done
[ "$labels_rc" -eq 0 ] && echo "labels: every test registered and every label has a preset."
record labels $labels_rc

if [ "$fast" -eq 1 ]; then
  note "summary (--fast)"
else
  note "tidy"
  "$repo_root/scripts/run-clang-tidy.sh" "$repo_root/build"
  record tidy $?

  note "tsan"
  if probe_compiles -fsanitize=thread; then
    cmake --preset sanitize-tsan >/dev/null && \
      cmake --build "$repo_root/build-tsan" -j"$jobs" >/dev/null && \
      ctest --test-dir "$repo_root/build-tsan" -L tsan -j"$jobs" --output-on-failure
    record tsan $?
  else
    echo "check: toolchain cannot compile -fsanitize=thread; skipping tsan tier."
    skipped="$skipped tsan"
  fi

  note "sanitize (ASan+UBSan)"
  if probe_compiles -fsanitize=address,undefined; then
    cmake --preset sanitize >/dev/null && \
      cmake --build "$repo_root/build-sanitize" -j"$jobs" >/dev/null && \
      ctest --test-dir "$repo_root/build-sanitize" -j"$jobs" --output-on-failure
    record sanitize $?
  else
    echo "check: toolchain cannot compile -fsanitize=address; skipping sanitize tier."
    skipped="$skipped sanitize"
  fi

  note "summary"
fi

[ -n "$ran" ]      && echo "ran:    $ran"
[ -n "$skipped" ]  && echo "skipped:$skipped"
if [ -n "$failures" ]; then
  echo "FAILED:$failures"
  exit 1
fi
echo "all gates passed."
