#include "xaon/xsd/validator.hpp"

#include "automaton.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"

namespace xaon::xsd {

std::string ValidationResult::to_string() const {
  if (valid()) return "valid";
  std::string out;
  for (const ValidationError& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

namespace detail {

/// Per-recursion-depth buffers for the content-model match. Each depth
/// gets its own frame (a parent's child list must survive while its
/// children recurse); frames are cleared and reused across messages.
struct XAON_ARENA_TIED WalkFrame {
  std::vector<const xml::Node*> children;
  std::vector<ContentAutomaton::Symbol> symbols;
  std::vector<const ElementDecl*> matched;
  std::string expected;
};

struct XAON_ARENA_TIED WalkScratch {
  std::vector<std::unique_ptr<WalkFrame>> frames;
  std::vector<const xml::Node*> stack;  ///< ancestor chain for lazy paths
  std::string text_buf;                 ///< simple-content accumulation

  WalkFrame& frame(std::size_t depth) {
    while (frames.size() <= depth) {
      frames.push_back(std::make_unique<WalkFrame>());
    }
    return *frames[depth];
  }
};

}  // namespace detail

namespace {

const std::uint32_t kAttrSite =
    probe::site("xsd.validate.attr", probe::SiteKind::kData);
const std::uint32_t kChildSite =
    probe::site("xsd.validate.child", probe::SiteKind::kLoop);

bool is_namespace_decl(const xml::Attr* a) {
  return a->qname == "xmlns" || util::starts_with(a->qname, "xmlns:");
}

bool is_xsi_attr(const xml::Attr* a) {
  return a->ns_uri == "http://www.w3.org/2001/XMLSchema-instance";
}

bool ws_only(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

class Walker {
 public:
  Walker(const Schema& schema, std::size_t max_errors,
         ValidationResult* result, detail::WalkScratch& scratch)
      : schema_(schema),
        max_errors_(max_errors),
        result_(result),
        scratch_(scratch) {
    scratch_.stack.clear();
  }

  void element(const xml::Node* node, const ElementDecl* decl) {
    if (capped()) return;
    probe::load(node, sizeof(xml::Node));

    scratch_.stack.push_back(node);
    if (decl->complex_type != nullptr) {
      complex(node, decl->complex_type);
    } else if (decl->simple_type != nullptr) {
      simple(node, decl->simple_type);
    }
    // Neither: anyType — accept anything beneath.
    scratch_.stack.pop_back();
  }

 private:
  bool capped() const { return result_->errors.size() >= max_errors_; }

  /// Builds the /root/child[2]/leaf-style location of the element on top
  /// of the walk stack (plus `extra`, if given). Only error reporting
  /// pays for path strings — the valid path never materializes one.
  std::string current_path(const xml::Node* extra = nullptr) const {
    std::string path;
    const auto append = [&path](const xml::Node* n, bool with_index) {
      path += '/';
      path += n->qname;
      if (with_index) {
        // 1-based position among same-named siblings, XPath style.
        std::size_t pos = 1;
        for (const xml::Node* s = n->prev_sibling; s != nullptr;
             s = s->prev_sibling) {
          if (s->is_element() && s->qname == n->qname) ++pos;
        }
        path += '[';
        path += std::to_string(pos);  // xlint: allow(hot-string): cold error path — message built only on validation failure
        path += ']';
      }
    };
    for (std::size_t i = 0; i < scratch_.stack.size(); ++i) {
      append(scratch_.stack[i], i > 0);
    }
    if (extra != nullptr) append(extra, true);
    return path;
  }

  void add_error(std::string message, const xml::Node* extra = nullptr) {
    if (!capped()) {
      result_->errors.push_back(
          ValidationError{current_path(extra), std::move(message)});
    }
  }

  void simple(const xml::Node* node, const SimpleType* type) {
    // Simple content: no element children.
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) {
        add_error("element '" + std::string(c->qname) +  // xlint: allow(hot-string): cold error path — message built only on validation failure
                  "' not allowed in simple content");
        return;
      }
    }
    std::string error;
    scratch_.text_buf.clear();
    node->text_content_to(scratch_.text_buf);
    if (!type->validate(scratch_.text_buf, &error)) {
      add_error(std::move(error));
    }
  }

  void attributes(const xml::Node* node, const ComplexType* type) {
    // Every present attribute must be declared (xmlns/xsi exempt).
    for (const xml::Attr* a = node->first_attr; a != nullptr; a = a->next) {
      probe::load(a, sizeof(xml::Attr));
      if (is_namespace_decl(a) || is_xsi_attr(a)) continue;
      const AttributeUse* use = nullptr;
      for (const AttributeUse& u : type->attributes) {
        if (probe::branch(kAttrSite, u.name == a->local)) {
          use = &u;
          break;
        }
      }
      if (use == nullptr) {
        add_error("undeclared attribute '" + std::string(a->qname) + "'");  // xlint: allow(hot-string): cold error path — message built only on validation failure
        continue;
      }
      if (use->type != nullptr) {
        std::string error;
        if (!use->type->validate(a->value, &error)) {
          add_error("attribute '" + use->name + "': " + error);
        }
      }
      if (use->fixed) {
        const Whitespace ws = use->type != nullptr
                                  ? use->type->effective_whitespace()
                                  : Whitespace::kPreserve;
        const bool matches = whitespace_is_normalized(a->value, ws)
                                 ? a->value == *use->fixed
                                 : apply_whitespace(a->value, ws) ==
                                       *use->fixed;
        if (!matches) {
          add_error("attribute '" + use->name +
                    "' must have fixed value '" + *use->fixed + "'");
        }
      }
    }
    // Required attributes must be present.
    for (const AttributeUse& u : type->attributes) {
      if (!u.required) continue;
      bool present = false;
      for (const xml::Attr* a = node->first_attr; a != nullptr;
           a = a->next) {
        if (a->local == u.name && !is_namespace_decl(a)) {
          present = true;
          break;
        }
      }
      if (!present) {
        add_error("required attribute '" + u.name + "' missing");
      }
    }
  }

  void complex(const xml::Node* node, const ComplexType* type) {
    attributes(node, type);

    switch (type->content) {
      case ContentKind::kEmpty: {
        for (const xml::Node* c = node->first_child; c != nullptr;
             c = c->next_sibling) {
          if (c->is_element() || (c->is_text() && !ws_only(c->text))) {
            add_error("content not allowed (empty content model)");
            break;
          }
        }
        return;
      }
      case ContentKind::kSimple: {
        for (const xml::Node* c = node->first_child; c != nullptr;
             c = c->next_sibling) {
          if (c->is_element()) {
            add_error("element '" + std::string(c->qname) +  // xlint: allow(hot-string): cold error path — message built only on validation failure
                      "' not allowed in simple content");
            return;
          }
        }
        if (type->simple_content != nullptr) {
          std::string error;
          scratch_.text_buf.clear();
          node->text_content_to(scratch_.text_buf);
          if (!type->simple_content->validate(scratch_.text_buf, &error)) {
            add_error(std::move(error));
          }
        }
        return;
      }
      case ContentKind::kElementOnly:
      case ContentKind::kMixed:
        break;
    }

    // Element-only: flag non-whitespace text.
    if (type->content == ContentKind::kElementOnly) {
      for (const xml::Node* c = node->first_child; c != nullptr;
           c = c->next_sibling) {
        if (c->is_text() && !ws_only(c->text)) {
          add_error("text not allowed in element-only content");
          break;
        }
      }
    }

    // Gather child elements and match against the content model. The
    // frame is per-depth so it stays valid while children recurse.
    detail::WalkFrame& frame = scratch_.frame(scratch_.stack.size());
    frame.children.clear();
    frame.symbols.clear();
    frame.matched.clear();
    frame.expected.clear();
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      probe::branch(kChildSite, c->is_element());
      if (!c->is_element()) continue;
      frame.children.push_back(c);
      frame.symbols.push_back(
          detail::ContentAutomaton::Symbol{c->ns_uri, c->local});
    }

    std::size_t error_index = 0;
    bool ok;
    if (!type->particle.has_value()) {
      ok = frame.children.empty();
      if (!ok) {
        error_index = 0;
        frame.expected = "(no children declared)";
      }
    } else if (type->particle->kind == ParticleKind::kAll) {
      ok = detail::match_all_group(*type->particle, frame.symbols,
                                   &frame.matched, &error_index,
                                   &frame.expected);
    } else {
      XAON_CHECK_MSG(type->automaton != nullptr,
                     "Schema::finalize() not called");
      ok = type->automaton->match(frame.symbols, &frame.matched,
                                  &error_index, &frame.expected);
    }
    if (!ok) {
      if (error_index < frame.children.size()) {
        add_error("unexpected element '" +
                      std::string(frame.children[error_index]->qname) +  // xlint: allow(hot-string): cold error path — message built only on validation failure
                      "' (expected: " + frame.expected + ")",
                  frame.children[error_index]);
      } else {
        add_error("content ended too soon (expected: " + frame.expected +
                  ")");
      }
      // Recurse into the children that did match so nested errors still
      // surface.
    }
    const std::size_t recurse_count =
        ok ? frame.children.size() : frame.matched.size();
    for (std::size_t i = 0; i < recurse_count && !capped(); ++i) {
      element(frame.children[i], frame.matched[i]);
    }
  }

  const Schema& schema_;
  std::size_t max_errors_;
  ValidationResult* result_;
  detail::WalkScratch& scratch_;
};

}  // namespace

Validator::Validator(const Schema& schema)
    : schema_(&schema), scratch_(new detail::WalkScratch()) {}  // xlint: allow(hot-new): one-time scratch allocation at validator construction
Validator::~Validator() = default;
Validator::Validator(Validator&&) noexcept = default;
Validator& Validator::operator=(Validator&&) noexcept = default;

ValidationResult Validator::validate(const xml::Document& doc) const {
  ValidationResult result;
  const xml::Node* root = doc.root();
  if (root == nullptr) {
    result.errors.push_back(ValidationError{"/", "document has no root"});
    return result;
  }
  const ElementDecl* decl =
      schema_->find_global_element(root->ns_uri, root->local);
  if (decl == nullptr) {
    result.errors.push_back(ValidationError{
        "/" + std::string(root->qname),  // xlint: allow(hot-string): cold error path — message built only on validation failure
        "no global element declaration for root '" +
            std::string(root->qname) + "'"});  // xlint: allow(hot-string): cold error path — message built only on validation failure
    return result;
  }
  detail::WalkScratch scratch;
  Walker walker(*schema_, max_errors_, &result, scratch);
  walker.element(root, decl);
  return result;
}

ValidationResult Validator::validate_element(const xml::Node* element,
                                             const ElementDecl* decl) const {
  ValidationResult result;
  XAON_CHECK(element != nullptr && decl != nullptr);
  detail::WalkScratch scratch;
  Walker walker(*schema_, max_errors_, &result, scratch);
  walker.element(element, decl);
  return result;
}

const ValidationResult& Validator::validate_element_reuse(
    const xml::Node* element, const ElementDecl* decl) {
  XAON_CHECK(element != nullptr && decl != nullptr);
  reset();
  Walker walker(*schema_, max_errors_, &result_, *scratch_);
  walker.element(element, decl);
  return result_;
}

void Validator::reset() { result_.errors.clear(); }

}  // namespace xaon::xsd
