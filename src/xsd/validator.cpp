#include "xaon/xsd/validator.hpp"

#include "automaton.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"

namespace xaon::xsd {

std::string ValidationResult::to_string() const {
  if (valid()) return "valid";
  std::string out;
  for (const ValidationError& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

namespace {

const std::uint32_t kAttrSite =
    probe::site("xsd.validate.attr", probe::SiteKind::kData);
const std::uint32_t kChildSite =
    probe::site("xsd.validate.child", probe::SiteKind::kLoop);

bool is_namespace_decl(const xml::Attr* a) {
  return a->qname == "xmlns" || util::starts_with(a->qname, "xmlns:");
}

bool is_xsi_attr(const xml::Attr* a) {
  return a->ns_uri == "http://www.w3.org/2001/XMLSchema-instance";
}

class Walker {
 public:
  Walker(const Schema& schema, std::size_t max_errors,
         ValidationResult* result)
      : schema_(schema), max_errors_(max_errors), result_(result) {}

  void element(const xml::Node* node, const ElementDecl* decl,
               const std::string& path) {
    if (capped()) return;
    probe::load(node, sizeof(xml::Node));

    if (decl->complex_type != nullptr) {
      complex(node, decl->complex_type, path);
    } else if (decl->simple_type != nullptr) {
      simple(node, decl->simple_type, path);
    }
    // Neither: anyType — accept anything beneath.
  }

 private:
  bool capped() const { return result_->errors.size() >= max_errors_; }

  void add_error(const std::string& path, std::string message) {
    if (!capped()) {
      result_->errors.push_back(ValidationError{path, std::move(message)});
    }
  }

  void simple(const xml::Node* node, const SimpleType* type,
              const std::string& path) {
    // Simple content: no element children.
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->is_element()) {
        add_error(path, "element '" + std::string(c->qname) +
                            "' not allowed in simple content");
        return;
      }
    }
    std::string error;
    const std::string text = node->text_content();
    if (!type->validate(text, &error)) add_error(path, error);
  }

  void attributes(const xml::Node* node, const ComplexType* type,
                  const std::string& path) {
    // Every present attribute must be declared (xmlns/xsi exempt).
    for (const xml::Attr* a = node->first_attr; a != nullptr; a = a->next) {
      probe::load(a, sizeof(xml::Attr));
      if (is_namespace_decl(a) || is_xsi_attr(a)) continue;
      const AttributeUse* use = nullptr;
      for (const AttributeUse& u : type->attributes) {
        if (probe::branch(kAttrSite, u.name == a->local)) {
          use = &u;
          break;
        }
      }
      if (use == nullptr) {
        add_error(path, "undeclared attribute '" + std::string(a->qname) +
                            "'");
        continue;
      }
      if (use->type != nullptr) {
        std::string error;
        if (!use->type->validate(a->value, &error)) {
          add_error(path, "attribute '" + use->name + "': " + error);
        }
      }
      if (use->fixed) {
        const Whitespace ws = use->type != nullptr
                                  ? use->type->effective_whitespace()
                                  : Whitespace::kPreserve;
        if (apply_whitespace(a->value, ws) != *use->fixed) {
          add_error(path, "attribute '" + use->name +
                              "' must have fixed value '" + *use->fixed +
                              "'");
        }
      }
    }
    // Required attributes must be present.
    for (const AttributeUse& u : type->attributes) {
      if (!u.required) continue;
      bool present = false;
      for (const xml::Attr* a = node->first_attr; a != nullptr;
           a = a->next) {
        if (a->local == u.name && !is_namespace_decl(a)) {
          present = true;
          break;
        }
      }
      if (!present) {
        add_error(path, "required attribute '" + u.name + "' missing");
      }
    }
  }

  void complex(const xml::Node* node, const ComplexType* type,
               const std::string& path) {
    attributes(node, type, path);

    switch (type->content) {
      case ContentKind::kEmpty: {
        for (const xml::Node* c = node->first_child; c != nullptr;
             c = c->next_sibling) {
          if (c->is_element() ||
              (c->is_text() &&
               !apply_whitespace(c->text, Whitespace::kCollapse).empty())) {
            add_error(path, "content not allowed (empty content model)");
            break;
          }
        }
        return;
      }
      case ContentKind::kSimple: {
        for (const xml::Node* c = node->first_child; c != nullptr;
             c = c->next_sibling) {
          if (c->is_element()) {
            add_error(path, "element '" + std::string(c->qname) +
                                "' not allowed in simple content");
            return;
          }
        }
        if (type->simple_content != nullptr) {
          std::string error;
          if (!type->simple_content->validate(node->text_content(),
                                              &error)) {
            add_error(path, error);
          }
        }
        return;
      }
      case ContentKind::kElementOnly:
      case ContentKind::kMixed:
        break;
    }

    // Element-only: flag non-whitespace text.
    if (type->content == ContentKind::kElementOnly) {
      for (const xml::Node* c = node->first_child; c != nullptr;
           c = c->next_sibling) {
        if (c->is_text() &&
            !apply_whitespace(c->text, Whitespace::kCollapse).empty()) {
          add_error(path, "text not allowed in element-only content");
          break;
        }
      }
    }

    // Gather child elements and match against the content model.
    std::vector<const xml::Node*> children;
    std::vector<detail::ContentAutomaton::Symbol> symbols;
    for (const xml::Node* c = node->first_child; c != nullptr;
         c = c->next_sibling) {
      probe::branch(kChildSite, c->is_element());
      if (!c->is_element()) continue;
      children.push_back(c);
      symbols.push_back(
          detail::ContentAutomaton::Symbol{c->ns_uri, c->local});
    }

    std::vector<const ElementDecl*> matched;
    std::size_t error_index = 0;
    std::string expected;
    bool ok;
    if (!type->particle.has_value()) {
      ok = children.empty();
      if (!ok) {
        error_index = 0;
        expected = "(no children declared)";
      }
    } else if (type->particle->kind == ParticleKind::kAll) {
      ok = detail::match_all_group(*type->particle, symbols, &matched,
                                   &error_index, &expected);
    } else {
      XAON_CHECK_MSG(type->automaton != nullptr,
                     "Schema::finalize() not called");
      ok = type->automaton->match(symbols, &matched, &error_index,
                                  &expected);
    }
    if (!ok) {
      if (error_index < children.size()) {
        add_error(child_path(path, children, error_index),
                  "unexpected element '" +
                      std::string(children[error_index]->qname) +
                      "' (expected: " + expected + ")");
      } else {
        add_error(path, "content ended too soon (expected: " + expected +
                            ")");
      }
      // Recurse into the children that did match so nested errors still
      // surface.
    }
    const std::size_t recurse_count =
        ok ? children.size() : matched.size();
    for (std::size_t i = 0; i < recurse_count && !capped(); ++i) {
      element(children[i], matched[i], child_path(path, children, i));
    }
  }

  static std::string child_path(const std::string& parent,
                                const std::vector<const xml::Node*>& children,
                                std::size_t index) {
    // 1-based position among same-named siblings, XPath style.
    std::size_t pos = 1;
    for (std::size_t j = 0; j < index; ++j) {
      if (children[j]->qname == children[index]->qname) ++pos;
    }
    return parent + "/" + std::string(children[index]->qname) + "[" +
           std::to_string(pos) + "]";
  }

  const Schema& schema_;
  std::size_t max_errors_;
  ValidationResult* result_;
};

}  // namespace

ValidationResult Validator::validate(const xml::Document& doc) const {
  ValidationResult result;
  const xml::Node* root = doc.root();
  if (root == nullptr) {
    result.errors.push_back(ValidationError{"/", "document has no root"});
    return result;
  }
  const ElementDecl* decl =
      schema_.find_global_element(root->ns_uri, root->local);
  if (decl == nullptr) {
    result.errors.push_back(ValidationError{
        "/" + std::string(root->qname),
        "no global element declaration for root '" +
            std::string(root->qname) + "'"});
    return result;
  }
  Walker walker(schema_, max_errors_, &result);
  walker.element(root, decl, "/" + std::string(root->qname));
  return result;
}

ValidationResult Validator::validate_element(const xml::Node* element,
                                             const ElementDecl* decl) const {
  ValidationResult result;
  XAON_CHECK(element != nullptr && decl != nullptr);
  Walker walker(schema_, max_errors_, &result);
  walker.element(element, decl, "/" + std::string(element->qname));
  return result;
}

}  // namespace xaon::xsd
