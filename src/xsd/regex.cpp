#include "xaon/xsd/regex.hpp"

#include <algorithm>
#include <bitset>
#include <limits>
#include <vector>

#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"

namespace xaon::xsd {

namespace {

/// VM opcodes (Pike VM, Thompson construction).
enum class Op : std::uint8_t {
  kChar,   ///< match one byte in the class, advance
  kSplit,  ///< fork to x and y
  kJmp,    ///< jump to x
  kMatch,  ///< accept (when input exhausted — anchored)
};

struct Inst {
  Op op = Op::kMatch;
  std::uint32_t x = 0;  ///< kSplit: branch 1; kJmp: target
  std::uint32_t y = 0;  ///< kSplit: branch 2
  std::uint32_t cls = 0;  ///< kChar: index into Program::classes
};

using ByteSet = std::bitset<256>;

}  // namespace

struct Regex::Program {
  std::vector<Inst> insts;
  std::vector<ByteSet> classes;
  std::string pattern;
  std::uint32_t start = 0;
};

namespace {

const std::uint32_t kStepSite =
    probe::site("xsd.regex.step", probe::SiteKind::kLoop);

class XAON_ARENA_TIED Compiler {
 public:
  Compiler(std::string_view pattern, Regex::Program& prog)
      : in_(pattern), prog_(prog) {}

  bool run(std::string* error) {
    // Parse into a fragment; patch ends to a Match instruction.
    Frag f;
    if (!parse_alt(&f)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    if (pos_ != in_.size()) {
      if (error != nullptr) *error = "unexpected ')'";
      return false;
    }
    const std::uint32_t m = emit(Inst{Op::kMatch, 0, 0, 0});
    patch(f.out, m);
    // `start` is f.start unless empty pattern (f.start == kNone).
    if (f.start == kNone) {
      start_ = m;
    } else {
      start_ = f.start;
    }
    prog_.start = start_;
    return true;
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Frag {
    std::uint32_t start = kNone;
    // Dangling out-pointers: list of (inst index, which field 0=x,1=y).
    std::vector<std::pair<std::uint32_t, int>> out;
  };

  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  bool fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
    return false;
  }

  std::uint32_t emit(Inst inst) {
    prog_.insts.push_back(inst);
    return static_cast<std::uint32_t>(prog_.insts.size() - 1);
  }

  void patch(const std::vector<std::pair<std::uint32_t, int>>& outs,
             std::uint32_t target) {
    for (auto [idx, field] : outs) {
      if (field == 0) {
        prog_.insts[idx].x = target;
      } else {
        prog_.insts[idx].y = target;
      }
    }
  }

  std::uint32_t add_class(const ByteSet& s) {
    prog_.classes.push_back(s);
    return static_cast<std::uint32_t>(prog_.classes.size() - 1);
  }

  /// Concatenate fragments a . b.
  Frag cat(Frag a, Frag b) {
    if (a.start == kNone) return b;
    if (b.start == kNone) return a;
    patch(a.out, b.start);
    return Frag{a.start, std::move(b.out)};
  }

  // alt ::= cat ('|' cat)*
  bool parse_alt(Frag* out) {
    Frag f;
    if (!parse_cat(&f)) return false;
    while (!eof() && peek() == '|') {
      ++pos_;
      Frag g;
      if (!parse_cat(&g)) return false;
      // split -> f.start / g.start
      const bool f_empty = f.start == kNone;
      const bool g_empty = g.start == kNone;
      Frag merged;
      const std::uint32_t s = emit(Inst{Op::kSplit, 0, 0, 0});
      merged.start = s;
      if (f_empty) {
        merged.out.emplace_back(s, 0);
      } else {
        prog_.insts[s].x = f.start;
        merged.out.insert(merged.out.end(), f.out.begin(), f.out.end());
      }
      if (g_empty) {
        merged.out.emplace_back(s, 1);
      } else {
        prog_.insts[s].y = g.start;
        merged.out.insert(merged.out.end(), g.out.begin(), g.out.end());
      }
      f = std::move(merged);
    }
    *out = std::move(f);
    return true;
  }

  // cat ::= piece*
  bool parse_cat(Frag* out) {
    Frag acc;  // empty
    while (!eof() && peek() != '|' && peek() != ')') {
      Frag p;
      if (!parse_piece(&p)) return false;
      acc = cat(std::move(acc), std::move(p));
    }
    *out = std::move(acc);
    return true;
  }

  // piece ::= atom quantifier?
  bool parse_piece(Frag* out) {
    Frag a;
    if (!parse_atom(&a)) return false;
    if (eof()) {
      *out = std::move(a);
      return true;
    }
    const char q = peek();
    if (q == '*' || q == '+' || q == '?') {
      ++pos_;
      *out = quantify(std::move(a), q == '+' ? 1 : 0,
                      q == '?' ? 1 : -1);
      return true;
    }
    if (q == '{') {
      ++pos_;
      int lo = 0, hi = -1;
      if (!parse_int(&lo)) return fail("bad {n,m} quantifier");
      if (!eof() && peek() == ',') {
        ++pos_;
        if (!eof() && peek() != '}') {
          if (!parse_int(&hi)) return fail("bad {n,m} quantifier");
          if (hi < lo) return fail("{n,m} with m < n");
        }
      } else {
        hi = lo;
      }
      if (eof() || peek() != '}') return fail("unterminated {n,m}");
      ++pos_;
      constexpr int kMaxRepeat = 512;
      if (lo > kMaxRepeat || hi > kMaxRepeat) {
        return fail("quantifier bound too large");
      }
      *out = repeat(std::move(a), lo, hi);
      return true;
    }
    *out = std::move(a);
    return true;
  }

  bool parse_int(int* out) {
    if (eof() || peek() < '0' || peek() > '9') return false;
    long v = 0;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      v = v * 10 + (peek() - '0');
      if (v > 100000) return false;
      ++pos_;
    }
    *out = static_cast<int>(v);
    return true;
  }

  /// Clone a fragment by re-parsing is impossible; instead we clone the
  /// instruction subgraph. Fragments are contiguous ranges because we
  /// emit depth-first, so cloning = copying the range and shifting
  /// targets. We record each atom's range to make this safe.
  struct Span {
    std::uint32_t lo, hi;  // [lo, hi) instruction range
  };

  Frag clone(const Frag& f, Span span) {
    if (f.start == kNone) return Frag{};
    const std::uint32_t base = static_cast<std::uint32_t>(prog_.insts.size());
    const std::uint32_t shift = base - span.lo;
    for (std::uint32_t i = span.lo; i < span.hi; ++i) {
      Inst inst = prog_.insts[i];
      // Shift continuation targets that point inside the span; targets
      // outside (or dangling fields) are fixed via the cloned out-list.
      if (inst.op == Op::kSplit || inst.op == Op::kJmp ||
          inst.op == Op::kChar) {
        if (inst.x >= span.lo && inst.x < span.hi) inst.x += shift;
      }
      if (inst.op == Op::kSplit) {
        if (inst.y >= span.lo && inst.y < span.hi) inst.y += shift;
      }
      prog_.insts.push_back(inst);
    }
    Frag g;
    g.start = f.start + shift;
    for (auto [idx, field] : f.out) g.out.emplace_back(idx + shift, field);
    return g;
  }

  /// lo..hi repetition (hi == -1: unbounded). `a`'s instructions must be
  /// the tail of the instruction list (guaranteed: atoms emit
  /// depth-first and quantifiers attach to the last atom parsed).
  Frag repeat(Frag a, int lo, int hi) {
    const Span span{a_span_lo_,
                    static_cast<std::uint32_t>(prog_.insts.size())};
    const Frag orig = a_orig_;  // descriptor of the original instructions
    if (hi == -1 && lo <= 1) return quantify(std::move(a), lo, -1);
    Frag acc;
    bool a_used = false;
    auto next_copy = [&]() -> Frag {
      if (!a_used) {
        a_used = true;
        return std::move(a);
      }
      return clone(orig, span);
    };
    for (int i = 0; i < lo; ++i) {
      acc = cat(std::move(acc), next_copy());
    }
    if (hi == -1) {
      acc = cat(std::move(acc), quantify(next_copy(), 0, -1));
      return acc;
    }
    for (int i = lo; i < hi; ++i) {
      acc = cat(std::move(acc), quantify(next_copy(), 0, 1));
    }
    return acc;
  }

  /// Kleene-style quantification of a fragment:
  /// (0,-1)=* (1,-1)=+ (0,1)=?
  Frag quantify(Frag a, int lo, int hi) {
    if (a.start == kNone) return a;
    if (lo == 0 && hi == 1) {
      const std::uint32_t s = emit(Inst{Op::kSplit, a.start, 0, 0});
      Frag f;
      f.start = s;
      f.out = std::move(a.out);
      f.out.emplace_back(s, 1);
      return f;
    }
    if (lo == 0 && hi == -1) {
      const std::uint32_t s = emit(Inst{Op::kSplit, a.start, 0, 0});
      patch(a.out, s);
      Frag f;
      f.start = s;
      f.out.emplace_back(s, 1);
      return f;
    }
    if (lo == 1 && hi == -1) {
      const std::uint32_t s = emit(Inst{Op::kSplit, a.start, 0, 0});
      patch(a.out, s);
      Frag f;
      f.start = a.start;
      f.out.emplace_back(s, 1);
      return f;
    }
    XAON_CHECK_MSG(false, "quantify: unexpected bounds");
    return a;
  }

  // atom ::= '(' alt ')' | charclass | escaped | '.' | literal
  bool parse_atom(Frag* out) {
    // Record where this atom's instructions start. Nested atoms (inside
    // groups) overwrite a_span_lo_, so restore it after the recursion —
    // quantifiers clone the full [atom_lo, end) range.
    const auto atom_lo = static_cast<std::uint32_t>(prog_.insts.size());
    a_span_lo_ = atom_lo;
    if (eof()) return fail("expected atom");
    const char c = peek();
    if (c == '(') {
      ++pos_;
      if (!parse_alt(out)) return false;
      if (eof() || peek() != ')') return fail("unbalanced '('");
      ++pos_;
      a_orig_ = *out;
      a_span_lo_ = atom_lo;
      return true;
    }
    if (c == '*' || c == '+' || c == '?' || c == '{') {
      return fail("quantifier with nothing to repeat");
    }
    ByteSet set;
    if (c == '[') {
      if (!parse_class(&set)) return false;
    } else if (c == '.') {
      ++pos_;
      set.set();
      set.reset(static_cast<std::size_t>('\n'));
      set.reset(static_cast<std::size_t>('\r'));
    } else if (c == '\\') {
      ++pos_;
      if (!parse_escape(&set)) return false;
    } else {
      ++pos_;
      set.set(static_cast<unsigned char>(c));
    }
    const std::uint32_t cls = add_class(set);
    const std::uint32_t i = emit(Inst{Op::kChar, 0, 0, cls});
    Frag f;
    f.start = i;
    f.out.emplace_back(i, 0);
    *out = f;
    a_orig_ = f;
    return true;
  }

  bool parse_escape(ByteSet* set) {
    if (eof()) return fail("dangling '\\'");
    const char c = peek();
    ++pos_;
    auto digits = [&] {
      for (char d = '0'; d <= '9'; ++d) set->set(static_cast<unsigned char>(d));
    };
    auto word = [&] {
      digits();
      for (char d = 'a'; d <= 'z'; ++d) set->set(static_cast<unsigned char>(d));
      for (char d = 'A'; d <= 'Z'; ++d) set->set(static_cast<unsigned char>(d));
      set->set(static_cast<unsigned char>('_'));
      // XSD \w also covers non-ASCII "word" chars; include high bytes.
      for (int b = 0x80; b < 0x100; ++b) set->set(static_cast<std::size_t>(b));
    };
    auto space = [&] {
      for (char d : {' ', '\t', '\n', '\r', '\f', '\v'}) {
        set->set(static_cast<unsigned char>(d));
      }
    };
    switch (c) {
      case 'd': digits(); return true;
      case 'D': digits(); set->flip(); return true;
      case 'w': word(); return true;
      case 'W': word(); set->flip(); return true;
      case 's': space(); return true;
      case 'S': space(); set->flip(); return true;
      case 'n': set->set(static_cast<unsigned char>('\n')); return true;
      case 't': set->set(static_cast<unsigned char>('\t')); return true;
      case 'r': set->set(static_cast<unsigned char>('\r')); return true;
      case '\\': case '.': case '-': case '^': case '$': case '[': case ']':
      case '(': case ')': case '{': case '}': case '*': case '+': case '?':
      case '|': case '"': case '\'':
        set->set(static_cast<unsigned char>(c));
        return true;
      default:
        return fail(std::string("unsupported escape '\\") + c + "'");  // xlint: allow(hot-string): cold error path — message built only on compile failure
    }
  }

  bool parse_class(ByteSet* set) {
    ++pos_;  // '['
    bool negate = false;
    if (!eof() && peek() == '^') {
      negate = true;
      ++pos_;
    }
    bool first = true;
    while (!eof() && (peek() != ']' || first)) {
      first = false;
      ByteSet item;
      char lo_char = 0;
      bool single = false;
      if (peek() == '\\') {
        ++pos_;
        if (!parse_escape(&item)) return false;
        // Range start only valid for single-char escapes; detect.
        if (item.count() == 1) {
          for (int b = 0; b < 256; ++b) {
            if (item.test(static_cast<std::size_t>(b))) {
              lo_char = static_cast<char>(b);
              single = true;
              break;
            }
          }
        }
      } else {
        lo_char = peek();
        ++pos_;
        item.set(static_cast<unsigned char>(lo_char));
        single = true;
      }
      if (single && !eof() && peek() == '-' && pos_ + 1 < in_.size() &&
          in_[pos_ + 1] != ']') {
        ++pos_;  // '-'
        char hi_char = peek();
        if (hi_char == '\\') {
          ++pos_;
          ByteSet esc;
          if (!parse_escape(&esc)) return false;
          if (esc.count() != 1) return fail("bad range end");
          for (int b = 0; b < 256; ++b) {
            if (esc.test(static_cast<std::size_t>(b))) {
              hi_char = static_cast<char>(b);
              break;
            }
          }
        } else {
          ++pos_;
        }
        if (static_cast<unsigned char>(hi_char) <
            static_cast<unsigned char>(lo_char)) {
          return fail("reversed character range");
        }
        item.reset();
        for (int b = static_cast<unsigned char>(lo_char);
             b <= static_cast<unsigned char>(hi_char); ++b) {
          item.set(static_cast<std::size_t>(b));
        }
      }
      *set |= item;
    }
    if (eof()) return fail("unterminated character class");
    ++pos_;  // ']'
    if (negate) set->flip();
    return true;
  }

  std::string_view in_;
  Regex::Program& prog_;
  std::size_t pos_ = 0;
  std::uint32_t start_ = 0;
  std::uint32_t a_span_lo_ = 0;
  Frag a_orig_;
  std::string error_;
};

}  // namespace

Regex Regex::compile(std::string_view pattern, std::string* error) {
  auto prog = std::make_shared<Program>();
  prog->pattern = std::string(pattern);  // xlint: allow(hot-string): pattern copied once at compile time, not per match
  Compiler compiler(pattern, *prog);
  if (!compiler.run(error)) return Regex();
  return Regex(std::move(prog));
}

namespace {

/// Shared Pike VM loop. `anchored` controls whether new match attempts
/// start only at position 0 or at every position; an accepting state is
/// a match immediately when unanchored (prefix match of a suffix =
/// substring match).
template <typename Program>
bool pike_run(const Program& prog, std::string_view text, bool anchored) {
  const auto& insts = prog.insts;
  const auto& classes = prog.classes;
  const auto n = static_cast<std::uint32_t>(insts.size());

  // The VM is not reentrant, so per-thread scratch keeps a steady-state
  // match allocation-free (the validator runs pattern facets per
  // message). `mark` is generation-stamped, so growing it for a larger
  // program is the only refresh ever needed.
  static thread_local std::vector<std::uint32_t> current, next, mark;
  static thread_local std::uint32_t gen = 0;
  current.clear();
  next.clear();
  if (mark.size() < n) mark.resize(n, 0);
  if (gen == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(mark.begin(), mark.end(), 0);
    gen = 0;
  }

  auto add = [&](std::vector<std::uint32_t>& list, std::uint32_t pc,
                 auto&& self) -> void {
    if (mark[pc] == gen) return;
    mark[pc] = gen;
    const auto& inst = insts[pc];
    switch (inst.op) {
      case Op::kSplit:
        self(list, inst.x, self);
        self(list, inst.y, self);
        break;
      case Op::kJmp:
        self(list, inst.x, self);
        break;
      default:
        list.push_back(pc);
    }
  };
  auto has_match = [&](const std::vector<std::uint32_t>& list) {
    for (std::uint32_t pc : list) {
      if (insts[pc].op == Op::kMatch) return true;
    }
    return false;
  };

  ++gen;
  add(current, prog.start, add);
  if (!anchored && has_match(current)) return true;

  for (char ch : text) {
    probe::branch(kStepSite, !current.empty());
    if (anchored && current.empty()) return false;
    ++gen;
    next.clear();
    const auto byte = static_cast<unsigned char>(ch);
    for (std::uint32_t pc : current) {
      const auto& inst = insts[pc];
      if (inst.op == Op::kChar &&
          classes[inst.cls].test(static_cast<std::size_t>(byte))) {
        add(next, inst.x, add);
      }
    }
    if (!anchored) add(next, prog.start, add);  // new attempt here
    std::swap(current, next);
    if (!anchored && has_match(current)) return true;
  }
  return has_match(current) && anchored;
}

}  // namespace

bool Regex::search(std::string_view text) const {
  XAON_CHECK_MSG(prog_ != nullptr, "search() on invalid Regex");
  if (pike_run(*prog_, text, /*anchored=*/false)) return true;
  // Empty-suffix corner: pattern matching the empty string matched at
  // position 0 already; otherwise no match.
  return false;
}

bool Regex::match(std::string_view text) const {
  XAON_CHECK_MSG(prog_ != nullptr, "match() on invalid Regex");
  return pike_run(*prog_, text, /*anchored=*/true);
}

std::string_view Regex::pattern() const {
  return prog_ ? std::string_view(prog_->pattern) : std::string_view{};
}

std::size_t Regex::program_size() const {
  return prog_ ? prog_->insts.size() : 0;
}

}  // namespace xaon::xsd
