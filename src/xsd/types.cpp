#include "xaon/xsd/types.hpp"

#include <cmath>
#include <limits>

#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/chars.hpp"

namespace xaon::xsd {

namespace {

struct NameMap {
  // xlint: allow(view-member): views string literals (static storage)
  std::string_view name;
  BuiltinType type;
};

constexpr NameMap kNames[] = {
    {"anySimpleType", BuiltinType::kAnySimpleType},
    {"string", BuiltinType::kString},
    {"normalizedString", BuiltinType::kNormalizedString},
    {"token", BuiltinType::kToken},
    {"language", BuiltinType::kLanguage},
    {"Name", BuiltinType::kName},
    {"NCName", BuiltinType::kNCName},
    {"boolean", BuiltinType::kBoolean},
    {"decimal", BuiltinType::kDecimal},
    {"integer", BuiltinType::kInteger},
    {"nonPositiveInteger", BuiltinType::kNonPositiveInteger},
    {"negativeInteger", BuiltinType::kNegativeInteger},
    {"long", BuiltinType::kLong},
    {"int", BuiltinType::kInt},
    {"short", BuiltinType::kShort},
    {"byte", BuiltinType::kByte},
    {"nonNegativeInteger", BuiltinType::kNonNegativeInteger},
    {"unsignedLong", BuiltinType::kUnsignedLong},
    {"unsignedInt", BuiltinType::kUnsignedInt},
    {"unsignedShort", BuiltinType::kUnsignedShort},
    {"unsignedByte", BuiltinType::kUnsignedByte},
    {"positiveInteger", BuiltinType::kPositiveInteger},
    {"float", BuiltinType::kFloat},
    {"double", BuiltinType::kDouble},
    {"date", BuiltinType::kDate},
    {"time", BuiltinType::kTime},
    {"dateTime", BuiltinType::kDateTime},
    {"anyURI", BuiltinType::kAnyUri},
    {"hexBinary", BuiltinType::kHexBinary},
    {"base64Binary", BuiltinType::kBase64Binary},
};

const std::uint32_t kLexSite =
    probe::site("xsd.type.lex", probe::SiteKind::kData);

bool set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

/// Signed decimal integer within [lo, hi] given as strings is overkill;
/// parse into __int128 to cover unsignedLong/long exactly.
bool parse_int128(std::string_view s, __int128* out) {
  if (s.empty()) return false;
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    i = 1;
    if (s.size() == 1) return false;
  }
  __int128 acc = 0;
  constexpr __int128 kLimit =
      (static_cast<__int128>(1) << 100);  // far beyond any XSD int type
  for (; i < s.size(); ++i) {
    if (!util::is_ascii_digit(s[i])) return false;
    acc = acc * 10 + (s[i] - '0');
    if (acc > kLimit) return false;
  }
  *out = neg ? -acc : acc;
  return true;
}

bool check_int_range(std::string_view value, __int128 lo, __int128 hi,
                     std::string* error, std::string_view type_name) {
  __int128 v;
  if (!parse_int128(value, &v)) {
    return set_error(error, "'" + std::string(value) + "' is not a valid " +
                                std::string(type_name));
  }
  if (v < lo || v > hi) {
    return set_error(error, "'" + std::string(value) + "' out of range for " +
                                std::string(type_name));
  }
  return true;
}

bool is_decimal(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    if (util::is_ascii_digit(s[i])) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

bool is_float_lexical(std::string_view s) {
  if (s == "NaN" || s == "INF" || s == "-INF") return true;
  if (s.empty()) return false;
  // [+-]? digits (. digits?)? ([eE] [+-]? digits)?
  std::size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false;
  while (i < s.size() && util::is_ascii_digit(s[i])) {
    digits = true;
    ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && util::is_ascii_digit(s[i])) {
      digits = true;
      ++i;
    }
  }
  if (!digits) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    bool exp_digits = false;
    while (i < s.size() && util::is_ascii_digit(s[i])) {
      exp_digits = true;
      ++i;
    }
    if (!exp_digits) return false;
  }
  return i == s.size();
}

bool check_digits(std::string_view s, std::size_t start, std::size_t count) {
  if (start + count > s.size()) return false;
  for (std::size_t i = 0; i < count; ++i) {
    if (!util::is_ascii_digit(s[start + i])) return false;
  }
  return true;
}

/// 'YYYY-MM-DD' with basic range checks; optional timezone suffix
/// (Z | +hh:mm | -hh:mm) starting at `*pos`.
bool parse_date_part(std::string_view s, std::size_t* pos) {
  std::size_t i = *pos;
  if (!check_digits(s, i, 4)) return false;
  i += 4;
  if (i >= s.size() || s[i] != '-') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  const int month = (s[i] - '0') * 10 + (s[i + 1] - '0');
  i += 2;
  if (i >= s.size() || s[i] != '-') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  const int day = (s[i] - '0') * 10 + (s[i + 1] - '0');
  i += 2;
  if (month < 1 || month > 12 || day < 1 || day > 31) return false;
  *pos = i;
  return true;
}

bool parse_time_part(std::string_view s, std::size_t* pos) {
  std::size_t i = *pos;
  if (!check_digits(s, i, 2)) return false;
  const int hh = (s[i] - '0') * 10 + (s[i + 1] - '0');
  i += 2;
  if (i >= s.size() || s[i] != ':') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  const int mm = (s[i] - '0') * 10 + (s[i + 1] - '0');
  i += 2;
  if (i >= s.size() || s[i] != ':') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  const int ss = (s[i] - '0') * 10 + (s[i + 1] - '0');
  i += 2;
  if (hh > 24 || mm > 59 || ss > 60) return false;  // leap second tolerated
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!check_digits(s, i, 1)) return false;
    while (i < s.size() && util::is_ascii_digit(s[i])) ++i;
  }
  *pos = i;
  return true;
}

bool parse_timezone(std::string_view s, std::size_t* pos) {
  std::size_t i = *pos;
  if (i == s.size()) return true;  // no timezone
  if (s[i] == 'Z') {
    *pos = i + 1;
    return true;
  }
  if (s[i] != '+' && s[i] != '-') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  i += 2;
  if (i >= s.size() || s[i] != ':') return false;
  ++i;
  if (!check_digits(s, i, 2)) return false;
  *pos = i + 2;
  return true;
}

bool is_ncname(std::string_view s) {
  if (s.empty()) return false;
  if (!xml::is_name_start(s[0]) || s[0] == ':') return false;
  for (char c : s) {
    if (!xml::is_name_char(c) || c == ':') return false;
  }
  return true;
}

}  // namespace

std::optional<BuiltinType> builtin_by_name(std::string_view local) {
  for (const NameMap& m : kNames) {
    if (m.name == local) return m.type;
  }
  return std::nullopt;
}

std::string_view builtin_name(BuiltinType t) {
  for (const NameMap& m : kNames) {
    if (m.type == t) return m.name;
  }
  return "unknown";
}

Whitespace builtin_whitespace(BuiltinType t) {
  switch (t) {
    case BuiltinType::kString:
      return Whitespace::kPreserve;
    case BuiltinType::kNormalizedString:
      return Whitespace::kReplace;
    default:
      return Whitespace::kCollapse;
  }
}

std::string apply_whitespace(std::string_view raw, Whitespace ws) {
  if (ws == Whitespace::kPreserve) return std::string(raw);
  if (ws == Whitespace::kReplace) {
    std::string out(raw);
    for (char& c : out) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    return out;
  }
  // Collapse.
  std::string out;
  out.reserve(raw.size());
  bool in_space = true;
  for (char c : raw) {
    const bool sp = c == ' ' || c == '\t' || c == '\n' || c == '\r';
    if (sp) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool whitespace_is_normalized(std::string_view raw, Whitespace ws) {
  if (ws == Whitespace::kPreserve) return true;
  bool prev_space = false;
  for (char c : raw) {
    if (c == '\t' || c == '\n' || c == '\r') return false;
    if (ws == Whitespace::kCollapse) {
      const bool sp = c == ' ';
      if (sp && prev_space) return false;  // run of spaces
      prev_space = sp;
    }
  }
  if (ws == Whitespace::kCollapse && !raw.empty() &&
      (raw.front() == ' ' || raw.back() == ' ')) {
    return false;  // needs trimming
  }
  return true;
}

bool validate_builtin(BuiltinType t, std::string_view value,
                      std::string* error) {
  probe::load(value.data(), static_cast<std::uint32_t>(value.size()));
  probe::alu(static_cast<std::uint32_t>(value.size() / 2 + 2));
  switch (t) {
    case BuiltinType::kAnySimpleType:
    case BuiltinType::kString:
    case BuiltinType::kNormalizedString:
    case BuiltinType::kToken:
    case BuiltinType::kAnyUri:
      return true;  // lexical space unrestricted at the byte level
    case BuiltinType::kLanguage: {
      // RFC 3066-ish: alpha{1,8} ('-' alnum{1,8})*
      if (value.empty()) return set_error(error, "empty language tag");
      std::size_t seg = 0;
      for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i == value.size() || value[i] == '-') {
          if (seg == 0 || seg > 8) {
            return set_error(error, "bad language tag segment");
          }
          seg = 0;
        } else if (util::is_ascii_alpha(value[i]) ||
                   (util::is_ascii_digit(value[i]) && i > 0)) {
          ++seg;
        } else {
          return set_error(error, "bad character in language tag");
        }
      }
      return true;
    }
    case BuiltinType::kName:
      if (value.empty() || !xml::is_name_start(value[0])) {
        return set_error(error, "not a valid Name");
      }
      for (char c : value) {
        if (!xml::is_name_char(c)) return set_error(error, "not a valid Name");
      }
      return true;
    case BuiltinType::kNCName:
      if (!is_ncname(value)) return set_error(error, "not a valid NCName");
      return true;
    case BuiltinType::kBoolean:
      if (probe::branch(kLexSite, value == "true" || value == "false" ||
                                      value == "1" || value == "0")) {
        return true;
      }
      return set_error(error,
                       "'" + std::string(value) + "' is not a boolean");
    case BuiltinType::kDecimal:
      if (is_decimal(value)) return true;
      return set_error(error,
                       "'" + std::string(value) + "' is not a decimal");
    case BuiltinType::kInteger:
      return check_int_range(value,
                             -(static_cast<__int128>(1) << 99),
                             (static_cast<__int128>(1) << 99), error,
                             "integer");
    case BuiltinType::kNonPositiveInteger:
      return check_int_range(value, -(static_cast<__int128>(1) << 99), 0,
                             error, "nonPositiveInteger");
    case BuiltinType::kNegativeInteger:
      return check_int_range(value, -(static_cast<__int128>(1) << 99), -1,
                             error, "negativeInteger");
    case BuiltinType::kLong:
      return check_int_range(value, std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::max(), error,
                             "long");
    case BuiltinType::kInt:
      return check_int_range(value, -2147483648LL, 2147483647LL, error,
                             "int");
    case BuiltinType::kShort:
      return check_int_range(value, -32768, 32767, error, "short");
    case BuiltinType::kByte:
      return check_int_range(value, -128, 127, error, "byte");
    case BuiltinType::kNonNegativeInteger:
      return check_int_range(value, 0, (static_cast<__int128>(1) << 99),
                             error, "nonNegativeInteger");
    case BuiltinType::kUnsignedLong:
      return check_int_range(value, 0,
                             std::numeric_limits<std::uint64_t>::max(),
                             error, "unsignedLong");
    case BuiltinType::kUnsignedInt:
      return check_int_range(value, 0, 4294967295LL, error, "unsignedInt");
    case BuiltinType::kUnsignedShort:
      return check_int_range(value, 0, 65535, error, "unsignedShort");
    case BuiltinType::kUnsignedByte:
      return check_int_range(value, 0, 255, error, "unsignedByte");
    case BuiltinType::kPositiveInteger:
      return check_int_range(value, 1, (static_cast<__int128>(1) << 99),
                             error, "positiveInteger");
    case BuiltinType::kFloat:
    case BuiltinType::kDouble:
      if (is_float_lexical(value)) return true;
      return set_error(error, "'" + std::string(value) + "' is not a " +
                                  std::string(builtin_name(t)));
    case BuiltinType::kDate: {
      std::size_t pos = 0;
      if (parse_date_part(value, &pos) && parse_timezone(value, &pos) &&
          pos == value.size()) {
        return true;
      }
      return set_error(error, "'" + std::string(value) + "' is not a date");
    }
    case BuiltinType::kTime: {
      std::size_t pos = 0;
      if (parse_time_part(value, &pos) && parse_timezone(value, &pos) &&
          pos == value.size()) {
        return true;
      }
      return set_error(error, "'" + std::string(value) + "' is not a time");
    }
    case BuiltinType::kDateTime: {
      std::size_t pos = 0;
      if (parse_date_part(value, &pos) && pos < value.size() &&
          value[pos] == 'T') {
        ++pos;
        if (parse_time_part(value, &pos) && parse_timezone(value, &pos) &&
            pos == value.size()) {
          return true;
        }
      }
      return set_error(error,
                       "'" + std::string(value) + "' is not a dateTime");
    }
    case BuiltinType::kHexBinary:
      if (value.size() % 2 != 0) {
        return set_error(error, "hexBinary must have even length");
      }
      for (char c : value) {
        if (!xml::is_hex_digit(c)) {
          return set_error(error, "bad hexBinary digit");
        }
      }
      return true;
    case BuiltinType::kBase64Binary: {
      std::size_t significant = 0;
      std::size_t pad = 0;
      for (char c : value) {
        if (c == ' ') continue;  // collapsed internal spaces allowed
        if (c == '=') {
          ++pad;
          ++significant;
          continue;
        }
        if (pad > 0 || !(util::is_ascii_alpha(c) || util::is_ascii_digit(c) ||
                         c == '+' || c == '/')) {
          return set_error(error, "bad base64Binary");
        }
        ++significant;
      }
      if (significant % 4 != 0 || pad > 2) {
        return set_error(error, "bad base64Binary length");
      }
      return true;
    }
  }
  return set_error(error, "unhandled type");
}

bool builtin_is_numeric(BuiltinType t) {
  switch (t) {
    case BuiltinType::kDecimal:
    case BuiltinType::kInteger:
    case BuiltinType::kNonPositiveInteger:
    case BuiltinType::kNegativeInteger:
    case BuiltinType::kLong:
    case BuiltinType::kInt:
    case BuiltinType::kShort:
    case BuiltinType::kByte:
    case BuiltinType::kNonNegativeInteger:
    case BuiltinType::kUnsignedLong:
    case BuiltinType::kUnsignedInt:
    case BuiltinType::kUnsignedShort:
    case BuiltinType::kUnsignedByte:
    case BuiltinType::kPositiveInteger:
    case BuiltinType::kFloat:
    case BuiltinType::kDouble:
      return true;
    default:
      return false;
  }
}

std::optional<double> builtin_numeric_value(BuiltinType t,
                                            std::string_view value) {
  if (!builtin_is_numeric(t)) return std::nullopt;
  if (!validate_builtin(t, value)) return std::nullopt;
  if (value == "NaN") return std::nan("");
  if (value == "INF") return std::numeric_limits<double>::infinity();
  if (value == "-INF") return -std::numeric_limits<double>::infinity();
  return util::parse_f64(value);
}

}  // namespace xaon::xsd
