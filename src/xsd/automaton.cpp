#include "automaton.hpp"

#include <algorithm>
#include <set>

#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"

namespace xaon::xsd::detail {

namespace {

const std::uint32_t kStepSite =
    probe::site("xsd.automaton.step", probe::SiteKind::kData);

constexpr std::size_t kMaxStates = 4096;

}  // namespace

/// Thompson-style construction over particles using epsilon edges,
/// followed by epsilon-closure elimination into the final automaton.
class ContentAutomaton::Builder {
 public:
  bool build(const Particle& root, ContentAutomaton* out,
             std::string* error) {
    start_ = new_state();
    accept_ = new_state();
    if (!frag(root, start_, accept_, error)) return false;

    // Epsilon-close into `out`.
    out->states_.resize(nodes_.size());
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      std::set<std::uint32_t> closure;
      eps_closure(i, &closure);
      State& s = out->states_[i];
      s.accepting = closure.count(accept_) > 0;
      for (std::uint32_t c : closure) {
        for (const auto& [decl, target] : nodes_[c].edges) {
          s.edges.push_back(Edge{decl, target});
        }
      }
    }
    out->start_ = start_;
    return true;
  }

 private:
  struct Node {
    std::vector<std::pair<const ElementDecl*, std::uint32_t>> edges;
    std::vector<std::uint32_t> eps;
  };

  std::uint32_t new_state() {
    nodes_.push_back(Node{});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void eps_closure(std::uint32_t n, std::set<std::uint32_t>* out) {
    if (!out->insert(n).second) return;
    for (std::uint32_t e : nodes_[n].eps) eps_closure(e, out);
  }

  bool budget_ok(std::string* error) {
    if (nodes_.size() > kMaxStates) {
      if (error != nullptr) {
        *error = "content model too large (occurrence bounds expand past " +
                 std::to_string(kMaxStates) + " states)";  // xlint: allow(hot-string): diagnostic built only when schema compilation fails
      }
      return false;
    }
    return true;
  }

  /// Builds one occurrence of the particle body between `from` and `to`.
  bool body(const Particle& p, std::uint32_t from, std::uint32_t to,
            std::string* error) {
    switch (p.kind) {
      case ParticleKind::kElement:
        XAON_CHECK(p.element != nullptr);
        nodes_[from].edges.emplace_back(p.element, to);
        return true;
      case ParticleKind::kSequence: {
        std::uint32_t cur = from;
        for (std::size_t i = 0; i < p.children.size(); ++i) {
          const std::uint32_t next =
              (i + 1 == p.children.size()) ? to : new_state();
          if (!frag(p.children[i], cur, next, error)) return false;
          cur = next;
        }
        if (p.children.empty()) nodes_[from].eps.push_back(to);
        return true;
      }
      case ParticleKind::kChoice: {
        if (p.children.empty()) {
          nodes_[from].eps.push_back(to);
          return true;
        }
        for (const Particle& c : p.children) {
          if (!frag(c, from, to, error)) return false;
        }
        return true;
      }
      case ParticleKind::kAll:
        // xs:all is matched by match_all_group, never compiled here.
        if (error != nullptr) *error = "xs:all cannot nest inside groups";
        return false;
    }
    return false;
  }

  /// Builds the particle with its occurrence range between from and to.
  bool frag(const Particle& p, std::uint32_t from, std::uint32_t to,
            std::string* error) {
    if (!budget_ok(error)) return false;
    const std::uint32_t lo = p.min_occurs;
    const std::uint32_t hi = p.max_occurs;
    if (hi != kUnbounded && hi < lo) {
      if (error != nullptr) *error = "maxOccurs < minOccurs";
      return false;
    }
    if (hi == 0) {  // never occurs
      nodes_[from].eps.push_back(to);
      return true;
    }
    constexpr std::uint32_t kMaxExpand = 256;
    if (lo > kMaxExpand || (hi != kUnbounded && hi > kMaxExpand)) {
      if (error != nullptr) {
        *error = "occurrence bound too large to expand (max " +
                 std::to_string(kMaxExpand) + ")";  // xlint: allow(hot-string): diagnostic built only when schema compilation fails
      }
      return false;
    }

    // lo mandatory copies, then optional tail.
    std::uint32_t cur = from;
    for (std::uint32_t i = 0; i < lo; ++i) {
      const bool last_mandatory = (i + 1 == lo) && hi == lo;
      const std::uint32_t next = last_mandatory ? to : new_state();
      if (!body(p, cur, next, error)) return false;
      cur = next;
      if (!budget_ok(error)) return false;
    }
    if (hi == lo) {
      if (lo == 0) nodes_[from].eps.push_back(to);
      return true;
    }
    if (hi == kUnbounded) {
      // cur --(body)*--> to : loop state.
      nodes_[cur].eps.push_back(to);
      if (!body(p, cur, cur, error)) return false;
      return true;
    }
    // hi - lo optional copies.
    for (std::uint32_t i = lo; i < hi; ++i) {
      nodes_[cur].eps.push_back(to);
      const std::uint32_t next = (i + 1 == hi) ? to : new_state();
      if (!body(p, cur, next, error)) return false;
      cur = next;
      if (!budget_ok(error)) return false;
    }
    return true;
  }

  std::vector<Node> nodes_;
  std::uint32_t start_ = 0;
  std::uint32_t accept_ = 0;

  friend class ContentAutomaton;
};

std::shared_ptr<const ContentAutomaton> ContentAutomaton::compile(
    const Particle& particle, std::string* error) {
  auto automaton = std::make_shared<ContentAutomaton>();
  Builder builder;
  if (!builder.build(particle, automaton.get(), error)) return nullptr;
  return automaton;
}

namespace {

bool symbol_matches(const ElementDecl* decl,
                    const ContentAutomaton::Symbol& sym) {
  return decl->local == sym.local && decl->ns_uri == sym.ns_uri;
}

std::string expected_from_edges(
    const std::vector<std::pair<const ElementDecl*, bool>>& opts) {
  std::string out;
  for (const auto& [decl, accepting] : opts) {
    (void)accepting;
    if (!out.empty()) out += ", ";
    out += decl->local;
  }
  return out.empty() ? "(end of content)" : out;
}

}  // namespace

bool ContentAutomaton::match(const std::vector<Symbol>& names,
                             std::vector<const ElementDecl*>* matched,
                             std::size_t* error_index,
                             std::string* expected) const {
  // Deterministic schemas (UPA) give at most one matching edge per
  // symbol per state set; we simulate the NFA state set and record the
  // first matching decl per input symbol. The state-set vectors are
  // thread-local scratch — match() runs once per element with child
  // content, and the steady-state path must not allocate.
  static thread_local std::vector<std::uint32_t> current;
  static thread_local std::vector<std::uint32_t> next;
  current.clear();
  current.push_back(start_);
  matched->clear();
  matched->reserve(names.size());

  for (std::size_t i = 0; i < names.size(); ++i) {
    const Symbol& sym = names[i];
    next.clear();
    const ElementDecl* decl = nullptr;
    for (std::uint32_t s : current) {
      for (const Edge& e : states_[s].edges) {
        const bool hit = symbol_matches(e.decl, sym);
        probe::branch(kStepSite, hit);
        if (hit) {
          if (decl == nullptr) decl = e.decl;
          if (std::find(next.begin(), next.end(), e.target) == next.end()) {
            next.push_back(e.target);
          }
        }
      }
    }
    if (next.empty()) {
      if (error_index != nullptr) *error_index = i;
      if (expected != nullptr) {
        std::vector<std::pair<const ElementDecl*, bool>> opts;
        for (std::uint32_t s : current) {
          for (const Edge& e : states_[s].edges) {
            if (std::find_if(opts.begin(), opts.end(), [&](const auto& o) {
                  return o.first == e.decl;
                }) == opts.end()) {
              opts.emplace_back(e.decl, false);
            }
          }
        }
        *expected = expected_from_edges(opts);
      }
      return false;
    }
    matched->push_back(decl);
    current.swap(next);
  }
  for (std::uint32_t s : current) {
    if (states_[s].accepting) return true;
  }
  if (error_index != nullptr) *error_index = names.size();
  if (expected != nullptr) {
    std::vector<std::pair<const ElementDecl*, bool>> opts;
    for (std::uint32_t s : current) {
      for (const Edge& e : states_[s].edges) {
        opts.emplace_back(e.decl, false);
      }
    }
    *expected = expected_from_edges(opts);
  }
  return false;
}

bool match_all_group(const Particle& all,
                     const std::vector<ContentAutomaton::Symbol>& names,
                     std::vector<const ElementDecl*>* matched,
                     std::size_t* error_index, std::string* expected) {
  XAON_CHECK(all.kind == ParticleKind::kAll);
  static thread_local std::vector<int> seen;
  seen.assign(all.children.size(), 0);
  matched->clear();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const ContentAutomaton::Symbol& sym = names[i];
    bool found = false;
    for (std::size_t c = 0; c < all.children.size(); ++c) {
      const Particle& child = all.children[c];
      if (child.kind != ParticleKind::kElement || child.element == nullptr) {
        continue;
      }
      if (symbol_matches(child.element, sym)) {
        if (seen[c] >= 1) {
          if (error_index != nullptr) *error_index = i;
          if (expected != nullptr) {
            *expected = "at most one '" + child.element->local + "'";
          }
          return false;
        }
        ++seen[c];
        matched->push_back(child.element);
        found = true;
        break;
      }
    }
    if (!found) {
      if (error_index != nullptr) *error_index = i;
      if (expected != nullptr) *expected = "a member of the xs:all group";
      return false;
    }
  }
  for (std::size_t c = 0; c < all.children.size(); ++c) {
    if (all.children[c].min_occurs >= 1 && seen[c] == 0) {
      if (error_index != nullptr) *error_index = names.size();
      if (expected != nullptr) {
        *expected = "required element '" + all.children[c].element->local +
                    "' missing";
      }
      return false;
    }
  }
  return true;
}

}  // namespace xaon::xsd::detail
