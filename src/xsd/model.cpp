#include "xaon/xsd/model.hpp"

#include "automaton.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"

namespace xaon::xsd {

namespace {

const std::uint32_t kFacetSite =
    probe::site("xsd.facet.check", probe::SiteKind::kData);

bool facet_fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

/// Digit counting for totalDigits/fractionDigits on decimal lexicals.
void count_digits(std::string_view v, std::uint32_t* total,
                  std::uint32_t* fraction) {
  *total = 0;
  *fraction = 0;
  bool after_dot = false;
  bool leading = true;
  std::uint32_t trailing_frac_zeros = 0;
  for (char c : v) {
    if (c == '.') {
      after_dot = true;
      continue;
    }
    if (!util::is_ascii_digit(c)) continue;  // sign
    if (leading && c == '0' && !after_dot) continue;  // leading zeros
    leading = false;
    ++*total;
    if (after_dot) {
      ++*fraction;
      if (c == '0') {
        ++trailing_frac_zeros;
      } else {
        trailing_frac_zeros = 0;
      }
    }
  }
  // Trailing fractional zeros are not significant.
  *total -= trailing_frac_zeros;
  *fraction -= trailing_frac_zeros;
  if (*total == 0) *total = 1;  // "0" has one digit
}

}  // namespace

bool SimpleType::validate(std::string_view raw, std::string* error) const {
  // Most machine-generated values arrive already normalized — validate
  // the raw view directly and only materialize a normalized copy when
  // the whitespace facet would actually change the value.
  const Whitespace ws = effective_whitespace();
  std::string normalized;
  std::string_view value = raw;
  if (!whitespace_is_normalized(raw, ws)) {
    normalized = apply_whitespace(raw, ws);
    value = normalized;
  }
  probe::load(value.data(), static_cast<std::uint32_t>(value.size()));

  if (!validate_builtin(base, value, error)) return false;

  const std::uint64_t len = value.size();
  if (length && !probe::branch(kFacetSite, len == *length)) {
    return facet_fail(error, "length " + std::to_string(len) + " != " +
                                 std::to_string(*length));
  }
  if (min_length && len < *min_length) {
    return facet_fail(error, "shorter than minLength " +
                                 std::to_string(*min_length));
  }
  if (max_length && len > *max_length) {
    return facet_fail(error,
                      "longer than maxLength " + std::to_string(*max_length));
  }
  for (const Regex& re : patterns) {
    if (!probe::branch(kFacetSite, re.match(value))) {
      return facet_fail(error, "value '" + std::string(value) +
                                   "' does not match pattern '" +
                                   std::string(re.pattern()) + "'");
    }
  }
  if (!enumeration.empty()) {
    bool found = false;
    for (const std::string& e : enumeration) {
      if (probe::branch(kFacetSite, e == value)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return facet_fail(error,
                        "value '" + std::string(value) + "' not in enumeration");
    }
  }
  if (min_inclusive || max_inclusive || min_exclusive || max_exclusive) {
    const auto num = builtin_numeric_value(base, value);
    if (!num) {
      return facet_fail(error, "range facet on non-numeric value");
    }
    if (min_inclusive && *num < *min_inclusive) {
      return facet_fail(error, "value below minInclusive");
    }
    if (max_inclusive && *num > *max_inclusive) {
      return facet_fail(error, "value above maxInclusive");
    }
    if (min_exclusive && *num <= *min_exclusive) {
      return facet_fail(error, "value at or below minExclusive");
    }
    if (max_exclusive && *num >= *max_exclusive) {
      return facet_fail(error, "value at or above maxExclusive");
    }
  }
  if (total_digits || fraction_digits) {
    std::uint32_t total = 0, fraction = 0;
    count_digits(value, &total, &fraction);
    if (total_digits && total > *total_digits) {
      return facet_fail(error, "more than totalDigits digits");
    }
    if (fraction_digits && fraction > *fraction_digits) {
      return facet_fail(error, "more than fractionDigits fraction digits");
    }
  }
  return true;
}

SimpleType* Schema::add_simple_type(std::string name) {
  simple_types_.push_back(SimpleType{});
  simple_types_.back().name = std::move(name);
  return &simple_types_.back();
}

ComplexType* Schema::add_complex_type(std::string name) {
  complex_types_.push_back(ComplexType{});
  complex_types_.back().name = std::move(name);
  return &complex_types_.back();
}

ElementDecl* Schema::add_element(std::string local, std::string ns_uri) {
  elements_.push_back(ElementDecl{});
  elements_.back().local = std::move(local);
  elements_.back().ns_uri = std::move(ns_uri);
  return &elements_.back();
}

void Schema::add_global_element(const ElementDecl* decl) {
  globals_.push_back(decl);
}

const SimpleType* Schema::find_simple_type(std::string_view name) const {
  for (const SimpleType& t : simple_types_) {
    if (!t.name.empty() && t.name == name) return &t;
  }
  return nullptr;
}

const ComplexType* Schema::find_complex_type(std::string_view name) const {
  for (const ComplexType& t : complex_types_) {
    if (!t.name.empty() && t.name == name) return &t;
  }
  return nullptr;
}

const ElementDecl* Schema::find_global_element(std::string_view ns_uri,
                                               std::string_view local) const {
  for (const ElementDecl* e : globals_) {
    if (e->local == local && e->ns_uri == ns_uri) return e;
  }
  return nullptr;
}

bool Schema::finalize(std::string* error) {
  for (ComplexType& ct : complex_types_) {
    if (!ct.particle.has_value()) continue;
    if (ct.particle->kind == ParticleKind::kAll) {
      // Validated by the presence matcher; check child shape here.
      for (const Particle& c : ct.particle->children) {
        if (c.kind != ParticleKind::kElement || c.max_occurs != 1) {
          if (error != nullptr) {
            *error = "xs:all children must be elements with maxOccurs=1";
          }
          return false;
        }
      }
      continue;
    }
    std::string compile_error;
    ct.automaton = detail::ContentAutomaton::compile(*ct.particle,
                                                     &compile_error);
    if (ct.automaton == nullptr) {
      if (error != nullptr) {
        *error = "content model of complex type '" +
                 (ct.name.empty() ? std::string("<anonymous>") : ct.name) +
                 "': " + compile_error;
      }
      return false;
    }
  }
  return true;
}

}  // namespace xaon::xsd
