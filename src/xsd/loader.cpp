#include "xaon/xsd/loader.hpp"

#include <map>

#include "xaon/util/annotations.hpp"
#include "xaon/util/str.hpp"
#include "xaon/util/sync.hpp"

namespace xaon::xsd {

namespace {

constexpr std::string_view kXsdNs = "http://www.w3.org/2001/XMLSchema";

/// Resolves a prefix by scanning xmlns declarations up the tree (the
/// parser keeps them as attributes).
std::string_view resolve_prefix(const xml::Node* node,
                                std::string_view prefix) {
  const std::string decl =
      prefix.empty() ? "xmlns" : "xmlns:" + std::string(prefix);
  for (const xml::Node* n = node; n != nullptr; n = n->parent) {
    if (const xml::Attr* a = n->attr(decl)) return a->value;
  }
  if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
  return {};
}

struct XAON_ARENA_TIED QRef {
  std::string_view ns;
  std::string_view local;
};

QRef resolve_qref(const xml::Node* ctx, std::string_view qname) {
  const std::size_t colon = qname.find(':');
  if (colon == std::string_view::npos) {
    // Unprefixed references resolve against the default namespace.
    return QRef{resolve_prefix(ctx, ""), qname};
  }
  return QRef{resolve_prefix(ctx, qname.substr(0, colon)),
              qname.substr(colon + 1)};
}

bool is_xsd(const xml::Node* n, std::string_view local) {
  return n->is_element() && n->ns_uri == kXsdNs && n->local == local;
}

class Loader {
 public:
  explicit Loader(Schema& schema) : schema_(schema) {}

  bool load(const xml::Node* root, std::string* error) {
    error_ = error;
    if (!is_xsd(root, "schema")) {
      return fail("root element must be xs:schema");
    }
    if (const xml::Attr* tn = root->attr("targetNamespace")) {
      schema_.set_target_namespace(std::string(tn->value));
    }
    if (const xml::Attr* efd = root->attr("elementFormDefault")) {
      qualified_locals_ = efd->value == "qualified";
    }

    // Pass 1: create shells for every named global component so
    // references resolve regardless of declaration order.
    for (const xml::Node* c = root->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      const xml::Attr* name = c->attr("name");
      if (is_xsd(c, "simpleType")) {
        if (name == nullptr) return fail("global simpleType needs a name");
        named_simple_[std::string(name->value)] =
            schema_.add_simple_type(std::string(name->value));
      } else if (is_xsd(c, "complexType")) {
        if (name == nullptr) return fail("global complexType needs a name");
        named_complex_[std::string(name->value)] =
            schema_.add_complex_type(std::string(name->value));
      } else if (is_xsd(c, "element")) {
        if (name == nullptr) return fail("global element needs a name");
        ElementDecl* decl = schema_.add_element(
            std::string(name->value), schema_.target_namespace());
        global_elements_[std::string(name->value)] = decl;
        schema_.add_global_element(decl);
      } else if (is_xsd(c, "annotation")) {
        // ignored
      } else if (is_xsd(c, "import") || is_xsd(c, "include") ||
                 is_xsd(c, "redefine") || is_xsd(c, "group") ||
                 is_xsd(c, "attributeGroup")) {
        return fail("unsupported schema construct 'xs:" +
                    std::string(c->local) + "'");
      } else {
        return fail("unexpected element '" + std::string(c->qname) +
                    "' in xs:schema");
      }
    }

    // Pass 2: fill in the shells.
    for (const xml::Node* c = root->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      const xml::Attr* name = c->attr("name");
      if (is_xsd(c, "simpleType")) {
        if (!fill_simple_type(c, named_simple_[std::string(name->value)])) {
          return false;
        }
      } else if (is_xsd(c, "complexType")) {
        if (!fill_complex_type(c,
                               named_complex_[std::string(name->value)])) {
          return false;
        }
      } else if (is_xsd(c, "element")) {
        if (!fill_element(c, global_elements_[std::string(name->value)])) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  bool fail(std::string msg) {
    if (error_ != nullptr && error_->empty()) *error_ = std::move(msg);
    return false;
  }

  /// Resolves a type reference (e.g. "xs:string" or "OrderType") to a
  /// simple or complex type; exactly one of the outputs is set.
  bool resolve_type_ref(const xml::Node* ctx, std::string_view qname,
                        const SimpleType** st, const ComplexType** ct) {
    *st = nullptr;
    *ct = nullptr;
    const QRef ref = resolve_qref(ctx, qname);
    if (ref.ns == kXsdNs) {
      if (ref.local == "anyType") return true;  // unconstrained
      const auto builtin = builtin_by_name(ref.local);
      if (!builtin) {
        return fail("unsupported built-in type 'xs:" +
                    std::string(ref.local) + "'");
      }
      *st = builtin_wrapper(*builtin);
      return true;
    }
    if (auto it = named_simple_.find(std::string(ref.local));
        it != named_simple_.end()) {
      *st = it->second;
      return true;
    }
    if (auto it = named_complex_.find(std::string(ref.local));
        it != named_complex_.end()) {
      *ct = it->second;
      return true;
    }
    return fail("unknown type '" + std::string(qname) + "'");
  }

  /// Shared anonymous SimpleType wrapping a built-in without facets.
  const SimpleType* builtin_wrapper(BuiltinType t) {
    auto it = builtin_wrappers_.find(t);
    if (it != builtin_wrappers_.end()) return it->second;
    SimpleType* st = schema_.add_simple_type("");
    st->base = t;
    builtin_wrappers_[t] = st;
    return st;
  }

  bool fill_element(const xml::Node* node, ElementDecl* decl) {
    if (const xml::Attr* nillable = node->attr("nillable")) {
      decl->nillable = nillable->value == "true" || nillable->value == "1";
    }
    if (const xml::Attr* type = node->attr("type")) {
      return resolve_type_ref(node, type->value, &decl->simple_type,
                              &decl->complex_type);
    }
    // Inline anonymous type?
    for (const xml::Node* c = node->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      if (is_xsd(c, "complexType")) {
        ComplexType* ct = schema_.add_complex_type("");
        if (!fill_complex_type(c, ct)) return false;
        decl->complex_type = ct;
        return true;
      }
      if (is_xsd(c, "simpleType")) {
        SimpleType* st = schema_.add_simple_type("");
        if (!fill_simple_type(c, st)) return false;
        decl->simple_type = st;
        return true;
      }
      if (!is_xsd(c, "annotation")) {
        return fail("unexpected '" + std::string(c->qname) +
                    "' in xs:element");
      }
    }
    // No type: anyType (unconstrained).
    return true;
  }

  bool fill_simple_type(const xml::Node* node, SimpleType* st) {
    const xml::Node* restriction = nullptr;
    for (const xml::Node* c = node->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      if (is_xsd(c, "restriction")) {
        restriction = c;
      } else if (is_xsd(c, "list") || is_xsd(c, "union")) {
        return fail("xs:" + std::string(c->local) + " is not supported");
      } else if (!is_xsd(c, "annotation")) {
        return fail("unexpected '" + std::string(c->qname) +
                    "' in xs:simpleType");
      }
    }
    if (restriction == nullptr) {
      return fail("xs:simpleType requires xs:restriction");
    }
    const xml::Attr* base = restriction->attr("base");
    if (base == nullptr) return fail("xs:restriction requires base=");
    const QRef ref = resolve_qref(restriction, base->value);
    if (ref.ns == kXsdNs) {
      const auto builtin = builtin_by_name(ref.local);
      if (!builtin) {
        return fail("unsupported base type 'xs:" + std::string(ref.local) +
                    "'");
      }
      st->base = *builtin;
    } else if (auto it = named_simple_.find(std::string(ref.local));
               it != named_simple_.end()) {
      // Restriction of a user type: inherit its base and facets, then
      // tighten. (The referenced type must already be filled — forward
      // restriction chains across unfilled shells are rejected.)
      const SimpleType* parent = it->second;
      const std::string keep_name = st->name;
      *st = *parent;
      st->name = keep_name;
    } else {
      return fail("unknown restriction base '" + std::string(base->value) +
                  "'");
    }

    for (const xml::Node* f = restriction->first_child_element();
         f != nullptr; f = f->next_sibling_element()) {
      if (is_xsd(f, "annotation")) continue;
      const xml::Attr* value = f->attr("value");
      if (value == nullptr) {
        return fail("facet xs:" + std::string(f->local) +
                    " requires value=");
      }
      const std::string_view v = value->value;
      auto as_u64 = [&]() { return util::parse_u64(v); };
      auto as_f64 = [&]() { return util::parse_f64(v); };
      if (is_xsd(f, "length")) {
        auto n = as_u64();
        if (!n) return fail("bad length facet");
        st->length = *n;
      } else if (is_xsd(f, "minLength")) {
        auto n = as_u64();
        if (!n) return fail("bad minLength facet");
        st->min_length = *n;
      } else if (is_xsd(f, "maxLength")) {
        auto n = as_u64();
        if (!n) return fail("bad maxLength facet");
        st->max_length = *n;
      } else if (is_xsd(f, "pattern")) {
        std::string regex_error;
        Regex re = Regex::compile(v, &regex_error);
        if (!re.valid()) {
          return fail("bad pattern '" + std::string(v) + "': " +
                      regex_error);
        }
        st->patterns.push_back(std::move(re));
      } else if (is_xsd(f, "enumeration")) {
        st->enumeration.emplace_back(v);
      } else if (is_xsd(f, "minInclusive")) {
        auto n = as_f64();
        if (!n) return fail("bad minInclusive facet");
        st->min_inclusive = *n;
      } else if (is_xsd(f, "maxInclusive")) {
        auto n = as_f64();
        if (!n) return fail("bad maxInclusive facet");
        st->max_inclusive = *n;
      } else if (is_xsd(f, "minExclusive")) {
        auto n = as_f64();
        if (!n) return fail("bad minExclusive facet");
        st->min_exclusive = *n;
      } else if (is_xsd(f, "maxExclusive")) {
        auto n = as_f64();
        if (!n) return fail("bad maxExclusive facet");
        st->max_exclusive = *n;
      } else if (is_xsd(f, "totalDigits")) {
        auto n = as_u64();
        if (!n) return fail("bad totalDigits facet");
        st->total_digits = static_cast<std::uint32_t>(*n);
      } else if (is_xsd(f, "fractionDigits")) {
        auto n = as_u64();
        if (!n) return fail("bad fractionDigits facet");
        st->fraction_digits = static_cast<std::uint32_t>(*n);
      } else if (is_xsd(f, "whiteSpace")) {
        if (v == "preserve") {
          st->whitespace = Whitespace::kPreserve;
        } else if (v == "replace") {
          st->whitespace = Whitespace::kReplace;
        } else if (v == "collapse") {
          st->whitespace = Whitespace::kCollapse;
        } else {
          return fail("bad whiteSpace facet value");
        }
      } else {
        return fail("unsupported facet 'xs:" + std::string(f->local) + "'");
      }
    }
    return true;
  }

  bool parse_occurs(const xml::Node* node, Particle* p) {
    if (const xml::Attr* a = node->attr("minOccurs")) {
      auto n = util::parse_u64(a->value);
      if (!n) return fail("bad minOccurs");
      p->min_occurs = static_cast<std::uint32_t>(*n);
    }
    if (const xml::Attr* a = node->attr("maxOccurs")) {
      if (a->value == "unbounded") {
        p->max_occurs = kUnbounded;
      } else {
        auto n = util::parse_u64(a->value);
        if (!n) return fail("bad maxOccurs");
        p->max_occurs = static_cast<std::uint32_t>(*n);
      }
    }
    return true;
  }

  bool fill_particle(const xml::Node* node, Particle* p) {
    if (is_xsd(node, "element")) {
      p->kind = ParticleKind::kElement;
      if (!parse_occurs(node, p)) return false;
      if (const xml::Attr* ref = node->attr("ref")) {
        const QRef r = resolve_qref(node, ref->value);
        auto it = global_elements_.find(std::string(r.local));
        if (it == global_elements_.end()) {
          return fail("element ref to unknown '" + std::string(ref->value) +
                      "'");
        }
        p->element = it->second;
        return true;
      }
      const xml::Attr* name = node->attr("name");
      if (name == nullptr) return fail("local element needs name= or ref=");
      ElementDecl* decl = schema_.add_element(
          std::string(name->value),
          qualified_locals_ ? schema_.target_namespace() : std::string());
      if (!fill_element(node, decl)) return false;
      p->element = decl;
      return true;
    }
    if (is_xsd(node, "sequence") || is_xsd(node, "choice") ||
        is_xsd(node, "all")) {
      p->kind = is_xsd(node, "sequence") ? ParticleKind::kSequence
                : is_xsd(node, "choice") ? ParticleKind::kChoice
                                         : ParticleKind::kAll;
      if (!parse_occurs(node, p)) return false;
      for (const xml::Node* c = node->first_child_element(); c != nullptr;
           c = c->next_sibling_element()) {
        if (is_xsd(c, "annotation")) continue;
        Particle child;
        if (!fill_particle(c, &child)) return false;
        p->children.push_back(std::move(child));
      }
      return true;
    }
    return fail("unsupported particle '" + std::string(node->qname) + "'");
  }

  bool fill_complex_type(const xml::Node* node, ComplexType* ct) {
    if (const xml::Attr* mixed = node->attr("mixed")) {
      if (mixed->value == "true" || mixed->value == "1") {
        ct->content = ContentKind::kMixed;
      }
    }
    const bool is_mixed = ct->content == ContentKind::kMixed;
    bool has_particle = false;

    for (const xml::Node* c = node->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      if (is_xsd(c, "annotation")) continue;
      if (is_xsd(c, "sequence") || is_xsd(c, "choice") || is_xsd(c, "all")) {
        Particle p;
        if (!fill_particle(c, &p)) return false;
        ct->particle = std::move(p);
        has_particle = true;
        continue;
      }
      if (is_xsd(c, "attribute")) {
        if (!fill_attribute(c, ct)) return false;
        continue;
      }
      if (is_xsd(c, "simpleContent")) {
        if (!fill_simple_content(c, ct)) return false;
        return true;  // simpleContent excludes particles
      }
      if (is_xsd(c, "complexContent")) {
        return fail("xs:complexContent is not supported");
      }
      return fail("unexpected '" + std::string(c->qname) +
                  "' in xs:complexType");
    }
    if (has_particle) {
      if (!is_mixed) ct->content = ContentKind::kElementOnly;
    } else if (!is_mixed) {
      ct->content = ContentKind::kEmpty;
    } else {
      // mixed with no particle: text-only, any text. Model as mixed with
      // an empty sequence.
      Particle p;
      p.kind = ParticleKind::kSequence;
      ct->particle = std::move(p);
    }
    return true;
  }

  bool fill_simple_content(const xml::Node* node, ComplexType* ct) {
    for (const xml::Node* c = node->first_child_element(); c != nullptr;
         c = c->next_sibling_element()) {
      if (is_xsd(c, "annotation")) continue;
      if (is_xsd(c, "extension")) {
        const xml::Attr* base = c->attr("base");
        if (base == nullptr) return fail("xs:extension requires base=");
        const SimpleType* st = nullptr;
        const ComplexType* inner_ct = nullptr;
        if (!resolve_type_ref(c, base->value, &st, &inner_ct)) return false;
        if (inner_ct != nullptr) {
          return fail("simpleContent extension of a complex type");
        }
        ct->content = ContentKind::kSimple;
        ct->simple_content = st;
        for (const xml::Node* a = c->first_child_element(); a != nullptr;
             a = a->next_sibling_element()) {
          if (is_xsd(a, "attribute")) {
            if (!fill_attribute(a, ct)) return false;
          } else if (!is_xsd(a, "annotation")) {
            return fail("unexpected '" + std::string(a->qname) +
                        "' in xs:extension");
          }
        }
        return true;
      }
      return fail("xs:simpleContent requires xs:extension");
    }
    return fail("empty xs:simpleContent");
  }

  bool fill_attribute(const xml::Node* node, ComplexType* ct) {
    const xml::Attr* name = node->attr("name");
    if (name == nullptr) return fail("xs:attribute requires name=");
    AttributeUse use;
    use.name = std::string(name->value);
    if (const xml::Attr* u = node->attr("use")) {
      use.required = u->value == "required";
      if (u->value == "prohibited") return true;  // simply not declared
    }
    if (const xml::Attr* fx = node->attr("fixed")) {
      use.fixed = std::string(fx->value);
    }
    if (const xml::Attr* type = node->attr("type")) {
      const ComplexType* inner_ct = nullptr;
      if (!resolve_type_ref(node, type->value, &use.type, &inner_ct)) {
        return false;
      }
      if (inner_ct != nullptr) {
        return fail("attribute '" + use.name + "' has a complex type");
      }
    } else {
      for (const xml::Node* c = node->first_child_element(); c != nullptr;
           c = c->next_sibling_element()) {
        if (is_xsd(c, "simpleType")) {
          SimpleType* st = schema_.add_simple_type("");
          if (!fill_simple_type(c, st)) return false;
          use.type = st;
        }
      }
    }
    ct->attributes.push_back(std::move(use));
    return true;
  }

  Schema& schema_;
  std::string* error_ = nullptr;
  bool qualified_locals_ = false;
  std::map<std::string, SimpleType*> named_simple_;
  std::map<std::string, ComplexType*> named_complex_;
  std::map<std::string, ElementDecl*> global_elements_;
  std::map<BuiltinType, const SimpleType*> builtin_wrappers_;
};

}  // namespace

LoadResult load_schema(const xml::Document& doc) {
  LoadResult result;
  if (doc.root() == nullptr) {
    result.error = "empty document";
    return result;
  }
  Loader loader(result.schema);
  if (!loader.load(doc.root(), &result.error)) return result;
  if (!result.schema.finalize(&result.error)) return result;
  result.ok = true;
  return result;
}

LoadResult load_schema(std::string_view xsd_text) {
  auto parsed = xml::parse(xsd_text);
  if (!parsed.ok) {
    LoadResult result;
    result.error = "XSD parse error: " + parsed.error.to_string();
    return result;
  }
  return load_schema(parsed.document);
}

namespace {

// Shared construction-path schema cache behind load_schema_cached.
// Content-addressed: the key is a fingerprint of the full XSD text, so
// an entry can never go stale — changed schema text is a different key.
// Guarded by a plain mutex; schemas load at pipeline construction,
// never per message.
util::Mutex g_schema_mutex;
util::LruCache<std::uint64_t, std::shared_ptr<const Schema>> g_schema_cache
    XAON_GUARDED_BY(g_schema_mutex){16};

}  // namespace

std::shared_ptr<const Schema> load_schema_cached(std::string_view xsd_text,
                                                 std::string* error) {
  const std::uint64_t key = util::Fingerprint64::of(xsd_text);
  {
    util::MutexLock lock(g_schema_mutex);
    if (const auto* cached = g_schema_cache.find(key)) return *cached;
  }
  // Load outside the lock: compilation is the expensive part, and two
  // threads racing the same schema merely both insert the same content.
  LoadResult loaded = load_schema(xsd_text);
  if (!loaded.ok) {
    if (error != nullptr) *error = std::move(loaded.error);
    return nullptr;
  }
  auto schema = std::make_shared<const Schema>(std::move(loaded.schema));
  util::MutexLock lock(g_schema_mutex);
  g_schema_cache.insert(key, schema);
  return schema;
}

util::CacheStats schema_cache_stats() {
  util::MutexLock lock(g_schema_mutex);
  return g_schema_cache.stats();
}

}  // namespace xaon::xsd
