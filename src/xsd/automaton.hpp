#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xaon/util/annotations.hpp"
#include "xaon/xsd/model.hpp"

/// \file automaton.hpp  (internal)
/// Content-model matching: a particle tree compiles to an epsilon-free
/// NFA over element symbols (namespace, local). Bounded occurrences are
/// expanded by replication (with a hard state budget so hostile schemas
/// cannot explode); `unbounded` becomes a loop. xs:all is handled by a
/// separate presence-counting matcher.

namespace xaon::xsd::detail {

class ContentAutomaton {
 public:
  /// Compiles `particle`. Returns nullptr and fills `error` on failure
  /// (state budget exceeded).
  static std::shared_ptr<const ContentAutomaton> compile(
      const Particle& particle, std::string* error);

  /// Matches a child-element sequence. `names[i]` is the (ns,local) of
  /// child i. On success fills `matched[i]` with the element declaration
  /// each child matched. On failure returns false and sets `error_index`
  /// to the offending child (== names.size() when the sequence ended
  /// prematurely) and `expected` to a diagnostic list of acceptable
  /// element names at that point.
  struct XAON_ARENA_TIED Symbol {
    std::string_view ns_uri;
    std::string_view local;
  };
  bool match(const std::vector<Symbol>& names,
             std::vector<const ElementDecl*>* matched,
             std::size_t* error_index, std::string* expected) const;

  std::size_t state_count() const { return states_.size(); }

 private:
  struct Edge {
    const ElementDecl* decl;
    std::uint32_t target;
  };
  struct State {
    std::vector<Edge> edges;
    bool accepting = false;
  };

  std::vector<State> states_;
  std::uint32_t start_ = 0;

  class Builder;
};

/// xs:all matcher: every required child exactly once (optional children
/// at most once), any order. Children of an kAll particle must be
/// kElement particles with max_occurs == 1.
bool match_all_group(const Particle& all,
                     const std::vector<ContentAutomaton::Symbol>& names,
                     std::vector<const ElementDecl*>* matched,
                     std::size_t* error_index, std::string* expected);

}  // namespace xaon::xsd::detail
