#include "xaon/crypto/sha1.hpp"

#include <cstring>

#include "xaon/util/probe.hpp"

namespace xaon::crypto {

namespace {

const std::uint32_t kRoundSite =
    probe::site("crypto.sha1.round", probe::SiteKind::kLoop);

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  probe::load(block, 64);
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
    probe::branch(kRoundSite, i + 1 < 80);
  }
  probe::alu(80 * 6);
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::string_view data) {
  total_bytes_ += data.size();
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t remaining = data.size();
  if (buffered_ > 0) {
    const std::size_t take = std::min(remaining, 64 - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    process_block(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining > 0) {
    std::memcpy(buffer_, p, remaining);
    buffered_ = remaining;
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  update(std::string_view("\x80", 1));
  static const char kZeros[64] = {};
  while (buffered_ != 56) {
    update(std::string_view(kZeros, buffered_ < 56 ? 56 - buffered_
                                                   : 64 - buffered_ + 56));
  }
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] =
        static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::string_view(reinterpret_cast<const char*>(length_bytes), 8));

  Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(h_[i] >> 24);
    digest[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(h_[i] >> 16);
    digest[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(h_[i] >> 8);
    digest[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha1::Digest Sha1::hash(std::string_view data) {
  Sha1 sha;
  sha.update(data);
  return sha.finish();
}

Sha1::Digest hmac_sha1(std::string_view key, std::string_view message) {
  std::uint8_t key_block[64] = {};
  if (key.size() > 64) {
    const Sha1::Digest key_digest = Sha1::hash(key);
    std::memcpy(key_block, key_digest.data(), key_digest.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5C;
  }
  Sha1 inner;
  inner.update(
      std::string_view(reinterpret_cast<const char*>(ipad), 64));
  inner.update(message);
  const Sha1::Digest inner_digest = inner.finish();

  Sha1 outer;
  outer.update(
      std::string_view(reinterpret_cast<const char*>(opad), 64));
  outer.update(std::string_view(
      reinterpret_cast<const char*>(inner_digest.data()),
      inner_digest.size()));
  return outer.finish();
}

std::string to_hex(const Sha1::Digest& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

bool digest_equal(const Sha1::Digest& a, const Sha1::Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace xaon::crypto
