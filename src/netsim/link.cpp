#include "xaon/netsim/link.hpp"

#include <algorithm>
#include <cmath>

#include "xaon/util/assert.hpp"

namespace xaon::netsim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Link::transmit(std::uint32_t bytes, DeliverFn deliver,
                    DeliverFn dropped) {
  XAON_CHECK_MSG(bytes <= config_.mtu_bytes, "frame exceeds link MTU");
  XAON_CHECK(deliver != nullptr);
  const double wire_bytes =
      static_cast<double>(bytes) + config_.frame_overhead_bytes;
  const auto serialize_ns = static_cast<SimTime>(
      std::llround(wire_bytes * 8.0 / config_.bandwidth_bps * 1e9));

  const SimTime start = std::max(sim_.now(), tx_free_ns_);
  tx_free_ns_ = start + serialize_ns;
  ++stats_.frames;
  stats_.payload_bytes += bytes;
  stats_.busy_ns += serialize_ns;

  const SimTime arrival = tx_free_ns_ + config_.latency_ns;
  const bool lost =
      config_.loss_rate > 0.0 &&
      static_cast<double>(splitmix64(loss_state_) >> 11) * 0x1.0p-53 <
          config_.loss_rate;
  if (lost) {
    ++stats_.dropped_frames;
    if (dropped != nullptr) {
      sim_.at(arrival,
              [dropped = std::move(dropped), bytes] { dropped(bytes); });
    }
    return;
  }
  sim_.at(arrival, [deliver = std::move(deliver), bytes] { deliver(bytes); });
}

}  // namespace xaon::netsim
