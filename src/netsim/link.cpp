#include "xaon/netsim/link.hpp"

#include <algorithm>
#include <cmath>

#include "xaon/util/assert.hpp"

namespace xaon::netsim {

void Link::transmit(std::uint32_t bytes, DeliverFn deliver,
                    DeliverFn dropped) {
  XAON_CHECK_MSG(bytes <= config_.mtu_bytes, "frame exceeds link MTU");
  XAON_CHECK(deliver != nullptr);
  const double wire_bytes =
      static_cast<double>(bytes) + config_.frame_overhead_bytes;
  const auto serialize_ns = static_cast<SimTime>(
      std::llround(wire_bytes * 8.0 / config_.bandwidth_bps * 1e9));

  const SimTime start = std::max(sim_.now(), tx_free_ns_);
  tx_free_ns_ = start + serialize_ns;
  ++stats_.frames;
  stats_.payload_bytes += bytes;
  stats_.busy_ns += serialize_ns;

  SimTime arrival = tx_free_ns_ + config_.latency_ns;
  const util::FaultKind fault = injector_.next();
  switch (fault) {
    case util::FaultKind::kDrop:
    case util::FaultKind::kCorrupt:
      // A corrupted frame reaches the receiver but fails the frame CRC
      // there, so to the transport both classes are a non-delivery at
      // the would-be arrival time.
      if (fault == util::FaultKind::kDrop) {
        ++stats_.dropped_frames;
      } else {
        ++stats_.corrupted_frames;
      }
      if (dropped != nullptr) {
        sim_.at(arrival,
                [dropped = std::move(dropped), bytes] { dropped(bytes); });
      }
      return;
    case util::FaultKind::kDelay:
      ++stats_.delayed_frames;
      arrival += config_.extra_delay_ns;
      break;
    case util::FaultKind::kReorder:
      // Holding only this frame lets frames serialized after it arrive
      // first — the link's FIFO order is broken for exactly this frame.
      ++stats_.reordered_frames;
      arrival += config_.reorder_hold_ns;
      break;
    case util::FaultKind::kNone:
      break;
  }
  sim_.at(arrival, [deliver = std::move(deliver), bytes] { deliver(bytes); });
}

}  // namespace xaon::netsim
