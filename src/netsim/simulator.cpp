#include "xaon/netsim/simulator.hpp"

#include "xaon/util/assert.hpp"

namespace xaon::netsim {

void Simulator::at(SimTime t, Callback fn) {
  XAON_CHECK_MSG(t >= now_, "cannot schedule into the past");
  XAON_CHECK(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the
  // standard idiom here and safe because we pop immediately.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  event.fn();
  return true;
}

std::size_t Simulator::run(SimTime until) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    step();
    ++processed;
  }
  if (queue_.empty() && now_ < until && until != kSimTimeMax) now_ = until;
  return processed;
}

}  // namespace xaon::netsim
