#include "xaon/netsim/tcp.hpp"

#include <algorithm>
#include <cmath>

namespace xaon::netsim {

TcpStream::TcpStream(Simulator& sim, Link& data_link, Link& ack_link,
                     const TcpConfig& config, CpuResource* sender_cpu,
                     CpuResource* receiver_cpu)
    : sim_(sim),
      data_link_(data_link),
      ack_link_(ack_link),
      config_(config),
      sender_cpu_(sender_cpu),
      receiver_cpu_(receiver_cpu) {
  cwnd_ = static_cast<double>(config.initial_cwnd_segments) * config.mss;
  ssthresh_ = static_cast<double>(config.rwnd_bytes);
}

void TcpStream::send(std::uint64_t bytes) {
  pending_ += bytes;
  pump();
}

void TcpStream::pump() {
  const double window =
      std::min(cwnd_, static_cast<double>(config_.rwnd_bytes));
  while (pending_ > 0 &&
         static_cast<double>(in_flight_) + config_.mss <= window) {
    const std::uint32_t payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pending_, config_.mss));
    pending_ -= payload;
    in_flight_ += payload;
    send_segment(payload, /*is_retransmit=*/false);
  }
}

void TcpStream::send_segment(std::uint32_t payload, bool is_retransmit) {
  ++stats_.segments_sent;
  if (is_retransmit) ++stats_.retransmits;

  auto transmit = [this, payload] {
    data_link_.transmit(
        payload + config_.header_bytes,
        [this, payload](std::uint32_t) { on_segment_arrival(payload); },
        [this, payload](std::uint32_t) { on_segment_lost(payload); });
  };
  if (sender_cpu_ != nullptr) {
    const auto cost = static_cast<SimTime>(
        config_.sender_cpu_ns_per_segment +
        std::llround(config_.sender_cpu_ns_per_byte * payload));
    const SimTime ready = sender_cpu_->acquire(sim_.now(), cost);
    sim_.at(ready, transmit);
  } else {
    transmit();
  }
}

void TcpStream::on_segment_lost(std::uint32_t payload) {
  // Multiplicative decrease and a timer-driven retransmit (Reno-style,
  // without SACK/fast-retransmit refinements).
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * config_.mss);
  cwnd_ = ssthresh_;
  stats_.cwnd_bytes = static_cast<std::uint32_t>(cwnd_);
  sim_.after(config_.retransmit_timeout_ns, [this, payload] {
    send_segment(payload, /*is_retransmit=*/true);
  });
}

void TcpStream::on_segment_arrival(std::uint32_t payload) {
  auto deliver_and_ack = [this, payload] {
    stats_.bytes_delivered += payload;
    if (on_deliver_) on_deliver_(payload);
    send_ack(payload);
  };
  if (receiver_cpu_ != nullptr) {
    const auto cost = static_cast<SimTime>(
        config_.receiver_cpu_ns_per_segment +
        std::llround(config_.receiver_cpu_ns_per_byte * payload));
    const SimTime ready = receiver_cpu_->acquire(sim_.now(), cost);
    sim_.at(ready, deliver_and_ack);
  } else {
    deliver_and_ack();
  }
}

void TcpStream::send_ack(std::uint32_t payload) {
  // A lost ACK is re-sent after the timeout — a simplification of
  // cumulative-ACK recovery that keeps per-segment credit accounting
  // exact on lossy links.
  ack_link_.transmit(
      config_.header_bytes,
      [this, payload](std::uint32_t) { on_ack(payload); },
      [this, payload](std::uint32_t) {
        sim_.after(config_.retransmit_timeout_ns,
                   [this, payload] { send_ack(payload); });
      });
}

void TcpStream::on_ack(std::uint32_t acked_payload) {
  ++stats_.acks_received;
  in_flight_ -= acked_payload;
  // Lossless network: slow start doubles per RTT (one MSS per ACK),
  // congestion avoidance adds ~one MSS per RTT.
  if (cwnd_ < ssthresh_) {
    cwnd_ += config_.mss;
  } else {
    cwnd_ += static_cast<double>(config_.mss) * config_.mss / cwnd_;
  }
  cwnd_ = std::min(cwnd_, static_cast<double>(config_.rwnd_bytes));
  stats_.cwnd_bytes = static_cast<std::uint32_t>(cwnd_);
  pump();
}

}  // namespace xaon::netsim
