#include "xaon/netsim/netperf.hpp"

namespace xaon::netsim {

TcpStreamResult run_tcp_stream(const LinkConfig& link_config,
                               const TcpConfig& tcp_config,
                               std::uint64_t total_bytes,
                               CpuResource* sender_cpu,
                               CpuResource* receiver_cpu) {
  Simulator sim;
  Link data(sim, link_config);
  // ACK path mirrors the data path's latency/bandwidth.
  Link acks(sim, link_config);
  TcpStream stream(sim, data, acks, tcp_config, sender_cpu, receiver_cpu);

  stream.send(total_bytes);
  sim.run();

  TcpStreamResult result;
  result.bytes_delivered = stream.delivered();
  result.duration_ns = sim.now();
  result.tcp = stream.stats();
  result.data_link = data.stats();
  if (result.duration_ns > 0) {
    result.goodput_mbps = static_cast<double>(result.bytes_delivered) * 8.0 /
                          (static_cast<double>(result.duration_ns) * 1e-9) /
                          1e6;
  }
  return result;
}

}  // namespace xaon::netsim
