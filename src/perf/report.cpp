#include "xaon/perf/report.hpp"

#include "xaon/util/str.hpp"

namespace xaon::perf {

util::TextTable metric_table(const std::string& title,
                             const std::vector<WorkloadResults>& workloads,
                             const MetricFn& metric, int precision) {
  util::TextTable table(title);
  std::vector<std::string> header{"Workload"};
  if (!workloads.empty()) {
    for (const PlatformRun& run : workloads.front().runs) {
      header.push_back(run.notation);
    }
  }
  table.set_header(std::move(header));
  for (const WorkloadResults& w : workloads) {
    std::vector<std::string> row{w.workload};
    for (const PlatformRun& run : w.runs) {
      row.push_back(util::format("%.*f", precision, metric(run)));
    }
    table.add_row(std::move(row));
  }
  return table;
}

util::BarChart metric_chart(const std::string& title,
                            const std::vector<WorkloadResults>& workloads,
                            const MetricFn& metric, int precision) {
  util::BarChart chart(title);
  std::vector<std::string> series;
  for (const WorkloadResults& w : workloads) series.push_back(w.workload);
  chart.set_series(std::move(series));
  chart.set_precision(precision);
  if (workloads.empty()) return chart;
  for (std::size_t p = 0; p < workloads.front().runs.size(); ++p) {
    std::vector<double> values;
    for (const WorkloadResults& w : workloads) {
      values.push_back(p < w.runs.size() ? metric(w.runs[p]) : 0.0);
    }
    chart.add_group(workloads.front().runs[p].notation, std::move(values));
  }
  return chart;
}

double metric_cpi(const PlatformRun& run) { return run.counters.cpi(); }
double metric_l2mpi(const PlatformRun& run) { return run.counters.l2mpi(); }
double metric_btpi(const PlatformRun& run) { return run.counters.btpi(); }
double metric_branch_frequency(const PlatformRun& run) {
  return run.counters.branch_frequency();
}
double metric_brmpr(const PlatformRun& run) { return run.counters.brmpr(); }
double metric_throughput(const PlatformRun& run) { return run.throughput; }

}  // namespace xaon::perf
