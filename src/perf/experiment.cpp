#include "xaon/perf/experiment.hpp"

#include <algorithm>
#include <memory>

#include "xaon/aon/capture.hpp"
#include "xaon/netsim/netperf.hpp"
#include "xaon/uarch/system.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/wload/netperf_traces.hpp"

namespace xaon::perf {

namespace {

/// Accumulates `measure_repeats` steady-state runs of `traces` on a
/// fresh System for `platform`, after `warmup_repeats` discarded runs.
struct Measured {
  double wall_ns = 0;
  uarch::Counters counters;
};

Measured run_steady_state(const uarch::PlatformConfig& platform,
                          const std::vector<const uarch::Trace*>& traces,
                          std::uint32_t warmup_repeats,
                          std::uint32_t measure_repeats) {
  uarch::System system(platform);
  for (std::uint32_t i = 0; i < warmup_repeats; ++i) {
    (void)system.run(traces);
  }
  Measured out;
  for (std::uint32_t i = 0; i < measure_repeats; ++i) {
    const uarch::RunResult r = system.run(traces);
    out.wall_ns += r.wall_ns;
    out.counters += r.total;
  }
  return out;
}

}  // namespace

const PlatformRun* WorkloadResults::find(std::string_view notation) const {
  for (const PlatformRun& r : runs) {
    if (r.notation == notation) return &r;
  }
  return nullptr;
}

WorkloadResults run_aon_experiment(aon::UseCase use_case,
                                   const AonExperimentConfig& config) {
  WorkloadResults results;
  results.workload = std::string(aon::use_case_notation(use_case));

  // One captured stream per hardware thread (max 2 across the paper's
  // configurations): distinct messages and data regions, shared code.
  // Captured once and reused on every platform so all five see the
  // exact same instruction streams.
  const std::uint32_t n_messages =
      config.messages_per_trace != 0 ? config.messages_per_trace
                                     : aon::default_messages(use_case);
  std::vector<uarch::Trace> traces;
  for (int t = 0; t < 2; ++t) {
    aon::CaptureConfig capture;
    capture.messages = config.messages_per_trace;
    capture.message_seed = 1 + static_cast<std::uint64_t>(t) * n_messages;
    capture.data_base =
        0x1000'0000ull + static_cast<std::uint64_t>(t) * 0x1000'0000ull;
    capture.alu_scale = config.alu_scale;
    traces.push_back(capture_use_case_trace(use_case, capture));
  }

  for (const uarch::PlatformConfig& platform : uarch::all_platforms()) {
    const int n_threads = platform.hardware_threads();
    std::vector<const uarch::Trace*> trace_ptrs;
    for (int t = 0; t < n_threads; ++t) {
      trace_ptrs.push_back(&traces[static_cast<std::size_t>(t)]);
    }

    const Measured m = run_steady_state(platform, trace_ptrs,
                                        config.warmup_repeats,
                                        config.measure_repeats);
    PlatformRun run;
    run.notation = platform.notation;
    run.wall_ns = m.wall_ns;
    run.counters = m.counters;
    const double messages = static_cast<double>(n_messages) * n_threads *
                            config.measure_repeats;
    run.throughput = messages / (m.wall_ns * 1e-9);
    results.runs.push_back(std::move(run));
  }
  return results;
}

std::vector<WorkloadResults> run_all_aon_experiments(
    const AonExperimentConfig& config) {
  return {run_aon_experiment(aon::UseCase::kSchemaValidation, config),
          run_aon_experiment(aon::UseCase::kContentBasedRouting, config),
          run_aon_experiment(aon::UseCase::kForwardRequest, config)};
}

WorkloadResults run_netperf_loopback(const NetperfExperimentConfig& config) {
  WorkloadResults results;
  results.workload = "Netperf-loopback";

  wload::NetperfTraceConfig trace_config;
  trace_config.iterations = config.iterations_per_trace;

  for (const uarch::PlatformConfig& platform : uarch::all_platforms()) {
    const int n_threads = platform.hardware_threads();
    std::vector<uarch::Trace> traces;
    if (n_threads == 1) {
      // netperf and netserver timeshare the single CPU.
      traces.push_back(
          wload::make_netperf_loopback_timeshared_trace(trace_config));
    } else {
      traces.push_back(wload::make_netperf_sender_trace(trace_config));
      traces.push_back(wload::make_netperf_receiver_trace(trace_config));
    }
    std::vector<const uarch::Trace*> trace_ptrs;
    for (const auto& t : traces) trace_ptrs.push_back(&t);

    const Measured m = run_steady_state(platform, trace_ptrs,
                                        config.warmup_repeats,
                                        config.measure_repeats);
    PlatformRun run;
    run.notation = platform.notation;
    run.wall_ns = m.wall_ns;
    run.counters = m.counters;
    const double bytes =
        static_cast<double>(wload::netperf_trace_bytes(trace_config)) *
        config.measure_repeats;
    run.throughput = bytes * 8.0 / (m.wall_ns * 1e-9) / 1e6;  // Mbps
    results.runs.push_back(std::move(run));
  }
  return results;
}

WorkloadResults run_netperf_endtoend(const NetperfExperimentConfig& config) {
  WorkloadResults results;
  results.workload = "Netperf";

  // The wire ceiling comes from the network simulator: TCP_STREAM over
  // Gigabit Ethernet.
  const netsim::TcpStreamResult wire = netsim::run_tcp_stream(
      netsim::Link::gigabit_ethernet(), netsim::TcpConfig{},
      64ull * 1024 * 1024);

  wload::NetperfTraceConfig trace_config;
  trace_config.iterations = config.iterations_per_trace;

  for (const uarch::PlatformConfig& platform : uarch::all_platforms()) {
    // Only netperf (the sender) runs on the SUT; remaining units idle.
    uarch::Trace sender = wload::make_netperf_sender_trace(trace_config);
    const Measured m = run_steady_state(platform, {&sender},
                                        config.warmup_repeats,
                                        config.measure_repeats);
    const double bytes =
        static_cast<double>(wload::netperf_trace_bytes(trace_config)) *
        config.measure_repeats;
    const double cpu_mbps = bytes * 8.0 / (m.wall_ns * 1e-9) / 1e6;

    PlatformRun run;
    run.notation = platform.notation;
    run.counters = m.counters;
    run.throughput = std::min(cpu_mbps, wire.goodput_mbps);
    run.wall_ns = bytes * 8.0 / (run.throughput * 1e6) * 1e9;
    // Counted clockticks: VTune samples every (logical) CPU through the
    // transfer window. Idle-but-unhalted overhead stretches the busy
    // unit's cycles ~15% past its protocol work, and each additional
    // unit contributes the same window again — reproducing the paper's
    // near-exact CPI doubling from single to dual units in end-to-end
    // mode (Table 3).
    constexpr double kIdlePollFactor = 1.15;
    run.counters.clockticks = static_cast<std::uint64_t>(
        static_cast<double>(m.counters.busy_cycles) * kIdlePollFactor *
        platform.hardware_threads());
    results.runs.push_back(std::move(run));
  }
  return results;
}

double scaling(const WorkloadResults& results, std::string_view from,
               std::string_view to) {
  const PlatformRun* a = results.find(from);
  const PlatformRun* b = results.find(to);
  if (a == nullptr || b == nullptr || a->throughput <= 0) return 0;
  return b->throughput / a->throughput;
}

}  // namespace xaon::perf
