#include "xaon/aon/server.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "xaon/util/annotations.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/backoff.hpp"
#include "xaon/util/spsc_queue.hpp"

/// Concurrency contract of run_load (audited for the TSan tier; the
/// orderings below are load-bearing — each comment states the invariant
/// the order preserves):
///
///   acceptor thread                     worker w
///   ---------------                     --------
///   queue[w].push_wait(msg)  ... n×     pop_wait(stop) -> msg ... n×
///   done.store(true, release)           stop(): done.load(acquire)
///
/// * Queue hand-off: SpscQueue's release store of head_ (producer) /
///   acquire load of head_ (consumer) publishes the message pointer —
///   see spsc_queue.hpp.
/// * Shutdown: `done` is written with **release** after the final
///   push_wait returns, and read with **acquire** in the worker's stop
///   predicate. A worker that observes done==true therefore also
///   observes every head_ store sequenced before it, so pop_wait's
///   `stop() && empty()` exit test can never miss a message: either
///   empty() sees the push (and the worker pops it), or done was not
///   yet visible (and the worker keeps waiting). relaxed/relaxed here
///   would be a genuine lost-wakeup bug, not just a TSan artifact.
/// * Worker stats: each WorkerState is written by exactly one worker
///   thread while it runs; the acceptor reads them only after join(),
///   which provides the happens-before edge. No locks needed — that
///   single-owner phase discipline is why the fields carry no
///   XAON_GUARDED_BY (there is no capability; the model checker and
///   TSan tier cover this file instead).

namespace xaon::aon {

Server::Server(const ServerConfig& config)
    : config_(config), pipeline_(config.use_case) {
  XAON_CHECK(config.workers >= 1);
}

LoadResult Server::run_load(const std::vector<std::string>& wires,
                            std::uint64_t total_messages) {
  XAON_CHECK_MSG(!wires.empty(), "need at least one message");
  const std::size_t n_workers = config_.workers;

  struct WorkerState {
    explicit WorkerState(std::size_t capacity) : queue(capacity) {}
    util::SpscQueue<const std::string*> queue;
    std::uint64_t processed = 0;
    std::uint64_t primary = 0;
    std::uint64_t error = 0;
    std::uint64_t failed = 0;
    std::uint64_t s2xx = 0;
    std::uint64_t s4xx = 0;
    std::uint64_t s5xx = 0;
    std::uint64_t retries = 0;
    std::uint64_t fwd_failures = 0;
    std::uint64_t fwd_shed = 0;
  };

  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    states.push_back(std::make_unique<WorkerState>(config_.queue_capacity));
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([this, &done, state = states[w].get()] {
      // Per-worker scratch: parser buffers, DOM arena, node-set pools
      // and the outcome are reused across every message this worker
      // handles — the steady-state path does not touch the allocator.
      Pipeline::ProcessScratch scratch;
      util::Backoff retry_backoff;
      // acquire: pairs with the acceptor's release store below — done
      // observed true implies every earlier push is visible (see the
      // file-top contract).
      const auto stop = [&done] {
        return done.load(std::memory_order_acquire);
      };
      while (auto item = state->queue.pop_wait(stop)) {
        const Pipeline::Outcome& outcome =
            pipeline_.process_wire(**item, scratch);
        ++state->processed;
        if (!outcome.ok) {
          ++state->failed;
        } else if (outcome.routed_primary) {
          ++state->primary;
        } else {
          ++state->error;
        }

        // Forward with a bounded retry budget; an exhausted budget
        // degrades this one message to 502/503 and the worker moves on —
        // a dead downstream never wedges the queue.
        int status = outcome.response.status;
        if (outcome.ok && config_.downstream != nullptr) {
          SendStatus verdict = SendStatus::kAck;
          retry_backoff.reset();
          for (std::size_t attempt = 0;; ++attempt) {
            verdict = config_.downstream->send(outcome.forwarded_wire);
            if (verdict == SendStatus::kAck) break;
            if (attempt + 1 >= config_.forward.max_attempts) break;
            ++state->retries;
            for (std::uint32_t p = 0; p < config_.forward.backoff_pauses;
                 ++p) {
              retry_backoff.pause();
            }
          }
          if (verdict == SendStatus::kBusy) {
            status = 503;
            ++state->fwd_shed;
          } else if (verdict == SendStatus::kFail) {
            status = 502;
            ++state->fwd_failures;
          }
        }
        if (status >= 200 && status < 300) {
          ++state->s2xx;
        } else if (status >= 500) {
          ++state->s5xx;
        } else {
          ++state->s4xx;
        }
      }
    });
  }

  // Dispatch round-robin (the acceptor thread role); push_wait spins
  // with bounded pause-backoff when a worker's queue is full.
  for (std::uint64_t i = 0; i < total_messages; ++i) {
    WorkerState& target = *states[i % n_workers];
    const std::string* wire = &wires[i % wires.size()];
    target.queue.push_wait(wire);
  }
  // release: sequenced after the last push_wait, so workers acquiring
  // done==true cannot observe an emptier queue than the final state —
  // the `stop() && empty()` exit in pop_wait stays lossless.
  done.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const auto end = std::chrono::steady_clock::now();

  LoadResult result;
  for (const auto& s : states) {
    result.messages += s->processed;
    result.routed_primary += s->primary;
    result.routed_error += s->error;
    result.failed += s->failed;
    result.status_2xx += s->s2xx;
    result.status_4xx += s->s4xx;
    result.status_5xx += s->s5xx;
    result.forward_retries += s->retries;
    result.forward_failures += s->fwd_failures;
    result.forward_shed += s->fwd_shed;
  }
  result.seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace xaon::aon
