#include "xaon/aon/server.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "xaon/util/annotations.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/backoff.hpp"
#include "xaon/util/metrics.hpp"
#include "xaon/util/spsc_queue.hpp"

/// Concurrency contract of run_load (audited for the TSan tier; the
/// orderings below are load-bearing — each comment states the invariant
/// the order preserves):
///
///   acceptor thread                     worker w
///   ---------------                     --------
///   queue[w].push_wait(msg)  ... n×     pop_wait(stop) -> msg ... n×
///   done.store(true, release)           stop(): done.load(acquire)
///
/// * Queue hand-off: SpscQueue's release store of head_ (producer) /
///   acquire load of head_ (consumer) publishes the message pointer —
///   see spsc_queue.hpp.
/// * Shutdown: `done` is written with **release** after the final
///   push_wait returns, and read with **acquire** in the worker's stop
///   predicate. A worker that observes done==true therefore also
///   observes every head_ store sequenced before it, so pop_wait's
///   `stop() && empty()` exit test can never miss a message: either
///   empty() sees the push (and the worker pops it), or done was not
///   yet visible (and the worker keeps waiting). relaxed/relaxed here
///   would be a genuine lost-wakeup bug, not just a TSan artifact.
/// * Worker stats: each WorkerState is written by exactly one worker
///   thread while it runs; the acceptor reads them only after join(),
///   which provides the happens-before edge. No locks needed — that
///   single-owner phase discipline is why the fields carry no
///   XAON_GUARDED_BY (there is no capability; the model checker and
///   TSan tier cover this file instead).

namespace xaon::aon {

Server::Server(const ServerConfig& config)
    : config_(config), pipeline_(config.use_case) {
  XAON_CHECK(config.workers >= 1);
}

LoadResult Server::run_load(const std::vector<std::string>& wires,
                            std::uint64_t total_messages) {
  XAON_CHECK_MSG(!wires.empty(), "need at least one message");
  const std::size_t n_workers = config_.workers;

  struct WorkerState {
    explicit WorkerState(std::size_t capacity) : queue(capacity) {}
    util::SpscQueue<const std::string*> queue;
    std::uint64_t processed = 0;
    std::uint64_t primary = 0;
    std::uint64_t error = 0;
    std::uint64_t failed = 0;
    StatusBuckets status;
    std::uint64_t retries = 0;
    std::uint64_t fwd_failures = 0;
    std::uint64_t fwd_shed = 0;
    util::WorkerMetrics metrics;
    /// When this worker drained its queue and exited — read after
    /// join(); max over workers closes the dispatch-to-drain window.
    std::uint64_t finish_ns = 0;
  };

  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    states.push_back(std::make_unique<WorkerState>(config_.queue_capacity));
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t w = 0; w < n_workers; ++w) {
    workers.emplace_back([this, &done, state = states[w].get()] {
      // Per-worker scratch: parser buffers, DOM arena, node-set pools
      // and the outcome are reused across every message this worker
      // handles — the steady-state path does not touch the allocator.
      Pipeline::ProcessScratch scratch;
      scratch.metrics = &state->metrics;  // parse/route/serialize spans
      if (scratch.route_cache.capacity() != config_.route_cache_capacity) {
        scratch.route_cache.set_capacity(config_.route_cache_capacity);
      }
      // Scan-kernel counters are thread-local; start this worker's
      // window at zero so the drain-time copy below is exact.
      util::scan::reset_thread_counters();
      util::Backoff retry_backoff;
      // acquire: pairs with the acceptor's release store below — done
      // observed true implies every earlier push is visible (see the
      // file-top contract).
      const auto stop = [&done] {
        return done.load(std::memory_order_acquire);
      };
      while (auto item = state->queue.pop_wait(stop)) {
        const std::uint64_t msg_start = util::metrics_now_ns();
        const Pipeline::Outcome& outcome =
            pipeline_.process_wire(**item, scratch);
        ++state->processed;
        if (!outcome.ok) {
          ++state->failed;
        } else if (outcome.routed_primary) {
          ++state->primary;
        } else {
          ++state->error;
        }

        // Forward with a bounded retry budget; an exhausted budget
        // degrades this one message to 502/503 and the worker moves on —
        // a dead downstream never wedges the queue.
        int status = outcome.response.status;
        if (outcome.ok && config_.downstream != nullptr) {
          const std::uint64_t fwd_start = util::metrics_now_ns();
          SendStatus verdict = SendStatus::kAck;
          retry_backoff.reset();
          for (std::size_t attempt = 0;; ++attempt) {
            verdict = config_.downstream->send(outcome.forwarded_wire);
            if (verdict == SendStatus::kAck) break;
            if (attempt + 1 >= config_.forward.max_attempts) break;
            ++state->retries;
            for (std::uint32_t p = 0; p < config_.forward.backoff_pauses;
                 ++p) {
              retry_backoff.pause();
            }
          }
          if (verdict == SendStatus::kBusy) {
            status = 503;
            ++state->fwd_shed;
          } else if (verdict == SendStatus::kFail) {
            status = 502;
            ++state->fwd_failures;
          }
          state->metrics.record_stage(util::Stage::kForward,
                                      util::metrics_now_ns() - fwd_start);
        }
        // Explicit classification: a 1xx/3xx (or out-of-range) status
        // lands in its own bucket, never silently in 4xx.
        state->status.add(status);
        state->metrics.record_message(util::metrics_now_ns() - msg_start);
        // The arena still holds this message's DOM (it resets at the
        // START of the next message), so its footprint right here IS
        // the message's arena cost. Two gauge stores, allocation-free.
        state->metrics.record_arena(scratch.arena.bytes_allocated(),
                                    scratch.arena.bytes_retained());
      }
      // Queue drained: publish this worker's cache counters (one struct
      // copy, off the message path; read by the acceptor after join).
      state->metrics.record_route_cache(scratch.route_cache.stats());
      state->metrics.record_scan(util::scan::thread_counters());
      state->finish_ns = util::metrics_now_ns();
    });
  }

  // Dispatch round-robin (the acceptor thread role); push_wait spins
  // with bounded pause-backoff when a worker's queue is full.
  //
  // The wire cursor is deliberately NOT derived from the message index:
  // with `wires[i % wires.size()]` and `states[i % n_workers]`, any
  // common factor of the two counts locks each worker onto a fixed
  // subset of wires (worker w only ever sees indices ≡ w modulo the
  // gcd), skewing per-worker cost for mixed workloads. Instead the
  // cursor walks every wire once per pass and the pass phase rotates by
  // one each wraparound, so the worker/wire alignment drifts through
  // every residue — each worker observes every wire class while each
  // pass still covers each wire exactly once (uniform mix).
  const std::uint64_t dispatch_start = util::metrics_now_ns();
  std::size_t wire_pos = 0;    // position within the current pass
  std::size_t wire_phase = 0;  // rotation applied to this pass
  for (std::uint64_t i = 0; i < total_messages; ++i) {
    WorkerState& target = *states[i % n_workers];
    std::size_t wire_idx = wire_pos + wire_phase;
    if (wire_idx >= wires.size()) wire_idx -= wires.size();
    target.queue.push_wait(&wires[wire_idx]);
    if (++wire_pos == wires.size()) {
      wire_pos = 0;
      if (++wire_phase == wires.size()) wire_phase = 0;
    }
  }
  // release: sequenced after the last push_wait, so workers acquiring
  // done==true cannot observe an emptier queue than the final state —
  // the `stop() && empty()` exit in pop_wait stays lossless.
  done.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const auto end = std::chrono::steady_clock::now();

  LoadResult result;
  std::uint64_t last_drain = dispatch_start;
  for (const auto& s : states) {
    result.messages += s->processed;
    result.routed_primary += s->primary;
    result.routed_error += s->error;
    result.failed += s->failed;
    result.status_1xx += s->status.s1xx;
    result.status_2xx += s->status.s2xx;
    result.status_3xx += s->status.s3xx;
    result.status_4xx += s->status.s4xx;
    result.status_5xx += s->status.s5xx;
    result.status_other += s->status.other;
    result.forward_retries += s->retries;
    result.forward_failures += s->fwd_failures;
    result.forward_shed += s->fwd_shed;
    result.metrics.add_worker(s->metrics);
    if (s->finish_ns > last_drain) last_drain = s->finish_ns;
  }
  result.metrics.capture_probe_sites();
  // Every processed message lands in exactly one status bucket — the
  // explicit classification above makes this reconcile by construction;
  // the check guards against a future bucket being added but not merged.
  XAON_CHECK(result.status_1xx + result.status_2xx + result.status_3xx +
                 result.status_4xx + result.status_5xx +
                 result.status_other ==
             result.messages);
  // Dispatch-to-drain window (throughput denominator) vs. full harness
  // span: see LoadResult. finish_ns is written by each worker before
  // join(), which provides the happens-before edge for reading it here.
  result.seconds =
      static_cast<double>(last_drain - dispatch_start) * 1e-9;
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace xaon::aon
