#include "xaon/aon/capture.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "xaon/aon/messages.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/wload/recorder.hpp"

namespace xaon::aon {

std::uint64_t default_code_footprint(UseCase use_case) {
  // Hot code of the full stack (kernel path + HTTP + the 2006-era XML
  // libraries): big enough to pressure the Xeon L2 alongside streaming
  // data, comfortably resident in the Pentium M's 2 MB.
  switch (use_case) {
    case UseCase::kForwardRequest:
      return 160 * 1024;  // kernel socket path + proxy
    case UseCase::kContentBasedRouting:
      return 288 * 1024;  // + XML parser + XPath engine
    case UseCase::kSchemaValidation:
      return 384 * 1024;  // + schema validator + regex + type checks
    case UseCase::kDeepInspection:
      return 192 * 1024;  // kernel path + signature engine tables
    case UseCase::kMessageSecurity:
      return 192 * 1024;  // kernel path + crypto rounds
  }
  return 160 * 1024;
}

std::uint32_t default_messages(UseCase use_case) {
  // Sized so one thread's fresh-data footprint exceeds 2 MB.
  switch (use_case) {
    case UseCase::kForwardRequest: return 320;
    case UseCase::kContentBasedRouting: return 144;
    case UseCase::kSchemaValidation: return 112;
    case UseCase::kDeepInspection: return 192;
    case UseCase::kMessageSecurity: return 160;
  }
  return 96;
}

double default_compute_expansion(UseCase use_case) {
  // Our clean-room XML stack is ~50x leaner than the commercial 2006
  // stack of the paper's SUT; injected compute (hot tables, mostly
  // predictable branches) restores the per-message instruction volume
  // so the CPU-vs-I/O balance matches the paper's workload spectrum.
  switch (use_case) {
    // FR's expansion covers the kernel TCP/epoll path beyond our thin
    // user-space copy loops; CBR/SV add the heavyweight XML machinery.
    case UseCase::kForwardRequest: return 1.5;
    case UseCase::kContentBasedRouting: return 3.0;
    case UseCase::kSchemaValidation: return 6.5;
    case UseCase::kDeepInspection: return 2.0;   // byte-sweep + tables
    case UseCase::kMessageSecurity: return 2.0;  // crypto rounds are real
  }
  return 0.0;
}

uarch::Trace capture_use_case_trace(UseCase use_case,
                                    const CaptureConfig& config) {
  Pipeline pipeline(use_case);

  wload::RecorderConfig rec_config;
  rec_config.data_base = config.data_base;
  rec_config.code_base = config.code_base;
  rec_config.code_footprint_bytes =
      config.code_footprint_bytes != 0 ? config.code_footprint_bytes
                                       : default_code_footprint(use_case);
  rec_config.alu_scale = config.alu_scale;
  rec_config.compute_expansion = config.compute_expansion >= 0
                                     ? config.compute_expansion
                                     : default_compute_expansion(use_case);
  // Branch predictability of the injected work: schema validation makes
  // more content-dependent decisions than routing or proxying.
  switch (use_case) {
    case UseCase::kForwardRequest:
      rec_config.expansion_branch_bias = 0.995;
      break;
    case UseCase::kContentBasedRouting:
      rec_config.expansion_branch_bias = 0.992;
      break;
    case UseCase::kSchemaValidation:
      rec_config.expansion_branch_bias = 0.98;
      break;
  }
  wload::TraceRecorder recorder(rec_config);
  const std::uint32_t n_messages =
      config.messages != 0 ? config.messages : default_messages(use_case);

  static const std::uint32_t kRxSite =
      probe::site("aon.socket.rx", probe::SiteKind::kLoop);
  static const std::uint32_t kTxSite =
      probe::site("aon.socket.tx", probe::SiteKind::kLoop);
  static const std::uint32_t kSegSite =
      probe::site("aon.socket.segment", probe::SiteKind::kData);

  // Per-message state is kept alive for the whole capture so every
  // message occupies fresh memory — a live message stream has no
  // allocator-level page recycling, and the paper's L2 behaviour
  // ("packet payloads have no temporal re-use") depends on it.
  std::vector<std::string> wires;
  std::vector<std::unique_ptr<Pipeline::ProcessScratch>> scratches;
  std::vector<Pipeline::Outcome> outcomes;
  wires.reserve(n_messages);
  outcomes.reserve(n_messages);

  // Kernel copy loop: 16 bytes per iteration — the load/store pair, the
  // loop branch and an index update, like a real copy+checksum path;
  // per-MSS protocol work on segment boundaries.
  auto socket_copy = [&](const char* data, std::size_t size, bool rx,
                         std::uint32_t loop_site) {
    for (std::size_t o = 0; o < size; o += 16) {
      const auto chunk = static_cast<std::uint32_t>(
          std::min<std::size_t>(16, size - o));
      if (rx) {
        probe::store(data + o, chunk);
      } else {
        probe::load(data + o, chunk);
      }
      probe::alu(1);
      probe::branch(loop_site, o + 16 < size);
      if (o % 1460 < 16) {
        probe::alu(8);
        probe::branch(kSegSite, (o / 1460) % 4 != 0);
      }
    }
  };

  for (std::uint32_t i = 0; i < n_messages; ++i) {
    MessageSpec spec;
    spec.seed = config.message_seed + i;
    // Keep the paper's CBR hit/miss mix: alternate quantity 1 / not-1.
    spec.quantity = (i % 2 == 0) ? 1 : 2 + (i % 7);
    wires.push_back(make_post_wire(spec));
    const std::string& wire = wires.back();
    scratches.push_back(std::make_unique<Pipeline::ProcessScratch>());

    probe::ScopedRecorder guard(&recorder);
    // Socket receive: the kernel copies the segment stream into the
    // application buffer.
    socket_copy(wire.data(), wire.size(), /*rx=*/true, kRxSite);

    outcomes.push_back(pipeline.process_wire(wire, scratches.back().get()));
    const Pipeline::Outcome& outcome = outcomes.back();
    XAON_CHECK_MSG(outcome.ok || use_case != UseCase::kForwardRequest,
                   "FR must always forward");

    // Transmit: the kernel reads the forwarded bytes back out to the
    // NIC.
    socket_copy(outcome.forwarded_wire.data(),
                outcome.forwarded_wire.size(), /*rx=*/false, kTxSite);
  }
  return recorder.take_trace();
}

}  // namespace xaon::aon
