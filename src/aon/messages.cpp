#include "xaon/aon/messages.hpp"

#include "xaon/util/rng.hpp"
#include "xaon/util/str.hpp"

namespace xaon::aon {

namespace {

constexpr const char* kSoapNs = "http://schemas.xmlsoap.org/soap/envelope/";

const char* const kFillerWords[] = {
    "logistics", "fulfillment", "priority", "tracking",  "warehouse",
    "carrier",   "manifest",    "routing",  "packaging", "customs",
};

}  // namespace

std::string make_order_message(const MessageSpec& spec) {
  util::Xoshiro256ss rng(spec.seed);
  std::string body;
  body.reserve(spec.target_bytes + 512);
  body += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  body += "<soapenv:Envelope xmlns:soapenv=\"";
  body += kSoapNs;
  body += "\">\n<soapenv:Header/>\n<soapenv:Body>\n<order id=\"";
  body += std::to_string(1 + rng.next_below(100000));
  body += "\">\n  <customer>Customer-";
  body += std::to_string(1 + rng.next_below(10000));
  body += "</customer>\n";
  for (std::uint32_t i = 0; i < spec.items; ++i) {
    const std::uint32_t quantity =
        i == 0 ? spec.quantity
               : 1 + static_cast<std::uint32_t>(rng.next_below(9));
    body += util::format(
        "  <item>\n    <sku>%c%c-%03u</sku>\n"
        "    <quantity>%u</quantity>\n    <price>%u.%02u</price>\n"
        "  </item>\n",
        static_cast<char>('A' + rng.next_below(26)),
        static_cast<char>('A' + rng.next_below(26)),
        static_cast<unsigned>(rng.next_below(1000)),
        spec.valid_for_schema ? quantity : 0u,  // 0 violates the schema
        static_cast<unsigned>(1 + rng.next_below(500)),
        static_cast<unsigned>(rng.next_below(100)));
  }
  // Filler text elements pad to the AONBench 5 KB size (paper §3.2.1).
  const std::string tail = "</order>\n</soapenv:Body>\n</soapenv:Envelope>\n";
  int filler_index = 0;
  while (body.size() + tail.size() + 64 < spec.target_bytes) {
    body += util::format("  <note seq=\"%d\">", filler_index++);
    const std::uint64_t words = 6 + rng.next_below(5);
    for (std::uint64_t w = 0; w < words; ++w) {
      body += kFillerWords[rng.next_below(10)];
      if (w + 1 < words) body += ' ';
    }
    body += "</note>\n";
  }
  body += tail;
  return body;
}

std::string order_schema_xsd() {
  return R"(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="SkuType">
    <xs:restriction base="xs:string">
      <xs:pattern value="[A-Z]{2}-\d{3}"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="QuantityType">
    <xs:restriction base="xs:positiveInteger">
      <xs:maxInclusive value="10000"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="PriceType">
    <xs:restriction base="xs:decimal">
      <xs:minInclusive value="0"/>
      <xs:fractionDigits value="2"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="ItemType">
    <xs:sequence>
      <xs:element name="sku" type="SkuType"/>
      <xs:element name="quantity" type="QuantityType"/>
      <xs:element name="price" type="PriceType"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="item" type="ItemType" maxOccurs="unbounded"/>
        <xs:element name="note" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:simpleContent>
              <xs:extension base="xs:string">
                <xs:attribute name="seq" type="xs:nonNegativeInteger"/>
              </xs:extension>
            </xs:simpleContent>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="id" type="xs:positiveInteger" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>)";
}

http::Request make_post_request(std::string body, std::string target) {
  http::Request req;
  req.method = "POST";
  req.target = std::move(target);
  req.headers.add("Host", "aon-gateway.example");
  req.headers.add("Content-Type", "text/xml; charset=utf-8");
  req.headers.add("SOAPAction", "\"urn:order/submit\"");
  req.body = std::move(body);
  return req;
}

std::string make_post_wire(const MessageSpec& spec) {
  return http::write_request(make_post_request(make_order_message(spec)));
}

}  // namespace xaon::aon
