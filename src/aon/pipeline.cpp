#include "xaon/aon/pipeline.hpp"

#include <algorithm>

#include "xaon/aon/messages.hpp"
#include "xaon/crypto/sha1.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/util/str.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xsd/loader.hpp"

namespace xaon::aon {

namespace {

// Stage clock over ProcessScratch::stage_start_ns: mark opens a span,
// record closes it into the worker's metrics block and opens the next.
// Both are single branches when no metrics sink is attached, and
// allocation-free always (the steady-state contract of §5b holds with
// metrics enabled).
inline void stage_mark(Pipeline::ProcessScratch& state) {
  if (state.metrics != nullptr) state.stage_start_ns = util::metrics_now_ns();
}

inline void stage_record(Pipeline::ProcessScratch& state, util::Stage stage) {
  if (state.metrics != nullptr) {
    const std::uint64_t now = util::metrics_now_ns();
    state.metrics->record_stage(stage, now - state.stage_start_ns);
    state.stage_start_ns = now;
  }
}

// --- CBR structural routing cache helpers (DESIGN.md §"Caching") -------

// Child-index path from `root` down to `target` (exclusive of root).
// False when target is not in root's subtree (e.g. an ancestor-axis hit
// above the context) — such hits stay uncacheable. Miss-path only.
bool path_from_root(const xml::Node* root, const xml::Node* target,
                    std::vector<std::uint32_t>& out) {
  out.clear();
  for (const xml::Node* n = target; n != root; n = n->parent) {
    if (n == nullptr || n->parent == nullptr) return false;
    std::uint32_t index = 0;
    for (const xml::Node* s = n->prev_sibling; s != nullptr;
         s = s->prev_sibling) {
      ++index;
    }
    out.push_back(index);
  }
  std::reverse(out.begin(), out.end());
  return true;
}

// Walks a cached child-index path in the *current* document. Returns
// nullptr when the path runs off the tree (only reachable through a
// fingerprint collision); callers fall back to full evaluation.
const xml::Node* resolve_path(const xml::Node* root,
                              const std::vector<std::uint32_t>& path) {
  const xml::Node* n = root;
  for (std::uint32_t index : path) {
    const xml::Node* c = n->first_child;
    while (c != nullptr && index > 0) {
      c = c->next_sibling;
      --index;
    }
    if (c == nullptr) return nullptr;
    n = c;
  }
  return n;
}

// Builds the plan for a freshly evaluated node-set: position of the
// first hit, or kUncached for hit kinds whose string-value needs a
// descendant walk (element/document) — those keep full evaluation.
RoutePlan make_route_plan(const xml::Node* root, const xpath::NodeSet& hits) {
  RoutePlan plan;
  if (hits.empty()) return plan;  // kNoHit
  const xpath::NodeRef& first = hits.front();
  plan.kind = RoutePlan::Kind::kUncached;
  if (first.is_attr()) {
    if (!path_from_root(root, first.node, plan.path)) return plan;
    std::uint32_t ordinal = 1;
    for (const xml::Attr* a = first.node->first_attr; a != nullptr;
         a = a->next, ++ordinal) {
      if (a == first.attr) {
        plan.kind = RoutePlan::Kind::kAttr;
        plan.attr_ordinal = ordinal;
        return plan;
      }
    }
    return plan;
  }
  if (first.node->type == xml::NodeType::kElement ||
      first.node->type == xml::NodeType::kDocument) {
    return plan;
  }
  if (!path_from_root(root, first.node, plan.path)) return plan;
  plan.kind = RoutePlan::Kind::kNode;
  return plan;
}

// Replays a cached plan against the current document: resolves the
// recorded position and reads the value **from this message**. Returns
// false (fall back to full evaluation) for kUncached plans or any
// resolution mismatch. Allocation-free — the hit path of §5b.
bool route_from_plan(const RoutePlan& plan, const xml::Node* root,
                     bool& primary) {
  switch (plan.kind) {
    case RoutePlan::Kind::kNoHit:
      primary = false;
      return true;
    case RoutePlan::Kind::kNode: {
      const xml::Node* n = resolve_path(root, plan.path);
      if (n == nullptr || n->is_element() ||
          n->type == xml::NodeType::kDocument) {
        return false;
      }
      // Same value the full path compares: xpath::string_value of a
      // text-like node is its text.
      primary = n->text == "1";
      return true;
    }
    case RoutePlan::Kind::kAttr: {
      const xml::Node* n = resolve_path(root, plan.path);
      if (n == nullptr) return false;
      std::uint32_t ordinal = plan.attr_ordinal;
      const xml::Attr* a = n->first_attr;
      while (a != nullptr && ordinal > 1) {
        a = a->next;
        --ordinal;
      }
      if (a == nullptr) return false;
      primary = a->value == "1";
      return true;
    }
    case RoutePlan::Kind::kUncached:
      return false;
  }
  return false;
}

}  // namespace

std::string_view use_case_notation(UseCase use_case) {
  switch (use_case) {
    case UseCase::kForwardRequest: return "FR";
    case UseCase::kContentBasedRouting: return "CBR";
    case UseCase::kSchemaValidation: return "SV";
    case UseCase::kDeepInspection: return "DPI";
    case UseCase::kMessageSecurity: return "SEC";
  }
  return "?";
}

const std::vector<std::string>& default_dpi_signatures() {
  // A small signature set in the spirit of 2006-era XML firewalls:
  // injection fragments, script smuggling, entity-expansion bombs,
  // path traversal.
  static const std::vector<std::string>* signatures =
      new std::vector<std::string>{  // xlint: allow(hot-new): process-lifetime singleton, allocated once on first use
          "<!ENTITY",
          "<script",
          "(UNION|union) +(SELECT|select)",
          "';( )?(DROP|drop) ",
          "\\.\\./\\.\\./",
          "cmd\\.exe",
          "/etc/passwd",
          "(%3C|%3c)script",
      };
  return *signatures;
}

Pipeline::Pipeline(UseCase use_case, Endpoints endpoints)
    : use_case_(use_case), endpoints_(std::move(endpoints)) {
  if (use_case_ == UseCase::kContentBasedRouting) {
    // The paper's exact CBR expression, served from the shared plan
    // cache: every pipeline over the same rule shares one compilation.
    xpath::CompileError error;
    quantity_xpath_ = xpath::XPath::compile_cached("//quantity/text()", &error);
    XAON_CHECK_MSG(quantity_xpath_.valid(), "CBR XPath failed to compile");
    cbr_cacheable_ = quantity_xpath_.structural();
  }
  if (use_case_ == UseCase::kSchemaValidation) {
    schema_ = xsd::load_schema_cached(order_schema_xsd());
    XAON_CHECK_MSG(schema_ != nullptr, "order schema failed to load");
  }
  if (use_case_ == UseCase::kDeepInspection) {
    for (const std::string& pattern : default_dpi_signatures()) {
      std::string error;
      xsd::Regex re = xsd::Regex::compile(pattern, &error);
      XAON_CHECK_MSG(re.valid(), "DPI signature failed to compile");
      signatures_.push_back(std::move(re));
    }
  }
  if (use_case_ == UseCase::kMessageSecurity) {
    hmac_key_ = "xaon-gateway-shared-secret-2007";
  }
}

void Pipeline::Outcome::reset() {
  ok = false;
  routed_primary = false;
  forwarded_to.clear();
  forwarded_wire.clear();
  response.reset();
  detail.clear();
}

Pipeline::Outcome& Pipeline::forward_into(const http::Request& request,
                                          bool primary,
                                          std::string_view detail,
                                          ProcessScratch& state,
                                          std::string_view extra_name,
                                          std::string_view extra_value) const {
  // The routing decision is made the moment forward_into is entered;
  // everything below is outbound serialization.
  stage_record(state, util::Stage::kRoute);
  Outcome& out = state.outcome;
  out.reset();
  out.ok = true;
  out.routed_primary = primary;
  out.forwarded_to.assign(primary ? endpoints_.primary : endpoints_.error);
  out.detail.assign(detail);

  // Serialize the outbound request straight into the scratch buffer:
  // same body, adjusted target/Via — the proxy's transmit path, without
  // an intermediate deep copy of the request.
  std::string& w = out.forwarded_wire;
  w.reserve(request.body.size() + 256);
  w += request.method;
  w += ' ';
  w += out.forwarded_to;
  w += ' ';
  w += request.version;
  w += "\r\n";
  bool wrote_length = false;
  for (const auto& e : request.headers.entries()) {
    if (util::iequals(e.name, "Via")) continue;  // replaced below
    if (!extra_name.empty() && util::iequals(e.name, extra_name)) {
      continue;  // replaced below
    }
    if (util::iequals(e.name, "Transfer-Encoding")) {
      continue;  // serialized messages always use Content-Length
    }
    if (util::iequals(e.name, "Content-Length")) {
      if (wrote_length) continue;
      w += "Content-Length: ";
      w += std::to_string(request.body.size());  // xlint: allow(hot-string): std::to_string of a small size fits SSO — no heap
      wrote_length = true;
    } else {
      w += e.name;
      w += ": ";
      w += e.value;
    }
    w += "\r\n";
  }
  if (!extra_name.empty()) {
    w += extra_name;
    w += ": ";
    w += extra_value;
    w += "\r\n";
  }
  w += "Via: 1.1 xaon-gateway\r\n";
  if (!wrote_length && !request.body.empty()) {
    w += "Content-Length: ";
    w += std::to_string(request.body.size());  // xlint: allow(hot-string): std::to_string of a small size fits SSO — no heap
    w += "\r\n";
  }
  w += "\r\n";
  w += request.body;
  probe::store(w.data(), static_cast<std::uint32_t>(w.size()));

  out.response.status = 200;
  out.response.headers.add("Content-Type", "text/plain");
  out.response.body.assign(primary ? "routed" : "routed-error");
  stage_record(state, util::Stage::kSerialize);
  return out;
}

Pipeline::Outcome& Pipeline::process_into(const http::Request& request,
                                          ProcessScratch& state) const {
  // Opens the route-or-validate span; forward_into (or an error return)
  // closes it. When called via process_wire_into the clock was already
  // advanced past the parse stage — re-stamping costs one clock read.
  stage_mark(state);
  switch (use_case_) {
    case UseCase::kForwardRequest:
      // No content processing at all: the network-I/O extreme.
      return forward_into(request, /*primary=*/true, "forwarded", state);

    case UseCase::kContentBasedRouting: {
      state.arena.reset();
      state.parsed = state.dom_parser.parse(request.body, state.arena);
      if (!state.parsed.ok) {
        Outcome& out = state.outcome;
        out.reset();
        out.response.status = 400;
        out.response.reason.assign("Bad Request");
        out.response.body.assign("XML parse error: ");
        out.response.body += state.parsed.error.to_string();
        out.detail.assign(out.response.body);
        stage_record(state, util::Stage::kRoute);
        return out;
      }
      // Paper: route primary iff //quantity/text() exists and equals "1".
      //
      // Structural routing cache: when the expression is structural and
      // the message's tag skeleton has been routed before, replay the
      // cached hit *position* and read the value from this message —
      // skipping the full XPath evaluation. Any miss, uncacheable plan
      // or resolution mismatch falls back to the full evaluation below
      // (and a miss records the plan for the next message of this
      // shape).
      const xml::Node* root = state.parsed.document.root();
      bool primary = false;
      bool decided = false;
      if (cbr_cacheable_ && state.route_cache.enabled() && root != nullptr) {
        const std::uint64_t shape = xml::skeleton_fingerprint(root);
        if (const RoutePlan* plan = state.route_cache.find(shape)) {
          decided = route_from_plan(*plan, root, primary);
        } else {
          const xpath::NodeSet& hits = quantity_xpath_.select(root, state.xpath);
          state.route_cache.insert(shape, make_route_plan(root, hits));
          primary = !hits.empty() && xpath::string_value(hits.front()) == "1";
          decided = true;
        }
      }
      if (!decided) {
        const xpath::NodeSet& hits = quantity_xpath_.select(root, state.xpath);
        primary = !hits.empty() && xpath::string_value(hits.front()) == "1";
      }
      return forward_into(request, primary,
                          primary ? "quantity=1" : "quantity!=1", state);
    }

    case UseCase::kSchemaValidation: {
      state.arena.reset();
      state.parsed = state.dom_parser.parse(request.body, state.arena);
      if (!state.parsed.ok) {
        Outcome& out = state.outcome;
        out.reset();
        out.response.status = 400;
        out.response.reason.assign("Bad Request");
        out.response.body.assign("XML parse error: ");
        out.response.body += state.parsed.error.to_string();
        out.detail.assign(out.response.body);
        stage_record(state, util::Stage::kRoute);
        return out;
      }
      // The order payload is the first element child of soap:Body (or
      // the root itself for bare payloads).
      const xml::Node* payload = state.parsed.document.root();
      if (payload != nullptr && payload->local == "Envelope") {
        if (const xml::Node* body = payload->child_element("Body")) {
          // Skip Header etc.; first element in Body is the payload.
          for (const xml::Node* c = body->first_child_element();
               c != nullptr; c = c->next_sibling_element()) {
            payload = c;
            break;
          }
        }
      }
      const xsd::ElementDecl* decl =
          payload == nullptr
              ? nullptr
              : schema_->find_global_element(payload->ns_uri, payload->local);
      if (decl == nullptr) {
        return forward_into(request, /*primary=*/false, "no declaration",
                            state);
      }
      if (!state.validator) state.validator.emplace(*schema_);
      const xsd::ValidationResult& result =
          state.validator->validate_element_reuse(payload, decl);
      if (result.valid()) {
        return forward_into(request, /*primary=*/true, "valid", state);
      }
      return forward_into(request, /*primary=*/false, result.to_string(),
                          state);
    }

    case UseCase::kDeepInspection: {
      // Future-work extension: scan the raw payload bytes against the
      // signature set — no XML parsing at all, like an inline IPS.
      for (std::size_t i = 0; i < signatures_.size(); ++i) {
        if (signatures_[i].search(request.body)) {
          return forward_into(request, /*primary=*/false,
                              "signature match: '" +
                                  std::string(signatures_[i].pattern()) +  // xlint: allow(hot-string): diagnostic built only on signature match
                                  "'",
                              state);
        }
      }
      return forward_into(request, /*primary=*/true, "clean", state);
    }

    case UseCase::kMessageSecurity: {
      // Future-work extension: HMAC-SHA1 message security. Signed
      // messages are verified; unsigned messages are signed on the way
      // out (gateway-applied integrity).
      if (auto provided = request.headers.get(kSignatureHeader)) {
        const crypto::Sha1::Digest expected =
            crypto::hmac_sha1(hmac_key_, request.body);
        if (crypto::to_hex(expected) != *provided) {
          Outcome& out = forward_into(request, /*primary=*/false,
                                      "signature verification failed",
                                      state);
          out.response.status = 403;
          out.response.reason.assign("Forbidden");
          return out;
        }
        return forward_into(request, /*primary=*/true,
                            "signature verified", state);
      }
      const crypto::Sha1::Digest digest =
          crypto::hmac_sha1(hmac_key_, request.body);
      const std::string signature = crypto::to_hex(digest);
      return forward_into(request, /*primary=*/true, "signed outbound",
                          state, kSignatureHeader, signature);
    }
  }
  XAON_CHECK_MSG(false, "unreachable use case");
  return state.outcome;
}

Pipeline::Outcome& Pipeline::process_wire_into(std::string_view wire,
                                               ProcessScratch& state) const {
  stage_mark(state);
  state.parser.reset();
  const std::size_t consumed = state.parser.feed(wire);
  if (!state.parser.done() || consumed != wire.size()) {
    Outcome& out = state.outcome;
    out.reset();
    out.response.status = 400;
    out.response.reason.assign("Bad Request");
    out.detail.assign(state.parser.failed() ? state.parser.error()
                                            : "incomplete request");
    stage_record(state, util::Stage::kParse);
    return out;
  }
  stage_record(state, util::Stage::kParse);
  return process_into(state.parser.request(), state);
}

const Pipeline::Outcome& Pipeline::process(const http::Request& request,
                                           ProcessScratch& scratch) const {
  return process_into(request, scratch);
}

const Pipeline::Outcome& Pipeline::process_wire(std::string_view wire,
                                                ProcessScratch& scratch) const {
  return process_wire_into(wire, scratch);
}

Pipeline::Outcome Pipeline::process(const http::Request& request,
                                    ProcessScratch* scratch) const {
  if (scratch != nullptr) {
    return std::move(process_into(request, *scratch));
  }
  ProcessScratch local;
  return std::move(process_into(request, local));
}

Pipeline::Outcome Pipeline::process_wire(std::string_view wire,
                                         ProcessScratch* scratch) const {
  ProcessScratch local;
  ProcessScratch& state = scratch != nullptr ? *scratch : local;
  stage_mark(state);
  state.parser.reset();
  const std::size_t consumed = state.parser.feed(wire);
  if (!state.parser.done() || consumed != wire.size()) {
    Outcome& out = state.outcome;
    out.reset();
    out.response.status = 400;
    out.response.reason.assign("Bad Request");
    out.detail.assign(state.parser.failed() ? state.parser.error()
                                            : "incomplete request");
    stage_record(state, util::Stage::kParse);
    return std::move(out);
  }
  stage_record(state, util::Stage::kParse);
  // Unlike the reference-returning variant, the parsed request is moved
  // into the scratch so callers (e.g. trace capture) can keep it alive.
  state.request = state.parser.take_request();
  return std::move(process_into(state.request, state));
}

}  // namespace xaon::aon
