#include "xaon/aon/pipeline.hpp"

#include "xaon/aon/messages.hpp"
#include "xaon/crypto/sha1.hpp"
#include "xaon/http/parser.hpp"
#include "xaon/util/assert.hpp"
#include "xaon/util/probe.hpp"
#include "xaon/xml/parser.hpp"
#include "xaon/xsd/loader.hpp"

namespace xaon::aon {

std::string_view use_case_notation(UseCase use_case) {
  switch (use_case) {
    case UseCase::kForwardRequest: return "FR";
    case UseCase::kContentBasedRouting: return "CBR";
    case UseCase::kSchemaValidation: return "SV";
    case UseCase::kDeepInspection: return "DPI";
    case UseCase::kMessageSecurity: return "SEC";
  }
  return "?";
}

const std::vector<std::string>& default_dpi_signatures() {
  // A small signature set in the spirit of 2006-era XML firewalls:
  // injection fragments, script smuggling, entity-expansion bombs,
  // path traversal.
  static const std::vector<std::string>* signatures =
      new std::vector<std::string>{
          "<!ENTITY",
          "<script",
          "(UNION|union) +(SELECT|select)",
          "';( )?(DROP|drop) ",
          "\\.\\./\\.\\./",
          "cmd\\.exe",
          "/etc/passwd",
          "(%3C|%3c)script",
      };
  return *signatures;
}

Pipeline::Pipeline(UseCase use_case, Endpoints endpoints)
    : use_case_(use_case), endpoints_(std::move(endpoints)) {
  if (use_case_ == UseCase::kContentBasedRouting) {
    // The paper's exact CBR expression.
    xpath::CompileError error;
    quantity_xpath_ = xpath::XPath::compile("//quantity/text()", &error);
    XAON_CHECK_MSG(quantity_xpath_.valid(), "CBR XPath failed to compile");
  }
  if (use_case_ == UseCase::kSchemaValidation) {
    auto loaded = xsd::load_schema(order_schema_xsd());
    XAON_CHECK_MSG(loaded.ok, "order schema failed to load");
    schema_ = std::move(loaded.schema);
  }
  if (use_case_ == UseCase::kDeepInspection) {
    for (const std::string& pattern : default_dpi_signatures()) {
      std::string error;
      xsd::Regex re = xsd::Regex::compile(pattern, &error);
      XAON_CHECK_MSG(re.valid(), "DPI signature failed to compile");
      signatures_.push_back(std::move(re));
    }
  }
  if (use_case_ == UseCase::kMessageSecurity) {
    hmac_key_ = "xaon-gateway-shared-secret-2007";
  }
}

Pipeline::Outcome Pipeline::forward(const http::Request& request,
                                    bool primary, std::string detail) const {
  Outcome out;
  out.ok = true;
  out.routed_primary = primary;
  out.forwarded_to = primary ? endpoints_.primary : endpoints_.error;
  out.detail = std::move(detail);

  // Build the outbound request: same body, adjusted target/Via — then
  // serialize (this copy is the proxy's transmit path).
  http::Request outbound = request;
  outbound.target = out.forwarded_to;
  outbound.headers.set("Via", "1.1 xaon-gateway");
  out.forwarded_wire = http::write_request(outbound);

  out.response.status = 200;
  out.response.reason = "OK";
  out.response.headers.add("Content-Type", "text/plain");
  out.response.body = primary ? "routed" : "routed-error";
  return out;
}

Pipeline::Outcome Pipeline::process(const http::Request& request,
                                    ProcessScratch* scratch) const {
  ProcessScratch local;
  ProcessScratch& state = scratch != nullptr ? *scratch : local;
  switch (use_case_) {
    case UseCase::kForwardRequest:
      // No content processing at all: the network-I/O extreme.
      return forward(request, /*primary=*/true, "forwarded");

    case UseCase::kContentBasedRouting: {
      auto& parsed = state.parsed;
      parsed = xml::parse(request.body);
      if (!parsed.ok) {
        Outcome out;
        out.response.status = 400;
        out.response.reason = "Bad Request";
        out.response.body = "XML parse error: " + parsed.error.to_string();
        out.detail = out.response.body;
        return out;
      }
      // Paper: route primary iff //quantity/text() exists and equals "1".
      const xpath::Value value =
          quantity_xpath_.evaluate(parsed.document.root());
      bool primary = false;
      if (value.is_node_set() && !value.nodes().empty()) {
        primary = xpath::string_value(value.nodes().front()) == "1";
      }
      return forward(request, primary,
                     primary ? "quantity=1" : "quantity!=1");
    }

    case UseCase::kSchemaValidation: {
      auto& parsed = state.parsed;
      parsed = xml::parse(request.body);
      if (!parsed.ok) {
        Outcome out;
        out.response.status = 400;
        out.response.reason = "Bad Request";
        out.response.body = "XML parse error: " + parsed.error.to_string();
        out.detail = out.response.body;
        return out;
      }
      // The order payload is the first element child of soap:Body (or
      // the root itself for bare payloads).
      const xml::Node* payload = parsed.document.root();
      if (payload != nullptr && payload->local == "Envelope") {
        if (const xml::Node* body = payload->child_element("Body")) {
          // Skip Header etc.; first element in Body is the payload.
          for (const xml::Node* c = body->first_child_element();
               c != nullptr; c = c->next_sibling_element()) {
            payload = c;
            break;
          }
        }
      }
      const xsd::ElementDecl* decl =
          payload == nullptr
              ? nullptr
              : schema_.find_global_element(payload->ns_uri, payload->local);
      if (decl == nullptr) {
        return forward(request, /*primary=*/false, "no declaration");
      }
      xsd::Validator validator(schema_);
      const xsd::ValidationResult result =
          validator.validate_element(payload, decl);
      return forward(request, result.valid(),
                     result.valid() ? "valid" : result.to_string());
    }

    case UseCase::kDeepInspection: {
      // Future-work extension: scan the raw payload bytes against the
      // signature set — no XML parsing at all, like an inline IPS.
      for (std::size_t i = 0; i < signatures_.size(); ++i) {
        if (signatures_[i].search(request.body)) {
          return forward(request, /*primary=*/false,
                         "signature match: '" +
                             std::string(signatures_[i].pattern()) + "'");
        }
      }
      return forward(request, /*primary=*/true, "clean");
    }

    case UseCase::kMessageSecurity: {
      // Future-work extension: HMAC-SHA1 message security. Signed
      // messages are verified; unsigned messages are signed on the way
      // out (gateway-applied integrity).
      if (auto provided = request.headers.get(kSignatureHeader)) {
        const crypto::Sha1::Digest expected =
            crypto::hmac_sha1(hmac_key_, request.body);
        if (crypto::to_hex(expected) != *provided) {
          Outcome out = forward(request, /*primary=*/false,
                                "signature verification failed");
          out.response.status = 403;
          out.response.reason = "Forbidden";
          return out;
        }
        return forward(request, /*primary=*/true, "signature verified");
      }
      const crypto::Sha1::Digest digest =
          crypto::hmac_sha1(hmac_key_, request.body);
      http::Request signed_request = request;
      signed_request.headers.set(kSignatureHeader,
                                 crypto::to_hex(digest));
      Outcome out =
          forward(signed_request, /*primary=*/true, "signed outbound");
      return out;
    }
  }
  XAON_CHECK_MSG(false, "unreachable use case");
  return {};
}

Pipeline::Outcome Pipeline::process_wire(std::string_view wire,
                                         ProcessScratch* scratch) const {
  http::RequestParser parser;
  const std::size_t consumed = parser.feed(wire);
  if (!parser.done() || consumed != wire.size()) {
    Outcome out;
    out.response.status = 400;
    out.response.reason = "Bad Request";
    out.detail = parser.failed() ? parser.error() : "incomplete request";
    return out;
  }
  ProcessScratch local;
  ProcessScratch& state = scratch != nullptr ? *scratch : local;
  state.request = parser.take_request();
  return process(state.request, &state);
}

}  // namespace xaon::aon
