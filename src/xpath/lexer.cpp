#include "lexer.hpp"

#include "xaon/util/str.hpp"
#include "xaon/xml/chars.hpp"

namespace xaon::xpath::detail {

namespace {

bool is_name_start(char c) {
  return xml::is_name_start(c) && c != ':';  // NCName: no colon
}
bool is_name_char(char c) { return xml::is_name_char(c) && c != ':'; }

/// Per XPath 1.0 §3.7: after these tokens, a name/star must be an
/// operand (wildcard / node test), not an operator.
bool preceding_forces_operand(const Token* prev) {
  if (prev == nullptr) return true;
  switch (prev->kind) {
    case Tok::kAt:
    case Tok::kColonColon:
    case Tok::kLParen:
    case Tok::kLBracket:
    case Tok::kComma:
    case Tok::kAnd:
    case Tok::kOr:
    case Tok::kDiv:
    case Tok::kMod:
    case Tok::kSlash:
    case Tok::kSlashSlash:
    case Tok::kPipe:
    case Tok::kPlus:
    case Tok::kMinus:
    case Tok::kEq:
    case Tok::kNe:
    case Tok::kLt:
    case Tok::kLe:
    case Tok::kGt:
    case Tok::kGe:
    case Tok::kStar:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool tokenize(std::string_view expr, std::vector<Token>* out,
              std::string* error, std::size_t* error_offset) {
  out->clear();
  std::size_t i = 0;
  auto fail = [&](std::size_t at, std::string msg) {
    *error = std::move(msg);
    *error_offset = at;
    return false;
  };
  while (i < expr.size()) {
    const char c = expr[i];
    if (util::is_ascii_space(c)) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    const Token* prev = out->empty() ? nullptr : &out->back();
    switch (c) {
      case '(': t.kind = Tok::kLParen; ++i; break;
      case ')': t.kind = Tok::kRParen; ++i; break;
      case '[': t.kind = Tok::kLBracket; ++i; break;
      case ']': t.kind = Tok::kRBracket; ++i; break;
      case '@': t.kind = Tok::kAt; ++i; break;
      case ',': t.kind = Tok::kComma; ++i; break;
      case '|': t.kind = Tok::kPipe; ++i; break;
      case '+': t.kind = Tok::kPlus; ++i; break;
      case '-': t.kind = Tok::kMinus; ++i; break;
      case '=': t.kind = Tok::kEq; ++i; break;
      case '/':
        if (i + 1 < expr.size() && expr[i + 1] == '/') {
          t.kind = Tok::kSlashSlash;
          i += 2;
        } else {
          t.kind = Tok::kSlash;
          ++i;
        }
        break;
      case '!':
        if (i + 1 < expr.size() && expr[i + 1] == '=') {
          t.kind = Tok::kNe;
          i += 2;
        } else {
          return fail(i, "unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < expr.size() && expr[i + 1] == '=') {
          t.kind = Tok::kLe;
          i += 2;
        } else {
          t.kind = Tok::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < expr.size() && expr[i + 1] == '=') {
          t.kind = Tok::kGe;
          i += 2;
        } else {
          t.kind = Tok::kGt;
          ++i;
        }
        break;
      case ':':
        if (i + 1 < expr.size() && expr[i + 1] == ':') {
          t.kind = Tok::kColonColon;
          i += 2;
        } else {
          return fail(i, "unexpected ':'");
        }
        break;
      case '.':
        if (i + 1 < expr.size() && expr[i + 1] == '.') {
          t.kind = Tok::kDotDot;
          i += 2;
        } else if (i + 1 < expr.size() &&
                   util::is_ascii_digit(expr[i + 1])) {
          // .5 style number
          std::size_t j = i + 1;
          while (j < expr.size() && util::is_ascii_digit(expr[j])) ++j;
          t.kind = Tok::kNumber;
          t.text = expr.substr(i, j - i);
          t.number = util::parse_f64(t.text).value_or(0.0);
          i = j;
        } else {
          t.kind = Tok::kDot;
          ++i;
        }
        break;
      case '"':
      case '\'': {
        const char q = c;
        std::size_t j = i + 1;
        while (j < expr.size() && expr[j] != q) ++j;
        if (j >= expr.size()) return fail(i, "unterminated string literal");
        t.kind = Tok::kLiteral;
        t.text = expr.substr(i + 1, j - i - 1);
        i = j + 1;
        break;
      }
      case '*':
        if (preceding_forces_operand(prev)) {
          t.kind = Tok::kStar;  // wildcard position; parser treats as test
          t.text = "*";
        } else {
          t.kind = Tok::kStar;  // multiply; parser decides by position too
          t.text = "*";
        }
        ++i;
        break;
      default:
        if (util::is_ascii_digit(c)) {
          std::size_t j = i;
          while (j < expr.size() && util::is_ascii_digit(expr[j])) ++j;
          if (j < expr.size() && expr[j] == '.') {
            ++j;
            while (j < expr.size() && util::is_ascii_digit(expr[j])) ++j;
          }
          t.kind = Tok::kNumber;
          t.text = expr.substr(i, j - i);
          t.number = util::parse_f64(t.text).value_or(0.0);
          i = j;
        } else if (is_name_start(c)) {
          std::size_t j = i;
          while (j < expr.size() && is_name_char(expr[j])) ++j;
          // Optional prefix:localname (but not '::').
          if (j + 1 < expr.size() && expr[j] == ':' &&
              expr[j + 1] != ':' &&
              (is_name_start(expr[j + 1]) || expr[j + 1] == '*')) {
            ++j;  // consume ':'
            if (expr[j] == '*') {
              ++j;  // prefix:* wildcard
            } else {
              while (j < expr.size() && is_name_char(expr[j])) ++j;
            }
          }
          t.text = expr.substr(i, j - i);
          i = j;
          // Operator-name disambiguation.
          if (!preceding_forces_operand(prev)) {
            if (t.text == "and") { t.kind = Tok::kAnd; break; }
            if (t.text == "or") { t.kind = Tok::kOr; break; }
            if (t.text == "div") { t.kind = Tok::kDiv; break; }
            if (t.text == "mod") { t.kind = Tok::kMod; break; }
          }
          // Lookahead classification: '(' -> function/node-type,
          // '::' -> axis name.
          std::size_t k = i;
          while (k < expr.size() && util::is_ascii_space(expr[k])) ++k;
          if (k < expr.size() && expr[k] == '(') {
            t.kind = Tok::kFuncName;
          } else if (k + 1 < expr.size() && expr[k] == ':' &&
                     expr[k + 1] == ':') {
            t.kind = Tok::kAxisName;
          } else {
            t.kind = Tok::kName;
          }
        } else {
          return fail(i, std::string("unexpected character '") + c + "'");
        }
    }
    out->push_back(t);
  }
  Token end;
  end.kind = Tok::kEnd;
  end.offset = expr.size();
  out->push_back(end);
  return true;
}

}  // namespace xaon::xpath::detail
