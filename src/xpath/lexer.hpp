#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xaon/util/annotations.hpp"

/// \file lexer.hpp  (internal)
/// XPath 1.0 tokenizer, including the spec's operator-name
/// disambiguation rule (`and`, `or`, `div`, `mod` and `*` are operators
/// exactly when the preceding token permits an operator).

namespace xaon::xpath::detail {

enum class Tok : std::uint8_t {
  kEnd,
  kName,        // QName or NCName (value holds it)
  kNumber,      // numeric literal
  kLiteral,     // quoted string
  kLParen, kRParen, kLBracket, kRBracket,
  kDot, kDotDot, kAt, kComma, kColonColon,
  kSlash, kSlashSlash, kPipe,
  kPlus, kMinus, kStar,            // kStar: multiply OR wildcard (parser decides by position)
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kDiv, kMod,
  kFuncName,    // name directly followed by '(' (not an axis or node-type)
  kAxisName,    // name directly followed by '::'
};

struct XAON_ARENA_TIED Token {
  Tok kind = Tok::kEnd;
  std::string_view text;   // for names/literals/numbers
  double number = 0.0;
  std::size_t offset = 0;
};

/// Tokenizes the whole expression. Returns false and fills `error` on a
/// lexical error (unterminated literal, stray character).
bool tokenize(std::string_view expr, std::vector<Token>* out,
              std::string* error, std::size_t* error_offset);

}  // namespace xaon::xpath::detail
