#pragma once

#include <cstdint>
#include <string_view>

#include "xaon/util/annotations.hpp"

/// \file ast.hpp  (internal)
/// Arena-allocated XPath expression tree. All nodes are trivially
/// destructible; string payloads are interned into the compile arena.

namespace xaon::xpath::detail {

enum class ExprKind : std::uint8_t {
  kOr, kAnd,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kUnion,
  kLiteral, kNumber,
  kFunction,
  kPath,
};

enum class Axis : std::uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kAttribute,
  kFollowingSibling,
  kPrecedingSibling,
};

/// True for axes whose natural order is reverse document order; the
/// proximity position used by positional predicates counts backwards.
constexpr bool axis_is_reverse(Axis a) {
  return a == Axis::kParent || a == Axis::kAncestor ||
         a == Axis::kAncestorOrSelf || a == Axis::kPrecedingSibling;
}

enum class NodeTestKind : std::uint8_t {
  kName,        ///< local (and optionally namespace) must match
  kAnyName,     ///< '*'
  kNsWildcard,  ///< 'prefix:*'
  kText,        ///< text()
  kComment,     ///< comment()
  kPi,          ///< processing-instruction()
  kNode,        ///< node()
};

enum class Fn : std::uint8_t {
  kLast, kPosition, kCount, kId,  // kId unsupported at runtime (compile error)
  kLocalName, kName, kNamespaceUri,
  kString, kConcat, kStartsWith, kContains,
  kSubstringBefore, kSubstringAfter, kSubstring,
  kStringLength, kNormalizeSpace, kTranslate,
  kBoolean, kNot, kTrue, kFalse, kLang,
  kNumber, kSum, kFloor, kCeiling, kRound,
};

struct Expr;

struct XAON_ARENA_TIED Step {
  Axis axis = Axis::kChild;
  NodeTestKind test = NodeTestKind::kAnyName;
  std::string_view local;    ///< for kName
  std::string_view ns_uri;   ///< resolved namespace ("" = no namespace)
  Expr** predicates = nullptr;
  std::uint32_t n_predicates = 0;
};

struct XAON_ARENA_TIED Expr {
  ExprKind kind = ExprKind::kNumber;

  // Binary / unary operands.
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;

  // kLiteral / kNumber.
  std::string_view literal;
  double number = 0.0;

  // kFunction.
  Fn fn = Fn::kTrue;
  Expr** args = nullptr;
  std::uint32_t n_args = 0;

  // kPath.
  bool absolute = false;
  Expr* base = nullptr;  ///< filter-expr base, e.g. (expr)/child::a
  Expr** base_predicates = nullptr;  ///< applied to the whole base set
  std::uint32_t n_base_predicates = 0;
  Step* steps = nullptr;
  std::uint32_t n_steps = 0;
};

}  // namespace xaon::xpath::detail
